//! Line segments with an arclength parameterization.
//!
//! Query segments `q = [S, E]` are parameterized by **arclength**
//! `t ∈ [0, len]`; `q(0) = S`, `q(len) = E`. All interval structures in the
//! query pipeline ([`crate::IntervalSet`], control-point lists, result lists)
//! live in this parameter space, and the split-point quadratic (paper Eq. 1)
//! is solved in the segment's own coordinate frame where
//! `dist(u, q(t)) = sqrt((t - uₓ)² + u_y²)`.

use crate::approx::EPS;
use crate::point::Point;

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment. Coordinates must be finite (sanitized builds
    /// audit this — NaN/∞/`-0.0` endpoints are rejected, see
    /// [`crate::sanitize`]; other builds debug-assert finiteness only).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        debug_assert!(a.is_finite() && b.is_finite(), "non-finite segment");
        if crate::sanitize::enabled() {
            crate::sanitize::audit_coord("Segment::new a.x", a.x);
            crate::sanitize::audit_coord("Segment::new a.y", a.y);
            crate::sanitize::audit_coord("Segment::new b.x", b.x);
            crate::sanitize::audit_coord("Segment::new b.y", b.y);
        }
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// True when the endpoints coincide (within [`EPS`]).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.len() <= EPS
    }

    /// Unit direction vector. Undefined (returns zero vector) for degenerate
    /// segments.
    #[inline]
    pub fn dir(&self) -> Point {
        let l = self.len();
        if l <= EPS {
            Point::new(0.0, 0.0)
        } else {
            (self.b - self.a) * (1.0 / l)
        }
    }

    /// Point at arclength parameter `t ∈ [0, len]` (clamped).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        let l = self.len();
        if l <= EPS {
            return self.a;
        }
        let t = t.clamp(0.0, l);
        self.a + self.dir() * t
    }

    /// Arclength parameter of the point on the segment closest to `p`.
    #[inline]
    pub fn closest_param(&self, p: Point) -> f64 {
        let l = self.len();
        if l <= EPS {
            return 0.0;
        }
        (p - self.a).dot(self.dir()).clamp(0.0, l)
    }

    /// Minimum distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.at(self.closest_param(p)).dist(p)
    }

    /// Coordinates of `p` in this segment's frame: `x` along the segment
    /// (arclength from `a`), `y` the signed perpendicular offset.
    #[inline]
    pub fn to_frame(&self, p: Point) -> (f64, f64) {
        let d = self.dir();
        let v = p - self.a;
        (v.dot(d), d.cross(v))
    }

    /// Arclength parameter at which the infinite line through `u` and `v`
    /// crosses this segment, if the crossing falls within the segment
    /// (with [`EPS`] slack). Returns `None` for (near-)parallel lines.
    ///
    /// Used to collect shadow-boundary candidates: the ray from a viewpoint
    /// through an obstacle corner delimits the obstacle's shadow on `q`.
    pub fn line_intersection_param(&self, u: Point, v: Point) -> Option<f64> {
        let l = self.len();
        if l <= EPS {
            return None;
        }
        let d = self.dir();
        let e = v - u;
        let denom = d.cross(e);
        if denom.abs() <= EPS * e.norm().max(1.0) {
            return None; // parallel (or degenerate u == v)
        }
        // Solve a + t*d = u + s*e  for t (arclength since |d| = 1).
        let t = (u - self.a).cross(e) / denom;
        if t >= -EPS && t <= l + EPS {
            Some(t.clamp(0.0, l))
        } else {
            None
        }
    }

    /// True when this segment and `other` share at least one point
    /// (endpoints and collinear overlap included).
    pub fn intersects(&self, other: &Segment) -> bool {
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = Point::orient(p3, p4, p1);
        let d2 = Point::orient(p3, p4, p2);
        let d3 = Point::orient(p1, p2, p3);
        let d4 = Point::orient(p1, p2, p4);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        let on = |o: f64, a: Point, b: Point, c: Point| -> bool {
            o.abs() <= EPS
                && c.x >= a.x.min(b.x) - EPS
                && c.x <= a.x.max(b.x) + EPS
                && c.y >= a.y.min(b.y) - EPS
                && c.y <= a.y.max(b.y) + EPS
        };
        on(d1, p3, p4, p1) || on(d2, p3, p4, p2) || on(d3, p1, p2, p3) || on(d4, p1, p2, p4)
    }

    /// Minimum distance between two segments.
    pub fn dist_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.dist_to_point(other.a)
            .min(self.dist_to_point(other.b))
            .min(other.dist_to_point(self.a))
            .min(other.dist_to_point(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn arclength_parameterization() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.len(), 10.0);
        assert_eq!(s.at(0.0), Point::new(0.0, 0.0));
        assert_eq!(s.at(10.0), Point::new(10.0, 0.0));
        assert_eq!(s.at(4.0), Point::new(4.0, 0.0));
        // clamping
        assert_eq!(s.at(-1.0), s.a);
        assert_eq!(s.at(11.0), s.b);
    }

    #[test]
    fn closest_param_and_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_param(Point::new(3.0, 5.0)), 3.0);
        assert_eq!(s.dist_to_point(Point::new(3.0, 5.0)), 5.0);
        // beyond the end: clamps to endpoint
        assert_eq!(s.closest_param(Point::new(12.0, 0.0)), 10.0);
        assert_eq!(s.dist_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn frame_coordinates() {
        let s = seg(0.0, 0.0, 0.0, 10.0); // pointing up
        let (x, y) = s.to_frame(Point::new(2.0, 3.0));
        assert!((x - 3.0).abs() < 1e-12);
        assert!((y - (-2.0)).abs() < 1e-12); // right of the up direction
    }

    #[test]
    fn line_intersection_param_hits_and_misses() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // vertical line through x = 4
        let t = s
            .line_intersection_param(Point::new(4.0, -1.0), Point::new(4.0, 1.0))
            .unwrap();
        assert!((t - 4.0).abs() < 1e-9);
        // line crossing outside the segment
        assert!(s
            .line_intersection_param(Point::new(20.0, -1.0), Point::new(20.0, 1.0))
            .is_none());
        // parallel line
        assert!(s
            .line_intersection_param(Point::new(0.0, 1.0), Point::new(1.0, 1.0))
            .is_none());
    }

    #[test]
    fn segment_intersection_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(s.intersects(&seg(5.0, -1.0, 5.0, 1.0))); // proper cross
        assert!(s.intersects(&seg(10.0, 0.0, 12.0, 3.0))); // shared endpoint
        assert!(s.intersects(&seg(2.0, 0.0, 4.0, 0.0))); // collinear overlap
        assert!(!s.intersects(&seg(0.0, 1.0, 10.0, 1.0))); // parallel apart
        assert!(!s.intersects(&seg(11.0, -1.0, 11.0, 1.0))); // beyond end
    }

    #[test]
    fn segment_to_segment_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist_to_segment(&seg(0.0, 3.0, 10.0, 3.0)), 3.0);
        assert_eq!(s.dist_to_segment(&seg(5.0, -1.0, 5.0, 1.0)), 0.0);
        assert_eq!(s.dist_to_segment(&seg(13.0, 4.0, 13.0, 10.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_is_safe() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.at(5.0), Point::new(1.0, 1.0));
        assert_eq!(s.dist_to_point(Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn sanitized_build_rejects_bad_endpoints() {
        let _guard = crate::sanitize::test_guard();
        // a NaN that bypassed Point::new (struct literal) is still caught
        // by the segment's own endpoint audit
        let bad = Point {
            x: f64::NAN,
            y: 0.0,
        };
        let ok = Point::new(0.0, 0.0);
        assert!(std::panic::catch_unwind(|| Segment::new(ok, bad)).is_err());
        assert!(std::panic::catch_unwind(|| Segment::new(bad, ok)).is_err());
        let _ = Segment::new(ok, Point::new(5.0, 5.0));
    }
}
