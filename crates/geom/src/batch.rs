//! Batched SoA sight tests over rectangle lanes.
//!
//! The hottest operation of obstructed query processing is the obstacle
//! predicate [`Rect::blocks`]: "does this sight segment pass through this
//! rectangle's open interior?". The scalar predicate is branchy and works on
//! one `Rect` (an AoS struct) at a time; at paper scale a single query asks
//! it tens of thousands of times. This module reshapes the test so N
//! candidate rectangles are classified per call over four parallel
//! coordinate lanes (`minx[] / miny[] / maxx[] / maxy[]`, see [`RectLanes`])
//! that the autovectorizer can chew on.
//!
//! # Why the batch can be branch-free *and* bit-identical
//!
//! For one segment against N rects, the Liang–Barsky slab vector
//! `p = [-d.x, d.x, -d.y, d.y]` depends only on the segment — it is a
//! *scalar* shared by every lane. Only the offset vector `q` varies per
//! rect, so the per-slab sign branches of the scalar code are uniform
//! across the whole batch and hoist out of the lane loop. The scalar
//! early-returns can be dropped without changing any verdict:
//!
//! * an early `None` when `p[i] < 0` fires on `r > t1`; the branch-free
//!   fold instead sets `t0 = t0.max(r) > t1`, and since `t0` only grows and
//!   `t1` only shrinks, the final `t0 <= t1` test rejects the lane exactly
//!   when the scalar code would have returned early (symmetrically for
//!   `p[i] > 0`);
//! * the parallel-slab case (`p[i].abs() <= f64::MIN_POSITIVE`) never
//!   divides — it only latches a per-lane miss flag when `q[i] < 0`.
//!
//! When no early return fires, both versions perform the identical sequence
//! of `max`/`min` folds in slab order, producing bit-identical `(t0, t1)`
//! and therefore bit-identical graze checks and midpoint verdicts. The
//! equivalence is pinned by the proptests below and by the vgraph-level
//! suites.
//!
//! The lane loops come in two flavors: a plain autovectorizable form
//! (default) and an explicit fixed-width form behind the `explicit-simd`
//! cargo feature that mirrors a `std::simd` kernel on stable Rust (4-wide
//! blocks + scalar remainder). Both run the same per-lane operations, so
//! their outputs are bit-identical; CI builds both.

use crate::approx::EPS;
use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;

/// Structure-of-arrays mirror of a rectangle set: one coordinate lane per
/// rectangle edge, all parallel and indexed by the rectangle's `u32` id.
///
/// This is the hot half of the obstacle store — candidate classification
/// streams over these four contiguous `f64` lanes instead of gathering
/// 32-byte `Rect` structs.
#[derive(Debug, Default, Clone)]
pub struct RectLanes {
    minx: Vec<f64>,
    miny: Vec<f64>,
    maxx: Vec<f64>,
    maxy: Vec<f64>,
}

impl RectLanes {
    /// Creates an empty lane set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds lanes from a rectangle slice (convenience for benches/tests).
    pub fn from_rects(rects: &[Rect]) -> Self {
        let mut lanes = Self::new();
        for r in rects {
            lanes.push(r);
        }
        lanes
    }

    /// Number of rectangles mirrored in the lanes.
    pub fn len(&self) -> usize {
        self.minx.len()
    }

    /// True when no rectangles are stored.
    pub fn is_empty(&self) -> bool {
        self.minx.is_empty()
    }

    /// Drops all rectangles, keeping the lane allocations.
    pub fn clear(&mut self) {
        self.minx.clear();
        self.miny.clear();
        self.maxx.clear();
        self.maxy.clear();
    }

    /// Appends one rectangle to all four lanes.
    pub fn push(&mut self, r: &Rect) {
        self.minx.push(r.min_x);
        self.miny.push(r.min_y);
        self.maxx.push(r.max_x);
        self.maxy.push(r.max_y);
    }

    /// Overwrites the rectangle at lane index `i` in place (no
    /// normalization). Live-scene removal uses this to collapse a
    /// tombstoned obstacle's lanes to a zero-area rectangle, which no
    /// sight test can classify as blocking.
    pub fn overwrite(&mut self, i: usize, r: &Rect) {
        self.minx[i] = r.min_x;
        self.miny[i] = r.min_y;
        self.maxx[i] = r.max_x;
        self.maxy[i] = r.max_y;
    }

    /// Reconstructs the rectangle at lane index `i` (no normalization — the
    /// lanes hold coordinates of already-normalized rectangles).
    pub fn rect(&self, i: usize) -> Rect {
        Rect {
            min_x: self.minx[i],
            min_y: self.miny[i],
            max_x: self.maxx[i],
            max_y: self.maxy[i],
        }
    }
}

/// Lane-batch width: candidates are classified in stack-resident chunks of
/// this many rects (4 cache lines per `f64` lane).
const CHUNK: usize = 32;

/// Candidate sets at or below this size take the scalar early-exit path in
/// [`blocks_any`]: for a handful of rects the per-rect early returns beat
/// the chunk setup (zeroing the `t0`/`t1`/`miss` lanes), while dense cells
/// amortize it. Verdicts are identical either way. Public so callers that
/// classify per cell (the obstacle grid) can make the same choice without
/// gathering a candidate list first.
pub const SMALL_BATCH: usize = 8;

/// Per-segment probe for repeated one-rect classifications against the same
/// sight segment: hoists the slab vector and segment length that the scalar
/// predicate [`Rect::blocks`] recomputes on every call. Verdicts are
/// identical to the scalar predicate.
#[derive(Debug, Clone, Copy)]
pub struct SegProbe {
    seg: Segment,
    seg_len: f64,
    p: [f64; 4],
}

impl SegProbe {
    /// Builds the probe: one length computation and one slab vector for the
    /// whole batch of candidates.
    pub fn new(s: &Segment) -> Self {
        let d = s.b - s.a;
        SegProbe {
            seg: *s,
            seg_len: s.len(),
            p: [-d.x, d.x, -d.y, d.y],
        }
    }

    /// Scalar early-exit classification of lane rect `k` — the exact
    /// operation sequence of [`Rect::clip_segment`] + [`Rect::blocks`],
    /// with the shared per-segment work hoisted out. Verdict is identical
    /// to `lanes.rect(k).blocks(segment)`.
    #[inline]
    pub fn blocks(&self, lanes: &RectLanes, k: usize) -> bool {
        let q = [
            self.seg.a.x - lanes.minx[k],
            lanes.maxx[k] - self.seg.a.x,
            self.seg.a.y - lanes.miny[k],
            lanes.maxy[k] - self.seg.a.y,
        ];
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;
        for (&pi, &qi) in self.p.iter().zip(&q) {
            if pi.abs() <= f64::MIN_POSITIVE {
                if qi < 0.0 {
                    return false; // parallel and outside this slab
                }
            } else {
                let r = qi / pi;
                if pi < 0.0 {
                    if r > t1 {
                        return false;
                    }
                    t0 = t0.max(r);
                } else {
                    if r < t0 {
                        return false;
                    }
                    t1 = t1.min(r);
                }
            }
        }
        finish_lane(
            &self.seg,
            self.seg_len,
            t0,
            t1,
            false,
            lanes.minx[k],
            lanes.miny[k],
            lanes.maxx[k],
            lanes.maxy[k],
        )
    }
}

/// Explicit fixed-width lane primitives (`explicit-simd` feature): the same
/// three slab folds as the autovectorized loops, written as 4-wide blocks
/// with a scalar remainder — the shape a `std::simd` port would take.
/// Per-lane operations are identical, so results are bit-identical.
#[cfg(feature = "explicit-simd")]
mod lane4 {
    const W: usize = 4;

    #[inline]
    pub fn or_lt_zero(miss: &mut [bool], qs: &[f64], n: usize) {
        let blocks = n / W;
        for b in 0..blocks {
            let o = b * W;
            let m: [bool; W] = std::array::from_fn(|i| qs[o + i] < 0.0);
            for i in 0..W {
                miss[o + i] |= m[i];
            }
        }
        for j in (blocks * W)..n {
            miss[j] |= qs[j] < 0.0;
        }
    }

    #[inline]
    pub fn fold_max_div(t0: &mut [f64], qs: &[f64], p: f64, n: usize) {
        let blocks = n / W;
        for b in 0..blocks {
            let o = b * W;
            let r: [f64; W] = std::array::from_fn(|i| qs[o + i] / p);
            for i in 0..W {
                t0[o + i] = t0[o + i].max(r[i]);
            }
        }
        for j in (blocks * W)..n {
            t0[j] = t0[j].max(qs[j] / p);
        }
    }

    #[inline]
    pub fn fold_min_div(t1: &mut [f64], qs: &[f64], p: f64, n: usize) {
        let blocks = n / W;
        for b in 0..blocks {
            let o = b * W;
            let r: [f64; W] = std::array::from_fn(|i| qs[o + i] / p);
            for i in 0..W {
                t1[o + i] = t1[o + i].min(r[i]);
            }
        }
        for j in (blocks * W)..n {
            t1[j] = t1[j].min(qs[j] / p);
        }
    }
}

/// Branch-free Liang–Barsky fold over one chunk: `p` is the shared slab
/// vector of the segment, `q` the per-lane offset vectors in slab order.
/// On return, lane `j` missed the (closed) rect iff
/// `miss[j] || t0[j] > t1[j]`; otherwise `(t0[j], t1[j])` is bit-identical
/// to [`Rect::clip_segment`]'s result.
#[inline]
fn clip_lanes(
    p: &[f64; 4],
    q: &[[f64; CHUNK]; 4],
    n: usize,
    t0: &mut [f64; CHUNK],
    t1: &mut [f64; CHUNK],
    miss: &mut [bool; CHUNK],
) {
    for slab in 0..4 {
        let pi = p[slab];
        let qs = &q[slab];
        if pi.abs() <= f64::MIN_POSITIVE {
            #[cfg(not(feature = "explicit-simd"))]
            for j in 0..n {
                miss[j] |= qs[j] < 0.0;
            }
            #[cfg(feature = "explicit-simd")]
            lane4::or_lt_zero(miss, qs, n);
        } else if pi < 0.0 {
            #[cfg(not(feature = "explicit-simd"))]
            for j in 0..n {
                t0[j] = t0[j].max(qs[j] / pi);
            }
            #[cfg(feature = "explicit-simd")]
            lane4::fold_max_div(t0, qs, pi, n);
        } else {
            #[cfg(not(feature = "explicit-simd"))]
            for j in 0..n {
                t1[j] = t1[j].min(qs[j] / pi);
            }
            #[cfg(feature = "explicit-simd")]
            lane4::fold_min_div(t1, qs, pi, n);
        }
    }
}

/// Scalar tail of the blocking verdict for one surviving lane — the exact
/// operation sequence of [`Rect::blocks`] after its clip: graze rejection,
/// then the strict-interior midpoint test.
#[inline]
#[allow(clippy::too_many_arguments)] // unpacked lanes; bundling would re-create the AoS struct this module removes
fn finish_lane(
    s: &Segment,
    seg_len: f64,
    t0: f64,
    t1: f64,
    miss: bool,
    minx: f64,
    miny: f64,
    maxx: f64,
    maxy: f64,
) -> bool {
    if miss || t0 > t1 {
        return false;
    }
    if (t1 - t0) * seg_len <= 2.0 * EPS {
        return false; // grazes a corner or a single wall point
    }
    let mid = s.a.lerp(s.b, (t0 + t1) / 2.0);
    mid.x > minx + EPS && mid.x < maxx - EPS && mid.y > miny + EPS && mid.y < maxy - EPS
}

/// Classifies one sight segment against the rects selected by `ids`,
/// appending one verdict per id to `out` (cleared first). Verdict `j` is
/// bit-identical to `lanes.rect(ids[j] as usize).blocks(s)`.
pub fn blocks_each(s: &Segment, lanes: &RectLanes, ids: &[u32], out: &mut Vec<bool>) {
    out.clear();
    out.reserve(ids.len());
    let seg_len = s.len();
    let d = s.b - s.a;
    let p = [-d.x, d.x, -d.y, d.y];
    let (ax, ay) = (s.a.x, s.a.y);
    let mut q = [[0.0_f64; CHUNK]; 4];
    for chunk in ids.chunks(CHUNK) {
        let n = chunk.len();
        for (j, &id) in chunk.iter().enumerate() {
            let k = id as usize;
            q[0][j] = ax - lanes.minx[k];
            q[1][j] = lanes.maxx[k] - ax;
            q[2][j] = ay - lanes.miny[k];
            q[3][j] = lanes.maxy[k] - ay;
        }
        let mut t0 = [0.0_f64; CHUNK];
        let mut t1 = [1.0_f64; CHUNK];
        let mut miss = [false; CHUNK];
        clip_lanes(&p, &q, n, &mut t0, &mut t1, &mut miss);
        for (j, &id) in chunk.iter().enumerate() {
            let k = id as usize;
            out.push(finish_lane(
                s,
                seg_len,
                t0[j],
                t1[j],
                miss[j],
                lanes.minx[k],
                lanes.miny[k],
                lanes.maxx[k],
                lanes.maxy[k],
            ));
        }
    }
}

/// True when any rect selected by `ids` blocks the sight segment —
/// the batched form of `ids.iter().any(|id| rect.blocks(s))`. Small id sets
/// (sparse grid cells) take a per-rect scalar early-exit path; larger sets
/// run the chunked lane kernel with chunk-level early exit.
pub fn blocks_any(s: &Segment, lanes: &RectLanes, ids: &[u32]) -> bool {
    if ids.len() <= SMALL_BATCH {
        let probe = SegProbe::new(s);
        return ids.iter().any(|&id| probe.blocks(lanes, id as usize));
    }
    let seg_len = s.len();
    let d = s.b - s.a;
    let p = [-d.x, d.x, -d.y, d.y];
    let (ax, ay) = (s.a.x, s.a.y);
    let mut q = [[0.0_f64; CHUNK]; 4];
    for chunk in ids.chunks(CHUNK) {
        let n = chunk.len();
        for (j, &id) in chunk.iter().enumerate() {
            let k = id as usize;
            q[0][j] = ax - lanes.minx[k];
            q[1][j] = lanes.maxx[k] - ax;
            q[2][j] = ay - lanes.miny[k];
            q[3][j] = lanes.maxy[k] - ay;
        }
        let mut t0 = [0.0_f64; CHUNK];
        let mut t1 = [1.0_f64; CHUNK];
        let mut miss = [false; CHUNK];
        clip_lanes(&p, &q, n, &mut t0, &mut t1, &mut miss);
        for (j, &id) in chunk.iter().enumerate() {
            let k = id as usize;
            if finish_lane(
                s,
                seg_len,
                t0[j],
                t1[j],
                miss[j],
                lanes.minx[k],
                lanes.miny[k],
                lanes.maxx[k],
                lanes.maxy[k],
            ) {
                return true;
            }
        }
    }
    false
}

/// Fan-batched form of the visible-region midpoint classification: for each
/// `m` in `mids`, verdict `j` equals
/// `r.blocks(&Segment::new(origin, mids[j]))` — one obstacle against N
/// sight segments sharing an origin. Here the slab offset vector `q` is the
/// shared scalar (it depends only on `origin` and `r`) and the direction
/// vector varies per lane, so the fold keeps its per-lane branches but
/// hoists all rect loads and offset arithmetic out of the loop.
///
/// Under the `sanitize-invariants` runtime switch this takes the literal
/// scalar path (constructing each sight segment) so the constructor audits
/// fire exactly as in unbatched code.
pub fn blocks_fan(r: &Rect, origin: Point, mids: &[Point], out: &mut Vec<bool>) {
    out.clear();
    out.reserve(mids.len());
    if crate::sanitize::enabled() {
        for m in mids {
            out.push(r.blocks(&Segment::new(origin, *m)));
        }
        return;
    }
    let q = [
        origin.x - r.min_x,
        r.max_x - origin.x,
        origin.y - r.min_y,
        r.max_y - origin.y,
    ];
    for m in mids {
        let d = *m - origin;
        let p = [-d.x, d.x, -d.y, d.y];
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;
        let mut hit = true;
        for i in 0..4 {
            if p[i].abs() <= f64::MIN_POSITIVE {
                if q[i] < 0.0 {
                    hit = false;
                    break;
                }
            } else {
                let rr = q[i] / p[i];
                if p[i] < 0.0 {
                    if rr > t1 {
                        hit = false;
                        break;
                    }
                    t0 = t0.max(rr);
                } else {
                    if rr < t0 {
                        hit = false;
                        break;
                    }
                    t1 = t1.min(rr);
                }
            }
        }
        if !hit || t0 > t1 {
            out.push(false);
            continue;
        }
        let seg_len = origin.dist(*m);
        if (t1 - t0) * seg_len <= 2.0 * EPS {
            out.push(false);
            continue;
        }
        let mid = origin.lerp(*m, (t0 + t1) / 2.0);
        out.push(r.strictly_contains(mid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn scalar_each(s: &Segment, lanes: &RectLanes, ids: &[u32]) -> Vec<bool> {
        ids.iter()
            .map(|&id| lanes.rect(id as usize).blocks(s))
            .collect()
    }

    #[test]
    fn lanes_round_trip() {
        let rects = [Rect::new(1.0, 2.0, 3.0, 4.0), Rect::new(0.0, 0.0, 9.0, 5.0)];
        let lanes = RectLanes::from_rects(&rects);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes.rect(0), rects[0]);
        assert_eq!(lanes.rect(1), rects[1]);
    }

    #[test]
    fn batch_matches_scalar_on_curated_cases() {
        // crossing, grazing, sliding, disjoint, degenerate, axis-parallel
        let rects = [
            Rect::new(2.0, 2.0, 6.0, 5.0),
            Rect::new(0.0, 5.0, 10.0, 8.0),
            Rect::new(40.0, -10.0, 60.0, 10.0),
            Rect::new(7.0, 7.0, 7.0, 7.0), // zero-area
        ];
        let lanes = RectLanes::from_rects(&rects);
        let ids: Vec<u32> = (0..rects.len() as u32).collect();
        let segs = [
            seg(0.0, 3.0, 10.0, 3.0),
            seg(0.0, 5.0, 10.0, 5.0),      // slide along a wall
            seg(0.0, 3.0, 4.0, 7.0),       // corner graze
            seg(2.0, 3.0, 0.0, 3.0),       // endpoint on a wall, going away
            seg(5.0, 5.0, 5.0, 5.0),       // degenerate sight line
            seg(3.0, 0.0, 3.0, 100.0),     // vertical (parallel slabs active)
            seg(0.0, 120.0, 100.0, 120.0), // fully outside
        ];
        let mut out = Vec::new();
        for s in &segs {
            blocks_each(s, &lanes, &ids, &mut out);
            assert_eq!(out, scalar_each(s, &lanes, &ids), "segment {s:?}");
            assert_eq!(
                blocks_any(s, &lanes, &ids),
                out.iter().any(|&b| b),
                "any vs each disagree for {s:?}"
            );
        }
    }

    #[test]
    fn fan_matches_scalar_blocks() {
        let r = Rect::new(45.0, 40.0, 55.0, 60.0);
        let vp = Point::new(50.0, 100.0);
        let q = seg(0.0, 0.0, 100.0, 0.0);
        let mids: Vec<Point> = (0..=50).map(|i| q.at(2.0 * i as f64)).collect();
        let mut out = Vec::new();
        blocks_fan(&r, vp, &mids, &mut out);
        for (j, m) in mids.iter().enumerate() {
            assert_eq!(
                out[j],
                r.blocks(&Segment::new(vp, *m)),
                "midpoint {j} at {m:?}"
            );
        }
    }

    proptest! {
        /// Batched verdicts are identical to per-rect scalar verdicts on
        /// randomized rect sets and segments, including axis-aligned and
        /// near-degenerate geometry.
        #[test]
        fn prop_batch_bit_identical(
            rect_seeds in prop::collection::vec((0.0_f64..900.0, 0.0_f64..900.0, 0.0_f64..80.0, 0.0_f64..80.0), 1..40),
            ax in 0.0_f64..1000.0,
            ay in 0.0_f64..1000.0,
            bx in 0.0_f64..1000.0,
            by in 0.0_f64..1000.0,
            axis_snap in 0u8..4,
        ) {
            let rects: Vec<Rect> = rect_seeds
                .iter()
                .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h))
                .collect();
            let lanes = RectLanes::from_rects(&rects);
            let ids: Vec<u32> = (0..rects.len() as u32).collect();
            // exercise the parallel-slab lanes too
            let (bx, by) = match axis_snap {
                1 => (ax, by),      // vertical
                2 => (bx, ay),      // horizontal
                3 => (ax, ay),      // degenerate
                _ => (bx, by),
            };
            let s = seg(ax, ay, bx, by);
            let mut out = Vec::new();
            blocks_each(&s, &lanes, &ids, &mut out);
            prop_assert_eq!(&out, &scalar_each(&s, &lanes, &ids));
            prop_assert_eq!(blocks_any(&s, &lanes, &ids), out.iter().any(|&b| b));
        }

        /// Fan-batched midpoint classification is identical to scalar
        /// per-midpoint [`Rect::blocks`] calls.
        #[test]
        fn prop_fan_bit_identical(
            rx in 0.0_f64..900.0,
            ry in 0.0_f64..900.0,
            rw in 0.0_f64..100.0,
            rh in 0.0_f64..100.0,
            ox in 0.0_f64..1000.0,
            oy in 0.0_f64..1000.0,
            mids_raw in prop::collection::vec((0.0_f64..1000.0, 0.0_f64..1000.0), 1..40),
        ) {
            let r = Rect::new(rx, ry, rx + rw, ry + rh);
            let origin = Point::new(ox, oy);
            let mids: Vec<Point> = mids_raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut out = Vec::new();
            blocks_fan(&r, origin, &mids, &mut out);
            let scalar: Vec<bool> = mids
                .iter()
                .map(|m| r.blocks(&Segment::new(origin, *m)))
                .collect();
            prop_assert_eq!(out, scalar);
        }
    }
}
