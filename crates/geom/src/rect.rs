//! Axis-aligned rectangles: obstacles, bounding boxes and R-tree MBRs.

use crate::approx::EPS;
use crate::point::Point;
use crate::segment::Segment;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// Doubles as an obstacle (paper footnote 1: obstacles are rectangles) and as
/// an R-tree minimum bounding rectangle. A point MBR is a zero-area `Rect`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub min_x: f64,
    /// Bottom edge.
    pub min_y: f64,
    /// Right edge.
    pub max_x: f64,
    /// Top edge.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle, normalizing the corner order.
    ///
    /// Sanitized builds audit the coordinates (no NaN/∞/`-0.0` — see
    /// [`crate::sanitize`]): with NaN in play `min`/`max` silently pick the
    /// non-NaN side and the "normalized corner order" post-condition melts.
    #[inline]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        crate::sanitize::audit_coord("Rect::new x0", x0);
        crate::sanitize::audit_coord("Rect::new y0", y0);
        crate::sanitize::audit_coord("Rect::new x1", x1);
        crate::sanitize::audit_coord("Rect::new y1", y1);
        Rect {
            min_x: x0.min(x1),
            min_y: y0.min(y1),
            max_x: x0.max(x1),
            max_y: y0.max(y1),
        }
    }

    /// The degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Smallest rectangle containing both endpoints of a segment.
    #[inline]
    pub fn from_segment(s: &Segment) -> Self {
        Rect::new(s.a.x, s.a.y, s.b.x, s.b.y)
    }

    /// Exact-identity hash key (the corner coordinates' bit patterns) for
    /// deduplicating rectangles loaded from an R-tree — the shared key of
    /// every "already loaded" set (session streams, joins, RNN).
    #[inline]
    pub fn bit_key(&self) -> [u64; 4] {
        [
            self.min_x.to_bits(),
            self.min_y.to_bits(),
            self.max_x.to_bits(),
            self.max_y.to_bits(),
        ]
    }

    /// Extent along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Extent along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Rectangle area (`width × height`).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter; the "margin" used by the R*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Corner points in counter-clockwise order starting at `(min_x, min_y)`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// Boundary edges in counter-clockwise order.
    #[inline]
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Closed containment (boundary included).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Open-interior containment with [`EPS`] slack: boundary points are
    /// *not* inside. This is the predicate that decides blocking.
    #[inline]
    pub fn strictly_contains(&self, p: Point) -> bool {
        p.x > self.min_x + EPS
            && p.x < self.max_x - EPS
            && p.y > self.min_y + EPS
            && p.y < self.max_y - EPS
    }

    /// Closed rectangle–rectangle overlap test.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Open-interior overlap test (shared edges/corners do not count).
    #[inline]
    pub fn interiors_intersect(&self, other: &Rect) -> bool {
        self.min_x + EPS < other.max_x
            && other.min_x + EPS < self.max_x
            && self.min_y + EPS < other.max_y
            && other.min_y + EPS < self.max_y
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Area of the intersection (0 when disjoint).
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max_x.min(other.max_x) - self.min_x.max(other.min_x)).max(0.0);
        let h = (self.max_y.min(other.max_y) - self.min_y.max(other.min_y)).max(0.0);
        w * h
    }

    /// `mindist(p, R)` — the classic R-tree lower bound: 0 if `p` is inside.
    #[inline]
    pub fn mindist_point(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// `mindist(q, R)` for a query segment: 0 when the segment touches the
    /// rectangle, otherwise the smallest distance between the segment and
    /// the rectangle boundary.
    pub fn mindist_segment(&self, s: &Segment) -> f64 {
        if self.contains(s.a) || self.contains(s.b) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for e in self.edges() {
            best = best.min(e.dist_to_segment(s));
            if best == 0.0 {
                return 0.0;
            }
        }
        best
    }

    /// Minimum distance between two rectangles (0 when overlapping).
    #[inline]
    pub fn mindist_rect(&self, other: &Rect) -> f64 {
        let dx = (self.min_x - other.max_x)
            .max(0.0)
            .max(other.min_x - self.max_x);
        let dy = (self.min_y - other.max_y)
            .max(0.0)
            .max(other.min_y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Liang–Barsky clip: the parameter range `[t0, t1] ⊆ [0, 1]` of `s`
    /// (normalized parameter) that lies inside the **closed** rectangle, or
    /// `None` when the segment misses the rectangle entirely.
    pub fn clip_segment(&self, s: &Segment) -> Option<(f64, f64)> {
        let d = s.b - s.a;
        let p = [-d.x, d.x, -d.y, d.y];
        let q = [
            s.a.x - self.min_x,
            self.max_x - s.a.x,
            s.a.y - self.min_y,
            self.max_y - s.a.y,
        ];
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;
        for i in 0..4 {
            if p[i].abs() <= f64::MIN_POSITIVE {
                if q[i] < 0.0 {
                    return None; // parallel and outside this slab
                }
            } else {
                let r = q[i] / p[i];
                if p[i] < 0.0 {
                    if r > t1 {
                        return None;
                    }
                    t0 = t0.max(r);
                } else {
                    if r < t0 {
                        return None;
                    }
                    t1 = t1.min(r);
                }
            }
        }
        (t0 <= t1).then_some((t0, t1))
    }

    /// **The obstacle predicate**: does segment `s` pass through this
    /// rectangle's open interior?
    ///
    /// Touching the boundary — sliding along an edge, grazing a corner, or an
    /// endpoint on a wall — does *not* block (paper Definition 1 and the
    /// convention that data points may lie on obstacle boundaries).
    ///
    /// Works by clipping `s` to the closed rectangle: because the rectangle
    /// is convex, the clipped portion is a single sub-segment, and it enters
    /// the open interior iff its midpoint is strictly inside.
    pub fn blocks(&self, s: &Segment) -> bool {
        match self.clip_segment(s) {
            None => false,
            Some((t0, t1)) => {
                let seg_len = s.len();
                if (t1 - t0) * seg_len <= 2.0 * EPS {
                    return false; // grazes a corner or a single wall point
                }
                let mid = s.a.lerp(s.b, (t0 + t1) / 2.0);
                self.strictly_contains(mid)
            }
        }
    }

    /// True when every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.min_x.is_finite()
            && self.min_y.is_finite()
            && self.max_x.is_finite()
            && self.max_y.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    const R: Rect = Rect {
        min_x: 2.0,
        min_y: 2.0,
        max_x: 6.0,
        max_y: 5.0,
    };

    #[test]
    fn basic_measures() {
        assert_eq!(R.width(), 4.0);
        assert_eq!(R.height(), 3.0);
        assert_eq!(R.area(), 12.0);
        assert_eq!(R.margin(), 7.0);
        assert_eq!(R.center(), Point::new(4.0, 3.5));
    }

    #[test]
    fn containment_closed_vs_open() {
        assert!(R.contains(Point::new(2.0, 3.0)));
        assert!(!R.strictly_contains(Point::new(2.0, 3.0)));
        assert!(R.strictly_contains(Point::new(3.0, 3.0)));
        assert!(!R.contains(Point::new(1.0, 3.0)));
    }

    #[test]
    fn union_and_intersection_area() {
        let other = Rect::new(5.0, 4.0, 8.0, 9.0);
        let u = R.union(&other);
        assert_eq!(u, Rect::new(2.0, 2.0, 8.0, 9.0));
        assert_eq!(R.intersection_area(&other), 1.0);
        assert_eq!(R.intersection_area(&Rect::new(10.0, 10.0, 11.0, 11.0)), 0.0);
    }

    #[test]
    fn mindist_point_inside_is_zero() {
        assert_eq!(R.mindist_point(Point::new(3.0, 3.0)), 0.0);
        assert_eq!(R.mindist_point(Point::new(2.0, 2.0)), 0.0);
        assert_eq!(R.mindist_point(Point::new(9.0, 9.0)), 5.0); // (3,4,5)
        assert_eq!(R.mindist_point(Point::new(0.0, 3.0)), 2.0);
    }

    #[test]
    fn mindist_segment_cases() {
        // crossing segment
        assert_eq!(R.mindist_segment(&seg(0.0, 3.0, 10.0, 3.0)), 0.0);
        // endpoint inside
        assert_eq!(R.mindist_segment(&seg(3.0, 3.0, 20.0, 20.0)), 0.0);
        // parallel above
        assert_eq!(R.mindist_segment(&seg(2.0, 7.0, 6.0, 7.0)), 2.0);
        // diagonal away from the corner
        let d = R.mindist_segment(&seg(9.0, 9.0, 9.0, 20.0));
        assert_eq!(d, 5.0);
    }

    #[test]
    fn clip_segment_ranges() {
        let (t0, t1) = R.clip_segment(&seg(0.0, 3.0, 10.0, 3.0)).unwrap();
        assert!((t0 - 0.2).abs() < 1e-12 && (t1 - 0.6).abs() < 1e-12);
        assert!(R.clip_segment(&seg(0.0, 10.0, 10.0, 10.0)).is_none());
    }

    #[test]
    fn blocks_crossing_segment() {
        assert!(R.blocks(&seg(0.0, 3.0, 10.0, 3.0)));
        assert!(R.blocks(&seg(3.0, 0.0, 5.0, 10.0)));
    }

    #[test]
    fn touching_does_not_block() {
        // sliding along the top edge
        assert!(!R.blocks(&seg(0.0, 5.0, 10.0, 5.0)));
        // grazing the (2,5) corner tangentially (line y = x + 3 stays outside)
        assert!(!R.blocks(&seg(0.0, 3.0, 4.0, 7.0)));
        // a chord from that same corner to an edge point DOES cross
        assert!(R.blocks(&seg(0.0, 7.0, 7.0, 0.0)));
        // endpoint on a wall, going away
        assert!(!R.blocks(&seg(2.0, 3.0, 0.0, 3.0)));
        // completely disjoint
        assert!(!R.blocks(&seg(0.0, 8.0, 10.0, 8.0)));
    }

    #[test]
    fn blocks_segment_with_endpoint_on_boundary_entering() {
        // starts on the left wall, ends deep inside: passes through interior
        assert!(R.blocks(&seg(2.0, 3.0, 5.0, 3.0)));
        // both endpoints on opposite walls straight through
        assert!(R.blocks(&seg(2.0, 3.5, 6.0, 3.5)));
    }

    #[test]
    fn blocks_chord_between_boundary_points() {
        // chord between two boundary points passing through the interior
        assert!(R.blocks(&seg(2.0, 2.0, 6.0, 5.0)));
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn sanitized_build_rejects_bad_coordinates() {
        let _guard = crate::sanitize::test_guard();
        assert!(std::panic::catch_unwind(|| Rect::new(f64::NAN, 0.0, 1.0, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Rect::new(0.0, 0.0, f64::INFINITY, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Rect::new(0.0, -0.0, 1.0, 1.0)).is_err());
        let _ = Rect::new(0.0, 0.0, 1.0, 1.0);
    }
}
