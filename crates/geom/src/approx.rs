//! Floating-point comparison helpers and a total-order wrapper for `f64`.
//!
//! The search space is `[0, 10000]²` (paper §5.1), so an absolute epsilon is
//! appropriate: coordinates and distances live in a fixed, known range.

/// Absolute tolerance for geometric predicates over the `[0, 10000]²` space.
///
/// Distances in the workspace are `O(10^4)` and `f64` carries ~15-16
/// significant digits, so `1e-7` leaves ~7 digits of slack above the rounding
/// noise of chained distance computations while remaining far below any
/// meaningful geometric feature size in the workloads.
pub const EPS: f64 = 1e-7;

/// `a == b` within [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `a <= b` within [`EPS`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b` within [`EPS`].
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// A totally ordered `f64` for use as a priority-queue key.
///
/// NaN is banned by construction: all keys in this codebase are distances,
/// which are finite or `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a key, panicking on NaN (a NaN distance is always a bug).
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN ordering key");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + EPS * 10.0));
    }

    #[test]
    fn approx_le_ge_are_slack() {
        assert!(approx_le(1.0 + EPS / 2.0, 1.0));
        assert!(approx_ge(1.0 - EPS / 2.0, 1.0));
        assert!(!approx_le(1.1, 1.0));
        assert!(!approx_ge(0.9, 1.0));
    }

    #[test]
    fn ordf64_orders_infinity_last() {
        let mut v = [
            OrdF64::new(f64::INFINITY),
            OrdF64::new(1.0),
            OrdF64::new(-3.0),
            OrdF64::new(0.0),
        ];
        v.sort();
        assert_eq!(v[0].0, -3.0);
        assert_eq!(v[3].0, f64::INFINITY);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn ordf64_rejects_nan_in_debug() {
        let _ = OrdF64::new(f64::NAN);
    }
}
