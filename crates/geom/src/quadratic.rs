//! Quadratic root finding for the split-point equation (paper Theorem 1).
//!
//! The split-point computation squares the equation
//! `dist(u, q(t)) − dist(v, q(t)) = d` twice, producing a quadratic whose
//! real roots are *candidates* for split points. Squaring introduces spurious
//! roots, so callers must verify candidates against the original equation —
//! the solver here only promises to return every real root of the quadratic
//! itself, in ascending order.

/// Solves `a·x² + b·x + c = 0` over the reals.
///
/// Returns the roots in ascending order. Degenerate cases:
/// * `a ≈ 0, b ≈ 0`: no roots (the equation is constant; a constant zero
///   equation has no *isolated* roots, which is what split-point
///   computation needs).
/// * `a ≈ 0`: the single linear root.
/// * double root: returned once.
///
/// Uses the numerically stable form `q = -(b + sign(b)·√disc)/2`,
/// `x₁ = q/a`, `x₂ = c/q` to avoid catastrophic cancellation.
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Vec<f64> {
    // The coefficients of the split quadratic scale like (coordinate)², so
    // relative degeneracy thresholds are appropriate.
    let scale = a.abs().max(b.abs()).max(c.abs());
    if scale == 0.0 {
        return Vec::new();
    }
    let tiny = scale * 1e-12;
    if a.abs() <= tiny {
        if b.abs() <= tiny {
            return Vec::new();
        }
        return vec![-c / b];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    let sq = disc.sqrt();
    if sq == 0.0 {
        return vec![-b / (2.0 * a)];
    }
    let q = -0.5 * (b + b.signum() * sq);
    let (r1, r2) = (q / a, c / q);
    if r1 <= r2 {
        vec![r1, r2]
    } else {
        vec![r2, r1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roots(a: f64, b: f64, c: f64, expected: &[f64]) {
        let roots = solve_quadratic(a, b, c);
        assert_eq!(roots.len(), expected.len(), "root count for {a}x²+{b}x+{c}");
        for (r, e) in roots.iter().zip(expected) {
            assert!((r - e).abs() < 1e-9, "root {r} vs expected {e}");
        }
    }

    #[test]
    fn two_distinct_roots() {
        assert_roots(1.0, -3.0, 2.0, &[1.0, 2.0]);
        assert_roots(2.0, 0.0, -8.0, &[-2.0, 2.0]);
    }

    #[test]
    fn double_and_no_roots() {
        assert_roots(1.0, -2.0, 1.0, &[1.0]);
        assert_roots(1.0, 0.0, 1.0, &[]);
    }

    #[test]
    fn linear_fallback() {
        assert_roots(0.0, 2.0, -6.0, &[3.0]);
        assert_roots(0.0, 0.0, 5.0, &[]);
        assert_roots(0.0, 0.0, 0.0, &[]);
    }

    #[test]
    fn stable_for_small_leading_coefficient() {
        // x² term negligible relative to the rest → treated as linear
        let roots = solve_quadratic(1e-30, 1.0, -1.0);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cancellation_resistant() {
        // roots 1e-8 and 1e8: naive formula loses the small root
        let (r1, r2) = (1e-8, 1e8);
        let roots = solve_quadratic(1.0, -(r1 + r2), r1 * r2);
        assert_eq!(roots.len(), 2);
        assert!((roots[0] - r1).abs() / r1 < 1e-6);
        assert!((roots[1] - r2).abs() / r2 < 1e-6);
    }

    #[test]
    fn roots_verify_against_polynomial() {
        for &(a, b, c) in &[(3.0, -7.0, 2.0), (-1.0, 4.5, 3.25), (0.5, 0.0, -2.0)] {
            for r in solve_quadratic(a, b, c) {
                let v = a * r * r + b * r + c;
                assert!(v.abs() < 1e-9, "poly({r}) = {v}");
            }
        }
    }
}
