//! 2D points and the basic vector operations the algorithms need.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or free vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    #[cfg(not(feature = "sanitize-invariants"))]
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point from coordinates.
    ///
    /// Sanitized builds install this checked constructor instead of the
    /// `const` one: NaN, infinite, and negative-zero coordinates are
    /// rejected at build time (see [`crate::sanitize`]).
    #[cfg(feature = "sanitize-invariants")]
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        crate::sanitize::audit_coord("Point::new x", x);
        crate::sanitize::audit_coord("Point::new y", y);
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed).
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length when the point is interpreted as a vector from origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other` (both as vectors).
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Orientation of the ordered triple `(a, b, c)`:
    /// `> 0` counter-clockwise, `< 0` clockwise, `0` collinear.
    #[inline]
    pub fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b - a).cross(c - a)
    }

    /// True when every coordinate is finite (no NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

// The arithmetic operators build the struct directly rather than going
// through `Point::new`: IEEE 754 can legitimately produce `-0.0` in derived
// vectors (a zero component times a negative scalar), and the sanitized
// constructor audit targets *ingested* coordinates, not intermediate math.

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, s: f64) -> Point {
        Point {
            x: self.x * s,
            y: self.y * s,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_symmetric_and_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.dist(a), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(2.0, 4.0));
    }

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(Point::orient(a, b, Point::new(0.0, 1.0)) > 0.0);
        assert!(Point::orient(a, b, Point::new(0.0, -1.0)) < 0.0);
        assert_eq!(Point::orient(a, b, Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn sanitized_build_rejects_bad_coordinates() {
        let _guard = crate::sanitize::test_guard();
        assert!(std::panic::catch_unwind(|| Point::new(f64::NAN, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Point::new(0.0, f64::INFINITY)).is_err());
        assert!(std::panic::catch_unwind(|| Point::new(-0.0, 1.0)).is_err());
        // honest coordinates still pass
        let _ = Point::new(0.0, -17.25);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn runtime_switch_off_permits_bad_coordinates() {
        let _guard = crate::sanitize::test_guard();
        crate::sanitize::set_enabled(false);
        let p = Point::new(f64::NAN, 0.0);
        crate::sanitize::set_enabled(true);
        assert!(p.x.is_nan());
    }
}
