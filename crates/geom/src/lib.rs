//! Geometry substrate for the CONN reproduction.
//!
//! Everything here is plain 2D computational geometry in `f64`:
//!
//! * [`Point`], [`Segment`], [`Rect`] — primitives with the distance metrics
//!   the query algorithms need (`mindist` between every pair of shapes).
//! * [`Interval`] / [`IntervalSet`] — exact interval algebra over the
//!   arclength parameter of a query segment; used for visible regions,
//!   control-point lists and result lists.
//! * [`quadratic`] — a verified quadratic solver used by the split-point
//!   computation (Theorem 1 of the paper).
//!
//! The one domain-specific predicate is [`Rect::blocks`]: a segment is
//! blocked by an obstacle iff it passes through the obstacle's *open
//! interior*. Touching the boundary (sliding along a wall, grazing a corner)
//! does not block, which matches the paper's visibility definition
//! (Definition 1) and its convention that data points may lie on obstacle
//! boundaries but not inside them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod batch;
pub mod interval;
pub mod point;
pub mod quadratic;
pub mod rect;
pub mod sanitize;
pub mod segment;

pub use approx::{approx_eq, approx_ge, approx_le, OrdF64, EPS};
pub use batch::{RectLanes, SegProbe};
pub use interval::{Interval, IntervalSet};
pub use point::Point;
pub use quadratic::solve_quadratic;
pub use rect::Rect;
pub use segment::Segment;
