//! Interval algebra over the arclength parameter of a query segment.
//!
//! Visible regions (Def. 2), control-point lists (Def. 9) and result lists
//! (Def. 6) are all partitions of — or subsets of — `q`'s parameter range
//! `[0, len]`. [`IntervalSet`] keeps a sorted list of disjoint intervals and
//! provides the union/subtract/intersect operations the CPLC and RLU
//! algorithms are built from.

use crate::approx::EPS;

/// A closed interval `[lo, hi]` of the segment parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound of the parameter range.
    pub lo: f64,
    /// Upper bound of the parameter range.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval; swaps the bounds if given in reverse.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Interval length `hi - lo`.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// Intervals shorter than [`EPS`] carry no query answer and are dropped
    /// by set normalization.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= EPS
    }

    /// True when `t` lies inside the interval (with [`EPS`] slack).
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.lo - EPS && t <= self.hi + EPS
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Intersection with `other`, or `None` when (essentially) disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (hi - lo > EPS).then_some(Interval { lo, hi })
    }

    /// Set difference `self − other` as 0, 1, or 2 pieces.
    pub fn subtract(&self, other: &Interval) -> Vec<Interval> {
        let mut out = Vec::with_capacity(2);
        let left = Interval::new(self.lo, self.hi.min(other.lo));
        if !left.is_empty() && left.lo < other.lo {
            out.push(left);
        }
        let right = Interval::new(self.lo.max(other.hi), self.hi);
        if !right.is_empty() && right.hi > other.hi {
            out.push(right);
        }
        // `other` fully covers `self` → empty; disjoint → `self` survives via
        // one of the two pieces above (the other is empty).
        if out.is_empty() && self.intersect(other).is_none() && !self.is_empty() {
            out.push(*self);
        }
        out
    }
}

/// A sorted list of disjoint, non-empty intervals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        IntervalSet { ivs: Vec::new() }
    }

    /// A set holding a single interval (or empty if the interval is empty).
    pub fn single(iv: Interval) -> Self {
        let mut s = IntervalSet::empty();
        if !iv.is_empty() {
            s.ivs.push(iv);
        }
        s
    }

    /// Builds a set from arbitrary intervals, normalizing as needed.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> Self {
        ivs.retain(|iv| !iv.is_empty());
        ivs.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if iv.lo <= last.hi + EPS => last.hi = last.hi.max(iv.hi),
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// True when the set holds no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// The intervals, sorted and disjoint.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Sum of the interval lengths.
    pub fn total_len(&self) -> f64 {
        self.ivs.iter().map(Interval::len).sum()
    }

    /// Membership test.
    pub fn contains(&self, t: f64) -> bool {
        // Sets are tiny (a handful of shadow gaps); linear scan beats a
        // binary search here.
        self.ivs.iter().any(|iv| iv.contains(t))
    }

    /// Union with a single interval.
    pub fn union_interval(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.ivs);
        all.push(iv);
        *self = IntervalSet::from_intervals(all);
    }

    /// Removes a single interval from the set.
    pub fn subtract_interval(&mut self, iv: &Interval) {
        if iv.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        for cur in &self.ivs {
            out.extend(cur.subtract(iv));
        }
        self.ivs = out;
        self.normalize();
    }

    /// `self − other` (element-wise subtraction of every interval).
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut acc = self.clone();
        for iv in &other.ivs {
            acc.subtract_interval(iv);
        }
        acc
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            if let Some(iv) = self.ivs[i].intersect(&other.ivs[j]) {
                out.push(iv);
            }
            if self.ivs[i].hi < other.ivs[j].hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// Intersection with a single interval.
    pub fn intersect_interval(&self, iv: &Interval) -> IntervalSet {
        IntervalSet {
            ivs: self.ivs.iter().filter_map(|c| c.intersect(iv)).collect(),
        }
    }

    /// Complement within `[0, len]`.
    pub fn complement(&self, len: f64) -> IntervalSet {
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        let mut cursor = 0.0;
        for iv in &self.ivs {
            let gap = Interval::new(cursor, iv.lo.min(len));
            if !gap.is_empty() {
                out.push(gap);
            }
            cursor = cursor.max(iv.hi);
        }
        let tail = Interval::new(cursor.min(len), len);
        if !tail.is_empty() {
            out.push(tail);
        }
        IntervalSet { ivs: out }
    }

    fn normalize(&mut self) {
        *self = IntervalSet::from_intervals(std::mem::take(&mut self.ivs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn interval_basics() {
        let a = iv(2.0, 5.0);
        assert_eq!(a.len(), 3.0);
        assert!(a.contains(2.0) && a.contains(5.0) && a.contains(3.3));
        assert!(!a.contains(5.5));
        assert_eq!(iv(5.0, 2.0), a, "reversed bounds normalize");
    }

    #[test]
    fn interval_intersection() {
        assert_eq!(iv(0.0, 4.0).intersect(&iv(2.0, 6.0)), Some(iv(2.0, 4.0)));
        assert_eq!(iv(0.0, 2.0).intersect(&iv(3.0, 4.0)), None);
        // touching only: empty
        assert_eq!(iv(0.0, 2.0).intersect(&iv(2.0, 4.0)), None);
    }

    #[test]
    fn interval_subtract_middle() {
        let pieces = iv(0.0, 10.0).subtract(&iv(3.0, 4.0));
        assert_eq!(pieces, vec![iv(0.0, 3.0), iv(4.0, 10.0)]);
    }

    #[test]
    fn interval_subtract_edges_and_cover() {
        assert_eq!(iv(0.0, 10.0).subtract(&iv(0.0, 4.0)), vec![iv(4.0, 10.0)]);
        assert_eq!(iv(0.0, 10.0).subtract(&iv(6.0, 10.0)), vec![iv(0.0, 6.0)]);
        assert!(iv(2.0, 4.0).subtract(&iv(0.0, 10.0)).is_empty());
        assert_eq!(iv(0.0, 1.0).subtract(&iv(5.0, 6.0)), vec![iv(0.0, 1.0)]);
    }

    #[test]
    fn set_from_intervals_merges_overlaps() {
        let s = IntervalSet::from_intervals(vec![iv(5.0, 7.0), iv(0.0, 2.0), iv(1.0, 3.0)]);
        assert_eq!(s.intervals(), &[iv(0.0, 3.0), iv(5.0, 7.0)]);
        assert_eq!(s.total_len(), 5.0);
    }

    #[test]
    fn set_subtract_and_complement() {
        let mut s = IntervalSet::single(iv(0.0, 10.0));
        s.subtract_interval(&iv(2.0, 3.0));
        s.subtract_interval(&iv(5.0, 6.0));
        assert_eq!(s.intervals(), &[iv(0.0, 2.0), iv(3.0, 5.0), iv(6.0, 10.0)]);
        let c = s.complement(10.0);
        assert_eq!(c.intervals(), &[iv(2.0, 3.0), iv(5.0, 6.0)]);
        // complement twice = original
        assert_eq!(c.complement(10.0), s);
    }

    #[test]
    fn set_intersection() {
        let a = IntervalSet::from_intervals(vec![iv(0.0, 4.0), iv(6.0, 10.0)]);
        let b = IntervalSet::from_intervals(vec![iv(3.0, 7.0), iv(9.0, 12.0)]);
        let i = a.intersect(&b);
        assert_eq!(i.intervals(), &[iv(3.0, 4.0), iv(6.0, 7.0), iv(9.0, 10.0)]);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = IntervalSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.total_len(), 0.0);
        assert_eq!(e.complement(5.0).intervals(), &[iv(0.0, 5.0)]);
        assert!(e.intersect(&IntervalSet::single(iv(0.0, 1.0))).is_empty());
    }
}
