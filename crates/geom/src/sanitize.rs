//! Runtime invariant sanitizer — the switchboard.
//!
//! The `sanitize-invariants` cargo feature compiles post-condition audits
//! into the geometry/index/graph/query crates: checked constructors here,
//! R\*-tree structural audits in `conn-index`, adjacency-symmetry and
//! label-admissibility audits in `conn-vgraph`, and cover checks on every
//! CONN/COkNN answer in `conn-core`. This module owns the process-wide
//! switch those audits consult, so a sanitized build can still measure its
//! own overhead (`repro --sanitize` runs the same binary with audits off,
//! then on).
//!
//! Without the feature, [`enabled`] is a `const false` and every audit call
//! site compiles away; [`set_enabled`] is a no-op so callers need no cfg.
//!
//! An audit failure is a **bug in this codebase**, never user error, so
//! violations panic (via [`violation`]) with a `sanitize-invariants:` prefix
//! rather than returning a `Result` the query path would have to thread.

#[cfg(feature = "sanitize-invariants")]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Audits default to ON in a sanitized build; `repro --sanitize` flips
    /// the switch off for its baseline timing pass.
    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// True when audits should run.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns the audits on or off at runtime (sanitized builds only).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

#[cfg(feature = "sanitize-invariants")]
pub use imp::{enabled, set_enabled};

/// True when audits should run — always `false` without the
/// `sanitize-invariants` feature, so audit branches compile away.
#[cfg(not(feature = "sanitize-invariants"))]
#[inline(always)]
pub const fn enabled() -> bool {
    false
}

/// No-op without the `sanitize-invariants` feature (callers need no cfg).
#[cfg(not(feature = "sanitize-invariants"))]
pub fn set_enabled(_on: bool) {}

/// Whether the sanitizer was compiled into this build at all (the runtime
/// switch only matters when this is true).
pub const fn compiled() -> bool {
    cfg!(feature = "sanitize-invariants")
}

/// Reports an invariant violation. Sanitizer audits detect internal bugs,
/// not user error, so this panics loudly instead of returning a `Result`.
// lint:allow(no-panic-in-query-path): the sanitizer's entire job is to
// panic on internal invariant violations; it is compiled out of release
// servings builds.
#[cold]
#[inline(never)]
pub fn violation(context: &str, detail: &str) -> ! {
    panic!("sanitize-invariants: {context}: {detail}");
}

/// Audits one coordinate: finite and not negative zero. `-0.0` compares
/// equal to `0.0` but has a different bit pattern, which breaks the
/// bit-identity contracts (`to_bits` comparisons, `Rect::bit_key` dedup)
/// the equivalence suites and obstacle-dedup maps rely on.
#[inline]
pub fn audit_coord(context: &str, v: f64) {
    if enabled() {
        if !v.is_finite() {
            violation(context, &format!("non-finite coordinate {v}"));
        }
        if v == 0.0 && v.is_sign_negative() {
            violation(context, "negative-zero coordinate");
        }
    }
}

/// Audits a distance-like value: a distance may legitimately be `+∞`
/// (unreachable) but never NaN or negative.
#[inline]
pub fn audit_distance(context: &str, d: f64) {
    if enabled() {
        if d.is_nan() {
            violation(context, "NaN distance");
        }
        if d < 0.0 {
            violation(context, &format!("negative distance {d}"));
        }
    }
}

/// Serializes tests that flip or depend on the process-global switch —
/// the test harness runs tests on parallel threads, and a test that
/// briefly disables the audits must not race one asserting they fire.
#[cfg(all(test, feature = "sanitize-invariants"))]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_reflects_the_feature() {
        assert_eq!(compiled(), cfg!(feature = "sanitize-invariants"));
    }

    #[test]
    #[cfg(not(feature = "sanitize-invariants"))]
    fn disabled_build_never_audits() {
        assert!(!enabled());
        set_enabled(true); // no-op
        assert!(!enabled());
        // audit helpers are inert
        audit_coord("test", f64::NAN);
        audit_distance("test", -1.0);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn switch_toggles() {
        let _guard = test_guard();
        assert!(enabled(), "sanitized builds default to on");
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn audit_coord_fires_on_nan_and_negative_zero() {
        let _guard = test_guard();
        assert!(std::panic::catch_unwind(|| audit_coord("t", f64::NAN)).is_err());
        assert!(std::panic::catch_unwind(|| audit_coord("t", -0.0)).is_err());
        assert!(std::panic::catch_unwind(|| audit_coord("t", f64::INFINITY)).is_err());
        audit_coord("t", 0.0);
        audit_coord("t", -17.25);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn audit_distance_fires_on_nan_and_negative() {
        let _guard = test_guard();
        assert!(std::panic::catch_unwind(|| audit_distance("t", f64::NAN)).is_err());
        assert!(std::panic::catch_unwind(|| audit_distance("t", -1e-12)).is_err());
        audit_distance("t", 0.0);
        audit_distance("t", f64::INFINITY);
    }
}
