//! Property-based tests for the geometry substrate.

use conn_geom::{Interval, IntervalSet, Point, Rect, Segment, EPS};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..10000.0f64, 0.0..10000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), 1.0..500.0f64, 1.0..500.0f64).prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

fn iv() -> impl Strategy<Value = Interval> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(a, b)| Interval::new(a, b))
}

proptest! {
    #[test]
    fn triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
    }

    #[test]
    fn segment_distance_lower_bounds_endpoint_distance(s in (pt(), pt()), p in pt()) {
        let seg = Segment::new(s.0, s.1);
        let d = seg.dist_to_point(p);
        prop_assert!(d <= p.dist(seg.a) + 1e-9);
        prop_assert!(d <= p.dist(seg.b) + 1e-9);
        // the closest point really is on the segment
        let cp = seg.at(seg.closest_param(p));
        prop_assert!((cp.dist(p) - d).abs() < 1e-9);
    }

    #[test]
    fn mindist_point_is_a_lower_bound(r in rect(), p in pt()) {
        let md = r.mindist_point(p);
        for c in r.corners() {
            prop_assert!(md <= p.dist(c) + 1e-9);
        }
        if r.contains(p) {
            prop_assert_eq!(md, 0.0);
        }
    }

    #[test]
    fn mindist_segment_is_a_lower_bound(r in rect(), s in (pt(), pt())) {
        let seg = Segment::new(s.0, s.1);
        let md = r.mindist_segment(&seg);
        // distance from the rect to any sampled point of the segment is >= md
        for i in 0..=8 {
            let t = seg.len() * (i as f64) / 8.0;
            prop_assert!(r.mindist_point(seg.at(t)) + 1e-9 >= md);
        }
    }

    #[test]
    fn blocks_agrees_with_dense_sampling(r in rect(), s in (pt(), pt())) {
        let seg = Segment::new(s.0, s.1);
        let blocked = r.blocks(&seg);
        // Sample strictly-interior hits; sampling can miss thin crossings so
        // only assert one direction: a sampled interior hit implies blocked.
        let mut sampled_inside = false;
        for i in 1..200 {
            let p = seg.a.lerp(seg.b, i as f64 / 200.0);
            if r.strictly_contains(p) {
                sampled_inside = true;
                break;
            }
        }
        if sampled_inside {
            prop_assert!(blocked);
        }
    }

    #[test]
    fn clip_segment_range_is_inside(r in rect(), s in (pt(), pt())) {
        let seg = Segment::new(s.0, s.1);
        if let Some((t0, t1)) = r.clip_segment(&seg) {
            prop_assert!(t0 >= -1e-9 && t1 <= 1.0 + 1e-9 && t0 <= t1 + 1e-9);
            let mid = seg.a.lerp(seg.b, (t0 + t1) / 2.0);
            // the clipped midpoint is inside the (slightly inflated) rect
            let inflated = Rect::new(r.min_x - 1e-6, r.min_y - 1e-6, r.max_x + 1e-6, r.max_y + 1e-6);
            prop_assert!(inflated.contains(mid));
        }
    }

    #[test]
    fn interval_subtract_preserves_length(a in iv(), b in iv()) {
        let pieces = a.subtract(&b);
        let removed = a.intersect(&b).map_or(0.0, |i| i.len());
        let left: f64 = pieces.iter().map(Interval::len).sum();
        prop_assert!((left + removed - a.len()).abs() < 10.0 * EPS);
    }

    #[test]
    fn set_complement_involution(ivs in prop::collection::vec(iv(), 0..6)) {
        let s = IntervalSet::from_intervals(ivs).intersect_interval(&Interval::new(0.0, 1000.0));
        let cc = s.complement(1000.0).complement(1000.0);
        // total length survives double complement (sets equal up to EPS merging)
        prop_assert!((cc.total_len() - s.total_len()).abs() < 1e-4);
    }

    #[test]
    fn set_ops_consistency(xs in prop::collection::vec(iv(), 0..6), ys in prop::collection::vec(iv(), 0..6)) {
        let a = IntervalSet::from_intervals(xs);
        let b = IntervalSet::from_intervals(ys);
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        // |a| = |a∩b| + |a−b|
        prop_assert!((inter.total_len() + diff.total_len() - a.total_len()).abs() < 1e-4);
        // membership agreement on probe points
        for k in 0..20 {
            let t = 1000.0 * (k as f64) / 20.0 + 13.37;
            let in_a = a.contains(t);
            let in_b = b.contains(t);
            // avoid boundary-noise: only check points clearly inside/outside
            let clearly = |s: &IntervalSet, t: f64| {
                s.intervals().iter().any(|i| t > i.lo + 1e-6 && t < i.hi - 1e-6)
            };
            if clearly(&a, t) && clearly(&b, t) {
                prop_assert!(inter.contains(t));
            }
            if clearly(&a, t) && !in_b {
                prop_assert!(diff.contains(t));
            }
            if !in_a {
                prop_assert!(!clearly(&inter, t));
            }
        }
    }

    #[test]
    fn union_contains_both(r1 in rect(), r2 in rect()) {
        let u = r1.union(&r2);
        for c in r1.corners().into_iter().chain(r2.corners()) {
            prop_assert!(u.contains(c));
        }
        prop_assert!(u.area() + 1e-9 >= r1.area().max(r2.area()));
    }
}
