//! Property-based tests for the R*-tree: structural invariants and agreement
//! with linear scans, under both incremental insertion and bulk loading.

use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inserted_tree_keeps_invariants(pts in prop::collection::vec(pt(), 1..300)) {
        let mut t: RStarTree<Point> = RStarTree::with_fanout(6, 2);
        for p in &pts {
            t.insert(*p);
        }
        prop_assert!(t.check_invariants().is_ok());
        prop_assert_eq!(t.len(), pts.len());
    }

    #[test]
    fn bulk_tree_keeps_invariants(pts in prop::collection::vec(pt(), 1..600)) {
        let t = RStarTree::bulk_load_with_fanout(pts.clone(), 10, 4);
        prop_assert!(t.check_invariants().is_ok());
        prop_assert_eq!(t.len(), pts.len());
    }

    #[test]
    fn knn_agrees_with_linear_scan(pts in prop::collection::vec(pt(), 1..200), q in pt(), k in 1usize..10) {
        let t = RStarTree::bulk_load_with_fanout(pts.clone(), 8, 3);
        let got = t.knn(q, k);
        let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        dists.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), k.min(pts.len()));
        for (i, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn segment_stream_sorted_and_complete(
        pts in prop::collection::vec(pt(), 1..200),
        a in pt(), b in pt(),
    ) {
        let t = RStarTree::bulk_load_with_fanout(pts.clone(), 8, 3);
        let q = Segment::new(a, b);
        let got: Vec<(Point, f64)> = t.nearest_iter(q).collect();
        prop_assert_eq!(got.len(), pts.len());
        for w in got.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        for (p, d) in &got {
            prop_assert!((q.dist_to_point(*p) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn range_agrees_with_filter(
        pts in prop::collection::vec(pt(), 0..200),
        w in (pt(), 1.0..400.0f64, 1.0..400.0f64),
    ) {
        let t = RStarTree::bulk_load_with_fanout(pts.clone(), 8, 3);
        let window = Rect::new(w.0.x, w.0.y, w.0.x + w.1, w.0.y + w.2);
        let got = t.range(&window);
        let want = pts.iter().filter(|p| window.contains(**p)).count();
        prop_assert_eq!(got.len(), want);
    }

    #[test]
    fn insert_delete_interleavings_match_model(
        ops in prop::collection::vec((pt(), prop::bool::weighted(0.35)), 1..250),
    ) {
        // model: multiset of live points; delete picks pseudo-randomly
        let mut t: RStarTree<Point> = RStarTree::with_fanout(6, 2);
        let mut live: Vec<Point> = Vec::new();
        for (p, is_delete) in ops {
            if is_delete && !live.is_empty() {
                let idx = (p.x as usize) % live.len();
                let victim = live.swap_remove(idx);
                let removed = t.delete_by_mbr(&Rect::from_point(victim));
                prop_assert!(removed.is_some(), "lost {victim}");
            } else {
                t.insert(p);
                live.push(p);
            }
            prop_assert!(t.check_invariants().is_ok());
        }
        prop_assert_eq!(t.len(), live.len());
        // every live point findable, in both directions
        prop_assert_eq!(t.iter_items().count(), live.len());
        for p in live.iter().take(20) {
            let hit = t.knn(*p, 1);
            prop_assert!(hit[0].1 < 1e-9);
        }
    }

    #[test]
    fn roundtrip_through_bytes_preserves_knn(pts in prop::collection::vec(pt(), 1..300), q in pt()) {
        let tree = RStarTree::bulk_load_with_fanout(pts, 9, 3);
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let loaded: RStarTree<Point> = RStarTree::load(&bytes[..]).unwrap();
        prop_assert!(loaded.check_invariants().is_ok());
        let a = tree.knn(q, 15);
        let b = loaded.knn(q, 15);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.0, y.0);
        }
    }

    #[test]
    fn mixed_bulk_then_insert_stays_valid(
        base in prop::collection::vec(pt(), 1..200),
        extra in prop::collection::vec(pt(), 1..100),
    ) {
        let mut t = RStarTree::bulk_load_with_fanout(base.clone(), 8, 3);
        for p in &extra {
            t.insert(*p);
        }
        prop_assert!(t.check_invariants().is_ok());
        prop_assert_eq!(t.len(), base.len() + extra.len());
        // every point still findable with a zero-radius knn
        for p in extra.iter().take(10) {
            let (found, d) = &t.knn(*p, 1)[0];
            prop_assert!(*d < 1e-9, "nearest to {p} was {found} at {d}");
        }
    }
}
