//! Page-access accounting.
//!
//! The paper's I/O metric is "number of pages accessed", and its total query
//! time charges 10 ms per page *fault* (§5.1). With a buffer, a logical read
//! that hits the buffer is not a fault. Counters use atomics so read-only
//! query traversals (`&RStarTree`) can record accesses — including from the
//! batch layer's worker threads, which share one tree.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable access counters attached to one tree.
#[derive(Debug, Default)]
pub struct PageStats {
    reads: AtomicU64,
    faults: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Logical node accesses (buffer hits included).
    pub reads: u64,
    /// Buffer misses — the unit the paper charges 10 ms for.
    pub faults: u64,
}

impl StatsSnapshot {
    /// Counter difference since an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads - earlier.reads,
            faults: self.faults - earlier.faults,
        }
    }
}

impl PageStats {
    /// Records one logical read, plus a fault when the buffer missed.
    pub fn record(&self, fault: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if fault {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
        }
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = PageStats::default();
        s.record(true);
        s.record(false);
        s.record(true);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 3);
        assert_eq!(snap.faults, 2);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_computes_delta() {
        let s = PageStats::default();
        s.record(true);
        let before = s.snapshot();
        s.record(true);
        s.record(false);
        let d = s.snapshot().since(&before);
        assert_eq!(d.reads, 2);
        assert_eq!(d.faults, 1);
    }
}
