//! Deletion with CondenseTree (Guttman 1984, as adapted for the R\*-tree).
//!
//! The CONN experiments never delete, but a production index must: find the
//! leaf holding the item, remove it, and if the leaf underflows, dissolve it
//! and re-insert the orphaned entries at their original levels; shrink the
//! root when it degenerates to a single child.

// lint:allow-file(no-panic-in-query-path[index]): page ids and entry indices are tree-structural invariants (children exist, fanout within bounds) re-audited after every mutation by check_invariants / sanitize-invariants
use conn_geom::Rect;

use crate::node::{Mbr, PageId, Slot};
use crate::tree::RStarTree;

impl<T: Mbr + Clone> RStarTree<T> {
    /// Removes one item matching `predicate` whose MBR intersects `probe`
    /// (callers usually pass the exact MBR of the item to delete).
    ///
    /// Returns the removed item, or `None` if nothing matched. When several
    /// items match, an arbitrary one is removed.
    pub fn delete<F>(&mut self, probe: &Rect, predicate: F) -> Option<T>
    where
        F: Fn(&T) -> bool,
    {
        let mut orphans: Vec<(Rect, Slot<T>, u32)> = Vec::new();
        let removed = self.delete_rec(self.root, probe, &predicate, &mut orphans)?;

        // re-insert orphaned slots at their original levels
        for (mbr, slot, level) in orphans {
            self.reattach(mbr, slot, level);
        }

        // shrink a degenerate root (single child, non-leaf)
        loop {
            let root = &self.pages[self.root as usize];
            if root.is_leaf() || root.len() != 1 {
                break;
            }
            let child = match root.slots[0] {
                Slot::Child(page) => page,
                // lint:allow(no-panic-in-query-path): root.level > 0 here
                Slot::Item(_) => unreachable!("item in non-leaf root"),
            };
            self.root = child;
        }

        self.dec_len();
        self.audit_structure("RStarTree::delete");
        Some(removed)
    }

    /// Convenience wrapper: deletes by exact MBR equality.
    pub fn delete_by_mbr(&mut self, mbr: &Rect) -> Option<T> {
        let target = *mbr;
        self.delete(mbr, move |item| {
            let m = item.mbr();
            (m.min_x - target.min_x).abs() < 1e-12
                && (m.min_y - target.min_y).abs() < 1e-12
                && (m.max_x - target.max_x).abs() < 1e-12
                && (m.max_y - target.max_y).abs() < 1e-12
        })
    }

    fn delete_rec<F>(
        &mut self,
        page: PageId,
        probe: &Rect,
        predicate: &F,
        orphans: &mut Vec<(Rect, Slot<T>, u32)>,
    ) -> Option<T>
    where
        F: Fn(&T) -> bool,
    {
        if self.pages[page as usize].is_leaf() {
            let node = &mut self.pages[page as usize];
            // the envelope lane pre-filters; the payload is only touched
            // for slots whose cached MBR intersects the probe
            let idx = node
                .mbrs
                .iter()
                .zip(&node.slots)
                .position(|(mbr, slot)| match slot {
                    Slot::Item(item) => mbr.intersects(probe) && predicate(item),
                    Slot::Child(_) => false,
                })?;
            node.mbrs.swap_remove(idx);
            let Slot::Item(item) = node.slots.swap_remove(idx) else {
                // idx came from the Item-only position() match right above
                // lint:allow(no-panic-in-query-path)
                unreachable!("position() matched an item");
            };
            return Some(item);
        }
        // search every child whose MBR intersects the probe
        let candidates: Vec<(usize, PageId)> = self.pages[page as usize]
            .mbrs
            .iter()
            .zip(&self.pages[page as usize].slots)
            .enumerate()
            .filter_map(|(i, (mbr, slot))| match slot {
                Slot::Child(page) if mbr.intersects(probe) => Some((i, *page)),
                _ => None,
            })
            .collect();
        for (idx, child) in candidates {
            let Some(item) = self.delete_rec(child, probe, predicate, orphans) else {
                continue;
            };
            // condense: dissolve an underfull child, else refresh its MBR
            let child_len = self.pages[child as usize].len();
            if child_len < self.min_entries {
                let level = self.pages[child as usize].level;
                let rects = std::mem::take(&mut self.pages[child as usize].mbrs);
                let slots = std::mem::take(&mut self.pages[child as usize].slots);
                orphans.extend(rects.into_iter().zip(slots).map(|(r, s)| (r, s, level)));
                self.pages[page as usize].mbrs.remove(idx);
                self.pages[page as usize].slots.remove(idx);
            } else {
                let mbr = self.pages[child as usize].mbr();
                self.pages[page as usize].mbrs[idx] = mbr;
            }
            return Some(item);
        }
        None
    }

    /// Re-attaches a condensed slot at its original level. If the tree has
    /// shrunk below that level in the meantime, the orphaned subtree is
    /// dissolved recursively and its pieces re-attached where they fit.
    fn reattach(&mut self, mbr: Rect, slot: Slot<T>, level: u32) {
        let root_level = self.pages[self.root as usize].level;
        if level > root_level {
            match slot {
                // lint:allow(no-panic-in-query-path): level > root_level ≥ 0
                Slot::Item(_) => unreachable!("items live at level 0 ≤ root level"),
                Slot::Child(page) => {
                    let inner_level = self.pages[page as usize].level;
                    let rects = std::mem::take(&mut self.pages[page as usize].mbrs);
                    let slots = std::mem::take(&mut self.pages[page as usize].slots);
                    for (r, s) in rects.into_iter().zip(slots) {
                        self.reattach(r, s, inner_level);
                    }
                }
            }
            return;
        }
        let target = if matches!(slot, Slot::Item(_)) {
            0
        } else {
            level
        };
        self.insert_slot_at_level(mbr, slot, target);
    }

    fn dec_len(&mut self) {
        let l = self.len();
        self.set_len(l - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i as f64 * 733.0) % 997.0, (i as f64 * 131.0) % 883.0))
            .collect()
    }

    #[test]
    fn delete_removes_exactly_one() {
        let items = pts(200);
        let mut t = RStarTree::bulk_load_with_fanout(items.clone(), 8, 3);
        let victim = items[77];
        let removed = t.delete_by_mbr(&Rect::from_point(victim)).unwrap();
        assert_eq!(removed, victim);
        assert_eq!(t.len(), 199);
        t.check_invariants().unwrap();
        assert!(t.delete_by_mbr(&Rect::from_point(victim)).is_none());
    }

    #[test]
    fn delete_everything_one_by_one() {
        let items = pts(150);
        let mut t = RStarTree::bulk_load_with_fanout(items.clone(), 6, 2);
        for (i, p) in items.iter().enumerate() {
            let got = t.delete_by_mbr(&Rect::from_point(*p));
            assert!(got.is_some(), "item {i} not found");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("after {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.iter_items().count(), 0);
    }

    #[test]
    fn delete_then_query_consistency() {
        let items = pts(300);
        let mut t = RStarTree::bulk_load_with_fanout(items.clone(), 10, 4);
        // delete every third item
        let mut remaining = Vec::new();
        for (i, p) in items.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.delete_by_mbr(&Rect::from_point(*p)).is_some());
            } else {
                remaining.push(*p);
            }
        }
        assert_eq!(t.len(), remaining.len());
        t.check_invariants().unwrap();
        // knn over the survivors matches a linear scan
        let q = Point::new(450.0, 450.0);
        let got = t.knn(q, 12);
        let mut want: Vec<f64> = remaining.iter().map(|p| p.dist(q)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-9, "rank {i}");
        }
    }

    #[test]
    fn delete_with_predicate() {
        let mut t: RStarTree<Point> = RStarTree::with_fanout(6, 2);
        for p in pts(50) {
            t.insert(p);
        }
        let probe = Rect::new(0.0, 0.0, 500.0, 900.0);
        let removed = t.delete(&probe, |p| p.x < 500.0).unwrap();
        assert!(removed.x < 500.0);
        assert_eq!(t.len(), 49);
    }

    #[test]
    fn delete_from_inserted_tree_with_deep_underflow() {
        // small fanout forces underflow cascades
        let mut t: RStarTree<Point> = RStarTree::with_fanout(4, 2);
        let items = pts(120);
        for p in &items {
            t.insert(*p);
        }
        for p in items.iter().take(110) {
            assert!(t.delete_by_mbr(&Rect::from_point(*p)).is_some());
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 10);
        for p in items.iter().skip(110) {
            assert!(
                t.iter_items().any(|s| s.dist(*p) == 0.0),
                "survivor lost: {p}"
            );
        }
    }
}
