//! Tree nodes and the item trait.

use conn_geom::Rect;

/// Index of a node in the simulated page store.
pub type PageId = u32;

/// Anything that can live in the tree: must expose a minimum bounding
/// rectangle (a point item returns a degenerate rectangle).
pub trait Mbr {
    /// Minimum bounding rectangle of the item.
    fn mbr(&self) -> Rect;
}

impl Mbr for Rect {
    #[inline]
    fn mbr(&self) -> Rect {
        *self
    }
}

impl Mbr for conn_geom::Point {
    #[inline]
    fn mbr(&self) -> Rect {
        Rect::from_point(*self)
    }
}

/// One slot of a node: either a child-node pointer (inner levels) or a data
/// item (leaf level). Both carry the bounding rectangle used for navigation.
#[derive(Debug, Clone)]
pub enum Entry<T> {
    /// Pointer to a child node one level below.
    Node {
        /// Bounding rectangle covering the child's subtree.
        mbr: Rect,
        /// Page id of the child node.
        page: PageId,
    },
    /// A data item stored at the leaf level.
    Item(T),
}

impl<T: Mbr> Entry<T> {
    /// The navigation rectangle of this entry.
    #[inline]
    pub fn mbr(&self) -> Rect {
        match self {
            Entry::Node { mbr, .. } => *mbr,
            Entry::Item(item) => item.mbr(),
        }
    }
}

/// A tree node occupying one simulated disk page.
#[derive(Debug, Clone)]
pub struct Node<T> {
    /// 0 for leaves; parents of leaves are level 1, and so on up to the root.
    pub level: u32,
    /// The node's slots (at most the tree's `max_entries`).
    pub entries: Vec<Entry<T>>,
}

impl<T: Mbr> Node<T> {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// True for level-0 (item-holding) nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Bounding rectangle of all entries (callers guarantee non-empty nodes
    /// everywhere except a brand-new empty root).
    pub fn mbr(&self) -> Rect {
        let mut it = self.entries.iter();
        let first = it
            .next()
            .map(|e| e.mbr())
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        it.fold(first, |acc, e| acc.union(&e.mbr()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    #[test]
    fn entry_mbr_dispatch() {
        let e: Entry<Point> = Entry::Item(Point::new(1.0, 2.0));
        assert_eq!(e.mbr(), Rect::new(1.0, 2.0, 1.0, 2.0));
        let n: Entry<Point> = Entry::Node {
            mbr: Rect::new(0.0, 0.0, 5.0, 5.0),
            page: 7,
        };
        assert_eq!(n.mbr().area(), 25.0);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let mut n: Node<Point> = Node::new(0);
        n.entries.push(Entry::Item(Point::new(1.0, 1.0)));
        n.entries.push(Entry::Item(Point::new(4.0, 9.0)));
        assert_eq!(n.mbr(), Rect::new(1.0, 1.0, 4.0, 9.0));
        assert!(n.is_leaf());
    }
}
