//! Tree nodes and the item trait.
//!
//! # Storage layout: envelope/payload split
//!
//! A node stores its slots as two parallel lanes instead of one array of
//! tagged structs:
//!
//! * `mbrs: Vec<Rect>` — the **hot** lane: one navigation envelope per
//!   slot (the child subtree's bounding rectangle on inner levels, the
//!   item's cached MBR on leaves). Every traversal decision — `mindist`
//!   ordering, window intersection, subtree choice — reads only this lane,
//!   a contiguous run of 32-byte rectangles.
//! * `slots: Vec<Slot<T>>` — the **cold** lane: the child page id or the
//!   item payload, touched only after the envelope test passes.
//!
//! The split keeps payload bytes out of the cache lines the envelope scan
//! streams through, and it caches item MBRs at insertion time instead of
//! recomputing them from the payload on every comparison. Slots are
//! addressed by `u32`-sized indices (`PageId` for the node, a lane index
//! within it), which is the layout a page image serializes verbatim.

use conn_geom::Rect;

/// Index of a node in the simulated page store.
pub type PageId = u32;

/// Anything that can live in the tree: must expose a minimum bounding
/// rectangle (a point item returns a degenerate rectangle).
pub trait Mbr {
    /// Minimum bounding rectangle of the item.
    fn mbr(&self) -> Rect;
}

impl Mbr for Rect {
    #[inline]
    fn mbr(&self) -> Rect {
        *self
    }
}

impl Mbr for conn_geom::Point {
    #[inline]
    fn mbr(&self) -> Rect {
        Rect::from_point(*self)
    }
}

/// The cold half of one node slot: a child-node pointer (inner levels) or a
/// data item (leaf level). The slot's navigation envelope lives in the
/// node's parallel `mbrs` lane.
#[derive(Debug, Clone)]
pub enum Slot<T> {
    /// Pointer to a child node one level below.
    Child(PageId),
    /// A data item stored at the leaf level.
    Item(T),
}

/// A tree node occupying one simulated disk page; see the module docs for
/// the two-lane layout.
#[derive(Debug, Clone)]
pub struct Node<T> {
    /// 0 for leaves; parents of leaves are level 1, and so on up to the root.
    pub level: u32,
    /// Hot lane: navigation envelopes, parallel to `slots`.
    pub mbrs: Vec<Rect>,
    /// Cold lane: payloads, parallel to `mbrs`.
    pub slots: Vec<Slot<T>>,
}

impl<T: Mbr> Node<T> {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            mbrs: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.mbrs.len(), self.slots.len());
        self.slots.len()
    }

    /// True when the node has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True for level-0 (item-holding) nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Appends a slot with its envelope.
    #[inline]
    pub fn push(&mut self, mbr: Rect, slot: Slot<T>) {
        self.mbrs.push(mbr);
        self.slots.push(slot);
    }

    /// Bounding rectangle of all slots (callers guarantee non-empty nodes
    /// everywhere except a brand-new empty root).
    pub fn mbr(&self) -> Rect {
        let mut it = self.mbrs.iter();
        let first = it
            .next()
            .copied()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        it.fold(first, |acc, r| acc.union(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    #[test]
    fn lanes_stay_parallel() {
        let mut n: Node<Point> = Node::new(0);
        let p = Point::new(1.0, 2.0);
        n.push(p.mbr(), Slot::Item(p));
        assert_eq!(n.len(), 1);
        assert_eq!(n.mbrs[0], Rect::new(1.0, 2.0, 1.0, 2.0));
        let mut inner: Node<Point> = Node::new(1);
        inner.push(Rect::new(0.0, 0.0, 5.0, 5.0), Slot::Child(7));
        assert_eq!(inner.mbrs[0].area(), 25.0);
        assert!(!inner.is_leaf());
    }

    #[test]
    fn node_mbr_unions_envelope_lane() {
        let mut n: Node<Point> = Node::new(0);
        for p in [Point::new(1.0, 1.0), Point::new(4.0, 9.0)] {
            n.push(p.mbr(), Slot::Item(p));
        }
        assert_eq!(n.mbr(), Rect::new(1.0, 1.0, 4.0, 9.0));
        assert!(n.is_leaf());
    }
}
