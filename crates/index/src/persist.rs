//! Tree persistence: a simple page-image binary format.
//!
//! The page store already models a disk-resident tree, so persistence is a
//! straight dump of the pages. The format is hand-rolled (fixed-width
//! little-endian fields, one record per page) — no serialization framework,
//! no versioned schema migration, just what an experiment needs to build a
//! paper-scale index once and reuse it across runs.
//!
//! ```text
//! magic "CONNRT01" | max_entries u32 | min_entries u32 | root u32
//! | len u64 | num_pages u32
//! then per page: level u32 | entry_count u32 | entries…
//! entry: tag u8 (0 = child node, 1 = item)
//!   node: mbr (4 × f64) | page u32
//!   item: T::encode (fixed width)
//! ```

// lint:allow-file(no-panic-in-query-path[index]): offsets are length-checked against the byte buffer before slicing
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use conn_geom::{Point, Rect};

use crate::node::{Mbr, Node, Slot};
use crate::tree::RStarTree;

const MAGIC: &[u8; 8] = b"CONNRT01";

/// Fixed-width binary encoding for tree items.
pub trait PersistItem: Sized {
    /// Encoded width in bytes (fixed per type).
    const ENCODED_SIZE: usize;
    /// Appends exactly [`Self::ENCODED_SIZE`] bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes from a [`Self::ENCODED_SIZE`]-byte slice.
    fn decode(bytes: &[u8]) -> io::Result<Self>;
}

impl PersistItem for Point {
    const ENCODED_SIZE: usize = 16;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.x.to_le_bytes());
        out.extend_from_slice(&self.y.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> io::Result<Self> {
        Ok(Point::new(read_f64(bytes, 0)?, read_f64(bytes, 8)?))
    }
}

impl PersistItem for Rect {
    const ENCODED_SIZE: usize = 32;

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.min_x.to_le_bytes());
        out.extend_from_slice(&self.min_y.to_le_bytes());
        out.extend_from_slice(&self.max_x.to_le_bytes());
        out.extend_from_slice(&self.max_y.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> io::Result<Self> {
        Ok(Rect {
            min_x: read_f64(bytes, 0)?,
            min_y: read_f64(bytes, 8)?,
            max_x: read_f64(bytes, 16)?,
            max_y: read_f64(bytes, 24)?,
        })
    }
}

/// Reads a little-endian f64 at `offset`.
pub fn read_f64(bytes: &[u8], offset: usize) -> io::Result<f64> {
    let slice = bytes
        .get(offset..offset + 8)
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated f64"))?;
    // Infallible: get() above returned exactly 8 bytes.
    // lint:allow(no-panic-in-query-path)
    Ok(f64::from_le_bytes(slice.try_into().expect("8 bytes")))
}

/// Reads a little-endian u32 at `offset`.
pub fn read_u32(bytes: &[u8], offset: usize) -> io::Result<u32> {
    let slice = bytes
        .get(offset..offset + 4)
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated u32"))?;
    // Infallible: get() above returned exactly 4 bytes.
    // lint:allow(no-panic-in-query-path)
    Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
}

impl<T: Mbr + Clone + PersistItem> RStarTree<T> {
    /// Writes the tree's page image to `writer`.
    pub fn save<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        w.write_all(MAGIC)?;
        w.write_all(&(self.max_entries() as u32).to_le_bytes())?;
        w.write_all(&(self.min_entries() as u32).to_le_bytes())?;
        w.write_all(&self.root_page().to_le_bytes())?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        w.write_all(&(self.num_pages() as u32).to_le_bytes())?;
        let mut buf = Vec::new();
        for node in self.pages_raw() {
            buf.clear();
            buf.extend_from_slice(&node.level.to_le_bytes());
            buf.extend_from_slice(&(node.len() as u32).to_le_bytes());
            for (mbr, slot) in node.mbrs.iter().zip(&node.slots) {
                match slot {
                    Slot::Child(page) => {
                        buf.push(0);
                        buf.extend_from_slice(&mbr.min_x.to_le_bytes());
                        buf.extend_from_slice(&mbr.min_y.to_le_bytes());
                        buf.extend_from_slice(&mbr.max_x.to_le_bytes());
                        buf.extend_from_slice(&mbr.max_y.to_le_bytes());
                        buf.extend_from_slice(&page.to_le_bytes());
                    }
                    Slot::Item(item) => {
                        buf.push(1);
                        item.encode(&mut buf);
                    }
                }
            }
            w.write_all(&buf)?;
        }
        w.flush()
    }

    /// Saves to a file path.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.save(std::fs::File::create(path)?)
    }

    /// Reads a tree from `reader`.
    pub fn load<R: Read>(reader: R) -> io::Result<Self> {
        let mut r = BufReader::new(reader);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a conn-index tree file",
            ));
        }
        let max_entries = read_u32_from(&mut r)? as usize;
        let min_entries = read_u32_from(&mut r)? as usize;
        let root = read_u32_from(&mut r)?;
        let len = read_u64_from(&mut r)? as usize;
        let num_pages = read_u32_from(&mut r)? as usize;
        if max_entries < 4 || min_entries < 2 || min_entries > max_entries / 2 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad fanout"));
        }
        if (root as usize) >= num_pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "root out of range",
            ));
        }

        let mut pages = Vec::with_capacity(num_pages);
        for _ in 0..num_pages {
            let level = read_u32_from(&mut r)?;
            let count = read_u32_from(&mut r)? as usize;
            if count > max_entries + 1 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "overfull page"));
            }
            let mut node = Node::new(level);
            node.mbrs.reserve(count);
            node.slots.reserve(count);
            for _ in 0..count {
                let mut tag = [0u8; 1];
                r.read_exact(&mut tag)?;
                match tag[0] {
                    0 => {
                        let mut rec = [0u8; 36];
                        r.read_exact(&mut rec)?;
                        let mbr = Rect {
                            min_x: read_f64(&rec, 0)?,
                            min_y: read_f64(&rec, 8)?,
                            max_x: read_f64(&rec, 16)?,
                            max_y: read_f64(&rec, 24)?,
                        };
                        let page = read_u32(&rec, 32)?;
                        if (page as usize) >= num_pages {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "child page out of range",
                            ));
                        }
                        node.push(mbr, Slot::Child(page));
                    }
                    1 => {
                        let mut rec = vec![0u8; T::ENCODED_SIZE];
                        r.read_exact(&mut rec)?;
                        // the item's envelope is recomputed, not stored:
                        // the on-disk format stays CONNRT01
                        let item = T::decode(&rec)?;
                        node.push(item.mbr(), Slot::Item(item));
                    }
                    t => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad entry tag {t}"),
                        ))
                    }
                }
            }
            pages.push(node);
        }
        Ok(RStarTree::from_raw_parts(
            pages,
            root,
            max_entries,
            min_entries,
            len,
        ))
    }

    /// Loads from a file path.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::load(std::fs::File::open(path)?)
    }
}

fn read_u32_from<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64_from<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Segment;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i as f64 * 733.0) % 997.0, (i as f64 * 131.0) % 883.0))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_structure_and_answers() {
        let items = pts(500);
        let tree = RStarTree::bulk_load_with_fanout(items, 16, 6);
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let loaded: RStarTree<Point> = RStarTree::load(&bytes[..]).unwrap();
        loaded.check_invariants().unwrap();
        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.num_pages(), tree.num_pages());
        assert_eq!(loaded.height(), tree.height());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(900.0, 800.0));
        let a: Vec<(Point, f64)> = tree.nearest_iter(q).take(40).collect();
        let b: Vec<(Point, f64)> = loaded.nearest_iter(q).take(40).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn roundtrip_rect_items_via_file() {
        let rects: Vec<Rect> = pts(200)
            .into_iter()
            .map(|p| Rect::new(p.x, p.y, p.x + 5.0, p.y + 2.0))
            .collect();
        let tree = RStarTree::bulk_load_with_fanout(rects, 12, 4);
        let path = std::env::temp_dir().join("conn_index_roundtrip.bin");
        tree.save_to_path(&path).unwrap();
        let loaded: RStarTree<Rect> = RStarTree::load_from_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        loaded.check_invariants().unwrap();
        assert_eq!(loaded.len(), 200);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let tree = RStarTree::bulk_load_with_fanout(pts(50), 8, 3);
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();

        let mut corrupted = bytes.clone();
        corrupted[0] = b'X';
        assert!(RStarTree::<Point>::load(&corrupted[..]).is_err());

        let truncated = &bytes[..bytes.len() / 2];
        assert!(RStarTree::<Point>::load(truncated).is_err());
    }

    #[test]
    fn loaded_tree_supports_mutation() {
        let tree = RStarTree::bulk_load_with_fanout(pts(120), 8, 3);
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let mut loaded: RStarTree<Point> = RStarTree::load(&bytes[..]).unwrap();
        loaded.insert(Point::new(42.0, 24.0));
        assert_eq!(loaded.len(), 121);
        loaded.check_invariants().unwrap();
        let removed = loaded.delete_by_mbr(&Rect::from_point(Point::new(42.0, 24.0)));
        assert!(removed.is_some());
        loaded.check_invariants().unwrap();
    }

    #[test]
    fn empty_tree_roundtrip() {
        let tree: RStarTree<Point> = RStarTree::with_fanout(8, 3);
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let loaded: RStarTree<Point> = RStarTree::load(&bytes[..]).unwrap();
        assert!(loaded.is_empty());
        assert!(loaded.nearest_iter(Point::new(0.0, 0.0)).next().is_none());
    }
}
