//! STR bulk loading (Leutenegger et al.): sort-tile-recursive packing.
//!
//! The experiment datasets (up to 1.3 M points at paper scale) are loaded
//! once and never updated, so bulk loading is the construction path the
//! benchmark harness uses; incremental insertion remains available for
//! dynamic workloads and is exercised by the structural tests.

use conn_geom::Rect;

use crate::node::{Mbr, Node, Slot};
use crate::tree::RStarTree;

impl<T: Mbr + Clone> RStarTree<T> {
    /// Builds a tree from `items` using STR packing with the fanout implied
    /// by `page_size`.
    pub fn bulk_load(items: Vec<T>, page_size: usize) -> Self {
        let mut tree = Self::new(page_size);
        tree.bulk_fill(items);
        tree
    }

    /// Builds a tree from `items` with an explicit fanout.
    pub fn bulk_load_with_fanout(items: Vec<T>, max_entries: usize, min_entries: usize) -> Self {
        let mut tree = Self::with_fanout(max_entries, min_entries);
        tree.bulk_fill(items);
        tree
    }

    fn bulk_fill(&mut self, items: Vec<T>) {
        assert!(self.is_empty(), "bulk load into non-empty tree");
        if items.is_empty() {
            return;
        }
        let n = items.len();
        // Pack leaves: STR tiles on x, then fills runs on y.
        let cap = self.max_entries;
        let leaf_entries: Vec<(Rect, Slot<T>)> = items
            .into_iter()
            .map(|it| (it.mbr(), Slot::Item(it)))
            .collect();
        let mut level_entries = self.pack_level(leaf_entries, 0, cap);
        let mut level = 1;
        while level_entries.len() > 1 {
            level_entries = self.pack_level(level_entries, level, cap);
            level += 1;
        }
        // Infallible: the loop above runs until exactly one entry is
        // left, and bulk_fill is never called with an empty item set.
        // lint:allow(no-panic-in-query-path)
        match level_entries.pop().expect("non-empty packing") {
            (_, Slot::Child(page)) => self.root = page,
            // lint:allow(no-panic-in-query-path): the final pack level is nodes
            (_, Slot::Item(_)) => unreachable!("packing always produces a node"),
        }
        self.set_len(n);
        self.audit_structure("RStarTree::bulk_load");
    }

    /// Packs `entries` into nodes of `level`, returning parent entries.
    ///
    /// Sizes within a slice are distributed *evenly* (instead of greedy
    /// `cap`-sized runs) so no node falls below the minimum fill — greedy
    /// packing leaves an underfull tail node whenever `slice_len % cap`
    /// is small but non-zero.
    fn pack_level(
        &mut self,
        mut entries: Vec<(Rect, Slot<T>)>,
        level: u32,
        cap: usize,
    ) -> Vec<(Rect, Slot<T>)> {
        let n = entries.len();
        let fill = |node: &mut Node<T>, drained: std::vec::Drain<'_, (Rect, Slot<T>)>| {
            for (r, s) in drained {
                node.push(r, s);
            }
        };
        if n <= cap {
            let mut node = Node::new(level);
            fill(&mut node, entries.drain(..));
            let mbr = node.mbr();
            let page = self.alloc(node);
            return vec![(mbr, Slot::Child(page))];
        }
        let node_count = n.div_ceil(cap);
        let slice_count = (node_count as f64).sqrt().ceil() as usize;

        entries.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let mut parents = Vec::with_capacity(node_count);
        let mut rest = entries;
        for chunk in even_chunks(n, slice_count) {
            let mut slice: Vec<(Rect, Slot<T>)> = rest.drain(..chunk).collect();
            slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            let slice_len = slice.len();
            for node_chunk in even_chunks(slice_len, slice_len.div_ceil(cap)) {
                let mut node = Node::new(level);
                fill(&mut node, slice.drain(..node_chunk));
                let mbr = node.mbr();
                let page = self.alloc(node);
                parents.push((mbr, Slot::Child(page)));
            }
        }
        parents
    }
}

/// Splits `n` into `parts` chunk sizes that differ by at most one.
fn even_chunks(n: usize, parts: usize) -> Vec<usize> {
    debug_assert!(parts >= 1 && parts <= n);
    let base = n / parts;
    let extra = n % parts;
    (0..parts)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::{Point, Rect};

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i as f64 * 733.0) % 997.0, (i as f64 * 131.0) % 883.0))
            .collect()
    }

    #[test]
    fn bulk_load_small_and_large() {
        for n in [1usize, 5, 100, 2000] {
            let t = RStarTree::bulk_load_with_fanout(pts(n), 16, 6);
            assert_eq!(t.len(), n, "n = {n}");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("n = {n}: {e}"));
            assert_eq!(t.iter_items().count(), n);
        }
    }

    #[test]
    fn bulk_load_empty() {
        let t: RStarTree<Point> = RStarTree::bulk_load(Vec::new(), 4096);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn bulk_load_is_shallower_than_insertion() {
        let items = pts(5000);
        let bulk = RStarTree::bulk_load_with_fanout(items.clone(), 16, 6);
        let mut incr: RStarTree<Point> = RStarTree::with_fanout(16, 6);
        for p in items {
            incr.insert(p);
        }
        assert!(bulk.height() <= incr.height());
        assert!(bulk.num_pages() <= incr.num_pages());
    }

    #[test]
    fn bulk_load_rect_items() {
        let rects: Vec<Rect> = pts(800)
            .into_iter()
            .map(|p| Rect::new(p.x, p.y, p.x + 3.0, p.y + 1.0))
            .collect();
        let t = RStarTree::bulk_load_with_fanout(rects, 32, 12);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 800);
    }
}
