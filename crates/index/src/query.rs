//! Query traversals: incremental best-first nearest-neighbor streaming,
//! range search, and kNN.
//!
//! [`NearestIter`] is the access pattern every CONN algorithm is built on:
//! Algorithm 4 streams *data points* in ascending `mindist` to the query
//! segment, and Algorithm 1 (IOR) streams *obstacles* the same way. Best-
//! first traversal (Hjaltason & Samet) is I/O-optimal: it reads exactly the
//! nodes whose `mindist` is below the final stopping distance.

// lint:allow-file(no-panic-in-query-path[index]): page ids and entry indices are tree-structural invariants (children exist, fanout within bounds) re-audited after every mutation by check_invariants / sanitize-invariants
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use conn_geom::{OrdF64, Point, Rect, Segment};

use crate::node::{Mbr, PageId, Slot};
use crate::tree::RStarTree;

/// A query shape that can lower-bound its distance to an MBR.
pub trait DistShape {
    /// `mindist(self, r)` — must lower-bound the distance from the shape to
    /// anything contained in `r`.
    fn dist_rect(&self, r: &Rect) -> f64;
}

impl DistShape for Point {
    #[inline]
    fn dist_rect(&self, r: &Rect) -> f64 {
        r.mindist_point(*self)
    }
}

impl DistShape for Segment {
    #[inline]
    fn dist_rect(&self, r: &Rect) -> f64 {
        r.mindist_segment(self)
    }
}

enum HeapItem<T> {
    Node(PageId),
    Item(T),
}

struct HeapElem<T> {
    key: OrdF64,
    seq: u64,
    item: HeapItem<T>,
}

impl<T> PartialEq for HeapElem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for HeapElem<T> {}
impl<T> PartialOrd for HeapElem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapElem<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we need the smallest key first
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Incremental nearest-neighbor stream over an [`RStarTree`].
///
/// Yields `(item, mindist)` pairs in ascending distance order; lazily reads
/// tree pages as the frontier advances, so consuming only a prefix of the
/// stream only pays for the pages that prefix needed.
pub struct NearestIter<'a, T, Q: DistShape> {
    tree: &'a RStarTree<T>,
    query: Q,
    heap: BinaryHeap<HeapElem<T>>,
    seq: u64,
}

impl<'a, T: Mbr + Clone, Q: DistShape> NearestIter<'a, T, Q> {
    pub(crate) fn new(tree: &'a RStarTree<T>, query: Q) -> Self {
        let mut it = NearestIter {
            tree,
            query,
            heap: BinaryHeap::new(),
            seq: 0,
        };
        if !tree.is_empty() {
            let root_mbr = tree.pages[tree.root as usize].mbr();
            let key = OrdF64::new(it.query.dist_rect(&root_mbr));
            it.push(key, HeapItem::Node(tree.root));
        }
        it
    }

    fn push(&mut self, key: OrdF64, item: HeapItem<T>) {
        self.heap.push(HeapElem {
            key,
            seq: self.seq,
            item,
        });
        self.seq += 1;
    }

    /// The `mindist` of the next element without consuming it: a lower bound
    /// on everything not yet returned. `None` when exhausted.
    pub fn peek_dist(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key.0)
    }
}

impl<'a, T: Mbr + Clone, Q: DistShape> Iterator for NearestIter<'a, T, Q> {
    type Item = (T, f64);

    fn next(&mut self) -> Option<(T, f64)> {
        while let Some(HeapElem { key, item, .. }) = self.heap.pop() {
            match item {
                HeapItem::Item(it) => return Some((it, key.0)),
                HeapItem::Node(page) => {
                    // `tree` is a copy of the &'a reference, so `node`
                    // outlives the &mut self borrows of push() below: the
                    // expansion streams the contiguous envelope lane
                    // straight onto the heap, no intermediate buffer
                    let tree = self.tree;
                    let node = tree.read(page);
                    for (mbr, slot) in node.mbrs.iter().zip(&node.slots) {
                        let d = OrdF64::new(self.query.dist_rect(mbr));
                        match slot {
                            Slot::Child(page) => self.push(d, HeapItem::Node(*page)),
                            Slot::Item(it) => self.push(d, HeapItem::Item(it.clone())),
                        }
                    }
                }
            }
        }
        None
    }
}

impl<T: Mbr + Clone> RStarTree<T> {
    /// Incremental nearest-neighbor stream ordered by `mindist` to `query`.
    pub fn nearest_iter<Q: DistShape>(&self, query: Q) -> NearestIter<'_, T, Q> {
        NearestIter::new(self, query)
    }

    /// The `k` nearest items to `query` with their distances.
    pub fn knn<Q: DistShape>(&self, query: Q, k: usize) -> Vec<(T, f64)> {
        self.nearest_iter(query).take(k).collect()
    }

    /// All items whose MBR intersects `window` (charged traversal).
    pub fn range(&self, window: &Rect) -> Vec<T> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read(page);
            let mut child_pages = Vec::new();
            for (mbr, slot) in node.mbrs.iter().zip(&node.slots) {
                if mbr.intersects(window) {
                    match slot {
                        Slot::Child(page) => child_pages.push(*page),
                        Slot::Item(it) => out.push(it.clone()),
                    }
                }
            }
            stack.extend(child_pages);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i as f64 * 733.0) % 997.0, (i as f64 * 131.0) % 883.0))
            .collect()
    }

    fn build(n: usize) -> (RStarTree<Point>, Vec<Point>) {
        let items = pts(n);
        (
            RStarTree::bulk_load_with_fanout(items.clone(), 16, 6),
            items,
        )
    }

    #[test]
    fn nearest_stream_is_sorted_and_complete() {
        let (t, items) = build(500);
        let q = Point::new(500.0, 400.0);
        let got: Vec<(Point, f64)> = t.nearest_iter(q).collect();
        assert_eq!(got.len(), items.len());
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "stream out of order");
        }
        // distances are true euclidean distances
        for (p, d) in &got {
            assert!((p.dist(q) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let (t, items) = build(400);
        let q = Point::new(123.0, 456.0);
        let got = t.knn(q, 10);
        let mut want: Vec<f64> = items.iter().map(|p| p.dist(q)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-9, "k = {i}");
        }
    }

    #[test]
    fn nearest_by_segment_orders_by_segment_distance() {
        let (t, items) = build(300);
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(900.0, 100.0));
        let got: Vec<(Point, f64)> = t.nearest_iter(q).collect();
        assert_eq!(got.len(), items.len());
        for (p, d) in &got {
            assert!((q.dist_to_point(*p) - d).abs() < 1e-9);
        }
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
    }

    #[test]
    fn peek_dist_lower_bounds_everything_left() {
        let (t, _) = build(200);
        let mut it = t.nearest_iter(Point::new(10.0, 10.0));
        let mut prev = 0.0;
        for _ in 0..50 {
            let peek = it.peek_dist().unwrap();
            let (_, d) = it.next().unwrap();
            assert!(peek <= d + 1e-12);
            assert!(prev <= d + 1e-12);
            prev = d;
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let (t, items) = build(400);
        let window = Rect::new(100.0, 100.0, 400.0, 500.0);
        let mut got: Vec<Point> = t.range(&window);
        let mut want: Vec<Point> = items.into_iter().filter(|p| window.contains(*p)).collect();
        let key = |p: &Point| (p.x, p.y);
        got.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        want.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w);
        }
    }

    #[test]
    fn empty_tree_queries() {
        let t: RStarTree<Point> = RStarTree::with_fanout(8, 3);
        assert!(t.nearest_iter(Point::new(0.0, 0.0)).next().is_none());
        assert!(t.knn(Point::new(0.0, 0.0), 5).is_empty());
        assert!(t.range(&Rect::new(0.0, 0.0, 10.0, 10.0)).is_empty());
    }

    #[test]
    fn partial_consumption_reads_fewer_pages() {
        let (t, _) = build(2000);
        t.reset_stats();
        let _: Vec<_> = t.nearest_iter(Point::new(1.0, 1.0)).take(5).collect();
        let partial = t.stats().reads;
        t.reset_stats();
        let _: Vec<_> = t.nearest_iter(Point::new(1.0, 1.0)).collect();
        let full = t.stats().reads;
        assert!(partial < full / 2, "partial {partial} vs full {full}");
    }

    #[test]
    fn buffer_reduces_faults_on_repeat_queries() {
        let (t, _) = build(2000);
        t.set_buffer_frac(0.5);
        t.clear_buffer();
        t.reset_stats();
        let _: Vec<_> = t.nearest_iter(Point::new(500.0, 500.0)).take(50).collect();
        let cold = t.stats();
        t.reset_stats();
        let _: Vec<_> = t.nearest_iter(Point::new(500.0, 500.0)).take(50).collect();
        let warm = t.stats();
        assert_eq!(cold.reads, warm.reads);
        assert!(warm.faults < cold.faults, "warm {warm:?} vs cold {cold:?}");
    }
}
