//! LRU page buffer.
//!
//! Figure 12 of the paper varies the buffer size from 0 to 32 % of the tree
//! size; only the I/O metric reacts. The buffer here is a textbook O(1) LRU:
//! a hash map from page id to a slot in an intrusive doubly-linked list.

// lint:allow-file(no-panic-in-query-path[index]): frame indices come from the LRU list the same struct maintains
use crate::node::PageId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    page: PageId,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache over page ids (contents live in the page store;
/// the buffer only tracks *which* pages are resident).
#[derive(Debug, Default)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<PageId, usize>,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

impl LruBuffer {
    /// A buffer that can hold `capacity` pages; 0 disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Empties the buffer (used between experiment runs).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Resizes the buffer, dropping the least recently used pages if needed.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Records an access to `page`. Returns `true` on a buffer hit, `false`
    /// on a fault (the page is then brought in, evicting the LRU page).
    pub fn access(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.map.get(&page) {
            self.unlink(slot);
            self.push_front(slot);
            return true;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s].page = page;
                s
            }
            None => {
                self.slots.push(Slot {
                    page,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(page, slot);
        self.push_front(slot);
        false
    }

    fn unlink(&mut self, slot: usize) {
        let Slot { prev, next, .. } = self.slots[slot];
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn evict_lru(&mut self) {
        let lru = self.tail;
        debug_assert_ne!(lru, NIL, "evict on empty buffer");
        let page = self.slots[lru].page;
        self.unlink(lru);
        self.map.remove(&page);
        self.free.push(lru);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = LruBuffer::new(0);
        assert!(!b.access(1));
        assert!(!b.access(1));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn hit_after_miss() {
        let mut b = LruBuffer::new(2);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert!(!b.access(2));
        assert!(b.access(1));
        assert!(b.access(2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 2 is now LRU
        assert!(!b.access(3)); // evicts 2
        assert!(b.access(1));
        assert!(!b.access(2)); // fault again
    }

    #[test]
    fn shrink_capacity_drops_lru_pages() {
        let mut b = LruBuffer::new(4);
        for p in 0..4 {
            b.access(p);
        }
        b.set_capacity(2);
        assert_eq!(b.len(), 2);
        assert!(b.access(3));
        assert!(b.access(2));
        assert!(!b.access(0));
    }

    #[test]
    fn long_access_pattern_is_consistent_with_model() {
        // compare against a naive reference implementation
        let mut b = LruBuffer::new(3);
        let mut reference: Vec<PageId> = Vec::new(); // front = MRU
        let pattern: Vec<PageId> = vec![1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5, 2, 2, 9, 1, 3];
        for &p in &pattern {
            let hit = b.access(p);
            let ref_hit = reference.contains(&p);
            assert_eq!(hit, ref_hit, "page {p}");
            reference.retain(|&x| x != p);
            reference.insert(0, p);
            reference.truncate(3);
        }
    }
}
