//! A disk-simulating R\*-tree.
//!
//! The CONN paper's evaluation (§5.1) charges 10 ms per R-tree page fault and
//! reports page accesses as the I/O metric, with an optional LRU buffer sized
//! as a percentage of the tree. Reproducing those experiments therefore needs
//! an index whose node accesses can be *counted* and *buffered* — which is why
//! this crate implements the R\*-tree (Beckmann, Kriegel, Schneider, Seeger,
//! SIGMOD 1990) from scratch instead of using an in-memory spatial crate:
//!
//! * [`RStarTree`] — insertion with forced reinsertion and the R\* split, or
//!   STR bulk loading; 4 KB pages by default, fanout derived from entry size.
//! * [`PageStats`] — logical reads and page faults, observable mid-query.
//! * [`LruBuffer`] — page cache; faults are charged only on misses.
//! * [`NearestIter`] — incremental best-first (Hjaltason & Samet) neighbor
//!   stream ordered by `mindist` to a [`Point`] or a [`Segment`] query, the
//!   access pattern Algorithms 1 and 4 of the paper are built on.
//!
//! [`Point`]: conn_geom::Point
//! [`Segment`]: conn_geom::Segment

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod bulk;
pub mod delete;
pub mod insert;
pub mod node;
pub mod persist;
pub mod query;
pub mod stats;
pub mod tree;

pub use buffer::LruBuffer;
pub use node::{Mbr, Node, PageId, Slot};
pub use persist::PersistItem;
pub use query::{DistShape, NearestIter};
pub use stats::{PageStats, StatsSnapshot};
pub use tree::{RStarTree, DEFAULT_PAGE_SIZE};
