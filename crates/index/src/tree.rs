//! The tree structure, simulated page store, and maintenance entry points.

// lint:allow-file(no-panic-in-query-path[index]): page ids and entry indices are tree-structural invariants (children exist, fanout within bounds) re-audited after every mutation by check_invariants / sanitize-invariants
use std::sync::Mutex;

use conn_geom::{Point, Rect};

use crate::buffer::LruBuffer;
use crate::node::{Mbr, Node, PageId, Slot};
use crate::stats::{PageStats, StatsSnapshot};

/// Paper §5.1: "the page size fixed at 4KB".
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Bytes per entry: a 32-byte MBR (4 × f64) plus an 8-byte child pointer or
/// record id. Matches the sizing convention of the R-tree literature the
/// paper builds on.
const ENTRY_BYTES: usize = 40;

/// Per-page header (level, entry count, padding).
const PAGE_HEADER_BYTES: usize = 16;

/// An R\*-tree over items of type `T` stored on simulated 4 KB pages.
///
/// All query traversals go through the internal `read` accessor, which charges the
/// access to [`PageStats`] and consults the [`LruBuffer`]. Structure
/// modifications (insert, bulk load) do not charge I/O — the paper resets
/// counters per query, and its trees are built before measurement begins.
#[derive(Debug)]
pub struct RStarTree<T> {
    pub(crate) pages: Vec<Node<T>>,
    pub(crate) root: PageId,
    pub(crate) max_entries: usize,
    pub(crate) min_entries: usize,
    len: usize,
    stats: PageStats,
    buffer: Mutex<LruBuffer>,
}

impl<T: Mbr + Clone> RStarTree<T> {
    /// An empty tree with fanout derived from `page_size`.
    pub fn new(page_size: usize) -> Self {
        let max_entries = ((page_size.saturating_sub(PAGE_HEADER_BYTES)) / ENTRY_BYTES).max(4);
        // R* recommendation: minimum fill 40 % of the maximum.
        let min_entries = (max_entries * 2 / 5).max(2);
        Self::with_fanout(max_entries, min_entries)
    }

    /// An empty tree with explicit fanout (small fanouts make structural
    /// tests exercise splits and reinsertions cheaply).
    pub fn with_fanout(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries >= 4, "fanout too small");
        assert!(
            min_entries >= 2 && min_entries <= max_entries / 2,
            "invalid minimum fill"
        );
        RStarTree {
            pages: vec![Node::new(0)],
            root: 0,
            max_entries,
            min_entries,
            len: 0,
            stats: PageStats::default(),
            buffer: Mutex::new(LruBuffer::new(0)),
        }
    }

    /// A structural copy of this tree for copy-on-write mutation: pages,
    /// root, fanout and length are cloned; access counters start at zero
    /// and the LRU buffer starts empty (the fork is a *new* serving
    /// artifact — live-scene deltas fork the shared tree, mutate the fork
    /// in place, and publish it as the next epoch while readers keep the
    /// original).
    pub fn fork(&self) -> RStarTree<T> {
        RStarTree {
            pages: self.pages.clone(),
            root: self.root,
            max_entries: self.max_entries,
            min_entries: self.min_entries,
            len: self.len,
            stats: PageStats::default(),
            buffer: Mutex::new(LruBuffer::new(0)),
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages (nodes) in the tree — the "tree size" that buffer
    /// percentages in Figure 12 refer to.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of levels (1 for a single leaf root).
    pub fn height(&self) -> u32 {
        self.pages[self.root as usize].level + 1
    }

    /// Maximum entries per node (page fanout).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Minimum fill per non-root node.
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// MBR of the whole tree.
    pub fn bounds(&self) -> Rect {
        self.pages[self.root as usize].mbr()
    }

    // ----- page access layer -------------------------------------------------

    /// Reads a page, charging the access (and a fault on buffer miss).
    #[inline]
    pub(crate) fn read(&self, page: PageId) -> &Node<T> {
        let hit = self
            .buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .access(page);
        self.stats.record(!hit);
        &self.pages[page as usize]
    }

    /// The root page id, for custom traversals (e.g. dual-tree joins).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Public charged page read for custom traversals: same accounting as
    /// the built-in queries.
    pub fn read_node(&self, page: PageId) -> &Node<T> {
        self.read(page)
    }

    /// Access counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the access counters (the paper resets them per query).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Sets the LRU buffer capacity to an absolute number of pages.
    pub fn set_buffer_pages(&self, pages: usize) {
        self.buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .set_capacity(pages);
    }

    /// Sets the buffer capacity as a fraction of the tree size (the unit of
    /// Figure 12's x-axis: `bs` % of the tree).
    pub fn set_buffer_frac(&self, frac: f64) {
        let pages = (self.num_pages() as f64 * frac).floor() as usize;
        self.set_buffer_pages(pages);
    }

    /// Drops all buffered pages (capacity is kept).
    pub fn clear_buffer(&self) {
        self.buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    // ----- whole-tree iteration (untracked; for tests and validation) -------

    /// Iterates over all items without charging I/O.
    pub fn iter_items(&self) -> impl Iterator<Item = &T> {
        self.pages.iter().flat_map(|n| {
            n.slots.iter().filter_map(|s| match s {
                Slot::Item(it) => Some(it),
                Slot::Child(_) => None,
            })
        })
    }

    /// Structural invariant check (tests): every child entry's stored MBR
    /// contains its subtree, levels decrease by one, and fill limits hold.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_node(self.root, None)?;
        let counted = self.iter_items().count();
        if counted != self.len {
            return Err(format!("len {} != stored items {}", self.len, counted));
        }
        Ok(())
    }

    /// Sanitizer hook: runs [`Self::check_invariants`] after a structure
    /// modification and aborts (via [`conn_geom::sanitize::violation`]) on
    /// any violation. Compiles to nothing without the `sanitize-invariants`
    /// feature; obeys the runtime switch with it.
    #[inline]
    pub(crate) fn audit_structure(&self, op: &str) {
        if conn_geom::sanitize::enabled() {
            if let Err(msg) = self.check_invariants() {
                conn_geom::sanitize::violation(op, &msg);
            }
        }
    }

    fn check_node(&self, page: PageId, expect_level: Option<u32>) -> Result<(), String> {
        let node = &self.pages[page as usize];
        if let Some(l) = expect_level {
            if node.level != l {
                return Err(format!("page {page}: level {} != expected {l}", node.level));
            }
        }
        let is_root = page == self.root;
        if node.mbrs.len() != node.slots.len() {
            return Err(format!(
                "page {page}: lanes diverged ({} envelopes, {} slots)",
                node.mbrs.len(),
                node.slots.len()
            ));
        }
        if !is_root && node.len() < self.min_entries {
            return Err(format!(
                "page {page}: underfull ({} < {})",
                node.len(),
                self.min_entries
            ));
        }
        if node.len() > self.max_entries {
            return Err(format!("page {page}: overfull ({})", node.len()));
        }
        if is_root && !node.is_leaf() && node.len() < 2 {
            return Err("non-leaf root with < 2 children".into());
        }
        for (mbr, slot) in node.mbrs.iter().zip(&node.slots) {
            match slot {
                Slot::Item(_) if !node.is_leaf() => {
                    return Err(format!("item in non-leaf page {page}"));
                }
                Slot::Item(item) => {
                    let actual = item.mbr();
                    if actual != *mbr {
                        return Err(format!("page {page}: stale item envelope"));
                    }
                }
                Slot::Child(child) => {
                    if node.is_leaf() {
                        return Err(format!("child pointer in leaf page {page}"));
                    }
                    let child_node = &self.pages[*child as usize];
                    let actual = child_node.mbr();
                    let grown = Rect::new(
                        mbr.min_x - 1e-9,
                        mbr.min_y - 1e-9,
                        mbr.max_x + 1e-9,
                        mbr.max_y + 1e-9,
                    );
                    if !(grown.contains(Point::new(actual.min_x, actual.min_y))
                        && grown.contains(Point::new(actual.max_x, actual.max_y)))
                    {
                        return Err(format!("page {page}: stale child MBR for {child}"));
                    }
                    self.check_node(*child, Some(node.level - 1))?;
                }
            }
        }
        Ok(())
    }

    /// Root page id (exposed for persistence).
    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    /// Raw page array (exposed for persistence).
    pub(crate) fn pages_raw(&self) -> &[Node<T>] {
        &self.pages
    }

    /// Rebuilds a tree from a validated page image (persistence loader).
    pub(crate) fn from_raw_parts(
        pages: Vec<Node<T>>,
        root: PageId,
        max_entries: usize,
        min_entries: usize,
        len: usize,
    ) -> Self {
        RStarTree {
            pages,
            root,
            max_entries,
            min_entries,
            len,
            stats: PageStats::default(),
            buffer: Mutex::new(LruBuffer::new(0)),
        }
    }

    pub(crate) fn alloc(&mut self, node: Node<T>) -> PageId {
        self.pages.push(node);
        (self.pages.len() - 1) as PageId
    }

    pub(crate) fn bump_len(&mut self) {
        self.len += 1;
    }

    pub(crate) fn set_len(&mut self, len: usize) {
        self.len = len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_from_page_size() {
        let t: RStarTree<Point> = RStarTree::new(DEFAULT_PAGE_SIZE);
        // (4096 - 16) / 40 = 102
        assert_eq!(t.max_entries(), 102);
        assert_eq!(t.min_entries(), 40);
        assert_eq!(t.height(), 1);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_fanout() {
        let _: RStarTree<Point> = RStarTree::with_fanout(3, 1);
    }

    #[test]
    fn read_charges_stats_and_buffer() {
        let t: RStarTree<Point> = RStarTree::with_fanout(8, 3);
        t.read(0);
        t.read(0);
        assert_eq!(t.stats().reads, 2);
        assert_eq!(t.stats().faults, 2); // no buffer
        t.set_buffer_pages(4);
        t.reset_stats();
        t.read(0);
        t.read(0);
        let s = t.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.faults, 1); // second read hits
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn structure_audit_fires_on_corrupted_mbr() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(i as f64 * 3.0, (i * 7 % 13) as f64))
            .collect();
        let mut t = RStarTree::bulk_load_with_fanout(pts, 4, 2);
        assert!(t.height() >= 2, "fixture needs an inner level");
        t.audit_structure("intact fixture"); // clean tree passes

        // Shrink a root entry's envelope so it no longer contains its
        // subtree (lane corruption: the slot itself stays intact).
        let root = t.root;
        assert!(
            matches!(t.pages[root as usize].slots[0], Slot::Child(_)),
            "two-level root holds child slots"
        );
        t.pages[root as usize].mbrs[0] = Rect::new(1e6, 1e6, 1e6 + 1.0, 1e6 + 1.0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.audit_structure("corrupted fixture")
        }))
        .expect_err("audit must fire on a corrupted MBR");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("sanitize-invariants"),
            "panic message should carry the sanitizer prefix, got: {msg}"
        );
    }
}
