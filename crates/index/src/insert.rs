//! R\*-tree insertion: ChooseSubtree, forced reinsertion, and the R\* split
//! (Beckmann et al., SIGMOD 1990 — reference \[1\] of the CONN paper).
//!
//! Forced reinsertion is implemented with a *deferred queue*: entries evicted
//! by OverflowTreatment are parked and re-inserted only after the current
//! descent fully unwinds. Re-entering the tree mid-descent (as a literal
//! reading of the R\* paper does) can split the root underneath an in-flight
//! recursion and corrupt ancestor MBRs; the deferred queue produces the same
//! tree-quality behaviour without the re-entrancy hazard.

// lint:allow-file(no-panic-in-query-path[index]): page ids and entry indices are tree-structural invariants (children exist, fanout within bounds) re-audited after every mutation by check_invariants / sanitize-invariants
use conn_geom::Rect;

use crate::node::{Mbr, Node, PageId, Slot};
use crate::tree::RStarTree;

/// Fraction of entries evicted by forced reinsertion (R\* recommends 30 %).
const REINSERT_FRAC: f64 = 0.3;

/// ChooseSubtree considers only this many least-area-enlargement candidates
/// when computing overlap enlargement at the leaf-parent level (the R\*
/// paper's CPU optimization for large fanouts).
const OVERLAP_CANDIDATES: usize = 32;

/// Upper bound on tree height used to size the per-level reinsert flags.
const MAX_LEVELS: usize = 64;

/// An entry waiting to be re-inserted at a given level.
struct Pending<T> {
    mbr: Rect,
    slot: Slot<T>,
    level: u32,
}

impl<T: Mbr + Clone> RStarTree<T> {
    /// Inserts one item (R\* algorithm, one forced-reinsert pass per level
    /// per insertion).
    pub fn insert(&mut self, item: T) {
        let mut reinserted = [false; MAX_LEVELS];
        let mut pending = vec![Pending {
            mbr: item.mbr(),
            slot: Slot::Item(item),
            level: 0,
        }];
        while let Some(p) = pending.pop() {
            self.insert_entry(p.mbr, p.slot, p.level, &mut reinserted, &mut pending);
        }
        self.bump_len();
        self.audit_structure("RStarTree::insert");
    }

    /// Inserts a raw slot at a given level through the full insertion
    /// machinery (used by deletion's condense-tree reattachment).
    pub(crate) fn insert_slot_at_level(&mut self, mbr: Rect, slot: Slot<T>, level: u32) {
        let mut reinserted = [false; MAX_LEVELS];
        let mut pending = vec![Pending { mbr, slot, level }];
        while let Some(p) = pending.pop() {
            self.insert_entry(p.mbr, p.slot, p.level, &mut reinserted, &mut pending);
        }
    }

    /// Top-level insertion of `entry` at `target_level`; grows the root on
    /// split.
    fn insert_entry(
        &mut self,
        mbr: Rect,
        slot: Slot<T>,
        target_level: u32,
        reinserted: &mut [bool; MAX_LEVELS],
        pending: &mut Vec<Pending<T>>,
    ) {
        if let Some((new_mbr, new_page)) =
            self.insert_rec(self.root, mbr, slot, target_level, reinserted, pending)
        {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let old_mbr = self.pages[old_root as usize].mbr();
            let new_level = self.pages[old_root as usize].level + 1;
            assert!((new_level as usize) < MAX_LEVELS, "tree too deep");
            let mut root = Node::new(new_level);
            root.push(old_mbr, Slot::Child(old_root));
            root.push(new_mbr, Slot::Child(new_page));
            self.root = self.alloc(root);
        }
    }

    /// Recursive descent. Returns `Some((mbr, page))` when this node split
    /// and the caller must register the new sibling.
    fn insert_rec(
        &mut self,
        page: PageId,
        mbr: Rect,
        slot: Slot<T>,
        target_level: u32,
        reinserted: &mut [bool; MAX_LEVELS],
        pending: &mut Vec<Pending<T>>,
    ) -> Option<(Rect, PageId)> {
        let level = self.pages[page as usize].level;
        if level == target_level {
            self.pages[page as usize].push(mbr, slot);
        } else {
            let idx = self.choose_subtree(page, &mbr);
            let child = match self.pages[page as usize].slots[idx] {
                Slot::Child(page) => page,
                // lint:allow(no-panic-in-query-path): page.level > 0 here
                Slot::Item(_) => unreachable!("item slot above the leaf level"),
            };
            let split = self.insert_rec(child, mbr, slot, target_level, reinserted, pending);
            // Refresh the child MBR from ground truth (reinsert eviction may
            // have shrunk the child).
            let child_mbr = self.pages[child as usize].mbr();
            self.pages[page as usize].mbrs[idx] = child_mbr;
            if let Some((sib_mbr, sib_page)) = split {
                self.pages[page as usize].push(sib_mbr, Slot::Child(sib_page));
            }
        }
        if self.pages[page as usize].len() > self.max_entries {
            return self.overflow(page, reinserted, pending);
        }
        None
    }

    /// R\* OverflowTreatment: first overflow on a level → forced reinsert
    /// (deferred); otherwise split.
    fn overflow(
        &mut self,
        page: PageId,
        reinserted: &mut [bool; MAX_LEVELS],
        pending: &mut Vec<Pending<T>>,
    ) -> Option<(Rect, PageId)> {
        let level = self.pages[page as usize].level as usize;
        if page != self.root && !reinserted[level] {
            reinserted[level] = true;
            self.evict_for_reinsert(page, pending);
            None
        } else {
            Some(self.split(page))
        }
    }

    /// Evicts the ~30 % of entries whose centers are farthest from the
    /// node's center onto the pending queue ("close reinsert": the nearest
    /// evicted entry is re-inserted first).
    fn evict_for_reinsert(&mut self, page: PageId, pending: &mut Vec<Pending<T>>) {
        let level = self.pages[page as usize].level;
        let center = self.pages[page as usize].mbr().center();
        let node = &mut self.pages[page as usize];
        let p = ((node.len() as f64 * REINSERT_FRAC).ceil() as usize).max(1);
        let mut keyed: Vec<(f64, Rect, Slot<T>)> = node
            .mbrs
            .drain(..)
            .zip(node.slots.drain(..))
            .map(|(r, s)| (r.center().dist_sq(center), r, s))
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        let evicted = keyed.split_off(keyed.len() - p);
        for (_, r, s) in keyed {
            node.push(r, s);
        }
        // pending is a stack: push farthest first so the nearest pops first
        for (_, mbr, slot) in evicted.into_iter().rev() {
            pending.push(Pending { mbr, slot, level });
        }
    }

    /// R\* ChooseSubtree: overlap-minimal child at the leaf-parent level,
    /// area-enlargement-minimal child above it.
    fn choose_subtree(&self, page: PageId, mbr: &Rect) -> usize {
        let node = &self.pages[page as usize];
        debug_assert!(!node.is_leaf());
        // all decisions below read only the contiguous envelope lane
        let lane = &node.mbrs;
        let enlargement = |r: &Rect| r.union(mbr).area() - r.area();
        if node.level == 1 {
            // children are leaves → minimize overlap enlargement among the
            // OVERLAP_CANDIDATES least-area-enlargement entries
            let mut order: Vec<usize> = (0..lane.len()).collect();
            order.sort_by(|&a, &b| enlargement(&lane[a]).total_cmp(&enlargement(&lane[b])));
            order.truncate(OVERLAP_CANDIDATES);
            let overlap_delta = |idx: usize| -> f64 {
                let r = lane[idx];
                let grown = r.union(mbr);
                let mut delta = 0.0;
                for (j, o) in lane.iter().enumerate() {
                    if j != idx {
                        delta += grown.intersection_area(o) - r.intersection_area(o);
                    }
                }
                delta
            };
            *order
                .iter()
                .min_by(|&&a, &&b| {
                    overlap_delta(a)
                        .total_cmp(&overlap_delta(b))
                        .then(enlargement(&lane[a]).total_cmp(&enlargement(&lane[b])))
                        .then(lane[a].area().total_cmp(&lane[b].area()))
                })
                // lint:allow(no-panic-in-query-path): nodes hold ≥ min_entries ≥ 1
                .expect("choose_subtree on empty node")
        } else {
            (0..lane.len())
                .min_by(|&a, &b| {
                    enlargement(&lane[a])
                        .total_cmp(&enlargement(&lane[b]))
                        .then(lane[a].area().total_cmp(&lane[b].area()))
                })
                // lint:allow(no-panic-in-query-path): nodes hold ≥ min_entries ≥ 1
                .expect("choose_subtree on empty node")
        }
    }

    /// R\* split: choose the axis minimizing the margin sum over all
    /// distributions (both lower- and upper-bound sortings), then the
    /// distribution minimizing overlap (ties: total area). Keeps the first
    /// group in place and returns the new sibling.
    pub(crate) fn split(&mut self, page: PageId) -> (Rect, PageId) {
        let level = self.pages[page as usize].level;
        let mbrs = std::mem::take(&mut self.pages[page as usize].mbrs);
        let slots = std::mem::take(&mut self.pages[page as usize].slots);
        let m = self.min_entries;
        let total = slots.len();
        debug_assert!(total > self.max_entries);

        let sort_key = |r: &Rect, axis: usize, upper: bool| -> (f64, f64) {
            match (axis, upper) {
                (0, false) => (r.min_x, r.max_x),
                (0, true) => (r.max_x, r.min_x),
                (1, false) => (r.min_y, r.max_y),
                _ => (r.max_y, r.min_y),
            }
        };
        let orderings: Vec<(usize, Vec<usize>)> = [(0, false), (0, true), (1, false), (1, true)]
            .iter()
            .map(|&(axis, upper)| {
                let mut idx: Vec<usize> = (0..total).collect();
                idx.sort_by(|&a, &b| {
                    let ka = sort_key(&mbrs[a], axis, upper);
                    let kb = sort_key(&mbrs[b], axis, upper);
                    ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
                });
                (axis, idx)
            })
            .collect();

        // prefix[i] = mbr of order[..=i]; suffix[i] = mbr of order[i..]
        let group_mbrs = |order: &[usize]| -> (Vec<Rect>, Vec<Rect>) {
            let mut prefix = Vec::with_capacity(total);
            let mut acc = mbrs[order[0]];
            prefix.push(acc);
            for &i in &order[1..] {
                acc = acc.union(&mbrs[i]);
                prefix.push(acc);
            }
            // Infallible: an overflowing node has max_entries + 1 entries.
            // lint:allow(no-panic-in-query-path)
            let mut suffix = vec![mbrs[*order.last().unwrap()]; total];
            for k in (0..total - 1).rev() {
                suffix[k] = suffix[k + 1].union(&mbrs[order[k]]);
            }
            (prefix, suffix)
        };

        let mut axis_margin = [0.0f64; 2];
        for (axis, order) in &orderings {
            let (prefix, suffix) = group_mbrs(order);
            for k in m..=(total - m) {
                axis_margin[*axis] += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        let best_axis = if axis_margin[0] <= axis_margin[1] {
            0
        } else {
            1
        };

        let mut best: Option<(f64, f64, usize, usize)> = None; // (overlap, area, ordering idx, k)
        for (oi, (axis, order)) in orderings.iter().enumerate() {
            if *axis != best_axis {
                continue;
            }
            let (prefix, suffix) = group_mbrs(order);
            for k in m..=(total - m) {
                let (g1, g2) = (prefix[k - 1], suffix[k]);
                let overlap = g1.intersection_area(&g2);
                let area = g1.area() + g2.area();
                let better = match &best {
                    None => true,
                    Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
                };
                if better {
                    best = Some((overlap, area, oi, k));
                }
            }
        }
        // Infallible: the distribution loop always runs at least once.
        // lint:allow(no-panic-in-query-path)
        let (_, _, oi, k) = best.expect("split found no distribution");
        let order = &orderings[oi].1;

        let mut taken = vec![false; total];
        for &i in &order[..k] {
            taken[i] = true;
        }
        let node = &mut self.pages[page as usize];
        node.mbrs.reserve(k);
        node.slots.reserve(k);
        let mut sibling = Node::new(level);
        sibling.mbrs.reserve(total - k);
        sibling.slots.reserve(total - k);
        for (i, (r, s)) in mbrs.into_iter().zip(slots).enumerate() {
            if taken[i] {
                node.push(r, s);
            } else {
                sibling.push(r, s);
            }
        }
        let sib_mbr = sibling.mbr();
        let sib_page = self.alloc(sibling);
        (sib_mbr, sib_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn grid_points(n: usize) -> Vec<Point> {
        // deterministic but scattered: low-discrepancy-ish lattice
        (0..n)
            .map(|i| {
                let x = (i as f64 * 137.508) % 1000.0;
                let y = (i as f64 * 57.295) % 1000.0;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn insert_grows_and_keeps_invariants() {
        let mut t: RStarTree<Point> = RStarTree::with_fanout(8, 3);
        for (i, p) in grid_points(500).into_iter().enumerate() {
            t.insert(p);
            assert_eq!(t.len(), i + 1);
            if i % 50 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        assert!(t.height() >= 3, "500 items at fanout 8 must be deep");
    }

    #[test]
    fn all_items_remain_findable() {
        let mut t: RStarTree<Point> = RStarTree::with_fanout(8, 3);
        let pts = grid_points(300);
        for p in &pts {
            t.insert(*p);
        }
        let stored: Vec<Point> = t.iter_items().copied().collect();
        assert_eq!(stored.len(), pts.len());
        for p in &pts {
            assert!(stored.iter().any(|s| s.dist(*p) == 0.0), "lost point {p}");
        }
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut t: RStarTree<Point> = RStarTree::with_fanout(4, 2);
        for _ in 0..50 {
            t.insert(Point::new(5.0, 5.0));
        }
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap();
    }

    #[test]
    fn rect_items_work_too() {
        let mut t: RStarTree<Rect> = RStarTree::with_fanout(8, 3);
        for (i, p) in grid_points(200).into_iter().enumerate() {
            let w = 1.0 + (i % 7) as f64;
            t.insert(Rect::new(p.x, p.y, p.x + w, p.y + 2.0));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn clustered_insertion_order_still_valid() {
        // pathological order: sorted along a diagonal, stresses reinsertion
        let mut t: RStarTree<Point> = RStarTree::with_fanout(6, 2);
        for i in 0..400 {
            let v = i as f64;
            t.insert(Point::new(v, v * 0.5));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 400);
    }
}
