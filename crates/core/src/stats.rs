//! Per-query statistics matching the paper's performance metrics (§5.1):
//! I/O cost, CPU time, query cost (CPU + 10 ms per page fault), visibility
//! graph size |SVG|, number of points evaluated (NPE) and number of
//! obstacles evaluated (NOE).

use std::time::Duration;

use conn_index::{Mbr, RStarTree, StatsSnapshot};

/// Milliseconds charged per R-tree page fault (paper §5.1).
pub const IO_MS_PER_FAULT: f64 = 10.0;

/// Tree-counter window shared by the point-anchored families (ONN, range,
/// RNN): resets both trees' counters at query start when `track_io` (the
/// serial / free-function contract) and snapshots them at the end. In
/// pooled mode (`track_io = false`, batch workers on shared trees) both
/// steps are skipped — resets would race across workers — and the
/// snapshots read zero, with I/O pooled at the batch level instead.
pub(crate) struct IoWindow {
    track: bool,
}

impl IoWindow {
    pub(crate) fn begin<A: Mbr + Clone, B: Mbr + Clone>(
        track_io: bool,
        a: &RStarTree<A>,
        b: &RStarTree<B>,
    ) -> Self {
        if track_io {
            a.reset_stats();
            b.reset_stats();
        }
        IoWindow { track: track_io }
    }

    pub(crate) fn end<A: Mbr + Clone, B: Mbr + Clone>(
        &self,
        a: &RStarTree<A>,
        b: &RStarTree<B>,
    ) -> (StatsSnapshot, StatsSnapshot) {
        if self.track {
            (a.stats(), b.stats())
        } else {
            (StatsSnapshot::default(), StatsSnapshot::default())
        }
    }
}

/// Allocation-avoidance counters of the reusable query engine. All three
/// are zero when a query runs on fresh per-query state (the legacy
/// free-function API) and grow once a [`crate::QueryEngine`] is reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseCounters {
    /// Queries that reused an already-allocated visibility graph (i.e. ran
    /// on a reset workspace instead of a fresh allocation).
    pub graph_reuses: u64,
    /// Node-slot edge lists whose allocations survived the workspace reset
    /// and were re-bound by this query.
    pub nodes_retained: u64,
    /// Dijkstra preparations that reused retained label/heap capacity
    /// instead of allocating a new engine.
    pub heap_reuses: u64,
    /// Searches served by replaying the retained settlement prefix of the
    /// previous search (the CPLC-after-IOR continuation).
    pub label_continuations: u64,
    /// Searches warm-restarted after obstacle loads by reseeding the labels
    /// whose witness paths the new obstacles do not cross.
    pub label_reseeds: u64,
    /// Searches warm-restarted under a *changed goal* (trajectory sessions
    /// moving to the next leg, odist calls toward a moved target): settled
    /// labels are exact regardless of the heuristic, so they re-enter the
    /// heap re-keyed by the new goal instead of a cold start.
    pub label_retargets: u64,
    /// Segment-vs-rectangle sight tests charged by the visibility substrate
    /// during this query: edge derivations, visible-region shadow
    /// classification and point-membership probes all count here. This is
    /// the unit of work the batched SoA kernels vectorize, so it is the
    /// denominator for judging the substrate's per-test cost.
    pub sight_tests: u64,
    /// Rotational plane-sweep events processed by adjacency-cache builds
    /// during this query — the sweep's unit of work, recorded alongside
    /// `sight_tests` so the pre-sweep and sweep cost models stay
    /// comparable across the trajectory. Zero when the sweep is off.
    pub sweep_events: u64,
    /// Queries answered entirely inside one spatial shard: the expansion
    /// bound fit the shard's coverage margin (the locality certificate
    /// held), so the full scene was never consulted. Zero on unsharded
    /// services.
    pub shard_local: u64,
    /// Queries whose expansion bound straddled a shard boundary: the
    /// shard-local attempt was discarded and the answer merged by running
    /// against the full scene. Zero on unsharded services.
    pub shard_merges: u64,
    /// Settled Dijkstra labels dropped by surgical invalidation during
    /// this query's window: labels whose witness paths a loaded obstacle
    /// crossed (reseed) or that fell inside a removed obstacle's shadow
    /// ellipse (the paths-only-shorten counterpart). Zero on cold starts.
    pub labels_invalidated: u64,
    /// Adjacency-cache ranges the visibility graph repaired or staled in
    /// place during this query's window — incremental CSR surgery after a
    /// live mutation, instead of a full rebuild.
    pub adjacency_repairs: u64,
    /// Scene deltas published through the epoch layer by the live-scene
    /// mutation path ([`crate::LiveScene`]). Zero for plain queries; the
    /// live subsystem accounts its publications here so BENCH reports can
    /// amortize them per delta.
    pub delta_publishes: u64,
}

impl ReuseCounters {
    /// Element-wise sum.
    pub fn accumulate(&mut self, other: &ReuseCounters) {
        self.graph_reuses += other.graph_reuses;
        self.nodes_retained += other.nodes_retained;
        self.heap_reuses += other.heap_reuses;
        self.label_continuations += other.label_continuations;
        self.label_reseeds += other.label_reseeds;
        self.label_retargets += other.label_retargets;
        self.sight_tests += other.sight_tests;
        self.sweep_events += other.sweep_events;
        self.shard_local += other.shard_local;
        self.shard_merges += other.shard_merges;
        self.labels_invalidated += other.labels_invalidated;
        self.adjacency_repairs += other.adjacency_repairs;
        self.delta_publishes += other.delta_publishes;
    }
}

/// Everything the evaluation section measures about one query.
#[derive(Debug, Clone, Copy, Default)]
#[must_use]
pub struct QueryStats {
    /// Data R-tree accesses (for the 1T variant, the unified tree's
    /// accesses are reported here and `obstacle_io` stays zero).
    pub data_io: StatsSnapshot,
    /// Obstacle R-tree accesses.
    pub obstacle_io: StatsSnapshot,
    /// Wall-clock CPU time of the query.
    pub cpu: Duration,
    /// Number of data points evaluated (paper: NPE).
    pub npe: u64,
    /// Number of obstacles inserted into the local visibility graph
    /// (paper: NOE).
    pub noe: u64,
    /// Vertices of the local visibility graph at query end (paper: |SVG|).
    pub svg_nodes: u64,
    /// Tuples in the final result list.
    pub result_tuples: u64,
    /// Substrate-reuse counters (zero for fresh per-query state).
    pub reuse: ReuseCounters,
}

impl QueryStats {
    /// Total page faults across both trees.
    pub fn faults(&self) -> u64 {
        self.data_io.faults + self.obstacle_io.faults
    }

    /// Total logical page reads across both trees.
    pub fn reads(&self) -> u64 {
        self.data_io.reads + self.obstacle_io.reads
    }

    /// Simulated I/O time (10 ms per fault), in seconds.
    pub fn io_seconds(&self) -> f64 {
        self.faults() as f64 * IO_MS_PER_FAULT / 1000.0
    }

    /// The paper's "total query time": CPU + charged I/O, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.cpu.as_secs_f64() + self.io_seconds()
    }

    /// Element-wise sum (used to average over a workload of queries).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.data_io.reads += other.data_io.reads;
        self.data_io.faults += other.data_io.faults;
        self.obstacle_io.reads += other.obstacle_io.reads;
        self.obstacle_io.faults += other.obstacle_io.faults;
        self.cpu += other.cpu;
        self.npe += other.npe;
        self.noe += other.noe;
        self.svg_nodes += other.svg_nodes;
        self.result_tuples += other.result_tuples;
        self.reuse.accumulate(&other.reuse);
    }

    /// Divides all counters by `n` (averaging helper; counters round down).
    pub fn averaged(&self, n: u64) -> AveragedStats {
        let n = n.max(1) as f64;
        AveragedStats {
            reads: self.reads() as f64 / n,
            faults: self.faults() as f64 / n,
            cpu_s: self.cpu.as_secs_f64() / n,
            io_s: self.io_seconds() / n,
            total_s: self.total_seconds() / n,
            npe: self.npe as f64 / n,
            noe: self.noe as f64 / n,
            svg_nodes: self.svg_nodes as f64 / n,
            result_tuples: self.result_tuples as f64 / n,
        }
    }
}

/// Workload-averaged metrics, as reported in the paper's figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AveragedStats {
    /// Mean logical page reads per query.
    pub reads: f64,
    /// Mean page faults per query.
    pub faults: f64,
    /// Mean CPU seconds per query.
    pub cpu_s: f64,
    /// Mean charged I/O seconds per query (faults × 10 ms).
    pub io_s: f64,
    /// Mean total seconds per query (`cpu_s + io_s`).
    pub total_s: f64,
    /// Mean data points evaluated per query.
    pub npe: f64,
    /// Mean obstacles evaluated per query.
    pub noe: f64,
    /// Mean visibility-graph size per query.
    pub svg_nodes: f64,
    /// Mean result tuples per query.
    pub result_tuples: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(reads: u64, faults: u64) -> StatsSnapshot {
        StatsSnapshot { reads, faults }
    }

    #[test]
    fn totals_combine_cpu_and_charged_io() {
        let s = QueryStats {
            data_io: snap(30, 10),
            obstacle_io: snap(20, 5),
            cpu: Duration::from_millis(250),
            ..Default::default()
        };
        assert_eq!(s.faults(), 15);
        assert_eq!(s.reads(), 50);
        assert!((s.io_seconds() - 0.15).abs() < 1e-12);
        assert!((s.total_seconds() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn accumulate_and_average() {
        let mut acc = QueryStats::default();
        for i in 1..=4u64 {
            acc.accumulate(&QueryStats {
                data_io: snap(10 * i, i),
                cpu: Duration::from_millis(100),
                npe: i,
                noe: 2 * i,
                svg_nodes: 5,
                result_tuples: 3,
                ..Default::default()
            });
        }
        let avg = acc.averaged(4);
        assert!((avg.reads - 25.0).abs() < 1e-9);
        assert!((avg.npe - 2.5).abs() < 1e-9);
        assert!((avg.noe - 5.0).abs() < 1e-9);
        assert!((avg.cpu_s - 0.1).abs() < 1e-9);
        assert_eq!(avg.svg_nodes, 5.0);
    }
}
