//! Trajectory CONN — the first future-work item of the paper's §6:
//! "retrieving the ONN of every point on a specified moving trajectory that
//! consists of several consecutive line segments".
//!
//! A trajectory query runs the CONN/COkNN machinery per leg and stitches
//! the per-leg result lists into one answer parameterized by cumulative
//! arclength. Each leg is an independent Algorithm-4 run (its own local
//! visibility graph, pruned by its own `RLMAX`), which preserves the
//! exactness argument leg by leg; the stitching only re-indexes parameters
//! and merges equal answers across the joints.

use conn_geom::{Interval, Point, Rect, Segment};
use conn_index::RStarTree;

use crate::coknn::coknn_search;
use crate::config::ConnConfig;
use crate::conn::conn_search;
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// A polyline trajectory: consecutive line segments through `vertices`.
#[derive(Debug, Clone)]
pub struct Trajectory {
    vertices: Vec<Point>,
    /// cumulative arclength at each vertex (`cum[0] = 0`)
    cum: Vec<f64>,
}

impl Trajectory {
    /// Builds a trajectory; needs ≥ 2 vertices and no degenerate leg.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 2,
            "trajectory needs at least two vertices"
        );
        let mut cum = Vec::with_capacity(vertices.len());
        cum.push(0.0);
        for w in vertices.windows(2) {
            let leg = Segment::new(w[0], w[1]);
            assert!(!leg.is_degenerate(), "degenerate trajectory leg");
            cum.push(cum.last().unwrap() + leg.len());
        }
        Trajectory { vertices, cum }
    }

    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of legs (segments).
    pub fn num_legs(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Total arclength.
    pub fn len(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    pub fn is_empty(&self) -> bool {
        false // by construction: ≥ 2 vertices, no degenerate legs
    }

    /// The `i`-th leg as a segment.
    pub fn leg(&self, i: usize) -> Segment {
        Segment::new(self.vertices[i], self.vertices[i + 1])
    }

    /// Cumulative arclength offset of leg `i`.
    pub fn leg_offset(&self, i: usize) -> f64 {
        self.cum[i]
    }

    /// The point at cumulative arclength `t ∈ [0, len]` (clamped).
    pub fn at(&self, t: f64) -> Point {
        let t = t.clamp(0.0, self.len());
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&t)) {
            Ok(i) => i.min(self.num_legs() - 1),
            Err(i) => i - 1,
        };
        let i = i.min(self.num_legs() - 1);
        self.leg(i).at(t - self.cum[i])
    }
}

/// Answer of a trajectory CONN query: `⟨point, interval⟩` tuples over the
/// trajectory's cumulative arclength.
#[derive(Debug, Clone)]
pub struct TrajectoryResult {
    trajectory: Trajectory,
    segments: Vec<(Option<DataPoint>, Interval)>,
}

impl TrajectoryResult {
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The stitched `⟨p, R⟩` tuples (R in cumulative arclength).
    pub fn segments(&self) -> &[(Option<DataPoint>, Interval)] {
        &self.segments
    }

    /// The ONN at cumulative arclength `t`, with its obstructed distance
    /// re-derived from the owning tuple is not stored; use
    /// [`TrajectoryResult::nn_at`] for identity and the per-leg results for
    /// distances.
    pub fn nn_at(&self, t: f64) -> Option<DataPoint> {
        self.segments
            .iter()
            .find(|(_, iv)| iv.contains(t))
            .and_then(|(p, _)| *p)
    }

    /// Split points in cumulative arclength (answer changes only here).
    pub fn split_points(&self) -> Vec<f64> {
        self.segments.windows(2).map(|w| w[0].1.hi).collect()
    }

    /// Validation: tuples cover `[0, len]` without gaps.
    pub fn check_cover(&self) -> Result<(), String> {
        let mut cursor = 0.0;
        for (_, iv) in &self.segments {
            if (iv.lo - cursor).abs() > 1e-6 {
                return Err(format!("gap at {cursor}"));
            }
            cursor = iv.hi;
        }
        if (cursor - self.trajectory.len()).abs() > 1e-6 {
            return Err(format!("cover ends at {cursor}"));
        }
        Ok(())
    }
}

/// Trajectory CONN (k = 1): the ONN of every point along a polyline.
///
/// Statistics are summed over the legs (each leg is one Algorithm-4 run).
///
/// ```
/// use conn_core::{trajectory_conn_search, ConnConfig, DataPoint, Trajectory};
/// use conn_geom::{Point, Rect};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(
///     vec![
///         DataPoint::new(0, Point::new(10.0, 30.0)),
///         DataPoint::new(1, Point::new(100.0, 60.0)),
///     ],
///     4096,
/// );
/// let obstacles: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
/// let route = Trajectory::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(100.0, 0.0),
///     Point::new(100.0, 80.0),
/// ]);
///
/// let (plan, _) = trajectory_conn_search(&points, &obstacles, &route, &ConnConfig::default());
/// plan.check_cover().unwrap();
/// assert_eq!(plan.nn_at(0.0).unwrap().id, 0);
/// assert_eq!(plan.nn_at(route.len()).unwrap().id, 1);
/// ```
pub fn trajectory_conn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectory: &Trajectory,
    cfg: &ConnConfig,
) -> (TrajectoryResult, QueryStats) {
    let mut total = QueryStats::default();
    let mut segments: Vec<(Option<DataPoint>, Interval)> = Vec::new();
    for i in 0..trajectory.num_legs() {
        let leg = trajectory.leg(i);
        let offset = trajectory.leg_offset(i);
        let (res, stats) = conn_search(data_tree, obstacle_tree, &leg, cfg);
        total.accumulate(&stats);
        for (p, iv) in res.segments() {
            let shifted = Interval::new(iv.lo + offset, iv.hi + offset);
            match segments.last_mut() {
                // merge across the joint when the answer persists
                Some((prev, prev_iv)) if prev.map(|x| x.id) == p.map(|x| x.id) => {
                    prev_iv.hi = shifted.hi;
                }
                _ => segments.push((p, shifted)),
            }
        }
    }
    total.result_tuples = segments.len() as u64;
    (
        TrajectoryResult {
            trajectory: trajectory.clone(),
            segments,
        },
        total,
    )
}

/// Trajectory COkNN: the k nearest per point along a polyline. Returns the
/// per-leg results (cumulative-arclength stitching of full kNN sets keeps
/// every member's control points; exposing the per-leg structure is the
/// honest API) plus summed statistics.
pub fn trajectory_coknn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectory: &Trajectory,
    k: usize,
    cfg: &ConnConfig,
) -> (Vec<crate::coknn::CoknnResult>, QueryStats) {
    let mut total = QueryStats::default();
    let mut legs = Vec::with_capacity(trajectory.num_legs());
    for i in 0..trajectory.num_legs() {
        let leg = trajectory.leg(i);
        let (res, stats) = coknn_search(data_tree, obstacle_tree, &leg, k, cfg);
        total.accumulate(&stats);
        legs.push(res);
    }
    (legs, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_oknn;

    fn l_shape() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 80.0),
        ])
    }

    #[test]
    fn parameterization_across_legs() {
        let t = l_shape();
        assert_eq!(t.num_legs(), 2);
        assert_eq!(t.len(), 180.0);
        assert_eq!(t.at(0.0), Point::new(0.0, 0.0));
        assert_eq!(t.at(100.0), Point::new(100.0, 0.0));
        assert_eq!(t.at(140.0), Point::new(100.0, 40.0));
        assert_eq!(t.at(180.0), Point::new(100.0, 80.0));
        // clamping
        assert_eq!(t.at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(t.at(500.0), Point::new(100.0, 80.0));
    }

    #[test]
    #[should_panic]
    fn rejects_single_vertex() {
        let _ = Trajectory::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_leg() {
        let _ = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
        ]);
    }

    #[test]
    fn trajectory_conn_matches_brute_force() {
        let points = vec![
            DataPoint::new(0, Point::new(20.0, 30.0)),
            DataPoint::new(1, Point::new(80.0, -20.0)),
            DataPoint::new(2, Point::new(130.0, 50.0)),
        ];
        let obstacles = vec![
            Rect::new(40.0, 10.0, 60.0, 25.0),
            Rect::new(110.0, 20.0, 120.0, 60.0),
        ];
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let traj = l_shape();
        let (res, stats) = trajectory_conn_search(&dt, &ot, &traj, &ConnConfig::default());
        res.check_cover().unwrap();
        assert!(stats.npe >= 3, "per-leg runs accumulate NPE");
        for i in 0..=36 {
            let t = traj.len() * (i as f64) / 36.0;
            let want = brute_force_oknn(&points, &obstacles, traj.at(t), 1);
            let got = res.nn_at(t);
            match (got, want.first()) {
                (Some(g), Some((w, wd))) => {
                    if g.id != w.id {
                        // only acceptable under a tie
                        let gd = crate::odist::obstructed_distance(&obstacles, g.pos, traj.at(t));
                        assert!((gd - wd).abs() < 1e-6, "t={t}: {} vs {}", g.id, w.id);
                    }
                }
                (g, w) => assert_eq!(g.is_none(), w.is_none(), "t = {t}"),
            }
        }
    }

    #[test]
    fn joint_merging_collapses_same_answer() {
        // a single point: both legs answer it → one stitched tuple
        let points = vec![DataPoint::new(0, Point::new(50.0, 40.0))];
        let dt = RStarTree::bulk_load(points, 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let (res, _) = trajectory_conn_search(&dt, &ot, &l_shape(), &ConnConfig::default());
        assert_eq!(res.segments().len(), 1);
        assert_eq!(res.split_points().len(), 0);
    }

    #[test]
    fn trajectory_coknn_per_leg_results() {
        let points = vec![
            DataPoint::new(0, Point::new(20.0, 30.0)),
            DataPoint::new(1, Point::new(80.0, -20.0)),
            DataPoint::new(2, Point::new(130.0, 50.0)),
        ];
        let dt = RStarTree::bulk_load(points, 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let traj = l_shape();
        let (legs, stats) = trajectory_coknn_search(&dt, &ot, &traj, 2, &ConnConfig::default());
        assert_eq!(legs.len(), 2);
        assert!(stats.npe >= 3);
        for leg in &legs {
            leg.check_cover().unwrap();
            assert_eq!(leg.knn_at(10.0).len(), 2);
        }
    }
}
