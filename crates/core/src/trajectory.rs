//! Trajectory CONN — the first future-work item of the paper's §6:
//! "retrieving the ONN of every point on a specified moving trajectory that
//! consists of several consecutive line segments".
//!
//! A trajectory query runs the CONN/COkNN machinery per leg and stitches
//! the per-leg result lists into one answer parameterized by cumulative
//! arclength. The batch entry points here replay the trajectory's legs
//! through a [`crate::TrajectorySession`], which keeps one query engine —
//! visibility graph, loaded obstacles, Dijkstra substrate — alive across
//! the legs instead of paying a cold Algorithm-4 start per leg; each leg
//! is still its own exact run (the session only shares monotone state), so
//! the exactness argument holds leg by leg. The stitching re-indexes
//! parameters into cumulative arclength, merges equal answers across the
//! joints, and absorbs sub-`EPS` slivers produced by per-leg float drift
//! at the shared vertices.
//!
//! [`trajectory_conn_search_cold`] keeps the original cold-per-leg
//! execution as the reference implementation — it is the baseline that
//! `repro --target traj` measures the session against, and the oracle the
//! streaming-equivalence proptests compare to.

// lint:allow-file(no-panic-in-query-path[index]): leg/vertex indices are bounded by the constructor-validated vertex count
use conn_geom::{Interval, Point, Rect, Segment, EPS};
use conn_index::RStarTree;

use crate::coknn::coknn_search;
use crate::config::ConnConfig;
use crate::conn::conn_search;
use crate::session::TrajectoryCoknnSession;
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// A polyline trajectory: consecutive line segments through `vertices`.
#[derive(Debug, Clone)]
pub struct Trajectory {
    vertices: Vec<Point>,
    /// cumulative arclength at each vertex (`cum[0] = 0`)
    cum: Vec<f64>,
}

impl Trajectory {
    /// Builds a trajectory; needs ≥ 2 vertices and no degenerate leg.
    /// Panics on invalid input — [`Trajectory::try_new`] is the checked
    /// variant the typed query API builds on.
    pub fn new(vertices: Vec<Point>) -> Self {
        Trajectory::try_new(vertices).unwrap_or_else(|e| panic!("{e}")) // lint:allow(no-panic-in-query-path)
    }

    /// Checked constructor: rejects fewer than 2 vertices, non-finite
    /// coordinates and degenerate (zero-length) legs with
    /// [`Error::InvalidQuery`](crate::Error::InvalidQuery).
    pub fn try_new(vertices: Vec<Point>) -> Result<Self, crate::Error> {
        if vertices.len() < 2 {
            return Err(crate::Error::invalid_query(
                "trajectory needs at least two vertices",
            ));
        }
        let mut cum = Vec::with_capacity(vertices.len());
        cum.push(0.0);
        for w in vertices.windows(2) {
            if !w[1].x.is_finite()
                || !w[1].y.is_finite()
                || !w[0].x.is_finite()
                || !w[0].y.is_finite()
            {
                return Err(crate::Error::invalid_query("non-finite trajectory vertex"));
            }
            let leg = Segment::new(w[0], w[1]);
            if leg.is_degenerate() {
                return Err(crate::Error::invalid_query("degenerate trajectory leg"));
            }
            // Infallible: cum is seeded with 0.0 before the loop.
            // lint:allow(no-panic-in-query-path)
            cum.push(cum.last().unwrap() + leg.len());
        }
        Ok(Trajectory { vertices, cum })
    }

    /// The polyline vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of legs (segments).
    pub fn num_legs(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Total arclength.
    pub fn len(&self) -> f64 {
        // Infallible: cum is non-empty for every constructed trajectory.
        // lint:allow(no-panic-in-query-path)
        *self.cum.last().unwrap()
    }

    /// Whether the trajectory has zero arclength. Derived from [`Self::len`]
    /// for the `len`/`is_empty` idiom; by construction (≥ 2 vertices, no
    /// degenerate leg) this is always `false`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0.0
    }

    /// The `i`-th leg as a segment.
    pub fn leg(&self, i: usize) -> Segment {
        Segment::new(self.vertices[i], self.vertices[i + 1])
    }

    /// Cumulative arclength offset of leg `i`.
    pub fn leg_offset(&self, i: usize) -> f64 {
        self.cum[i]
    }

    /// The point at cumulative arclength `t ∈ [0, len]` (clamped; a NaN
    /// parameter maps to the start — `clamp` propagates NaN, which would
    /// otherwise send `binary_search_by` to `Err(0)` and underflow `i - 1`).
    pub fn at(&self, t: f64) -> Point {
        let t = if t.is_nan() {
            0.0
        } else {
            // `+ 0.0` normalizes -0.0, which `clamp` keeps and `total_cmp`
            // orders before cum[0] = 0.0 (the same Err(0) underflow)
            t.clamp(0.0, self.len()) + 0.0
        };
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&t)) {
            Ok(i) => i.min(self.num_legs() - 1),
            Err(i) => i - 1,
        };
        let i = i.min(self.num_legs() - 1);
        self.leg(i).at(t - self.cum[i])
    }
}

/// Answer of a trajectory CONN query: `⟨point, interval⟩` tuples over the
/// trajectory's cumulative arclength.
#[derive(Debug, Clone)]
pub struct TrajectoryResult {
    trajectory: Trajectory,
    segments: Vec<(Option<DataPoint>, Interval)>,
}

impl TrajectoryResult {
    pub(crate) fn new(
        trajectory: Trajectory,
        segments: Vec<(Option<DataPoint>, Interval)>,
    ) -> Self {
        TrajectoryResult {
            trajectory,
            segments,
        }
    }

    /// The route the result answers.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The stitched `⟨p, R⟩` tuples (R in cumulative arclength).
    pub fn segments(&self) -> &[(Option<DataPoint>, Interval)] {
        &self.segments
    }

    /// The ONN at cumulative arclength `t` — identity only. The stitched
    /// tuples do not retain the per-leg control points, so the obstructed
    /// distance is not stored here; re-derive it with
    /// [`crate::obstructed_distance`] against the trajectory point, or run
    /// the per-leg [`crate::conn_search`] when distances are needed along
    /// a whole leg.
    pub fn nn_at(&self, t: f64) -> Option<DataPoint> {
        self.segments
            .iter()
            .find(|(_, iv)| iv.contains(t))
            .and_then(|(p, _)| *p)
    }

    /// Split points in cumulative arclength (answer changes only here).
    pub fn split_points(&self) -> Vec<f64> {
        self.segments.windows(2).map(|w| w[0].1.hi).collect()
    }

    /// Validation: tuples cover `[0, len]` without gaps, and every tuple
    /// has strictly positive width — the stitcher must never emit the
    /// zero-width slivers that per-leg float drift can produce at joints.
    pub fn check_cover(&self) -> Result<(), crate::Error> {
        let mut cursor = 0.0;
        for (_, iv) in &self.segments {
            if (iv.lo - cursor).abs() > 1e-6 {
                return Err(crate::Error::cover_violation(format!("gap at {cursor}")));
            }
            if iv.hi <= iv.lo {
                return Err(crate::Error::cover_violation(format!(
                    "empty tuple at {}",
                    iv.lo
                )));
            }
            cursor = iv.hi;
        }
        if (cursor - self.trajectory.len()).abs() > 1e-6 {
            return Err(crate::Error::cover_violation(format!(
                "cover ends at {cursor}"
            )));
        }
        Ok(())
    }
}

/// Appends one leg's merged `⟨p, R⟩` tuples (leg-local parameters) onto a
/// stitched cumulative list covering `[0, end]`.
///
/// Joint hygiene lives here: every interval is re-based onto the running
/// cursor, so per-leg float drift at a shared vertex (a leg's cover ending
/// at `len ± 1e-9`) snaps instead of leaking as a gap or a zero-width
/// sliver; equal answers merge across the joint; and tuples narrower than
/// `EPS` are absorbed into a neighbor — at such a boundary the two answers
/// tie to within `EPS`, so the absorbed answer is correct there.
pub(crate) fn stitch_leg(
    out: &mut Vec<(Option<DataPoint>, Interval)>,
    leg: &[(Option<DataPoint>, Interval)],
    offset: f64,
    end: f64,
) {
    let mut cursor = offset;
    for (i, (p, iv)) in leg.iter().enumerate() {
        let hi = if i + 1 == leg.len() {
            // the leg's last tuple closes exactly at the joint — but only
            // genuine float drift may be absorbed; a leg result that
            // under-covers its segment is a kernel bug the stitcher must
            // not paper over
            debug_assert!(
                (offset + iv.hi - end).abs() <= 1e-6,
                "leg cover ends at {} instead of {} — not joint drift",
                offset + iv.hi,
                end
            );
            end
        } else {
            let raw = offset + iv.hi;
            let clamped = raw.clamp(cursor, end);
            debug_assert!(
                (raw - clamped).abs() <= 1e-6,
                "mid-leg tuple boundary {raw} re-based by more than drift to {clamped}"
            );
            clamped
        };
        push_stitched(out, *p, Interval { lo: cursor, hi });
        cursor = hi;
    }
}

fn push_stitched(out: &mut Vec<(Option<DataPoint>, Interval)>, p: Option<DataPoint>, iv: Interval) {
    let Some((last_p, last_iv)) = out.last_mut() else {
        out.push((p, iv));
        return;
    };
    if last_p.map(|x| x.id) == p.map(|x| x.id) {
        // same answer persists across the boundary: extend
        last_iv.hi = last_iv.hi.max(iv.hi);
        return;
    }
    if iv.hi - iv.lo < EPS {
        // incoming sub-EPS sliver: absorb into the previous tuple
        last_iv.hi = last_iv.hi.max(iv.hi);
        return;
    }
    if last_iv.hi - last_iv.lo < EPS {
        // the previous tuple was a (leading) sliver: hand its span to the
        // incoming tuple, re-checking the merge against the new last
        let lo = last_iv.lo;
        out.pop();
        push_stitched(out, p, Interval::new(lo, iv.hi));
        return;
    }
    out.push((p, iv));
}

/// Trajectory CONN (k = 1): the ONN of every point along a polyline.
///
/// Statistics are summed over the legs (each leg is one Algorithm-4 run).
///
/// ```
/// use conn_core::{trajectory_conn_search, ConnConfig, DataPoint, Trajectory};
/// use conn_geom::{Point, Rect};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(
///     vec![
///         DataPoint::new(0, Point::new(10.0, 30.0)),
///         DataPoint::new(1, Point::new(100.0, 60.0)),
///     ],
///     4096,
/// );
/// let obstacles: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
/// let route = Trajectory::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(100.0, 0.0),
///     Point::new(100.0, 80.0),
/// ]);
///
/// let (plan, _) = trajectory_conn_search(&points, &obstacles, &route, &ConnConfig::default());
/// plan.check_cover().unwrap();
/// assert_eq!(plan.nn_at(0.0).unwrap().id, 0);
/// assert_eq!(plan.nn_at(route.len()).unwrap().id, 1);
/// ```
pub fn trajectory_conn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectory: &Trajectory,
    cfg: &ConnConfig,
) -> (TrajectoryResult, QueryStats) {
    let service =
        crate::ConnService::with_config(crate::Scene::borrowing(data_tree, obstacle_tree), *cfg);
    let query = crate::Query::trajectory(trajectory.clone(), 1)
        .build()
        .unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    let resp = service.execute(&query).unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
                                                                          // Infallible: the service answers each query kind with its own family.
                                                                          // lint:allow(no-panic-in-query-path)
    let res = resp.answer.into_trajectory().expect("trajectory answer");
    (res, resp.stats)
}

/// Reference implementation of [`trajectory_conn_search`]: every leg is a
/// fully cold [`conn_search`] run (fresh engine, fresh visibility graph,
/// all obstacle loads repaid). This is the baseline `repro --target traj`
/// measures [`crate::TrajectorySession`] against, and the oracle of the
/// streaming-equivalence tests. Answers are equivalent to the session path
/// (identical tuples, distances within float noise from the session's
/// larger loaded-obstacle superset).
pub fn trajectory_conn_search_cold(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectory: &Trajectory,
    cfg: &ConnConfig,
) -> (TrajectoryResult, QueryStats) {
    let mut total = QueryStats::default();
    let mut segments: Vec<(Option<DataPoint>, Interval)> = Vec::new();
    for i in 0..trajectory.num_legs() {
        let leg = trajectory.leg(i);
        let offset = trajectory.leg_offset(i);
        let (res, stats) = conn_search(data_tree, obstacle_tree, &leg, cfg);
        total.accumulate(&stats);
        stitch_leg(&mut segments, &res.segments(), offset, offset + leg.len());
    }
    total.result_tuples = segments.len() as u64;
    (TrajectoryResult::new(trajectory.clone(), segments), total)
}

/// Trajectory COkNN: the k nearest per point along a polyline, replayed
/// through a [`crate::TrajectoryCoknnSession`] so the visibility substrate
/// survives across legs. Returns the per-leg results
/// (cumulative-arclength stitching of full kNN sets keeps every member's
/// control points; exposing the per-leg structure is the honest API) plus
/// summed statistics.
pub fn trajectory_coknn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectory: &Trajectory,
    k: usize,
    cfg: &ConnConfig,
) -> (Vec<crate::coknn::CoknnResult>, QueryStats) {
    // k = 1 keeps the per-leg COkNN structure this function promises, so it
    // drives the session directly instead of the service's `Trajectory`
    // query (which answers k = 1 as stitched trajectory CONN).
    let mut session =
        TrajectoryCoknnSession::new(data_tree, obstacle_tree, trajectory.vertices()[0], k, *cfg);
    for &v in &trajectory.vertices()[1..] {
        session.push_leg(v);
    }
    session.finish()
}

/// Cold-per-leg reference of [`trajectory_coknn_search`] (see
/// [`trajectory_conn_search_cold`]).
pub fn trajectory_coknn_search_cold(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectory: &Trajectory,
    k: usize,
    cfg: &ConnConfig,
) -> (Vec<crate::coknn::CoknnResult>, QueryStats) {
    let mut total = QueryStats::default();
    let mut legs = Vec::with_capacity(trajectory.num_legs());
    for i in 0..trajectory.num_legs() {
        let leg = trajectory.leg(i);
        let (res, stats) = coknn_search(data_tree, obstacle_tree, &leg, k, cfg);
        total.accumulate(&stats);
        legs.push(res);
    }
    (legs, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_oknn;

    fn l_shape() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 80.0),
        ])
    }

    #[test]
    fn parameterization_across_legs() {
        let t = l_shape();
        assert_eq!(t.num_legs(), 2);
        assert_eq!(t.len(), 180.0);
        assert_eq!(t.at(0.0), Point::new(0.0, 0.0));
        assert_eq!(t.at(100.0), Point::new(100.0, 0.0));
        assert_eq!(t.at(140.0), Point::new(100.0, 40.0));
        assert_eq!(t.at(180.0), Point::new(100.0, 80.0));
        // clamping
        assert_eq!(t.at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(t.at(500.0), Point::new(100.0, 80.0));
    }

    /// Regression: `at` used to underflow on NaN (`clamp` propagates NaN,
    /// `binary_search_by` answers `Err(0)`, then `i - 1` wraps) and on
    /// -0.0 (`total_cmp` orders it before `cum[0] = 0.0`).
    #[test]
    fn at_guards_non_finite_parameters() {
        let t = l_shape();
        assert_eq!(t.at(f64::NAN), Point::new(0.0, 0.0));
        assert_eq!(t.at(-0.0), Point::new(0.0, 0.0));
        assert_eq!(t.at(f64::NEG_INFINITY), Point::new(0.0, 0.0));
        assert_eq!(t.at(f64::INFINITY), Point::new(100.0, 80.0));
    }

    #[test]
    fn is_empty_is_derived_from_length() {
        let t = l_shape();
        assert!(!t.is_empty());
        assert!(t.len() > 0.0);
    }

    /// Regression: joint drift used to leak zero-width sliver tuples into
    /// the stitched list. The stitcher must re-base intervals onto the
    /// running cursor, absorb sub-EPS tuples, and close each leg exactly
    /// at its joint.
    #[test]
    fn stitching_absorbs_joint_slivers() {
        let pa = Some(DataPoint::new(0, Point::new(0.0, 0.0)));
        let pb = Some(DataPoint::new(1, Point::new(1.0, 0.0)));
        let mut out: Vec<(Option<DataPoint>, Interval)> = Vec::new();
        // leg 1 ends with float overshoot past its true length 100
        stitch_leg(
            &mut out,
            &[
                (pa, Interval::new(0.0, 60.0)),
                (pb, Interval::new(60.0, 100.0 + 3e-8)),
            ],
            0.0,
            100.0,
        );
        // leg 2 opens with a sub-EPS sliver of the *old* answer before
        // switching — the classic disagreement at the shared vertex
        stitch_leg(
            &mut out,
            &[
                (pb, Interval::new(0.0, 4e-8)),
                (pa, Interval::new(4e-8, 80.0)),
            ],
            100.0,
            180.0,
        );
        assert_eq!(out.len(), 3, "sliver must merge, not stand alone: {out:?}");
        let mut cursor = 0.0;
        for (_, iv) in &out {
            assert!(iv.hi > iv.lo, "empty tuple {iv:?}");
            assert_eq!(iv.lo, cursor, "gap/overlap at {cursor}");
            cursor = iv.hi;
        }
        assert_eq!(cursor, 180.0);

        // a leading sliver with a different successor hands its span over
        let mut lead: Vec<(Option<DataPoint>, Interval)> = Vec::new();
        stitch_leg(
            &mut lead,
            &[
                (pa, Interval::new(0.0, 2e-8)),
                (pb, Interval::new(2e-8, 50.0)),
            ],
            0.0,
            50.0,
        );
        assert_eq!(lead.len(), 1);
        assert_eq!(lead[0].0.map(|p| p.id), Some(1));
        assert_eq!((lead[0].1.lo, lead[0].1.hi), (0.0, 50.0));
    }

    #[test]
    #[should_panic]
    fn rejects_single_vertex() {
        let _ = Trajectory::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_leg() {
        let _ = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
        ]);
    }

    #[test]
    fn trajectory_conn_matches_brute_force() {
        let points = vec![
            DataPoint::new(0, Point::new(20.0, 30.0)),
            DataPoint::new(1, Point::new(80.0, -20.0)),
            DataPoint::new(2, Point::new(130.0, 50.0)),
        ];
        let obstacles = vec![
            Rect::new(40.0, 10.0, 60.0, 25.0),
            Rect::new(110.0, 20.0, 120.0, 60.0),
        ];
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let traj = l_shape();
        let (res, stats) = trajectory_conn_search(&dt, &ot, &traj, &ConnConfig::default());
        res.check_cover().unwrap();
        assert!(stats.npe >= 3, "per-leg runs accumulate NPE");
        for i in 0..=36 {
            let t = traj.len() * (i as f64) / 36.0;
            let want = brute_force_oknn(&points, &obstacles, traj.at(t), 1);
            let got = res.nn_at(t);
            match (got, want.first()) {
                (Some(g), Some((w, wd))) => {
                    if g.id != w.id {
                        // only acceptable under a tie
                        let gd = crate::odist::obstructed_distance(&obstacles, g.pos, traj.at(t));
                        assert!((gd - wd).abs() < 1e-6, "t={t}: {} vs {}", g.id, w.id);
                    }
                }
                (g, w) => assert_eq!(g.is_none(), w.is_none(), "t = {t}"),
            }
        }
    }

    #[test]
    fn joint_merging_collapses_same_answer() {
        // a single point: both legs answer it → one stitched tuple
        let points = vec![DataPoint::new(0, Point::new(50.0, 40.0))];
        let dt = RStarTree::bulk_load(points, 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let (res, _) = trajectory_conn_search(&dt, &ot, &l_shape(), &ConnConfig::default());
        assert_eq!(res.segments().len(), 1);
        assert_eq!(res.split_points().len(), 0);
    }

    #[test]
    fn trajectory_coknn_per_leg_results() {
        let points = vec![
            DataPoint::new(0, Point::new(20.0, 30.0)),
            DataPoint::new(1, Point::new(80.0, -20.0)),
            DataPoint::new(2, Point::new(130.0, 50.0)),
        ];
        let dt = RStarTree::bulk_load(points, 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let traj = l_shape();
        let (legs, stats) = trajectory_coknn_search(&dt, &ot, &traj, 2, &ConnConfig::default());
        assert_eq!(legs.len(), 2);
        assert!(stats.npe >= 3);
        for leg in &legs {
            leg.check_cover().unwrap();
            assert_eq!(leg.knn_at(10.0).len(), 2);
        }
    }
}
