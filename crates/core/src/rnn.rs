//! Obstructed reverse nearest neighbor — the paper's §6 closing future-work
//! item ("obstructed reverse nearest neighbor search").
//!
//! `ORNN(s)` returns every data point `p` whose obstructed NN *within the
//! data set* would be displaced by `s`: formally, `‖p, s‖ < ‖p, p′‖` for
//! all `p′ ∈ P ∖ {p}`. A facility placed at `s` would capture exactly
//! these points.
//!
//! Filter-refine scheme (both phases on the shared R-trees):
//!
//! 1. **Filter.** For each `p`, compute an *upper bound* `ub(p)` on its
//!    obstructed NN distance: the obstructed distance to its Euclidean
//!    nearest neighbor. Since `‖p, s‖ ≥ dist(p, s)`, any `p` with
//!    `dist(p, s) > ub(p)` can never be reversed to `s` and is dropped.
//! 2. **Refine.** For survivors, compare the exact `‖p, s‖` against the
//!    exact obstructed NN distance (via [`crate::onn::onn_search`]-style
//!    resolution on a shared visibility graph).

use std::time::Instant;

use conn_geom::{Point, Rect};
use conn_index::RStarTree;
use conn_vgraph::{DijkstraEngine, NodeKind, VisGraph};

use crate::config::ConnConfig;
use crate::stats::{IoWindow, QueryStats};
use crate::types::DataPoint;

/// All data points that would adopt a facility at `s` as their obstructed
/// nearest neighbor, with their obstructed distances to `s`.
pub fn obstructed_rnn(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    cfg: &ConnConfig,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    let service =
        crate::ConnService::with_config(crate::Scene::borrowing(data_tree, obstacle_tree), *cfg);
    let query = crate::Query::rnn(s)
        .build()
        .unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    let resp = service.execute(&query).unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    match resp.answer {
        crate::Answer::Rnn(v) => (v, resp.stats),
        // Infallible: the service answers each kind with its own family.
        // lint:allow(no-panic-in-query-path)
        _ => unreachable!("rnn query answered by another family"),
    }
}

/// [`obstructed_rnn`] with tree-counter handling factored out
/// (`track_io = false` for batch workers — see the batch module docs).
pub(crate) fn rnn_impl(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    cfg: &ConnConfig,
    track_io: bool,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    // Query-boundary elapsed time for QueryStats; the kernel loop
    // below never reads the clock.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
    let io = IoWindow::begin(track_io, data_tree, obstacle_tree);

    let mut resolver = PairResolver::new(cfg, obstacle_tree);
    let mut out: Vec<(DataPoint, f64)> = Vec::new();
    let mut npe = 0u64;

    // iterate candidates nearest-to-s first: they are the likeliest RNNs
    let candidates: Vec<DataPoint> = data_tree.nearest_iter(s).map(|(p, _)| p).collect();
    for p in candidates {
        npe += 1;
        // ---- filter: ub(p) = odist(p, euclid-NN of p in P ∖ {p})
        let euclid_nn = data_tree
            .nearest_iter(p.pos)
            .find(|(other, _)| other.id != p.id);
        let Some((nn, _)) = euclid_nn else {
            // singleton data set: s wins by default
            let d = resolver.resolve(p.pos, s);
            if d.is_finite() {
                out.push((p, d));
            }
            continue;
        };
        let ub = resolver.resolve(p.pos, nn.pos);
        if p.pos.dist(s) > ub {
            continue; // s cannot beat p's best-in-set upper bound
        }
        // ---- refine: exact comparison
        let d_s = resolver.resolve(p.pos, s);
        if !d_s.is_finite() {
            continue;
        }
        // exact obstructed NN distance of p within the set: scan candidates
        // in ascending euclidean order until the lower bound passes d_s
        let mut beaten = false;
        for (other, lower) in data_tree.nearest_iter(p.pos) {
            if other.id == p.id {
                continue;
            }
            if lower > d_s {
                break; // even the euclidean lower bound exceeds s's distance
            }
            // ties count: s must be *strictly* closer than every other point
            if resolver.resolve(p.pos, other.pos) <= d_s {
                beaten = true;
                break;
            }
        }
        if !beaten {
            out.push((p, d_s));
        }
    }

    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
    let (data_io, obstacle_io) = io.end(data_tree, obstacle_tree);
    let stats = QueryStats {
        data_io,
        obstacle_io,
        cpu: started.elapsed(),
        npe,
        noe: resolver.noe,
        svg_nodes: resolver.g.num_nodes() as u64,
        result_tuples: out.len() as u64,
        reuse: Default::default(),
    };
    (out, stats)
}

/// Pairwise obstructed-distance resolver sharing one growing graph
/// (the joins module's resolver, duplicated locally to keep the join and
/// RNN modules independently readable).
struct PairResolver<'a> {
    g: VisGraph,
    dij: DijkstraEngine,
    obstacle_tree: &'a RStarTree<Rect>,
    loaded: std::collections::HashSet<[u64; 4]>,
    noe: u64,
    kernel: crate::config::KernelMode,
    warm: bool,
}

impl<'a> PairResolver<'a> {
    fn new(cfg: &ConnConfig, obstacle_tree: &'a RStarTree<Rect>) -> Self {
        PairResolver {
            g: cfg.new_graph(),
            dij: DijkstraEngine::default(),
            obstacle_tree,
            loaded: std::collections::HashSet::new(),
            noe: 0,
            kernel: cfg.kernel,
            warm: cfg.label_continuation,
        }
    }

    fn load_upto(&mut self, anchor: Point, bound: f64) {
        for (r, od) in self.obstacle_tree.nearest_iter(anchor) {
            if od > bound {
                break;
            }
            if self.loaded.insert(r.bit_key()) {
                self.g.add_obstacle(r);
                self.noe += 1;
            }
        }
    }

    fn resolve(&mut self, a: Point, b: Point) -> f64 {
        let na = self.g.add_point(a, NodeKind::DataPoint);
        let nb = self.g.add_point(b, NodeKind::DataPoint);
        let mut bound = a.dist(b);
        let total = self.obstacle_tree.len();
        let goal = self.kernel.point_goal(b);
        let d = loop {
            self.load_upto(a, bound);
            // rounds only add obstacles: the warm path reseeds retained
            // labels instead of re-running the search from scratch
            self.dij.ensure_prepared(&self.g, na, goal, self.warm);
            let d = self.dij.run_until_settled(&mut self.g, nb);
            if d.is_finite() {
                if d <= bound + conn_geom::EPS {
                    break d;
                }
                bound = d;
            } else {
                if self.loaded.len() >= total {
                    break f64::INFINITY;
                }
                bound = bound * 2.0 + 1.0;
            }
        };
        self.g.remove_node(na);
        self.g.remove_node(nb);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstructed_distance;

    fn brute_rnn(points: &[DataPoint], obstacles: &[Rect], s: Point) -> Vec<u32> {
        let mut out = Vec::new();
        for p in points {
            let d_s = obstructed_distance(obstacles, p.pos, s);
            if !d_s.is_finite() {
                continue;
            }
            let best_other = points
                .iter()
                .filter(|o| o.id != p.id)
                .map(|o| obstructed_distance(obstacles, p.pos, o.pos))
                .fold(f64::INFINITY, f64::min);
            if d_s < best_other {
                out.push(p.id);
            }
        }
        out.sort_unstable();
        out
    }

    fn check(points: Vec<DataPoint>, obstacles: Vec<Rect>, s: Point) {
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let (got, _) = obstructed_rnn(&dt, &ot, s, &ConnConfig::default());
        let mut got_ids: Vec<u32> = got.iter().map(|(p, _)| p.id).collect();
        got_ids.sort_unstable();
        let want = brute_rnn(&points, &obstacles, s);
        assert_eq!(got_ids, want, "s = {s}");
        for (p, d) in &got {
            let true_d = obstructed_distance(&obstacles, p.pos, s);
            assert!((d - true_d).abs() < 1e-6);
        }
    }

    #[test]
    fn free_space_rnn_matches_brute_force() {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 0.0)),
            DataPoint::new(1, Point::new(20.0, 0.0)),
            DataPoint::new(2, Point::new(100.0, 0.0)),
            DataPoint::new(3, Point::new(104.0, 3.0)),
        ];
        // s between the two clusters: captures nobody (cluster members are
        // mutually closer)…
        check(points.clone(), vec![], Point::new(60.0, 0.0));
        // …but s placed right next to a lone point captures it
        check(points, vec![], Point::new(9.0, 0.0));
    }

    #[test]
    fn obstacle_flips_reverse_relation() {
        // p's set-NN is across a wall; an s on p's side captures it
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 40.0)),
            DataPoint::new(1, Point::new(10.0, 0.0)),
        ];
        let wall = Rect::new(-60.0, 15.0, 80.0, 25.0);
        let s = Point::new(28.0, 44.0);
        // sanity: euclid(p0, p1) = 40 < euclid(p0, s) ≈ 18.4? no: 18.4 < 40.
        // make it interesting: s slightly farther in euclid than p1 but
        // nearer in obstructed terms
        let s_far = Point::new(10.0, 85.0); // euclid 45 > 40, no wall between
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(vec![wall], 4096);
        let (got, _) = obstructed_rnn(&dt, &ot, s_far, &ConnConfig::default());
        // p0's obstructed distance to p1 is a long detour around the wall
        let d01 = obstructed_distance(&[wall], points[0].pos, points[1].pos);
        assert!(d01 > 45.0, "wall must make the in-set NN expensive: {d01}");
        assert!(got.iter().any(|(p, _)| p.id == 0), "{got:?}");
        check(points, vec![wall], s);
    }

    #[test]
    fn randomized_agreement_with_brute_force() {
        let mut pts = Vec::new();
        for i in 0..18u32 {
            pts.push(DataPoint::new(
                i,
                Point::new((i as f64 * 53.7) % 200.0, (i as f64 * 97.3) % 200.0),
            ));
        }
        let obstacles = vec![
            Rect::new(40.0, 40.0, 70.0, 90.0),
            Rect::new(120.0, 10.0, 135.0, 150.0),
        ];
        for s in [
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(199.0, 20.0),
        ] {
            check(pts.clone(), obstacles.clone(), s);
        }
    }

    #[test]
    fn empty_and_singleton_sets() {
        let dt: RStarTree<DataPoint> = RStarTree::bulk_load(vec![], 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let (got, _) = obstructed_rnn(&dt, &ot, Point::new(0.0, 0.0), &ConnConfig::default());
        assert!(got.is_empty());

        let one = vec![DataPoint::new(0, Point::new(5.0, 5.0))];
        let dt = RStarTree::bulk_load(one, 4096);
        let (got, _) = obstructed_rnn(&dt, &ot, Point::new(0.0, 0.0), &ConnConfig::default());
        assert_eq!(got.len(), 1, "a singleton always adopts the facility");
    }
}
