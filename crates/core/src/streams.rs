//! Sources feeding the search loop: data points in ascending `mindist` to
//! `q`, and obstacles loaded on demand into the local visibility graph.
//!
//! The two-R-tree setup of Algorithm 4 and the unified single-R-tree setup
//! of §4.5 differ only in where these streams come from, so the search core
//! is written against the [`QueryStreams`] trait.

use conn_geom::{Rect, Segment};
use conn_index::{NearestIter, RStarTree};
use conn_vgraph::VisGraph;

use crate::types::DataPoint;

/// The search loop's view of its inputs.
pub trait QueryStreams {
    /// `mindist` of the next unevaluated data point (Lemma 2 gate).
    fn peek_point_dist(&mut self) -> Option<f64>;

    /// Pops the next data point (ascending `mindist(p, q)`).
    fn next_point(&mut self) -> Option<(DataPoint, f64)>;

    /// Loads every not-yet-loaded obstacle with `mindist(o, q) ≤ bound`
    /// into the graph; returns how many were added.
    fn load_obstacles_until(&mut self, g: &mut VisGraph, bound: f64) -> usize;

    /// Loads the single nearest not-yet-loaded obstacle regardless of
    /// bound; returns 0 when the obstacle source is exhausted.
    fn load_next_obstacle(&mut self, g: &mut VisGraph) -> usize;

    /// Number of obstacles loaded so far (the NOE metric).
    fn obstacles_loaded(&self) -> usize;
}

/// Streams over two separate R-trees (the paper's primary setting).
pub struct TwoTreeStreams<'a> {
    points: NearestIter<'a, DataPoint, Segment>,
    obstacles: NearestIter<'a, Rect, Segment>,
    pending_obstacle: Option<(Rect, f64)>,
    loaded: usize,
}

impl<'a> TwoTreeStreams<'a> {
    pub fn new(
        data_tree: &'a RStarTree<DataPoint>,
        obstacle_tree: &'a RStarTree<Rect>,
        q: &Segment,
    ) -> Self {
        TwoTreeStreams {
            points: data_tree.nearest_iter(*q),
            obstacles: obstacle_tree.nearest_iter(*q),
            pending_obstacle: None,
            loaded: 0,
        }
    }

    fn peek_obstacle_dist(&mut self) -> Option<f64> {
        if self.pending_obstacle.is_none() {
            self.pending_obstacle = self.obstacles.next();
        }
        self.pending_obstacle.as_ref().map(|(_, d)| *d)
    }

    fn pop_obstacle(&mut self) -> Option<Rect> {
        if self.pending_obstacle.is_none() {
            self.pending_obstacle = self.obstacles.next();
        }
        self.pending_obstacle.take().map(|(r, _)| r)
    }
}

impl QueryStreams for TwoTreeStreams<'_> {
    fn peek_point_dist(&mut self) -> Option<f64> {
        self.points.peek_dist()
    }

    fn next_point(&mut self) -> Option<(DataPoint, f64)> {
        self.points.next()
    }

    fn load_obstacles_until(&mut self, g: &mut VisGraph, bound: f64) -> usize {
        let mut added = 0;
        while let Some(d) = self.peek_obstacle_dist() {
            if d > bound {
                break;
            }
            let r = self.pop_obstacle().expect("peeked obstacle");
            g.add_obstacle(r);
            added += 1;
        }
        self.loaded += added;
        added
    }

    fn load_next_obstacle(&mut self, g: &mut VisGraph) -> usize {
        match self.pop_obstacle() {
            Some(r) => {
                g.add_obstacle(r);
                self.loaded += 1;
                1
            }
            None => 0,
        }
    }

    fn obstacles_loaded(&self) -> usize {
        self.loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn setup() -> (RStarTree<DataPoint>, RStarTree<Rect>, Segment) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 10.0)),
            DataPoint::new(1, Point::new(50.0, 5.0)),
            DataPoint::new(2, Point::new(90.0, 40.0)),
        ];
        let obstacles = vec![
            Rect::new(20.0, 20.0, 30.0, 30.0),
            Rect::new(60.0, 50.0, 70.0, 60.0),
            Rect::new(200.0, 200.0, 210.0, 210.0),
        ];
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        (
            RStarTree::bulk_load(points, 4096),
            RStarTree::bulk_load(obstacles, 4096),
            q,
        )
    }

    #[test]
    fn points_arrive_in_mindist_order() {
        let (dt, ot, q) = setup();
        let mut s = TwoTreeStreams::new(&dt, &ot, &q);
        let mut prev = 0.0;
        while let Some(d) = s.peek_point_dist() {
            let (_, got) = s.next_point().unwrap();
            assert_eq!(d, got);
            assert!(got >= prev);
            prev = got;
        }
        assert!(s.next_point().is_none());
    }

    #[test]
    fn load_until_respects_bound_and_counts() {
        let (dt, ot, q) = setup();
        let mut s = TwoTreeStreams::new(&dt, &ot, &q);
        let mut g = VisGraph::new(50.0);
        // nearest obstacle at dist 20, second at 50, third ~ 283
        assert_eq!(s.load_obstacles_until(&mut g, 10.0), 0);
        assert_eq!(s.load_obstacles_until(&mut g, 25.0), 1);
        assert_eq!(s.obstacles_loaded(), 1);
        assert_eq!(s.load_obstacles_until(&mut g, 100.0), 1);
        assert_eq!(s.load_obstacles_until(&mut g, 100.0), 0); // idempotent
        assert_eq!(s.load_next_obstacle(&mut g), 1);
        assert_eq!(s.load_next_obstacle(&mut g), 0); // exhausted
        assert_eq!(s.obstacles_loaded(), 3);
        assert_eq!(g.num_obstacles(), 3);
    }
}
