//! Sources feeding the search loop: data points in ascending `mindist` to
//! `q`, and obstacles loaded on demand into the local visibility graph.
//!
//! The two-R-tree setup of Algorithm 4 and the unified single-R-tree setup
//! of §4.5 differ only in where these streams come from, so the search core
//! is written against the [`QueryStreams`] trait.

use conn_geom::{Rect, Segment};
use conn_index::{NearestIter, RStarTree};
use conn_vgraph::VisGraph;

use crate::types::DataPoint;

/// The search loop's view of its inputs.
pub trait QueryStreams {
    /// `mindist` of the next unevaluated data point (Lemma 2 gate).
    fn peek_point_dist(&mut self) -> Option<f64>;

    /// Pops the next data point (ascending `mindist(p, q)`).
    fn next_point(&mut self) -> Option<(DataPoint, f64)>;

    /// Loads every not-yet-loaded obstacle with `mindist(o, q) ≤ bound`
    /// into the graph; returns how many were added.
    fn load_obstacles_until(&mut self, g: &mut VisGraph, bound: f64) -> usize;

    /// Loads the single nearest not-yet-loaded obstacle regardless of
    /// bound; returns 0 when the obstacle source is exhausted.
    fn load_next_obstacle(&mut self, g: &mut VisGraph) -> usize;

    /// Number of obstacles loaded so far (the NOE metric).
    fn obstacles_loaded(&self) -> usize;
}

/// Streams over two separate R-trees (the paper's primary setting).
pub struct TwoTreeStreams<'a> {
    points: NearestIter<'a, DataPoint, Segment>,
    obstacles: NearestIter<'a, Rect, Segment>,
    pending_obstacle: Option<(Rect, f64)>,
    loaded: usize,
}

impl<'a> TwoTreeStreams<'a> {
    /// Opens both mindist-ordered streams for `q`.
    pub fn new(
        data_tree: &'a RStarTree<DataPoint>,
        obstacle_tree: &'a RStarTree<Rect>,
        q: &Segment,
    ) -> Self {
        TwoTreeStreams {
            points: data_tree.nearest_iter(*q),
            obstacles: obstacle_tree.nearest_iter(*q),
            pending_obstacle: None,
            loaded: 0,
        }
    }

    fn peek_obstacle_dist(&mut self) -> Option<f64> {
        if self.pending_obstacle.is_none() {
            self.pending_obstacle = self.obstacles.next();
        }
        self.pending_obstacle.as_ref().map(|(_, d)| *d)
    }

    fn pop_obstacle(&mut self) -> Option<Rect> {
        if self.pending_obstacle.is_none() {
            self.pending_obstacle = self.obstacles.next();
        }
        self.pending_obstacle.take().map(|(r, _)| r)
    }
}

impl QueryStreams for TwoTreeStreams<'_> {
    fn peek_point_dist(&mut self) -> Option<f64> {
        self.points.peek_dist()
    }

    fn next_point(&mut self) -> Option<(DataPoint, f64)> {
        self.points.next()
    }

    fn load_obstacles_until(&mut self, g: &mut VisGraph, bound: f64) -> usize {
        let mut added = 0;
        while let Some(d) = self.peek_obstacle_dist() {
            if d > bound {
                break;
            }
            // Infallible: guarded by the peek on the line above.
            // lint:allow(no-panic-in-query-path)
            let r = self.pop_obstacle().expect("peeked obstacle");
            g.add_obstacle(r);
            added += 1;
        }
        self.loaded += added;
        added
    }

    fn load_next_obstacle(&mut self, g: &mut VisGraph) -> usize {
        match self.pop_obstacle() {
            Some(r) => {
                g.add_obstacle(r);
                self.loaded += 1;
                1
            }
            None => 0,
        }
    }

    fn obstacles_loaded(&self) -> usize {
        self.loaded
    }
}

/// The set of obstacles a trajectory session has already loaded into its
/// long-lived visibility graph. Obstacle loads are monotone within a
/// session — a loaded rectangle is a real obstacle for every later leg —
/// so the per-leg streams consult this set to avoid re-inserting (and
/// re-counting) rectangles when the goal segment changes.
#[derive(Debug, Default)]
pub struct LoadedObstacles {
    keys: std::collections::HashSet<[u64; 4]>,
}

impl LoadedObstacles {
    /// Records `r` as loaded; returns `false` when it already was.
    fn insert(&mut self, r: &Rect) -> bool {
        self.keys.insert(r.bit_key())
    }

    fn contains(&self, r: &Rect) -> bool {
        self.keys.contains(&r.bit_key())
    }

    /// Obstacles loaded so far across the whole session.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no obstacle has been loaded yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Forgets everything (the owning session's graph was reset).
    pub fn clear(&mut self) {
        self.keys.clear();
    }
}

/// Per-leg streams of a trajectory session: a fresh mindist ordering for
/// the new goal segment over the same two R-trees, with the obstacle
/// stream filtered against the session's [`LoadedObstacles`] — rectangles
/// already in the graph are skipped instead of re-inserted, so the
/// session-level NOE counts every obstacle exactly once.
pub struct SessionStreams<'a, 's> {
    points: NearestIter<'a, DataPoint, Segment>,
    obstacles: NearestIter<'a, Rect, Segment>,
    pending_obstacle: Option<(Rect, f64)>,
    loaded: &'s mut LoadedObstacles,
    loaded_this_leg: usize,
}

impl<'a, 's> SessionStreams<'a, 's> {
    /// Opens the leg's streams, deduplicating against `loaded`.
    pub fn new(
        data_tree: &'a RStarTree<DataPoint>,
        obstacle_tree: &'a RStarTree<Rect>,
        q: &Segment,
        loaded: &'s mut LoadedObstacles,
    ) -> Self {
        SessionStreams {
            points: data_tree.nearest_iter(*q),
            obstacles: obstacle_tree.nearest_iter(*q),
            pending_obstacle: None,
            loaded,
            loaded_this_leg: 0,
        }
    }

    /// Next not-yet-loaded obstacle's mindist to the current leg.
    fn peek_obstacle_dist(&mut self) -> Option<f64> {
        while self.pending_obstacle.is_none() {
            match self.obstacles.next() {
                Some((r, _)) if self.loaded.contains(&r) => continue,
                next => {
                    self.pending_obstacle = next;
                    break;
                }
            }
        }
        self.pending_obstacle.as_ref().map(|(_, d)| *d)
    }

    fn pop_obstacle(&mut self) -> Option<Rect> {
        self.peek_obstacle_dist();
        self.pending_obstacle.take().map(|(r, _)| r)
    }
}

impl QueryStreams for SessionStreams<'_, '_> {
    fn peek_point_dist(&mut self) -> Option<f64> {
        self.points.peek_dist()
    }

    fn next_point(&mut self) -> Option<(DataPoint, f64)> {
        self.points.next()
    }

    fn load_obstacles_until(&mut self, g: &mut VisGraph, bound: f64) -> usize {
        let mut added = 0;
        while let Some(d) = self.peek_obstacle_dist() {
            if d > bound {
                break;
            }
            // Infallible: guarded by the peek on the line above.
            // lint:allow(no-panic-in-query-path)
            let r = self.pop_obstacle().expect("peeked obstacle");
            self.loaded.insert(&r);
            g.add_obstacle(r);
            added += 1;
        }
        self.loaded_this_leg += added;
        added
    }

    fn load_next_obstacle(&mut self, g: &mut VisGraph) -> usize {
        match self.pop_obstacle() {
            Some(r) => {
                self.loaded.insert(&r);
                g.add_obstacle(r);
                self.loaded_this_leg += 1;
                1
            }
            None => 0,
        }
    }

    fn obstacles_loaded(&self) -> usize {
        self.loaded_this_leg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn setup() -> (RStarTree<DataPoint>, RStarTree<Rect>, Segment) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 10.0)),
            DataPoint::new(1, Point::new(50.0, 5.0)),
            DataPoint::new(2, Point::new(90.0, 40.0)),
        ];
        let obstacles = vec![
            Rect::new(20.0, 20.0, 30.0, 30.0),
            Rect::new(60.0, 50.0, 70.0, 60.0),
            Rect::new(200.0, 200.0, 210.0, 210.0),
        ];
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        (
            RStarTree::bulk_load(points, 4096),
            RStarTree::bulk_load(obstacles, 4096),
            q,
        )
    }

    #[test]
    fn points_arrive_in_mindist_order() {
        let (dt, ot, q) = setup();
        let mut s = TwoTreeStreams::new(&dt, &ot, &q);
        let mut prev = 0.0;
        while let Some(d) = s.peek_point_dist() {
            let (_, got) = s.next_point().unwrap();
            assert_eq!(d, got);
            assert!(got >= prev);
            prev = got;
        }
        assert!(s.next_point().is_none());
    }

    #[test]
    fn load_until_respects_bound_and_counts() {
        let (dt, ot, q) = setup();
        let mut s = TwoTreeStreams::new(&dt, &ot, &q);
        let mut g = VisGraph::new(50.0);
        // nearest obstacle at dist 20, second at 50, third ~ 283
        assert_eq!(s.load_obstacles_until(&mut g, 10.0), 0);
        assert_eq!(s.load_obstacles_until(&mut g, 25.0), 1);
        assert_eq!(s.obstacles_loaded(), 1);
        assert_eq!(s.load_obstacles_until(&mut g, 100.0), 1);
        assert_eq!(s.load_obstacles_until(&mut g, 100.0), 0); // idempotent
        assert_eq!(s.load_next_obstacle(&mut g), 1);
        assert_eq!(s.load_next_obstacle(&mut g), 0); // exhausted
        assert_eq!(s.obstacles_loaded(), 3);
        assert_eq!(g.num_obstacles(), 3);
    }

    /// Session streams skip rectangles an earlier leg already loaded —
    /// even though the new leg's mindist ordering differs.
    #[test]
    fn session_streams_dedupe_across_legs() {
        let (dt, ot, q1) = setup();
        let mut loaded = LoadedObstacles::default();
        let mut g = VisGraph::new(50.0);
        {
            let mut s = SessionStreams::new(&dt, &ot, &q1, &mut loaded);
            assert_eq!(s.load_obstacles_until(&mut g, 60.0), 2);
            assert_eq!(s.obstacles_loaded(), 2);
        }
        assert_eq!(loaded.len(), 2);
        // second leg near the far obstacle: the two already-loaded rects
        // must not be re-inserted, the third must
        let q2 = Segment::new(Point::new(200.0, 205.0), Point::new(260.0, 205.0));
        let mut s = SessionStreams::new(&dt, &ot, &q2, &mut loaded);
        assert_eq!(s.load_obstacles_until(&mut g, 1e9), 1);
        assert_eq!(s.obstacles_loaded(), 1, "per-leg NOE counts new loads only");
        assert_eq!(g.num_obstacles(), 3);
        assert_eq!(s.load_next_obstacle(&mut g), 0);
        assert_eq!(loaded.len(), 3);
    }
}
