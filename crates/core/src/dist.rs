//! Control points (paper Definition 8) and the distance functions they
//! induce over the query segment.
//!
//! A control point `cp` of data point `p` over interval `R ⊆ q` satisfies:
//! the shortest path from `p` to any `s ∈ R` passes through `cp`, and `cp`
//! is visible from all of `R`. Consequently the obstructed distance
//! restricted to `R` collapses to
//!
//! ```text
//! ‖p, q(t)‖ = ‖p, cp‖ + dist(cp, q(t))
//! ```
//!
//! — a constant plus a point-to-segment Euclidean distance, i.e. one branch
//! of a hyperbola in the arclength parameter `t`. All split-point reasoning
//! operates on these functions.

use conn_geom::{Interval, Point, Segment};

/// A control point with its accumulated obstructed distance from the data
/// point it serves (`base = ‖p, cp‖`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlPoint {
    /// Position of the control point (paper Def. 8: `p` itself or an
    /// obstacle vertex on the shortest path).
    pub pos: Point,
    /// Obstructed distance from the data point to this control point.
    pub base: f64,
}

impl ControlPoint {
    /// A control point at `pos` whose path back to the data point has
    /// length `base`.
    pub fn new(pos: Point, base: f64) -> Self {
        debug_assert!(base >= 0.0, "negative path length");
        ControlPoint { pos, base }
    }

    /// The control point of a directly-visible data point: itself, at cost 0.
    pub fn direct(pos: Point) -> Self {
        ControlPoint { pos, base: 0.0 }
    }

    /// `‖p, q(t)‖` under this control point.
    #[inline]
    pub fn value(&self, q: &Segment, t: f64) -> f64 {
        self.base + self.pos.dist(q.at(t))
    }

    /// Maximum of the distance function over an interval. The Euclidean
    /// part is convex in `t`, so the maximum sits at an endpoint — this is
    /// the quantity inside the paper's `RLMAX` / `CPLMAX` bounds.
    #[inline]
    pub fn max_over(&self, q: &Segment, iv: &Interval) -> f64 {
        self.value(q, iv.lo).max(self.value(q, iv.hi))
    }

    /// Minimum of the distance function over an interval (at the projection
    /// of `pos` onto the segment, clamped into the interval).
    #[inline]
    pub fn min_over(&self, q: &Segment, iv: &Interval) -> f64 {
        let proj = q.closest_param(self.pos).clamp(iv.lo, iv.hi);
        self.value(q, proj)
    }

    /// Two control points are interchangeable when they sit at the same
    /// place with the same accumulated cost.
    pub fn same_as(&self, other: &ControlPoint) -> bool {
        self.pos.dist(other.pos) <= conn_geom::EPS
            && (self.base - other.base).abs() <= conn_geom::EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    #[test]
    fn value_is_base_plus_euclid() {
        let cp = ControlPoint::new(Point::new(30.0, 40.0), 7.0);
        assert_eq!(cp.value(&q(), 30.0), 47.0);
        assert_eq!(cp.value(&q(), 0.0), 57.0);
    }

    #[test]
    fn direct_has_zero_base() {
        let cp = ControlPoint::direct(Point::new(10.0, 10.0));
        assert_eq!(cp.base, 0.0);
        assert_eq!(cp.value(&q(), 10.0), 10.0);
    }

    #[test]
    fn extrema_over_interval() {
        let cp = ControlPoint::new(Point::new(50.0, 30.0), 0.0);
        let iv = Interval::new(20.0, 90.0);
        // min at the projection t = 50
        assert_eq!(cp.min_over(&q(), &iv), 30.0);
        // max at the farther endpoint: |90-50| = 40 > |20-50| = 30 → t = 90
        assert_eq!(cp.max_over(&q(), &iv), cp.value(&q(), 90.0));
        // clamped projection when outside the interval
        let iv2 = Interval::new(60.0, 90.0);
        assert_eq!(cp.min_over(&q(), &iv2), cp.value(&q(), 60.0));
    }

    #[test]
    fn max_is_really_at_an_endpoint() {
        let cp = ControlPoint::new(Point::new(37.0, 21.0), 3.0);
        let iv = Interval::new(10.0, 80.0);
        let m = cp.max_over(&q(), &iv);
        for i in 0..=50 {
            let t = 10.0 + 70.0 * (i as f64) / 50.0;
            assert!(cp.value(&q(), t) <= m + 1e-9);
        }
    }

    #[test]
    fn same_as_tolerates_eps() {
        let a = ControlPoint::new(Point::new(1.0, 1.0), 5.0);
        let b = ControlPoint::new(Point::new(1.0, 1.0 + 1e-9), 5.0 + 1e-9);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&ControlPoint::new(Point::new(1.0, 2.0), 5.0)));
    }
}
