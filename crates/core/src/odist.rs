//! Point-to-point obstructed distance (paper Definition 4), as a standalone
//! utility.
//!
//! Builds a visibility graph over the *entire* obstacle list — suitable for
//! examples, tests and small workloads. Query processing never calls this;
//! it uses the incremental local graph instead.

use conn_geom::{Point, Rect};
use conn_vgraph::{DijkstraEngine, NodeKind, VisGraph};

/// Length of the shortest obstacle-avoiding path from `a` to `b`
/// (∞ when no path exists). `O(n²)`-ish in the obstacle count — see module
/// docs.
///
/// ```
/// use conn_core::obstructed_distance;
/// use conn_geom::{Point, Rect};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(100.0, 0.0);
/// assert_eq!(obstructed_distance(&[], a, b), 100.0);
///
/// // a wall across the straight line forces a detour through (40, 30)
/// let wall = Rect::new(40.0, -10.0, 60.0, 30.0);
/// let d = obstructed_distance(&[wall], a, b);
/// assert!(d > 100.0);
/// ```
pub fn obstructed_distance(obstacles: &[Rect], a: Point, b: Point) -> f64 {
    let mut g = graph_with(obstacles);
    let na = g.add_point(a, NodeKind::DataPoint);
    let nb = g.add_point(b, NodeKind::DataPoint);
    let mut d = DijkstraEngine::new(&g, na);
    d.run_until_settled(&mut g, nb)
}

/// The shortest obstacle-avoiding path itself (polyline through obstacle
/// corners), or `None` when unreachable.
pub fn obstructed_path(obstacles: &[Rect], a: Point, b: Point) -> Option<Vec<Point>> {
    let mut g = graph_with(obstacles);
    let na = g.add_point(a, NodeKind::DataPoint);
    let nb = g.add_point(b, NodeKind::DataPoint);
    let mut d = DijkstraEngine::new(&g, na);
    if d.run_until_settled(&mut g, nb).is_infinite() {
        return None;
    }
    Some(d.path_to(nb).iter().map(|&n| g.node_pos(n)).collect())
}

fn graph_with(obstacles: &[Rect]) -> VisGraph {
    // cell size adapted to the obstacle field's typical extent
    let cell = obstacles
        .iter()
        .map(|r| r.width().max(r.height()))
        .fold(0.0f64, f64::max)
        .max(20.0);
    let mut g = VisGraph::new(cell);
    for r in obstacles {
        g.add_obstacle(*r);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_is_euclid() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(30.0, 40.0);
        assert_eq!(obstructed_distance(&[], a, b), 50.0);
        assert_eq!(obstructed_path(&[], a, b).unwrap(), vec![a, b]);
    }

    /// The paper's Figure 1(b) `a`–`g` example shape: one obstacle, detour
    /// through a corner `m`.
    #[test]
    fn detour_goes_through_a_corner() {
        let o = Rect::new(40.0, -10.0, 60.0, 30.0);
        let a = Point::new(0.0, 0.0);
        let g = Point::new(100.0, 0.0);
        let d = obstructed_distance(&[o], a, g);
        let via_top = a.dist(Point::new(40.0, 30.0))
            + Point::new(40.0, 30.0).dist(Point::new(60.0, 30.0))
            + Point::new(60.0, 30.0).dist(g);
        let via_bottom = a.dist(Point::new(40.0, -10.0)) + 20.0 + Point::new(60.0, -10.0).dist(g);
        assert!((d - via_top.min(via_bottom)).abs() < 1e-9);
        let path = obstructed_path(&[o], a, g).unwrap();
        assert!(path.len() == 4, "two corner bends expected: {path:?}");
    }

    #[test]
    fn unreachable_is_infinite() {
        // target boxed in by overlapping walls
        let walls = [
            Rect::new(40.0, 40.0, 60.0, 45.0),
            Rect::new(40.0, 55.0, 60.0, 60.0),
            Rect::new(40.0, 40.0, 45.0, 60.0),
            Rect::new(55.0, 40.0, 60.0, 60.0),
        ];
        let d = obstructed_distance(&walls, Point::new(0.0, 0.0), Point::new(50.0, 50.0));
        assert!(d.is_infinite());
        assert!(obstructed_path(&walls, Point::new(0.0, 0.0), Point::new(50.0, 50.0)).is_none());
    }
}
