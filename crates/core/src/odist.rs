//! Point-to-point obstructed distance (paper Definition 4), as a standalone
//! utility.
//!
//! Builds a visibility graph over the *entire* obstacle list — suitable for
//! examples, tests and small workloads. Query processing never calls this;
//! it uses the incremental local graph instead.
//!
//! All three free functions route through one thread-local
//! [`crate::QueryEngine`], which keeps the obstacle field primed between
//! calls: computing a distance and then its path (or repeating either
//! against the same obstacle slice) no longer rebuilds the graph. Callers
//! that already hold an engine should use
//! [`crate::QueryEngine::obstructed_route`] directly.

use std::cell::RefCell;

use conn_geom::{Point, Rect};

use crate::config::ConnConfig;
use crate::engine::QueryEngine;

thread_local! {
    /// Shared engine behind the free functions — one per thread, so the
    /// primed obstacle graph survives across calls without locking.
    static ODIST_ENGINE: RefCell<QueryEngine> =
        RefCell::new(QueryEngine::new(ConnConfig::default()));
}

/// Obstacle fields larger than this are served by a throwaway engine so the
/// thread-local cache never pins an arbitrarily large visibility graph in
/// memory between calls.
const ODIST_RETAIN_MAX: usize = 4096;

fn with_odist_engine<T>(obstacles: &[Rect], f: impl FnOnce(&mut QueryEngine) -> T) -> T {
    if obstacles.len() > ODIST_RETAIN_MAX {
        return f(&mut QueryEngine::new(ConnConfig::default()));
    }
    ODIST_ENGINE.with(|e| f(&mut e.borrow_mut()))
}

/// Length of the shortest obstacle-avoiding path from `a` to `b`
/// (∞ when no path exists). `O(n²)`-ish in the obstacle count — see module
/// docs.
///
/// ```
/// use conn_core::obstructed_distance;
/// use conn_geom::{Point, Rect};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(100.0, 0.0);
/// assert_eq!(obstructed_distance(&[], a, b), 100.0);
///
/// // a wall across the straight line forces a detour through (40, 30)
/// let wall = Rect::new(40.0, -10.0, 60.0, 30.0);
/// let d = obstructed_distance(&[wall], a, b);
/// assert!(d > 100.0);
/// ```
pub fn obstructed_distance(obstacles: &[Rect], a: Point, b: Point) -> f64 {
    with_odist_engine(obstacles, |e| e.obstructed_distance(obstacles, a, b))
}

/// The shortest obstacle-avoiding path itself (polyline through obstacle
/// corners), or `None` when unreachable.
pub fn obstructed_path(obstacles: &[Rect], a: Point, b: Point) -> Option<Vec<Point>> {
    with_odist_engine(obstacles, |e| e.obstructed_path(obstacles, a, b))
}

/// Distance and path in a single Dijkstra run — cheaper than calling
/// [`obstructed_distance`] and [`obstructed_path`] separately.
pub fn obstructed_route(obstacles: &[Rect], a: Point, b: Point) -> (f64, Option<Vec<Point>>) {
    with_odist_engine(obstacles, |e| e.obstructed_route(obstacles, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_is_euclid() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(30.0, 40.0);
        assert_eq!(obstructed_distance(&[], a, b), 50.0);
        assert_eq!(obstructed_path(&[], a, b).unwrap(), vec![a, b]);
    }

    /// The paper's Figure 1(b) `a`–`g` example shape: one obstacle, detour
    /// through a corner `m`.
    #[test]
    fn detour_goes_through_a_corner() {
        let o = Rect::new(40.0, -10.0, 60.0, 30.0);
        let a = Point::new(0.0, 0.0);
        let g = Point::new(100.0, 0.0);
        let d = obstructed_distance(&[o], a, g);
        let via_top = a.dist(Point::new(40.0, 30.0))
            + Point::new(40.0, 30.0).dist(Point::new(60.0, 30.0))
            + Point::new(60.0, 30.0).dist(g);
        let via_bottom = a.dist(Point::new(40.0, -10.0)) + 20.0 + Point::new(60.0, -10.0).dist(g);
        assert!((d - via_top.min(via_bottom)).abs() < 1e-9);
        let path = obstructed_path(&[o], a, g).unwrap();
        assert!(path.len() == 4, "two corner bends expected: {path:?}");
    }

    #[test]
    fn route_combines_distance_and_path() {
        let o = Rect::new(40.0, -10.0, 60.0, 30.0);
        let a = Point::new(0.0, 0.0);
        let b = Point::new(100.0, 0.0);
        let (d, path) = obstructed_route(&[o], a, b);
        assert_eq!(d.to_bits(), obstructed_distance(&[o], a, b).to_bits());
        assert_eq!(path.unwrap(), obstructed_path(&[o], a, b).unwrap());
    }

    #[test]
    fn unreachable_is_infinite() {
        // target boxed in by overlapping walls
        let walls = [
            Rect::new(40.0, 40.0, 60.0, 45.0),
            Rect::new(40.0, 55.0, 60.0, 60.0),
            Rect::new(40.0, 40.0, 45.0, 60.0),
            Rect::new(55.0, 40.0, 60.0, 60.0),
        ];
        let d = obstructed_distance(&walls, Point::new(0.0, 0.0), Point::new(50.0, 50.0));
        assert!(d.is_infinite());
        assert!(obstructed_path(&walls, Point::new(0.0, 0.0), Point::new(50.0, 50.0)).is_none());
    }
}
