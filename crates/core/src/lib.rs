//! Continuous Obstructed Nearest Neighbor (CONN / COkNN) query processing.
//!
//! This crate implements the primary contribution of *Gao & Zheng,
//! "Continuous Obstructed Nearest Neighbor Queries in Spatial Databases",
//! SIGMOD 2009*: given a data-point set `P` and an obstacle set `O`, both
//! indexed by R\*-trees, and a query segment `q = [S, E]`, report for every
//! point of `q` its nearest data point under the **obstructed distance**
//! (shortest obstacle-avoiding path).
//!
//! ## Paper-to-module map
//!
//! | Paper | Module |
//! |---|---|
//! | control points (Def. 8/9) | [`dist`] |
//! | split points, Thm. 1, Cases 1–4, Lemma 1 | [`split`] |
//! | IOR — incremental obstacle retrieval (Alg. 1) | [`ior`] |
//! | CPLC — control-point-list computation (Alg. 2, Lemmas 5–7) | [`cpl`] |
//! | RLU — result-list update (Alg. 3) | [`rlu`] |
//! | CONN search (Alg. 4, Lemma 2) | [`conn`] |
//! | COkNN extension (§4.5) | [`coknn`] |
//! | single unified R-tree variant (§4.5) | [`single_tree`] |
//! | baselines (sampling, brute force) | [`baseline`] |
//! | reusable engine & per-query workspace (beyond the paper) | [`engine`] |
//! | parallel batch execution (beyond the paper) | [`batch`] |
//! | trajectory CONN/COkNN (§6 future work) | [`trajectory`] |
//! | streaming trajectory sessions (beyond the paper) | [`session`] |
//! | typed `Query`/`Answer` front door (beyond the paper) | [`query`] |
//! | `Scene` + `ConnService` execution handle (beyond the paper) | [`service`] |
//! | epoch-snapshot scene publication (beyond the paper) | [`epoch`] |
//! | live mutation, surgical invalidation, standing queries (beyond the paper) | [`live`] |
//! | spatial shard tiling + locality certificate (beyond the paper) | [`shard`] |
//! | persistent warm engine pool (beyond the paper) | [`pool`] |
//! | admission queue: coalescing + backpressure (beyond the paper) | [`admission`] |
//! | typed errors ([`enum@Error`]) | [`error`] |
//!
//! ## Quick start
//!
//! The typed front door: a [`Scene`] owns the indexed world, a
//! [`ConnService`] executes validated [`Query`] values of any family.
//!
//! ```
//! use conn_core::{ConnService, DataPoint, Query, Scene};
//! use conn_geom::{Point, Rect, Segment};
//!
//! let scene = Scene::new(
//!     vec![
//!         DataPoint::new(0, Point::new(20.0, 60.0)),
//!         DataPoint::new(1, Point::new(80.0, 60.0)),
//!     ],
//!     vec![Rect::new(45.0, 30.0, 55.0, 70.0)],
//! );
//! let service = ConnService::new(scene);
//! let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
//!
//! let response = service.execute(&Query::conn(q).build()?)?;
//! let result = response.answer.as_conn().expect("conn answer");
//! assert!(!result.entries().is_empty());
//! assert!(response.stats.npe >= 1);
//! # Ok::<(), conn_core::Error>(())
//! ```
//!
//! The legacy free functions ([`conn_search`], [`coknn_search`], …) remain
//! as thin wrappers over the service, answering byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod baseline;
pub mod batch;
pub mod coknn;
pub mod config;
pub mod conn;
pub mod cpl;
pub mod dist;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod ior;
pub mod joins;
pub mod live;
pub mod odist;
pub mod onn;
pub mod orange;
pub mod pool;
pub mod query;
pub mod rlu;
pub mod rnn;
pub mod service;
pub mod session;
pub mod shard;
pub mod single_tree;
pub mod split;
pub mod stats;
pub mod streams;
pub mod trajectory;
pub mod types;
pub mod visible;

pub use admission::{Admission, AdmissionConfig, Ticket};
pub use batch::{coknn_batch, conn_batch, trajectory_conn_batch, BatchStats};
pub use coknn::{coknn_search, CoknnResult};
pub use config::{ConnConfig, KernelMode};
pub use conn::{conn_search, ConnResult};
pub use conn_vgraph::SweepMode;
pub use dist::ControlPoint;
pub use engine::QueryEngine;
pub use epoch::{PinnedEpoch, SceneEpoch};
pub use error::Error;
pub use joins::{obstructed_closest_pair, obstructed_edistance_join};
pub use live::{answers_equivalent, LiveScene, PatchReport, SceneDelta, StandingHandle};
pub use odist::{obstructed_distance, obstructed_path, obstructed_route};
pub use onn::{naive_conn_by_onn, onn_search};
pub use orange::obstructed_range_search;
pub use pool::EnginePool;
pub use query::{Answer, Query, QueryBuilder, QueryKind, Response};
pub use rlu::{ResultEntry, ResultList};
pub use rnn::obstructed_rnn;
pub use service::{ConnService, Scene};
pub use session::{TrajectoryCoknnSession, TrajectorySession};
pub use shard::{Shard, ShardSet, ShardSpec};
pub use single_tree::{
    build_unified_tree, coknn_search_single_tree, conn_search_single_tree, SpatialObject,
};
pub use stats::{QueryStats, ReuseCounters};
pub use trajectory::{
    trajectory_coknn_search, trajectory_coknn_search_cold, trajectory_conn_search,
    trajectory_conn_search_cold, Trajectory, TrajectoryResult,
};
pub use types::DataPoint;
pub use visible::visible_knn;
