//! Epoch-snapshot publication of scenes (serving layer).
//!
//! A [`SceneEpoch`] is one immutable, numbered snapshot of the world: the
//! [`Scene`] itself, the lazily collected flat obstacle field the
//! point-to-point distance family primes from, and (on sharded services)
//! the [`ShardSet`] tiling. Readers *pin* the current epoch at query
//! start ([`crate::ConnService::pin`]) and run entirely against that
//! snapshot; a writer builds the next epoch off to the side and publishes
//! it with one atomic pointer swap ([`crate::ConnService::publish`]).
//!
//! Retirement is deferred, not reference-counted by hand: a published-over
//! epoch stays fully alive for as long as any [`PinnedEpoch`] still holds
//! its `Arc`, and is reclaimed by the last drop — the epoch's `Drop` impl
//! bumps a shared retirement ledger so tests and telemetry can observe
//! the deferral. A reader pinned to epoch N therefore returns answers
//! byte-identical to a serial run against epoch N even while epochs
//! N+1, N+2, … publish mid-query (the `serving.rs` stress test pins this).

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use conn_geom::{Point, Rect};

use crate::config::ConnConfig;
use crate::service::Scene;
use crate::session::{TrajectoryCoknnSession, TrajectorySession};
use crate::shard::{ShardSet, ShardSpec};

/// One immutable, numbered snapshot of the scene (plus its derived
/// serving structures). Readers access it through a [`PinnedEpoch`].
#[derive(Debug)]
pub struct SceneEpoch<'a> {
    epoch: u64,
    scene: Scene<'a>,
    /// Obstacles collected once per epoch for the point-to-point distance
    /// family (`OnceLock`, not `OnceCell`: many readers share the epoch).
    field: OnceLock<Vec<Rect>>,
    shards: Option<ShardSet>,
    retired: Arc<AtomicU64>,
}

impl<'a> SceneEpoch<'a> {
    /// This snapshot's epoch number (0 for the scene the service was
    /// built with, +1 per publication).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot's scene.
    pub fn scene(&self) -> &Scene<'a> {
        &self.scene
    }

    /// The snapshot's shard tiling, if the service is sharded.
    pub fn shards(&self) -> Option<&ShardSet> {
        self.shards.as_ref()
    }

    /// The flat obstacle field of this snapshot, collected from the
    /// obstacle tree on first use and shared by every reader thereafter.
    pub fn obstacle_field(&self) -> &[Rect] {
        self.field.get_or_init(|| self.scene.obstacles())
    }

    /// Opens a streaming trajectory CONN session against this snapshot
    /// (its own warm engine). The session borrows the epoch, so the pin
    /// keeps the snapshot alive for the session's whole lifetime — later
    /// publications cannot pull the scene out from under it.
    pub fn open_session(&self, start: Point, cfg: ConnConfig) -> TrajectorySession<'_, 'static> {
        TrajectorySession::new(
            self.scene.data_tree(),
            self.scene.obstacle_tree(),
            start,
            cfg,
        )
    }

    /// Opens a streaming trajectory COkNN session against this snapshot.
    pub fn open_coknn_session(
        &self,
        start: Point,
        k: usize,
        cfg: ConnConfig,
    ) -> TrajectoryCoknnSession<'_, 'static> {
        TrajectoryCoknnSession::new(
            self.scene.data_tree(),
            self.scene.obstacle_tree(),
            start,
            k,
            cfg,
        )
    }
}

impl Drop for SceneEpoch<'_> {
    fn drop(&mut self) {
        // The last holder (current slot or final pin) just released this
        // snapshot: record the deferred retirement.
        self.retired.fetch_add(1, Ordering::Relaxed);
    }
}

/// A reader's pin on one epoch: a cheap clone of the snapshot `Arc`.
/// Everything on [`SceneEpoch`] is reachable through `Deref`; the pinned
/// snapshot stays fully alive — trees, field, shards — until the last
/// clone drops, however many epochs publish in the meantime.
#[derive(Debug, Clone)]
pub struct PinnedEpoch<'a> {
    inner: Arc<SceneEpoch<'a>>,
}

impl<'a> Deref for PinnedEpoch<'a> {
    type Target = SceneEpoch<'a>;

    fn deref(&self) -> &SceneEpoch<'a> {
        &self.inner
    }
}

/// The publication slot: the service-owned cell readers pin the current
/// epoch from and writers publish the next epoch into.
///
/// The lock is held only long enough to clone (readers) or swap (writers)
/// one `Arc` — never across a query or an epoch build, so readers never
/// wait on scene construction and writers never wait on queries.
#[derive(Debug)]
pub(crate) struct EpochCell<'a> {
    // Swap-only critical sections; epochs themselves are immutable.
    current: RwLock<Arc<SceneEpoch<'a>>>, // lint:allow(no-interior-mutability-in-service)
    retired: Arc<AtomicU64>,
}

impl<'a> EpochCell<'a> {
    /// Wraps `scene` as epoch 0, tiled per `spec` if given.
    pub(crate) fn new(scene: Scene<'a>, spec: Option<ShardSpec>) -> Self {
        let retired = Arc::new(AtomicU64::new(0));
        let shards = spec.map(|s| ShardSet::build(&scene, s));
        let initial = Arc::new(SceneEpoch {
            epoch: 0,
            scene,
            field: OnceLock::new(),
            shards,
            retired: Arc::clone(&retired),
        });
        EpochCell {
            // Justified lock: held only to clone or swap one Arc.
            current: RwLock::new(initial), // lint:allow(no-interior-mutability-in-service)
            retired,
        }
    }

    /// Pins the current epoch: one read-locked `Arc` clone.
    pub(crate) fn pin(&self) -> PinnedEpoch<'a> {
        let guard = self
            .current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        PinnedEpoch {
            inner: Arc::clone(&guard),
        }
    }

    /// Publishes `scene` as the next epoch and returns its number. The
    /// shard tiling is built *before* the write lock is taken; the lock
    /// only assigns the number and swaps the `Arc`, serializing
    /// concurrent publishers.
    pub(crate) fn publish(&self, scene: Scene<'a>, spec: Option<ShardSpec>) -> u64 {
        let shards = spec.map(|s| ShardSet::build(&scene, s));
        let mut guard = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let epoch = guard.epoch + 1;
        *guard = Arc::new(SceneEpoch {
            epoch,
            scene,
            field: OnceLock::new(),
            shards,
            retired: Arc::clone(&self.retired),
        });
        epoch
    }

    /// The number of the currently published epoch.
    pub(crate) fn current_epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// How many published-over epochs have been fully released (their last
    /// pin dropped). Retirement is deferred: publishing over a pinned
    /// epoch does not bump this until the reader lets go.
    pub(crate) fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// How many epochs are still alive — the current one plus every
    /// published-over epoch a reader still pins. Ever-created epochs are
    /// `current_epoch + 1` (numbering starts at 0), so the ledger balance
    /// is `created − retired`. Under concurrent publishers/droppers the
    /// two loads are not one atomic snapshot; the value is
    /// monotonic-consistent, not linearizable (saturating guards the
    /// transient where a retire lands between the loads).
    pub(crate) fn live(&self) -> u64 {
        let created = self.current_epoch() + 1;
        created.saturating_sub(self.retired())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataPoint;

    fn scene(tag: u32) -> Scene<'static> {
        Scene::new(
            vec![DataPoint::new(tag, Point::new(10.0 + tag as f64, 20.0))],
            vec![Rect::new(30.0, 5.0, 40.0, 30.0)],
        )
    }

    #[test]
    fn publication_bumps_epoch_and_defers_retirement() {
        let cell = EpochCell::new(scene(0), None);
        assert_eq!(cell.current_epoch(), 0);
        assert_eq!(cell.retired(), 0);

        let pin = cell.pin();
        assert_eq!(pin.epoch(), 0);
        assert_eq!(cell.publish(scene(1), None), 1);
        assert_eq!(cell.current_epoch(), 1);
        // epoch 0 is published over but still pinned: not yet retired
        assert_eq!(cell.retired(), 0);
        assert_eq!(pin.epoch(), 0);
        assert_eq!(pin.scene().data_tree().iter_items().next().unwrap().id, 0);

        drop(pin);
        assert_eq!(cell.retired(), 1);
    }

    #[test]
    fn live_ledger_balances_created_minus_retired() {
        let cell = EpochCell::new(scene(0), None);
        assert_eq!(cell.live(), 1, "epoch 0 alone");
        let pin = cell.pin();
        cell.publish(scene(1), None);
        assert_eq!(cell.live(), 2, "epoch 0 pinned + epoch 1 current");
        cell.publish(scene(2), None);
        // epoch 1 had no pins: published over -> retired immediately
        assert_eq!(cell.live(), 2, "epoch 0 pinned + epoch 2 current");
        drop(pin);
        assert_eq!(cell.live(), 1, "only the current epoch remains");
        assert_eq!(cell.retired(), 2);
    }

    #[test]
    fn clones_share_the_pin() {
        let cell = EpochCell::new(scene(0), None);
        let a = cell.pin();
        let b = a.clone();
        cell.publish(scene(1), None);
        drop(a);
        assert_eq!(cell.retired(), 0, "clone still pins epoch 0");
        drop(b);
        assert_eq!(cell.retired(), 1);
    }

    #[test]
    fn obstacle_field_is_per_epoch() {
        let cell = EpochCell::new(scene(0), None);
        let pin = cell.pin();
        assert_eq!(pin.obstacle_field().len(), 1);
        cell.publish(
            Scene::new(vec![DataPoint::new(9, Point::new(1.0, 1.0))], vec![]),
            None,
        );
        assert_eq!(cell.pin().obstacle_field().len(), 0);
        // the old pin keeps its own field
        assert_eq!(pin.obstacle_field().len(), 1);
    }
}
