//! Control-point lists and the CPLC algorithm (paper §4.2, Algorithm 2).
//!
//! For a data point `p`, `CPL(p, q)` partitions the query segment into
//! intervals, each annotated with the control point governing `p`'s
//! obstructed distance there (or nothing, while no node covering the
//! interval has been found). CPLC builds the list by walking the local
//! visibility graph from `p` in ascending obstructed distance (Dijkstra
//! order), offering each settled node `v` as a control-point candidate on
//! the region allowed by:
//!
//! * **Lemma 5** — `v` cannot control anywhere its Dijkstra predecessor `u`
//!   already sees (`region = VR_v − VR_u`);
//! * **Lemma 6** — within a shadow gap of `u` whose endpoints `u` does see,
//!   `v` can only control if it lies inside the triangle `(u, R.l, R.r)`;
//! * **Lemma 7** — traversal stops once `‖p, v‖` reaches `CPLMAX`, the
//!   worst value currently recorded in the list (∞ while any interval is
//!   still uncovered — footnote 5 of the paper).

// lint:allow-file(no-panic-in-query-path[index]): slots is resized to the graph's node count by ensure() before any access
use conn_geom::{Interval, IntervalSet, Point, Segment, EPS};
use conn_vgraph::{DijkstraEngine, NodeId, VisGraph};

use crate::config::ConnConfig;
use crate::dist::ControlPoint;
use crate::split::{lemma1_incumbent_wins, split, Winner};

/// The control-point list: a sorted, disjoint cover of `[0, q.len()]`.
#[derive(Debug, Clone)]
pub struct ControlPointList {
    entries: Vec<(Option<ControlPoint>, Interval)>,
    qlen: f64,
}

impl ControlPointList {
    /// A list with the whole segment uncovered.
    pub fn new(qlen: f64) -> Self {
        ControlPointList {
            entries: vec![(None, Interval::new(0.0, qlen))],
            qlen,
        }
    }

    /// The `(control point, interval)` tuples, ascending in parameter.
    pub fn entries(&self) -> &[(Option<ControlPoint>, Interval)] {
        &self.entries
    }

    /// Length of the query segment the list partitions.
    pub fn qlen(&self) -> f64 {
        self.qlen
    }

    /// Any interval still without a control point?
    pub fn has_unassigned(&self) -> bool {
        self.entries.iter().any(|(cp, _)| cp.is_none())
    }

    /// `CPLMAX` (Lemma 7): the largest endpoint value over assigned
    /// entries; ∞ while any entry is unassigned (footnote 5).
    pub fn max_value(&self, q: &Segment) -> f64 {
        let mut m = 0.0f64;
        for (cp, iv) in &self.entries {
            match cp {
                None => return f64::INFINITY,
                Some(cp) => m = m.max(cp.max_over(q, iv)),
            }
        }
        m
    }

    /// Largest endpoint value over *assigned* entries only (the strict
    /// refinement loop's reload threshold; unassigned entries are handled
    /// separately there).
    pub fn max_assigned_value(&self, q: &Segment) -> f64 {
        self.entries
            .iter()
            .filter_map(|(cp, iv)| cp.as_ref().map(|cp| cp.max_over(q, iv)))
            .fold(0.0, f64::max)
    }

    /// The control point in charge at parameter `t`, with the induced
    /// distance value.
    pub fn value_at(&self, q: &Segment, t: f64) -> Option<f64> {
        self.entries
            .iter()
            .find(|(_, iv)| iv.contains(t))
            .and_then(|(cp, _)| cp.as_ref().map(|cp| cp.value(q, t)))
    }

    /// Offers `candidate` as control point over `region`; keeps whichever of
    /// the incumbent/candidate is closer on every sub-interval.
    pub fn offer(
        &mut self,
        q: &Segment,
        candidate: ControlPoint,
        region: &Interval,
        cfg: &ConnConfig,
    ) {
        if region.is_empty() {
            return;
        }
        let mut out: Vec<(Option<ControlPoint>, Interval)> =
            Vec::with_capacity(self.entries.len() + 2);
        for (cp, iv) in std::mem::take(&mut self.entries) {
            let Some(overlap) = iv.intersect(region) else {
                out.push((cp, iv));
                continue;
            };
            // untouched left part
            let left = Interval::new(iv.lo, overlap.lo);
            if !left.is_empty() {
                out.push((cp, left));
            }
            match cp {
                None => out.push((Some(candidate), overlap)),
                Some(incumbent) => {
                    if incumbent.same_as(&candidate)
                        || (cfg.use_lemma1
                            && lemma1_incumbent_wins(q, &incumbent, &candidate, &overlap))
                    {
                        out.push((Some(incumbent), overlap));
                    } else {
                        for (piece, winner) in split(q, &incumbent, &candidate, overlap) {
                            let w = match winner {
                                Winner::Incumbent => incumbent,
                                Winner::Challenger => candidate,
                            };
                            out.push((Some(w), piece));
                        }
                    }
                }
            }
            // untouched right part
            let right = Interval::new(overlap.hi, iv.hi);
            if !right.is_empty() {
                out.push((cp, right));
            }
        }
        self.entries = out;
        self.normalize();
    }

    /// Merges adjacent entries carrying the same control point and drops
    /// empty slivers (the cover of `[0, qlen]` is preserved).
    fn normalize(&mut self) {
        let mut out: Vec<(Option<ControlPoint>, Interval)> = Vec::with_capacity(self.entries.len());
        for (cp, iv) in std::mem::take(&mut self.entries) {
            match out.last_mut() {
                Some((prev_cp, prev_iv)) if same_opt_cp(prev_cp, &cp) => prev_iv.hi = iv.hi,
                Some((_, prev_iv)) if iv.is_empty() => prev_iv.hi = iv.hi,
                _ => {
                    if iv.is_empty() && !out.is_empty() {
                        continue;
                    }
                    out.push((cp, iv));
                }
            }
        }
        self.entries = out;
    }

    /// Validation helper for tests: entries cover `[0, qlen]` without gaps.
    pub fn check_cover(&self) -> Result<(), crate::Error> {
        let mut cursor = 0.0;
        for (_, iv) in &self.entries {
            if (iv.lo - cursor).abs() > 1e-6 {
                return Err(crate::Error::cover_violation(format!(
                    "gap at {cursor}: next starts {}",
                    iv.lo
                )));
            }
            cursor = iv.hi;
        }
        if (cursor - self.qlen).abs() > 1e-6 {
            return Err(crate::Error::cover_violation(format!(
                "cover ends at {cursor} != {}",
                self.qlen
            )));
        }
        Ok(())
    }
}

fn same_opt_cp(a: &Option<ControlPoint>, b: &Option<ControlPoint>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.same_as(y),
        _ => false,
    }
}

/// Cache of visible regions keyed by node slot and obstacle count (a node's
/// region only changes when obstacles arrive). Slot-indexed so lookups on
/// the CPLC hot path are array accesses, and [`VrCache::clear`] retains the
/// slot vector's allocation for workspace reuse.
#[derive(Debug, Default)]
pub struct VrCache {
    slots: Vec<Option<(usize, IntervalSet)>>,
}

impl VrCache {
    /// Computes (or revalidates) the cached region of `node`; afterwards
    /// [`VrCache::cached`] returns it without borrowing the graph.
    pub fn ensure(&mut self, g: &mut VisGraph, node: NodeId, q: &Segment) {
        let n_obs = g.num_obstacles();
        let i = node.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        match &self.slots[i] {
            Some((cached_obs, _)) if *cached_obs == n_obs => {}
            _ => {
                let vr = g.visible_region(g.node_pos(node), q);
                self.slots[i] = Some((n_obs, vr));
            }
        }
    }

    /// The region computed by the last [`VrCache::ensure`] for this node.
    /// Panics when the node was never ensured (a logic bug).
    pub fn cached(&self, node: NodeId) -> &IntervalSet {
        // Infallible: every caller goes through ensure() first, which
        // fills this slot before handing the node id out.
        self.slots[node.index()]
            .as_ref()
            .map(|(_, vr)| vr)
            // lint:allow(no-panic-in-query-path)
            .expect("visible region not ensured")
    }

    /// Compute-if-absent facade combining `ensure` + `cached`.
    pub fn get(&mut self, g: &mut VisGraph, node: NodeId, q: &Segment) -> &IntervalSet {
        self.ensure(g, node, q);
        self.cached(node)
    }

    /// Drops the entry for a node slot that is being reused.
    pub fn invalidate(&mut self, node: NodeId) {
        if let Some(slot) = self.slots.get_mut(node.index()) {
            *slot = None;
        }
    }

    /// Empties the cache (between queries of a reused workspace), keeping
    /// the slot vector's allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

/// CPLC — Algorithm 2: computes `CPL(p, q)` over the current local
/// visibility graph. `dij` is the caller's reusable Dijkstra scratch.
/// One-shot facade over [`cplc_bounded`] with no outer bound.
pub fn cplc(
    q: &Segment,
    g: &mut VisGraph,
    p_node: NodeId,
    cfg: &ConnConfig,
    vr_cache: &mut VrCache,
    dij: &mut DijkstraEngine,
) -> ControlPointList {
    cplc_bounded(q, g, p_node, cfg, vr_cache, dij, f64::INFINITY)
}

/// CPLC with an outer value cap (the result sink's Lemma 2 bound).
///
/// The traversal runs on the configured kernel: under
/// [`crate::KernelMode::GoalDirected`] nodes settle in ascending
/// `f(v) = d(v) + mindist(v, q)` — a lower bound on the best value `v` can
/// contribute *anywhere* on `q` — which makes the Lemma 7 cut strictly
/// sharper than the paper's `d(v) ≥ CPLMAX`. With label continuation on,
/// the search **replays** the settled prefix of the IOR run that preceded
/// it (same source, goal and graph version) instead of re-expanding it.
///
/// `outer_bound` (`RLMAX`, the k-th bound for COkNN, or a trajectory
/// session's seeded Lipschitz bound) caps expansion *unconditionally*: a
/// control point with `f > outer_bound` has value `> outer_bound ≥` the
/// final answer everywhere, so it can never change the result. This holds
/// even while intervals are unassigned — for any parameter `t` whose true
/// value beats the bound, the last bend `c` of its true shortest path
/// satisfies `f(c) = d_loaded(c) + mindist(c, q) ≤ v_true(t) < bound`
/// (loaded distances under-approximate true ones and loaded visible
/// regions over-approximate true ones), so `c` settles and claims `t`
/// before the cap can stop the traversal. Intervals left unassigned by
/// the cap therefore carry only values the incumbent already beats; the
/// result-list update keeps the incumbent there
/// (`rlu::emit`'s challenger-can't-reach arm). Values recorded above the
/// cap may be non-tight upper bounds; every value that can win stays
/// exact.
pub fn cplc_bounded(
    q: &Segment,
    g: &mut VisGraph,
    p_node: NodeId,
    cfg: &ConnConfig,
    vr_cache: &mut VrCache,
    dij: &mut DijkstraEngine,
    outer_bound: f64,
) -> ControlPointList {
    let mut cpl = ControlPointList::new(q.len());
    let goal = cfg.kernel.goal(q);
    let outer = if cfg.use_rlu_bound {
        outer_bound
    } else {
        f64::INFINITY
    };
    dij.ensure_prepared(g, p_node, goal, cfg.label_continuation);
    // The break threshold mirrors the engine's expansion bound (the outer
    // cap while any interval is unassigned, then `min(CPLMAX, outer)`); it
    // must be checked here too because a replayed settlement tape bypasses
    // the engine's heap-side bound check.
    let cap = |cpl: &ControlPointList| {
        if cpl.has_unassigned() {
            outer // safe even before full cover — see the doc comment
        } else {
            cpl.max_value(q).min(outer)
        }
    };
    if cfg.use_lemma7 {
        // bound the very first relaxations too (a reseeded run's seeds
        // would otherwise relax unbounded before the loop's first
        // set_bound)
        dij.set_bound(cap(&cpl));
    }
    while let Some((v, dv)) = dij.next_settled(g) {
        // Lemma 7 on the settle key (relaxed with mindist(v, q)
        // lower-bounded by 0 under the blind kernel, exactly the paper's
        // Algorithm 2 line 4; the goal-directed kernel uses the true
        // mindist, which the f-ordered settlement makes monotone)
        let fv = dv + goal.h(g.node_pos(v));
        if cfg.use_lemma7 && fv >= cap(&cpl) {
            break;
        }
        let pred = dij.predecessor(v);
        vr_cache.ensure(g, v, q);
        if let Some(u) = pred {
            vr_cache.ensure(g, u, q);
        }
        let vr_v = vr_cache.cached(v);
        if vr_v.is_empty() {
            continue;
        }
        let region = match pred {
            None => vr_v.clone(), // v == p itself
            Some(u) => {
                let vr_u = vr_cache.cached(u);
                let mut region = vr_v.subtract(vr_u); // Lemma 5
                if cfg.use_lemma6 {
                    region = lemma6_refine(q, g.node_pos(u), g.node_pos(v), vr_u, region);
                }
                region
            }
        };
        let candidate = ControlPoint::new(g.node_pos(v), dv);
        for iv in region.intervals() {
            cpl.offer(q, candidate, iv, cfg);
        }
        if cfg.use_lemma7 {
            // Stop *expansion* at the evolving threshold, not just the
            // settle loop: candidates beyond it are never pushed, so their
            // sight tests are never paid. Held at the outer cap while any
            // interval is unassigned (footnote 5 applies only without an
            // outer bound — see the doc comment's safety argument).
            dij.set_bound(cap(&cpl));
        }
    }
    cpl
}

/// Lemma 6: drops candidate pieces that form a shadow *gap* of `u` (both
/// endpoints visible to `u`) when `v` lies outside the triangle
/// `(u, R.l, R.r)` — such `v` can never carry the shortest path into the
/// gap.
fn lemma6_refine(
    q: &Segment,
    u_pos: Point,
    v_pos: Point,
    vr_u: &IntervalSet,
    region: IntervalSet,
) -> IntervalSet {
    let kept: Vec<Interval> = region
        .intervals()
        .iter()
        .filter(|piece| {
            let endpoints_visible = vr_u.contains(piece.lo) && vr_u.contains(piece.hi);
            if !endpoints_visible {
                return true; // premise unmet: keep
            }
            point_in_triangle_inclusive(v_pos, u_pos, q.at(piece.lo), q.at(piece.hi))
        })
        .copied()
        .collect();
    IntervalSet::from_intervals(kept)
}

/// Inclusive (boundary counts as inside, with EPS slack) point-in-triangle.
fn point_in_triangle_inclusive(p: Point, a: Point, b: Point, c: Point) -> bool {
    let d1 = Point::orient(a, b, p);
    let d2 = Point::orient(b, c, p);
    let d3 = Point::orient(c, a, p);
    let has_neg = d1 < -EPS || d2 < -EPS || d3 < -EPS;
    let has_pos = d1 > EPS || d2 > EPS || d3 > EPS;
    !(has_neg && has_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_vgraph::NodeKind;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    #[test]
    fn new_list_is_unassigned() {
        let cpl = ControlPointList::new(100.0);
        assert!(cpl.has_unassigned());
        assert_eq!(cpl.max_value(&q()), f64::INFINITY);
        assert!(cpl.value_at(&q(), 50.0).is_none());
        cpl.check_cover().unwrap();
    }

    #[test]
    fn offer_fills_unassigned_then_competes() {
        let cfg = ConnConfig::default();
        let mut cpl = ControlPointList::new(100.0);
        let near = ControlPoint::new(Point::new(20.0, 10.0), 0.0);
        cpl.offer(&q(), near, &Interval::new(0.0, 100.0), &cfg);
        assert!(!cpl.has_unassigned());
        cpl.check_cover().unwrap();
        // a second cp closer to the right half takes it over
        let right = ControlPoint::new(Point::new(80.0, 10.0), 0.0);
        cpl.offer(&q(), right, &Interval::new(0.0, 100.0), &cfg);
        cpl.check_cover().unwrap();
        assert_eq!(cpl.entries().len(), 2);
        let v_left = cpl.value_at(&q(), 10.0).unwrap();
        assert!((v_left - near.value(&q(), 10.0)).abs() < 1e-9);
        let v_right = cpl.value_at(&q(), 90.0).unwrap();
        assert!((v_right - right.value(&q(), 90.0)).abs() < 1e-9);
    }

    #[test]
    fn partial_region_offer_leaves_rest() {
        let cfg = ConnConfig::default();
        let mut cpl = ControlPointList::new(100.0);
        let cp = ControlPoint::new(Point::new(50.0, 5.0), 0.0);
        cpl.offer(&q(), cp, &Interval::new(30.0, 60.0), &cfg);
        cpl.check_cover().unwrap();
        assert!(cpl.value_at(&q(), 10.0).is_none());
        assert!(cpl.value_at(&q(), 45.0).is_some());
        assert!(cpl.value_at(&q(), 80.0).is_none());
        assert!(cpl.has_unassigned());
    }

    #[test]
    fn cplmax_is_max_endpoint_value() {
        let cfg = ConnConfig::default();
        let mut cpl = ControlPointList::new(100.0);
        let cp = ControlPoint::new(Point::new(0.0, 30.0), 5.0);
        cpl.offer(&q(), cp, &Interval::new(0.0, 100.0), &cfg);
        let want = 5.0 + Point::new(0.0, 30.0).dist(Point::new(100.0, 0.0));
        assert!((cpl.max_value(&q()) - want).abs() < 1e-9);
    }

    /// CPLC on an empty obstacle field: the data point itself controls all
    /// of `q`.
    #[test]
    fn cplc_free_space() {
        let cfg = ConnConfig::default();
        let mut g = VisGraph::new(50.0);
        let _s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let _e = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        let p = g.add_point(Point::new(40.0, 30.0), NodeKind::DataPoint);
        let mut cache = VrCache::default();
        let mut dij = DijkstraEngine::default();
        let cpl = cplc(&q(), &mut g, p, &cfg, &mut cache, &mut dij);
        cpl.check_cover().unwrap();
        assert!(!cpl.has_unassigned());
        for t in [0.0, 25.0, 70.0, 100.0] {
            let v = cpl.value_at(&q(), t).unwrap();
            assert!((v - Point::new(40.0, 30.0).dist(q().at(t))).abs() < 1e-9);
        }
    }

    /// The paper's Figure 3 shape: an obstacle forces a detour through its
    /// corner, which becomes the control point for the shadowed part.
    #[test]
    fn cplc_single_obstacle_detour() {
        let cfg = ConnConfig::default();
        let mut g = VisGraph::new(50.0);
        let _s = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let _e = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        // box above the middle of q; p above the box. The sight-line from p
        // to q(0) passes above the (40,40) corner (at x = 40 it is at
        // y = 48), so the segment ends stay directly visible.
        g.add_obstacle(conn_geom::Rect::new(40.0, 20.0, 60.0, 40.0));
        let ppos = Point::new(50.0, 60.0);
        let p = g.add_point(ppos, NodeKind::DataPoint);
        let mut cache = VrCache::default();
        let mut dij = DijkstraEngine::default();
        let cpl = cplc(&q(), &mut g, p, &cfg, &mut cache, &mut dij);
        cpl.check_cover().unwrap();
        assert!(!cpl.has_unassigned());
        // directly under the box, the distance must route around a side:
        // p → (40,40) → (40,20) → q(50), or the mirror path
        let v_mid = cpl.value_at(&q(), 50.0).unwrap();
        assert!(v_mid > ppos.dist(q().at(50.0)) + 1.0);
        let around =
            ppos.dist(Point::new(40.0, 40.0)) + 20.0 + Point::new(40.0, 20.0).dist(q().at(50.0));
        assert!((v_mid - around).abs() < 1e-9, "v_mid {v_mid} vs {around}");
        // near the segment ends, p sees q directly
        let v0 = cpl.value_at(&q(), 0.0).unwrap();
        assert!((v0 - ppos.dist(q().at(0.0))).abs() < 1e-9);
        let v100 = cpl.value_at(&q(), 100.0).unwrap();
        assert!((v100 - ppos.dist(q().at(100.0))).abs() < 1e-9);
    }

    /// Lemma 6 refinement: conservative (keeps pieces whose premise fails).
    #[test]
    fn lemma6_keeps_non_gap_pieces() {
        let vr_u = IntervalSet::single(Interval::new(0.0, 40.0));
        let region = IntervalSet::single(Interval::new(40.0, 100.0));
        // piece endpoint 100 is not visible to u → premise unmet → kept
        let kept = lemma6_refine(
            &q(),
            Point::new(0.0, 50.0),
            Point::new(500.0, 500.0),
            &vr_u,
            region.clone(),
        );
        assert_eq!(kept, region);
    }

    #[test]
    fn lemma6_drops_outside_triangle() {
        // u sees [0,30] and [70,100]; gap [30,70] with both endpoints visible
        let vr_u =
            IntervalSet::from_intervals(vec![Interval::new(0.0, 30.0), Interval::new(70.0, 100.0)]);
        let region = IntervalSet::single(Interval::new(30.0, 70.0));
        let u = Point::new(50.0, 50.0);
        // v far outside the triangle (u, q(30), q(70))
        let kept = lemma6_refine(&q(), u, Point::new(500.0, 500.0), &vr_u, region.clone());
        assert!(kept.is_empty());
        // v inside the triangle stays
        let kept = lemma6_refine(&q(), u, Point::new(50.0, 20.0), &vr_u, region.clone());
        assert_eq!(kept, region);
    }

    #[test]
    fn triangle_inclusive_boundary() {
        let (a, b, c) = (
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        );
        assert!(point_in_triangle_inclusive(Point::new(2.0, 2.0), a, b, c));
        assert!(point_in_triangle_inclusive(Point::new(5.0, 0.0), a, b, c)); // edge
        assert!(point_in_triangle_inclusive(a, a, b, c)); // vertex
        assert!(!point_in_triangle_inclusive(
            Point::new(10.0, 10.0),
            a,
            b,
            c
        ));
    }
}
