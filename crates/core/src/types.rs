//! Identified data points as stored in the data R-tree.

use conn_geom::{Point, Rect};
use conn_index::{Mbr, PersistItem};

/// A data point of `P`: an application object (gas station, survivor, …)
/// with a stable identifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPoint {
    /// Stable application identifier.
    pub id: u32,
    /// Location in the plane.
    pub pos: Point,
}

impl DataPoint {
    /// A data point with identifier `id` at `pos`.
    pub fn new(id: u32, pos: Point) -> Self {
        DataPoint { id, pos }
    }

    /// Wraps raw points with sequential ids.
    pub fn from_points(points: &[Point]) -> Vec<DataPoint> {
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| DataPoint::new(i as u32, p))
            .collect()
    }
}

impl Mbr for DataPoint {
    #[inline]
    fn mbr(&self) -> Rect {
        Rect::from_point(self.pos)
    }
}

impl PersistItem for DataPoint {
    const ENCODED_SIZE: usize = 20; // u32 id + 2 × f64

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        self.pos.encode(out);
    }

    fn decode(bytes: &[u8]) -> std::io::Result<Self> {
        let id = conn_index::persist::read_u32(bytes, 0)?;
        let pos = Point::new(
            conn_index::persist::read_f64(bytes, 4)?,
            conn_index::persist::read_f64(bytes, 12)?,
        );
        Ok(DataPoint { id, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_assigns_sequential_ids() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let dps = DataPoint::from_points(&pts);
        assert_eq!(dps[0].id, 0);
        assert_eq!(dps[1].id, 1);
        assert_eq!(dps[1].pos, Point::new(3.0, 4.0));
    }

    #[test]
    fn mbr_is_degenerate_rect() {
        let dp = DataPoint::new(7, Point::new(5.0, 6.0));
        assert_eq!(dp.mbr().area(), 0.0);
        assert!(dp.mbr().contains(dp.pos));
    }
}
