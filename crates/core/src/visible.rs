//! Visible k-nearest-neighbor queries (Nutanong et al., DASFAA 2007 —
//! reference \[15\], discussed in the paper's §2.3).
//!
//! VkNN returns the `k` nearest data points *visible* from the query
//! location — distance is plain Euclidean, but candidates hidden behind an
//! obstacle are skipped. Because the data stream arrives in ascending
//! Euclidean distance, the answer is simply the first `k` visible
//! candidates; obstacles are loaded lazily up to the current candidate's
//! distance (any obstacle blocking the sight-line `s → p` must intersect
//! it, hence lies within `dist(s, p)` of `s`).

use std::time::Instant;

use conn_geom::{Point, Rect};
use conn_index::RStarTree;
use conn_vgraph::NodeKind;

use crate::config::ConnConfig;
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// The `k` nearest data points visible from `s`, in ascending Euclidean
/// distance.
pub fn visible_knn(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    k: usize,
    cfg: &ConnConfig,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    assert!(k >= 1, "k must be positive");
    data_tree.reset_stats();
    obstacle_tree.reset_stats();
    // Query-boundary elapsed time for QueryStats; the kernel loop
    // below never reads the clock.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)

    let mut g = cfg.new_graph();
    g.add_point(s, NodeKind::Endpoint);
    let mut obstacles = obstacle_tree.nearest_iter(s);
    let mut pending: Option<(Rect, f64)> = None;
    let mut loaded_upto = 0.0f64;
    let mut noe = 0u64;

    let mut out: Vec<(DataPoint, f64)> = Vec::with_capacity(k);
    let mut npe = 0u64;
    for (p, d) in data_tree.nearest_iter(s) {
        if out.len() >= k {
            break;
        }
        npe += 1;
        // make sure every obstacle that could block s→p is present
        if d > loaded_upto {
            loop {
                if pending.is_none() {
                    pending = obstacles.next();
                }
                match pending {
                    Some((r, od)) if od <= d => {
                        g.add_obstacle(r);
                        noe += 1;
                        pending = None;
                    }
                    _ => break,
                }
            }
            loaded_upto = d;
        }
        if g.visible(s, p.pos) {
            out.push((p, d));
        }
    }

    let stats = QueryStats {
        data_io: data_tree.stats(),
        obstacle_io: obstacle_tree.stats(),
        cpu: started.elapsed(),
        npe,
        noe,
        svg_nodes: g.num_nodes() as u64,
        result_tuples: out.len() as u64,
        reuse: Default::default(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Segment;

    fn world() -> (Vec<DataPoint>, Vec<Rect>) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 0.0)), // nearest, visible
            DataPoint::new(1, Point::new(0.0, 30.0)), // hidden by the wall
            DataPoint::new(2, Point::new(40.0, 5.0)), // visible
            DataPoint::new(3, Point::new(-50.0, 0.0)), // visible, far
        ];
        let wall = Rect::new(-10.0, 10.0, 10.0, 20.0);
        (points, vec![wall])
    }

    #[test]
    fn hidden_points_are_skipped() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let s = Point::new(0.0, 0.0);
        let (got, _) = visible_knn(&dt, &ot, s, 3, &ConnConfig::default());
        let ids: Vec<u32> = got.iter().map(|(p, _)| p.id).collect();
        assert_eq!(ids, vec![0, 2, 3], "point 1 is behind the wall");
        // distances are euclidean and ascending
        for (p, d) in &got {
            assert!((d - p.pos.dist(s)).abs() < 1e-9);
        }
    }

    #[test]
    fn without_obstacles_vknn_is_knn() {
        let (points, _) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let empty: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let s = Point::new(0.0, 0.0);
        let (got, _) = visible_knn(&dt, &empty, s, 4, &ConnConfig::default());
        let want = dt.knn(s, 4);
        assert_eq!(got.len(), want.len());
        for ((gp, _), (wp, _)) in got.iter().zip(&want) {
            assert_eq!(gp.id, wp.id);
        }
    }

    #[test]
    fn agreement_with_linear_scan() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        for s in [
            Point::new(5.0, 40.0),
            Point::new(-20.0, 15.0),
            Point::new(30.0, -10.0),
        ] {
            let (got, _) = visible_knn(&dt, &ot, s, 10, &ConnConfig::default());
            let mut want: Vec<(DataPoint, f64)> = points
                .iter()
                .filter(|p| !obstacles.iter().any(|r| r.blocks(&Segment::new(s, p.pos))))
                .map(|p| (*p, p.pos.dist(s)))
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1));
            assert_eq!(got.len(), want.len(), "s = {s}");
            for ((gp, gd), (wp, wd)) in got.iter().zip(&want) {
                assert_eq!(gp.id, wp.id, "s = {s}");
                assert!((gd - wd).abs() < 1e-9);
            }
        }
    }
}
