//! Single unified R-tree variant (paper §4.5, evaluated in Figure 13).
//!
//! Data points and obstacles live in one R\*-tree. A single best-first
//! traversal keyed by `mindist` to `q` feeds *both* consumers: data points
//! pop in ascending order for the main loop, and obstacles stream into the
//! visibility graph on demand. Because the underlying iterator yields items
//! in globally ascending `mindist`, buffering whichever kind the current
//! consumer does not want preserves each kind's ordering.
//!
//! The 1T variant inherits the configured obstructed-distance kernel
//! unchanged — goal-directed A*, label continuation and the RLU expansion
//! cap all live below the [`QueryStreams`] abstraction, so the tree layout
//! and the kernel compose freely.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use std::collections::VecDeque;

use conn_geom::{Rect, Segment};
use conn_index::{Mbr, NearestIter, RStarTree};
use conn_vgraph::VisGraph;

use crate::coknn::CoknnResult;
use crate::config::ConnConfig;
use crate::conn::ConnResult;
use crate::engine::QueryEngine;
use crate::stats::QueryStats;
use crate::streams::QueryStreams;
use crate::types::DataPoint;

/// An entry of the unified tree: either a data point or an obstacle.
#[derive(Debug, Clone, Copy)]
pub enum SpatialObject {
    /// A data point of `P`.
    Point(DataPoint),
    /// An obstacle rectangle of `O`.
    Obstacle(Rect),
}

impl Mbr for SpatialObject {
    #[inline]
    fn mbr(&self) -> Rect {
        match self {
            SpatialObject::Point(p) => p.mbr(),
            SpatialObject::Obstacle(r) => *r,
        }
    }
}

impl conn_index::PersistItem for SpatialObject {
    // 1-byte tag + the larger variant (Rect: 32 bytes), fixed width
    const ENCODED_SIZE: usize = 1 + 32;

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SpatialObject::Point(p) => {
                out.push(0);
                p.encode(out);
                out.extend_from_slice(&[0u8; 33 - 1 - DataPoint::ENCODED_SIZE]);
                // pad
            }
            SpatialObject::Obstacle(r) => {
                out.push(1);
                r.encode(out);
            }
        }
    }

    fn decode(bytes: &[u8]) -> std::io::Result<Self> {
        match bytes.first() {
            Some(0) => Ok(SpatialObject::Point(DataPoint::decode(&bytes[1..])?)),
            Some(1) => Ok(SpatialObject::Obstacle(Rect::decode(&bytes[1..])?)),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad spatial object tag",
            )),
        }
    }
}

/// Bulk-loads points and obstacles into one unified R\*-tree.
pub fn build_unified_tree(
    points: &[DataPoint],
    obstacles: &[Rect],
    page_size: usize,
) -> RStarTree<SpatialObject> {
    let items: Vec<SpatialObject> = points
        .iter()
        .map(|p| SpatialObject::Point(*p))
        .chain(obstacles.iter().map(|r| SpatialObject::Obstacle(*r)))
        .collect();
    RStarTree::bulk_load(items, page_size)
}

/// Query streams over a single mixed best-first traversal.
pub struct OneTreeStreams<'a> {
    iter: NearestIter<'a, SpatialObject, Segment>,
    point_buf: VecDeque<(DataPoint, f64)>,
    obstacle_buf: VecDeque<(Rect, f64)>,
    loaded: usize,
}

impl<'a> OneTreeStreams<'a> {
    /// Streams over the unified tree, ordered by `mindist` to `q`.
    pub fn new(tree: &'a RStarTree<SpatialObject>, q: &Segment) -> Self {
        OneTreeStreams {
            iter: tree.nearest_iter(*q),
            point_buf: VecDeque::new(),
            obstacle_buf: VecDeque::new(),
            loaded: 0,
        }
    }

    /// Advances the mixed iterator once, routing the item to its buffer.
    /// Returns false when exhausted.
    fn pull(&mut self) -> bool {
        match self.iter.next() {
            Some((SpatialObject::Point(p), d)) => {
                self.point_buf.push_back((p, d));
                true
            }
            Some((SpatialObject::Obstacle(r), d)) => {
                self.obstacle_buf.push_back((r, d));
                true
            }
            None => false,
        }
    }

    fn ensure_point(&mut self) -> bool {
        while self.point_buf.is_empty() {
            if !self.pull() {
                return false;
            }
        }
        true
    }
}

impl QueryStreams for OneTreeStreams<'_> {
    fn peek_point_dist(&mut self) -> Option<f64> {
        if self.ensure_point() {
            self.point_buf.front().map(|(_, d)| *d)
        } else {
            None
        }
    }

    fn next_point(&mut self) -> Option<(DataPoint, f64)> {
        if self.ensure_point() {
            self.point_buf.pop_front()
        } else {
            None
        }
    }

    fn load_obstacles_until(&mut self, g: &mut VisGraph, bound: f64) -> usize {
        let mut added = 0;
        loop {
            // drain buffered obstacles within the bound
            while let Some((_, d)) = self.obstacle_buf.front() {
                if *d > bound {
                    self.loaded += added;
                    return added;
                }
                // Infallible: guarded by the peek on the line above.
                // lint:allow(no-panic-in-query-path)
                let (r, _) = self.obstacle_buf.pop_front().expect("front checked");
                g.add_obstacle(r);
                added += 1;
            }
            // buffer empty: anything unseen is at least at the frontier dist
            match self.iter.peek_dist() {
                Some(d) if d <= bound => {
                    if !self.pull() {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.loaded += added;
        added
    }

    fn load_next_obstacle(&mut self, g: &mut VisGraph) -> usize {
        loop {
            if let Some((r, _)) = self.obstacle_buf.pop_front() {
                g.add_obstacle(r);
                self.loaded += 1;
                return 1;
            }
            if !self.pull() {
                return 0;
            }
        }
    }

    fn obstacles_loaded(&self) -> usize {
        self.loaded
    }
}

/// CONN search over a single unified R-tree (§4.5). The unified tree's I/O
/// is reported in `data_io`; `obstacle_io` stays zero. One-shot wrapper
/// over [`QueryEngine::conn_single_tree`].
pub fn conn_search_single_tree(
    tree: &RStarTree<SpatialObject>,
    q: &Segment,
    cfg: &ConnConfig,
) -> (ConnResult, QueryStats) {
    QueryEngine::new(*cfg).conn_single_tree(tree, q)
}

/// COkNN search over a single unified R-tree (§4.5). One-shot wrapper over
/// [`QueryEngine::coknn_single_tree`].
pub fn coknn_search_single_tree(
    tree: &RStarTree<SpatialObject>,
    q: &Segment,
    k: usize,
    cfg: &ConnConfig,
) -> (CoknnResult, QueryStats) {
    QueryEngine::new(*cfg).coknn_single_tree(tree, q, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::conn_search;
    use conn_geom::Point;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    fn setup() -> (Vec<DataPoint>, Vec<Rect>) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 20.0)),
            DataPoint::new(1, Point::new(50.0, 8.0)),
            DataPoint::new(2, Point::new(90.0, 25.0)),
            DataPoint::new(3, Point::new(45.0, 60.0)),
        ];
        let obstacles = vec![
            Rect::new(30.0, 5.0, 40.0, 30.0),
            Rect::new(60.0, 10.0, 75.0, 18.0),
            Rect::new(20.0, 40.0, 60.0, 50.0),
        ];
        (points, obstacles)
    }

    #[test]
    fn one_tree_matches_two_tree_answers() {
        let (points, obstacles) = setup();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let ut = build_unified_tree(&points, &obstacles, 4096);
        let cfg = ConnConfig::default();
        let (two, _) = conn_search(&dt, &ot, &q(), &cfg);
        let (one, _) = conn_search_single_tree(&ut, &q(), &cfg);
        one.check_cover().unwrap();
        for i in 0..=50 {
            let t = 100.0 * (i as f64) / 50.0;
            match (two.nn_at(t), one.nn_at(t)) {
                (Some((p2, d2)), Some((p1, d1))) => {
                    assert!((d1 - d2).abs() < 1e-6, "t={t}: {d1} vs {d2}");
                    // equal distance ties may differ in id; ids equal otherwise
                    if (d1 - d2).abs() < 1e-9 && p1.id != p2.id {
                        continue;
                    }
                    assert_eq!(p1.id, p2.id, "t={t}");
                }
                (a, b) => assert_eq!(a.is_none(), b.is_none(), "t={t}"),
            }
        }
    }

    #[test]
    fn mixed_stream_orders_each_kind() {
        let (points, obstacles) = setup();
        let ut = build_unified_tree(&points, &obstacles, 4096);
        let mut s = OneTreeStreams::new(&ut, &q());
        let mut g = VisGraph::new(50.0);
        // points arrive ascending
        let mut prev = 0.0;
        let mut n = 0;
        while let Some((_, d)) = s.next_point() {
            assert!(d >= prev);
            prev = d;
            n += 1;
        }
        assert_eq!(n, points.len());
        // obstacles all loadable afterwards
        assert_eq!(
            s.load_obstacles_until(&mut g, f64::INFINITY),
            obstacles.len()
        );
        assert_eq!(s.obstacles_loaded(), obstacles.len());
    }

    #[test]
    fn single_tree_io_reported_on_data_side() {
        let (points, obstacles) = setup();
        let ut = build_unified_tree(&points, &obstacles, 4096);
        let (_, stats) = conn_search_single_tree(&ut, &q(), &ConnConfig::default());
        assert!(stats.data_io.reads > 0);
        assert_eq!(stats.obstacle_io.reads, 0);
    }
}
