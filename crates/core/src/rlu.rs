//! The result list and RLU — Result List Update (paper §4.3, Algorithm 3).
//!
//! The result list partitions `q` into intervals, each holding the current
//! ONN candidate and the control point its distance function routes through
//! (`⟨pᵢ, cpᵢ, Rᵢ⟩` in the paper). Evaluating a new data point `p` walks its
//! control-point list against the result list, intersecting intervals and
//! splitting them wherever `p`'s distance function crosses the incumbent's
//! (Lemma 1 shortcut, then the quadratic Split of §3).

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use conn_geom::{Interval, Segment};

use crate::config::ConnConfig;
use crate::cpl::ControlPointList;
use crate::dist::ControlPoint;
use crate::split::{lemma1_incumbent_wins, split, Winner};
use crate::types::DataPoint;

/// One tuple `⟨p, cp, R⟩` of the result list. `point == None` means no data
/// point evaluated so far can reach this interval.
#[derive(Debug, Clone, Copy)]
pub struct ResultEntry {
    /// The answer point (`None` = unreachable interval).
    pub point: Option<DataPoint>,
    /// The control point realizing the answer's distance function.
    pub cp: Option<ControlPoint>,
    /// The interval of the query segment this tuple answers.
    pub interval: Interval,
}

impl ResultEntry {
    /// The obstructed distance from the answer point to `q(t)` (requires
    /// `t` within the entry's interval).
    pub fn value(&self, q: &Segment, t: f64) -> Option<f64> {
        self.cp.as_ref().map(|cp| cp.value(q, t))
    }
}

/// Retained buffers for result-list updates. One instance lives in the
/// query workspace; in steady state the three vectors rotate with the
/// lists' own storage and RLU performs no allocations.
#[derive(Debug, Default)]
pub struct RluScratch {
    /// Spare [`ResultEntry`] buffer (rotates with `ResultList::entries`).
    pub(crate) flat: Vec<ResultEntry>,
    /// Second spare buffer (normalization pass).
    pub(crate) flat2: Vec<ResultEntry>,
    /// Spare COkNN entry buffer (rotates with `KnnResultList::entries`).
    pub(crate) knn: Vec<crate::coknn::KnnEntry>,
    /// Second spare COkNN buffer (normalization pass).
    pub(crate) knn2: Vec<crate::coknn::KnnEntry>,
}

/// The result list: sorted, disjoint intervals covering `[0, q.len()]`.
#[derive(Debug, Clone)]
pub struct ResultList {
    entries: Vec<ResultEntry>,
    qlen: f64,
}

impl ResultList {
    /// A single-interval list covering `[0, qlen]` with no answer yet.
    pub fn new(qlen: f64) -> Self {
        ResultList {
            entries: vec![ResultEntry {
                point: None,
                cp: None,
                interval: Interval::new(0.0, qlen),
            }],
            qlen,
        }
    }

    /// The tuples, in ascending interval order.
    pub fn entries(&self) -> &[ResultEntry] {
        &self.entries
    }

    /// Length of the query segment the list partitions.
    pub fn qlen(&self) -> f64 {
        self.qlen
    }

    /// `RLMAX` (Lemma 2): the largest endpoint distance over all tuples;
    /// ∞ while any tuple is unassigned (footnote 3). A data point whose
    /// `mindist` to `q` exceeds this bound cannot change the list.
    pub fn rlmax(&self, q: &Segment) -> f64 {
        let mut m = 0.0f64;
        for e in &self.entries {
            match &e.cp {
                None => return f64::INFINITY,
                Some(cp) => m = m.max(cp.max_over(q, &e.interval)),
            }
        }
        m
    }

    /// The answer at parameter `t`: the ONN and its obstructed distance.
    pub fn answer_at(&self, q: &Segment, t: f64) -> Option<(DataPoint, f64)> {
        self.entries
            .iter()
            .find(|e| e.interval.contains(t))
            .and_then(|e| match (e.point, e.value(q, t)) {
                (Some(p), Some(v)) => Some((p, v)),
                _ => None,
            })
    }

    /// RLU — Algorithm 3: folds data point `p` (with its control-point
    /// list) into the result list. One-shot convenience over
    /// [`ResultList::update_with`].
    pub fn update(&mut self, q: &Segment, p: DataPoint, cpl: &ControlPointList, cfg: &ConnConfig) {
        self.update_with(q, p, cpl, cfg, &mut RluScratch::default());
    }

    /// RLU with caller-retained scratch buffers: in steady state the update
    /// allocates nothing, rotating the list's storage through `scratch`.
    pub fn update_with(
        &mut self,
        q: &Segment,
        p: DataPoint,
        cpl: &ControlPointList,
        cfg: &ConnConfig,
        scratch: &mut RluScratch,
    ) {
        let old = std::mem::take(&mut self.entries);
        let mut out = std::mem::take(&mut scratch.flat);
        out.clear();
        out.reserve(old.len() + cpl.entries().len());
        let cpl_entries = cpl.entries();

        let mut j = 0usize; // cursor into cpl entries
        for entry in old.iter().copied() {
            let mut cursor = entry.interval.lo;
            // advance j to the first cpl entry overlapping this interval
            while j > 0 && cpl_entries[j].1.lo > cursor {
                j -= 1;
            }
            while cpl_entries[j].1.hi <= cursor && j + 1 < cpl_entries.len() {
                j += 1;
            }
            let mut jj = j;
            while cursor < entry.interval.hi - conn_geom::EPS {
                let (ref new_cp, cpl_iv) = cpl_entries[jj];
                let hi = entry.interval.hi.min(cpl_iv.hi);
                let piece = Interval::new(cursor, hi.max(cursor));
                if !piece.is_empty() {
                    Self::emit(&mut out, q, &entry, p, new_cp, piece, cfg);
                }
                cursor = hi;
                if cpl_iv.hi < entry.interval.hi - conn_geom::EPS {
                    jj += 1;
                    if jj >= cpl_entries.len() {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
        self.entries = out;
        self.normalize_with(&mut scratch.flat2);
        scratch.flat = old; // recycle the pre-update storage
    }

    /// Resolves one incumbent-vs-challenger piece.
    fn emit(
        out: &mut Vec<ResultEntry>,
        q: &Segment,
        incumbent: &ResultEntry,
        p: DataPoint,
        new_cp: &Option<ControlPoint>,
        piece: Interval,
        cfg: &ConnConfig,
    ) {
        match (incumbent.cp, new_cp) {
            // challenger can't reach this piece: incumbent stays
            (_, None) => out.push(ResultEntry {
                interval: piece,
                ..*incumbent
            }),
            // nothing here yet: challenger takes it
            (None, Some(cp)) => out.push(ResultEntry {
                point: Some(p),
                cp: Some(*cp),
                interval: piece,
            }),
            (Some(inc_cp), Some(cp)) => {
                // Lemma 1 fast path (Algorithm 3 line 7)
                if cfg.use_lemma1 && lemma1_incumbent_wins(q, &inc_cp, cp, &piece) {
                    out.push(ResultEntry {
                        interval: piece,
                        ..*incumbent
                    });
                    return;
                }
                for (sub, winner) in split(q, &inc_cp, cp, piece) {
                    match winner {
                        Winner::Incumbent => out.push(ResultEntry {
                            interval: sub,
                            ..*incumbent
                        }),
                        Winner::Challenger => out.push(ResultEntry {
                            point: Some(p),
                            cp: Some(*cp),
                            interval: sub,
                        }),
                    }
                }
            }
        }
    }

    /// Merges adjacent entries with the same answer point and control point
    /// (footnote 6 of the paper). `buf` receives the merged list, then
    /// swaps with the entry storage — no allocation when `buf` has
    /// capacity.
    fn normalize_with(&mut self, buf: &mut Vec<ResultEntry>) {
        buf.clear();
        for &e in &self.entries {
            match buf.last_mut() {
                Some(prev)
                    if prev.point.map(|p| p.id) == e.point.map(|p| p.id)
                        && same_opt_cp(&prev.cp, &e.cp) =>
                {
                    prev.interval.hi = e.interval.hi;
                }
                Some(prev) if e.interval.is_empty() => prev.interval.hi = e.interval.hi,
                _ => {
                    if e.interval.is_empty() && !buf.is_empty() {
                        continue;
                    }
                    buf.push(e);
                }
            }
        }
        std::mem::swap(&mut self.entries, buf);
    }

    /// Validation helper: the entries exactly cover `[0, qlen]`.
    pub fn check_cover(&self) -> Result<(), crate::Error> {
        let mut cursor = 0.0;
        for e in &self.entries {
            if (e.interval.lo - cursor).abs() > 1e-6 {
                return Err(crate::Error::cover_violation(format!(
                    "gap at {cursor}: next starts {}",
                    e.interval.lo
                )));
            }
            cursor = e.interval.hi;
        }
        if (cursor - self.qlen).abs() > 1e-6 {
            return Err(crate::Error::cover_violation(format!(
                "cover ends at {cursor} != {}",
                self.qlen
            )));
        }
        Ok(())
    }

    /// Corrupted-fixture hook: forces a cover gap by pretending the query
    /// segment is longer than the entries actually cover.
    #[cfg(all(test, feature = "sanitize-invariants"))]
    pub(crate) fn force_qlen_for_test(&mut self, qlen: f64) {
        self.qlen = qlen;
    }
}

fn same_opt_cp(a: &Option<ControlPoint>, b: &Option<ControlPoint>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.same_as(y),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    /// Builds a CPL whose single control point is the data point itself
    /// (free-space shortcut for tests).
    fn direct_cpl(p: Point) -> ControlPointList {
        let mut cpl = ControlPointList::new(100.0);
        cpl.offer(
            &q(),
            ControlPoint::direct(p),
            &Interval::new(0.0, 100.0),
            &ConnConfig::default(),
        );
        cpl
    }

    #[test]
    fn first_point_takes_everything() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        assert_eq!(rl.rlmax(&q()), f64::INFINITY);
        let p = DataPoint::new(0, Point::new(30.0, 20.0));
        rl.update(&q(), p, &direct_cpl(p.pos), &cfg);
        rl.check_cover().unwrap();
        assert_eq!(rl.entries().len(), 1);
        assert_eq!(rl.entries()[0].point.unwrap().id, 0);
        assert!(rl.rlmax(&q()).is_finite());
    }

    #[test]
    fn second_point_splits_at_bisector() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        let a = DataPoint::new(0, Point::new(20.0, 10.0));
        let b = DataPoint::new(1, Point::new(80.0, 10.0));
        rl.update(&q(), a, &direct_cpl(a.pos), &cfg);
        rl.update(&q(), b, &direct_cpl(b.pos), &cfg);
        rl.check_cover().unwrap();
        assert_eq!(rl.entries().len(), 2);
        assert_eq!(rl.answer_at(&q(), 10.0).unwrap().0.id, 0);
        assert_eq!(rl.answer_at(&q(), 90.0).unwrap().0.id, 1);
        let boundary = rl.entries()[0].interval.hi;
        assert!((boundary - 50.0).abs() < 1e-6);
    }

    #[test]
    fn worse_point_changes_nothing() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        let a = DataPoint::new(0, Point::new(50.0, 5.0));
        let b = DataPoint::new(1, Point::new(50.0, 500.0));
        rl.update(&q(), a, &direct_cpl(a.pos), &cfg);
        let before = rl.entries().len();
        rl.update(&q(), b, &direct_cpl(b.pos), &cfg);
        assert_eq!(rl.entries().len(), before);
        assert_eq!(rl.answer_at(&q(), 50.0).unwrap().0.id, 0);
    }

    #[test]
    fn pocket_winner_creates_three_entries() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        // a is near the line but pays a base detour; b hovers mid-height
        let a = DataPoint::new(0, Point::new(50.0, 40.0));
        rl.update(&q(), a, &direct_cpl(a.pos), &cfg);
        // challenger with a tight pocket win around t=50
        let b = DataPoint::new(1, Point::new(50.0, 5.0));
        let mut cpl = ControlPointList::new(100.0);
        cpl.offer(
            &q(),
            ControlPoint::new(Point::new(50.0, 5.0), 20.0),
            &Interval::new(0.0, 100.0),
            &cfg,
        );
        rl.update(&q(), b, &cpl, &cfg);
        rl.check_cover().unwrap();
        // F_b(50) = 25 < F_a(50) = 40, but at the ends a wins
        assert_eq!(rl.answer_at(&q(), 0.0).unwrap().0.id, 0);
        assert_eq!(rl.answer_at(&q(), 50.0).unwrap().0.id, 1);
        assert_eq!(rl.answer_at(&q(), 100.0).unwrap().0.id, 0);
        assert_eq!(rl.entries().len(), 3);
    }

    #[test]
    fn partial_cpl_leaves_unreachable_region_alone() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        let a = DataPoint::new(0, Point::new(10.0, 10.0));
        // a's CPL covers only [0, 40]
        let mut cpl = ControlPointList::new(100.0);
        cpl.offer(
            &q(),
            ControlPoint::direct(a.pos),
            &Interval::new(0.0, 40.0),
            &cfg,
        );
        rl.update(&q(), a, &cpl, &cfg);
        rl.check_cover().unwrap();
        assert!(rl.answer_at(&q(), 20.0).is_some());
        assert!(rl.answer_at(&q(), 70.0).is_none());
        assert_eq!(rl.rlmax(&q()), f64::INFINITY);
    }

    #[test]
    fn rlmax_matches_manual_bound() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        let a = DataPoint::new(0, Point::new(30.0, 40.0));
        rl.update(&q(), a, &direct_cpl(a.pos), &cfg);
        let want = a.pos.dist(Point::new(100.0, 0.0)); // far endpoint
        assert!((rl.rlmax(&q()) - want).abs() < 1e-9);
    }

    #[test]
    fn merging_keeps_single_entry_for_same_cp() {
        let cfg = ConnConfig::default();
        let mut rl = ResultList::new(100.0);
        let a = DataPoint::new(0, Point::new(50.0, 10.0));
        rl.update(&q(), a, &direct_cpl(a.pos), &cfg);
        // updating with the same point again must not fragment the list
        rl.update(&q(), a, &direct_cpl(a.pos), &cfg);
        assert_eq!(rl.entries().len(), 1);
    }
}
