//! Obstructed range queries: all data points within obstructed distance `r`
//! of a location (one of the obstructed query types of Zhang et al., EDBT
//! 2004 — reference \[31\] — whose machinery the CONN paper generalizes).
//!
//! Same skeleton as [`crate::onn::onn_search`]: stream candidates by
//! Euclidean `mindist` (a lower bound of the obstructed distance, so the
//! stream can stop at `r`), resolve each candidate's obstructed distance on
//! the incrementally-fed local visibility graph, and keep those within `r`.

use std::time::Instant;

use conn_geom::{Point, Rect};
use conn_index::RStarTree;
use conn_vgraph::{DijkstraEngine, NodeKind};

use crate::config::ConnConfig;
use crate::stats::{IoWindow, QueryStats};
use crate::types::DataPoint;

/// All data points whose obstructed distance to `s` is at most `radius`,
/// in ascending distance order.
pub fn obstructed_range_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    radius: f64,
    cfg: &ConnConfig,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    let service =
        crate::ConnService::with_config(crate::Scene::borrowing(data_tree, obstacle_tree), *cfg);
    let query = crate::Query::range(s, radius)
        .build()
        .unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    let resp = service.execute(&query).unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    match resp.answer {
        crate::Answer::Range(v) => (v, resp.stats),
        // Infallible: the service answers each kind with its own family.
        // lint:allow(no-panic-in-query-path)
        _ => unreachable!("range query answered by another family"),
    }
}

/// [`obstructed_range_search`] with tree-counter handling factored out
/// (`track_io = false` for batch workers — see the batch module docs).
pub(crate) fn range_search_impl(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    radius: f64,
    cfg: &ConnConfig,
    track_io: bool,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    assert!(radius >= 0.0, "negative radius");
    let io = IoWindow::begin(track_io, data_tree, obstacle_tree);
    // Query-boundary elapsed time for QueryStats; the kernel loop
    // below never reads the clock.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)

    let mut g = cfg.new_graph();
    let s_node = g.add_point(s, NodeKind::Endpoint);

    // obstacles within mindist(o, s) <= radius are the only ones that can
    // affect paths of length <= radius (every point of such a path lies
    // within radius of s); load them all up front
    let mut noe = 0u64;
    for (r, d) in obstacle_tree.nearest_iter(s) {
        if d > radius {
            break;
        }
        g.add_obstacle(r);
        noe += 1;
    }

    let mut results: Vec<(DataPoint, f64)> = Vec::new();
    let mut npe = 0u64;
    let mut points = data_tree.nearest_iter(s);
    let mut dij = DijkstraEngine::default();
    while let Some(lower) = points.peek_dist() {
        if lower > radius {
            break; // euclidean lower bound exceeds the radius
        }
        // Infallible: the peek above returned Some for this same stream.
        // lint:allow(no-panic-in-query-path)
        let (p, _) = points.next().expect("peeked point");
        npe += 1;
        let p_node = g.add_point(p.pos, NodeKind::DataPoint);
        // goal-directed toward s, with the radius as expansion bound: a
        // point whose search exhausts inside the bound reports ∞ and is
        // rejected exactly like an over-radius distance
        dij.prepare_directed(&g, p_node, cfg.kernel.point_goal(s));
        dij.set_bound(radius);
        let od = dij.run_until_settled(&mut g, s_node);
        g.remove_node(p_node);
        if od <= radius {
            let at = results.partition_point(|(_, d)| *d <= od);
            results.insert(at, (p, od));
        }
    }

    let (data_io, obstacle_io) = io.end(data_tree, obstacle_tree);
    let stats = QueryStats {
        data_io,
        obstacle_io,
        cpu: started.elapsed(),
        npe,
        noe,
        svg_nodes: g.num_nodes() as u64,
        result_tuples: results.len() as u64,
        reuse: Default::default(),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_oknn;

    fn world() -> (Vec<DataPoint>, Vec<Rect>) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 0.0)),
            DataPoint::new(1, Point::new(30.0, 0.0)),
            DataPoint::new(2, Point::new(0.0, 45.0)),
            DataPoint::new(3, Point::new(200.0, 200.0)),
        ];
        let obstacles = vec![Rect::new(20.0, -10.0, 25.0, 10.0)];
        (points, obstacles)
    }

    #[test]
    fn range_matches_brute_force() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let s = Point::new(0.0, 0.0);
        for radius in [5.0, 15.0, 40.0, 60.0, 500.0] {
            let (got, _) = obstructed_range_search(&dt, &ot, s, radius, &ConnConfig::default());
            let want: Vec<(DataPoint, f64)> = brute_force_oknn(&points, &obstacles, s, 10)
                .into_iter()
                .filter(|(_, d)| *d <= radius)
                .collect();
            assert_eq!(got.len(), want.len(), "radius {radius}");
            for ((gp, gd), (wp, wd)) in got.iter().zip(&want) {
                assert_eq!(gp.id, wp.id, "radius {radius}");
                assert!((gd - wd).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn obstacle_pushes_point_out_of_range() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let empty: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let ot = RStarTree::bulk_load(obstacles, 4096);
        let s = Point::new(0.0, 0.0);
        let cfg = ConnConfig::default();
        // point 1 is 30 away euclidean; the wall forces a detour > 31
        let (free, _) = obstructed_range_search(&dt, &empty, s, 31.0, &cfg);
        let (blocked, _) = obstructed_range_search(&dt, &ot, s, 31.0, &cfg);
        assert!(free.iter().any(|(p, _)| p.id == 1));
        assert!(!blocked.iter().any(|(p, _)| p.id == 1));
    }

    #[test]
    fn zero_radius_finds_only_coincident_points() {
        let points = vec![
            DataPoint::new(0, Point::new(5.0, 5.0)),
            DataPoint::new(1, Point::new(6.0, 5.0)),
        ];
        let dt = RStarTree::bulk_load(points, 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let (got, _) =
            obstructed_range_search(&dt, &ot, Point::new(5.0, 5.0), 0.0, &ConnConfig::default());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.id, 0);
    }

    #[test]
    fn results_sorted_ascending() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points, 4096);
        let ot = RStarTree::bulk_load(obstacles, 4096);
        let (got, stats) = obstructed_range_search(
            &dt,
            &ot,
            Point::new(0.0, 0.0),
            1000.0,
            &ConnConfig::default(),
        );
        assert_eq!(got.len(), 4);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(stats.npe, 4);
    }
}
