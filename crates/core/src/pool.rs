//! The persistent worker-engine pool (serving layer).
//!
//! An [`EnginePool`] owns a set of warm [`QueryEngine`] slots that
//! survive across calls: serial executions round-robin over the slots,
//! batch executions pin one slot per worker thread and work-steal items
//! off a shared cursor. Engines are created lazily on first use and then
//! stay warm — their visibility-graph, Dijkstra and cache allocations are
//! amortized across every query the pool ever serves, not per batch.
//!
//! Counter aggregation is race-free by construction: each slot's
//! [`ReuseCounters`] total is only ever updated while that slot's mutex
//! is held (the same mutex that guards its engine), so concurrent
//! batches and serial executes interleave without losing `sight_tests` /
//! `sweep_events` increments. [`EnginePool::reuse_totals`] sums the slot
//! totals for the pool's lifetime view.

// lint:allow-file(no-panic-in-query-path[index]): slot indices are bounded by ensure_slots in the same call
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::config::ConnConfig;
use crate::engine::QueryEngine;
use crate::stats::{QueryStats, ReuseCounters};

/// One pool slot: a lazily created warm engine plus its lifetime counter
/// totals, both guarded by the same mutex.
#[derive(Debug, Default)]
struct PoolSlot {
    engine: Option<QueryEngine>,
    totals: ReuseCounters,
}

/// A persistent pool of warm query engines shared by serial and batch
/// execution (see the module docs).
#[derive(Debug)]
pub struct EnginePool {
    cfg: ConnConfig,
    // Slot vector grows monotonically; each slot is its own lock so a
    // serial execute and a batch worker never serialize on the pool.
    slots: Mutex<Vec<Arc<Mutex<PoolSlot>>>>,
    rr: AtomicUsize,
}

/// Recovers the guard from a poisoned lock: pool state is a cache of
/// reusable allocations plus monotonic counters, both valid whatever
/// point the panicking holder reached (engines re-begin every query).
fn lock_slot(slot: &Mutex<PoolSlot>) -> MutexGuard<'_, PoolSlot> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl EnginePool {
    /// An empty pool; slots are created on demand.
    pub fn new(cfg: ConnConfig) -> Self {
        EnginePool {
            cfg,
            slots: Mutex::new(Vec::new()),
            rr: AtomicUsize::new(0),
        }
    }

    /// Grows the pool to at least `n` slots and returns the current slot
    /// vector (clones of the shared handles).
    fn ensure_slots(&self, n: usize) -> Vec<Arc<Mutex<PoolSlot>>> {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while slots.len() < n {
            slots.push(Arc::new(Mutex::new(PoolSlot::default())));
        }
        slots.clone()
    }

    /// Number of warm slots currently in the pool.
    pub fn size(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Runs `f` on one warm engine (round-robin over the slots, blocking
    /// if every slot is busy) and folds the query's reuse counters into
    /// that slot's race-free total.
    pub fn with_engine<R>(
        &self,
        f: impl FnOnce(&mut QueryEngine) -> (R, QueryStats),
    ) -> (R, QueryStats) {
        let slots = self.ensure_slots(1);
        let slot = &slots[self.rr.fetch_add(1, Ordering::Relaxed) % slots.len()];
        let mut guard = lock_slot(slot);
        let cfg = self.cfg;
        let engine = guard.engine.get_or_insert_with(|| QueryEngine::new(cfg));
        let (result, stats) = f(engine);
        guard.totals.accumulate(&stats.reuse);
        (result, stats)
    }

    /// Batch driver: one worker thread per slot (up to `threads`,
    /// resolved by [`pool_size`]), work-stealing item indices off a
    /// shared atomic cursor. Each worker locks its slot *per item*, so
    /// serial executes interleave with a running batch instead of
    /// blocking behind it. Results come back in workload order.
    pub(crate) fn run<I, R, F>(
        &self,
        items: &[I],
        threads: usize,
        f: F,
    ) -> (Vec<R>, usize, Vec<(usize, QueryStats)>)
    where
        I: Sync,
        R: Send,
        F: Fn(&mut QueryEngine, &I) -> (R, QueryStats) + Sync,
    {
        let threads = pool_size(threads, items.len());
        let slots = self.ensure_slots(threads);
        let cfg = self.cfg;
        let cursor = AtomicUsize::new(0);
        let mut collected: Vec<(usize, R, QueryStats)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for slot in slots.iter().take(threads) {
                let slot = Arc::clone(slot);
                let cursor = &cursor;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let mut guard = lock_slot(&slot);
                        let engine = guard.engine.get_or_insert_with(|| QueryEngine::new(cfg));
                        let (res, stats) = f(engine, &items[i]);
                        guard.totals.accumulate(&stats.reuse);
                        drop(guard);
                        local.push((i, res, stats));
                    }
                    local
                }));
            }
            for h in handles {
                // Propagating a worker panic is the only correct response
                // to join() failing: the worker already tore down
                // mid-query. lint:allow(no-panic-in-query-path)
                collected.extend(h.join().expect("pool worker panicked"));
            }
        });
        collected.sort_by_key(|(i, _, _)| *i);
        let mut results = Vec::with_capacity(collected.len());
        let mut stats = Vec::with_capacity(collected.len());
        for (i, r, s) in collected {
            results.push(r);
            stats.push((i, s));
        }
        (results, threads, stats)
    }

    /// Lifetime reuse-counter totals across every slot — the race-free
    /// aggregate of everything this pool has served (serial and batch).
    pub fn reuse_totals(&self) -> ReuseCounters {
        let slots = self.ensure_slots(0);
        let mut totals = ReuseCounters::default();
        for slot in &slots {
            totals.accumulate(&lock_slot(slot).totals);
        }
        totals
    }
}

/// Resolves the worker-pool size: `0` means the machine's available
/// parallelism; the pool never exceeds the workload size.
pub(crate) fn pool_size(requested: usize, queries: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    t.clamp(1, queries.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataPoint;
    use conn_geom::{Point, Rect, Segment};
    use conn_index::RStarTree;

    #[test]
    fn pool_size_resolution() {
        assert_eq!(pool_size(4, 10), 4);
        assert_eq!(pool_size(4, 2), 2);
        assert_eq!(pool_size(1, 0), 1);
        assert!(pool_size(0, 100) >= 1);
    }

    #[test]
    fn slots_grow_and_stay_warm() {
        let pool = EnginePool::new(ConnConfig::default());
        assert_eq!(pool.size(), 0);
        let dt = RStarTree::bulk_load(vec![DataPoint::new(0, Point::new(20.0, 30.0))], 4096);
        let ot = RStarTree::bulk_load(vec![Rect::new(40.0, 5.0, 55.0, 35.0)], 4096);
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(60.0, 0.0));
        let ((), _) = pool.with_engine(|e| {
            let (_, s) = e.conn(&dt, &ot, &q);
            ((), s)
        });
        assert_eq!(pool.size(), 1);
        // second serial call reuses the warm slot: graph_reuses recorded
        let ((), _) = pool.with_engine(|e| {
            let (_, s) = e.conn(&dt, &ot, &q);
            ((), s)
        });
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.reuse_totals().graph_reuses, 1);
    }

    #[test]
    fn run_aggregates_per_slot_totals() {
        let pool = EnginePool::new(ConnConfig::default());
        let dt = RStarTree::bulk_load(vec![DataPoint::new(0, Point::new(20.0, 30.0))], 4096);
        let ot = RStarTree::bulk_load(vec![Rect::new(40.0, 5.0, 55.0, 35.0)], 4096);
        let queries: Vec<Segment> = (0..12)
            .map(|i| {
                let x = 5.0 * i as f64;
                Segment::new(Point::new(x, 0.0), Point::new(x + 50.0, 0.0))
            })
            .collect();
        let (results, threads, per_query) =
            pool.run(&queries, 3, |e, q| e.conn_pooled_io(&dt, &ot, q));
        assert_eq!(results.len(), queries.len());
        assert!(threads <= 3 && pool.size() >= threads);
        let mut summed = ReuseCounters::default();
        for (_, s) in &per_query {
            summed.accumulate(&s.reuse);
        }
        assert_eq!(
            pool.reuse_totals(),
            summed,
            "slot totals must match per-query sums"
        );
    }
}
