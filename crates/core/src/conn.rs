//! CONN search (paper §4.4, Algorithm 4).
//!
//! Streams data points in ascending `mindist(p, q)` from the data R-tree;
//! for each point runs IOR (obstacle retrieval), CPLC (control points) and
//! RLU (result refinement); stops once the next point's `mindist` exceeds
//! `RLMAX` (Lemma 2). The same loop drives the COkNN and single-tree
//! variants through the [`ResultSink`] and [`crate::streams::QueryStreams`]
//! abstractions, and runs entirely on a caller-provided
//! [`crate::engine::Workspace`] so a reused engine performs no per-query substrate
//! allocations.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use conn_geom::{Interval, Rect, Segment, EPS};
use conn_index::RStarTree;
use conn_vgraph::NodeKind;

use crate::config::ConnConfig;
use crate::cpl::{cplc_bounded, ControlPointList};
use crate::engine::Workspace;
use crate::ior::ior;
use crate::rlu::{ResultEntry, ResultList, RluScratch};
use crate::stats::QueryStats;
use crate::streams::QueryStreams;
use crate::types::DataPoint;

/// What the search loop needs from a result container (k = 1 list or the
/// COkNN generalization).
pub trait ResultSink {
    /// Lemma 2 pruning bound (∞ while the container is not saturated).
    fn prune_bound(&self, q: &Segment) -> f64;
    /// Folds in one evaluated data point; `scratch` is the workspace's
    /// result-list update scratch (retained buffers).
    fn absorb(
        &mut self,
        q: &Segment,
        p: DataPoint,
        cpl: &ControlPointList,
        cfg: &ConnConfig,
        scratch: &mut RluScratch,
    );
    /// Number of tuples currently held (the `result_tuples` statistic).
    fn tuples(&self) -> u64;
}

impl ResultSink for ResultList {
    fn prune_bound(&self, q: &Segment) -> f64 {
        self.rlmax(q)
    }

    fn absorb(
        &mut self,
        q: &Segment,
        p: DataPoint,
        cpl: &ControlPointList,
        cfg: &ConnConfig,
        scratch: &mut RluScratch,
    ) {
        self.update_with(q, p, cpl, cfg, scratch);
    }

    fn tuples(&self) -> u64 {
        self.entries().len() as u64
    }
}

/// Loop-level telemetry (everything except R-tree I/O, which the callers
/// snapshot around the loop).
#[derive(Debug, Default, Clone, Copy)]
pub struct LoopTelemetry {
    /// Data points evaluated (paper metric NPE).
    pub npe: u64,
    /// Obstacles evaluated (paper metric NOE).
    pub noe: u64,
    /// Peak visibility-graph node count (paper metric |SVG|).
    pub svg_nodes: u64,
}

/// The shared search loop of Algorithm 4, running on a (possibly reused)
/// workspace: the graph, Dijkstra labels, VR cache and IOR threshold all
/// come from `ws` and are rewound by `Workspace::begin_query`.
pub(crate) fn run_search<S: QueryStreams, R: ResultSink>(
    streams: &mut S,
    q: &Segment,
    cfg: &ConnConfig,
    sink: &mut R,
    ws: &mut Workspace,
) -> LoopTelemetry {
    ws.begin_query(cfg);
    let s_node = ws.g.add_point(q.a, NodeKind::Endpoint);
    let e_node = ws.g.add_point(q.b, NodeKind::Endpoint);
    run_leg(streams, q, cfg, sink, ws, s_node, e_node, f64::INFINITY)
}

/// Algorithm 4's loop on an *already prepared* workspace: the caller has
/// rewound (or deliberately kept) the workspace state and owns the two
/// endpoint nodes. This is the entry point of trajectory sessions, whose
/// graph persists across legs and whose `s_node` is the previous leg's end
/// node.
///
/// `seed_bound` is an externally derived upper bound on the final `RLMAX`
/// of this query (∞ when none is known): a session seeds it from the
/// previous leg's answer at the shared joint, which prunes the point
/// stream and caps obstacle certification before the sink has absorbed a
/// single point. Any finite value must genuinely dominate the final
/// `RLMAX`, otherwise answers would be truncated.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_leg<S: QueryStreams, R: ResultSink>(
    streams: &mut S,
    q: &Segment,
    cfg: &ConnConfig,
    sink: &mut R,
    ws: &mut Workspace,
    s_node: conn_vgraph::NodeId,
    e_node: conn_vgraph::NodeId,
    seed_bound: f64,
) -> LoopTelemetry {
    let mut npe = 0u64;

    while let Some(dist) = streams.peek_point_dist() {
        // Lemma 2 bound: terminates the point stream, and (via
        // `cplc_bounded`) caps control-point expansion and refinement for
        // the point being evaluated — values above it can never win. The
        // seed bound joins in: both dominate the final RLMAX.
        let outer_bound = sink.prune_bound(q).min(seed_bound);
        if dist > outer_bound {
            break;
        }
        // Infallible: the peek above returned Some for this same stream.
        // lint:allow(no-panic-in-query-path)
        let (p, _) = streams.next_point().expect("peeked point");
        npe += 1;

        let p_node = ws.g.add_point(p.pos, NodeKind::DataPoint);
        ws.vr_cache.invalidate(p_node);
        let ior_cap = if cfg.use_rlu_bound {
            outer_bound
        } else {
            f64::INFINITY
        };
        ior(
            q,
            &mut ws.g,
            s_node,
            e_node,
            p_node,
            streams,
            &mut ws.ior_state,
            &mut ws.dij,
            cfg,
            ior_cap,
        );
        let mut cpl = cplc_bounded(
            q,
            &mut ws.g,
            p_node,
            cfg,
            &mut ws.vr_cache,
            &mut ws.dij,
            outer_bound,
        );

        if cfg.strict_refinement {
            refine_to_fixpoint(q, ws, p_node, cfg, streams, &mut cpl, outer_bound);
        }

        ws.g.remove_node(p_node);
        sink.absorb(q, p, &cpl, cfg, &mut ws.rlu_scratch);
    }

    LoopTelemetry {
        npe,
        noe: streams.obstacles_loaded() as u64,
        svg_nodes: ws.g.num_nodes() as u64,
    }
}

/// Strict refinement loop (DESIGN.md §4): re-run CPLC after loading more
/// obstacles whenever (a) parts of `q` are still invisible to every local
/// node, or (b) a control-point value exceeds the loaded threshold, meaning
/// an unloaded obstacle could still shorten it. Terminates because the
/// threshold grows monotonically and the obstacle set is finite.
///
/// `outer_bound` (the sink's Lemma 2 bound, under `use_rlu_bound`) caps the
/// certification threshold: a recorded value can only decide the result
/// where it beats the incumbent, which requires it to be below the bound —
/// values above it may stay uncertified upper bounds without affecting the
/// answer, and the obstacle loads that would certify them are skipped. Each
/// re-run of CPLC reseeds the previous search's labels (only witness paths
/// crossing the newly loaded obstacles are recomputed).
fn refine_to_fixpoint<S: QueryStreams>(
    q: &Segment,
    ws: &mut Workspace,
    p_node: conn_vgraph::NodeId,
    cfg: &ConnConfig,
    streams: &mut S,
    cpl: &mut ControlPointList,
    outer_bound: f64,
) {
    let cap = if cfg.use_rlu_bound {
        outer_bound
    } else {
        f64::INFINITY
    };
    loop {
        // Unassigned intervals mean geometry under-coverage only in an
        // *uncapped* traversal. Under a finite cap, every parameter whose
        // true value beats the cap is provably claimed before the cap can
        // stop the search (see `cplc_bounded`), so what is left unassigned
        // is territory the incumbent already owns — widening obstacles for
        // it would load the whole tree chasing irrelevant values.
        let added = if cpl.has_unassigned() && cap.is_infinite() {
            // geometry under-covered: widen one obstacle at a time
            streams.load_next_obstacle(&mut ws.g)
        } else {
            let m = cpl.max_assigned_value(q).min(cap);
            if m <= ws.ior_state.loaded_bound + EPS {
                return; // every value that can win is certified exact
            }
            ws.ior_state.loaded_bound = m;
            streams.load_obstacles_until(&mut ws.g, m)
        };
        if added == 0 {
            return; // obstacle source exhausted: nothing left to learn
        }
        *cpl = cplc_bounded(
            q,
            &mut ws.g,
            p_node,
            cfg,
            &mut ws.vr_cache,
            &mut ws.dij,
            outer_bound,
        );
    }
}

/// Answer of a CONN query.
#[derive(Debug, Clone)]
#[must_use]
pub struct ConnResult {
    q: Segment,
    list: ResultList,
}

impl ConnResult {
    pub(crate) fn new(q: Segment, list: ResultList) -> Self {
        let res = ConnResult { q, list };
        // Sanitizer choke point: every CONN answer passes through this
        // constructor, so the cover audit sees all of them.
        if conn_geom::sanitize::enabled() {
            if let Err(e) = res.check_cover() {
                conn_geom::sanitize::violation("ConnResult cover", &e.to_string());
            }
        }
        res
    }

    /// The query segment.
    pub fn query(&self) -> &Segment {
        &self.q
    }

    /// Raw result tuples `⟨p, cp, R⟩` (control-point granularity).
    pub fn entries(&self) -> &[ResultEntry] {
        self.list.entries()
    }

    /// The user-facing answer: `⟨p, R⟩` tuples with adjacent intervals of
    /// the same answer point merged (the paper's Definition 6 output).
    /// `None` marks intervals with no reachable data point.
    pub fn segments(&self) -> Vec<(Option<DataPoint>, Interval)> {
        let mut out: Vec<(Option<DataPoint>, Interval)> = Vec::new();
        for e in self.list.entries() {
            match out.last_mut() {
                Some((prev, iv)) if prev.map(|p| p.id) == e.point.map(|p| p.id) => {
                    iv.hi = e.interval.hi;
                }
                _ => out.push((e.point, e.interval)),
            }
        }
        out
    }

    /// The ONN at parameter `t ∈ [0, q.len()]` with its obstructed distance.
    pub fn nn_at(&self, t: f64) -> Option<(DataPoint, f64)> {
        self.list.answer_at(&self.q, t)
    }

    /// Split points: interval boundaries where the answer object changes.
    pub fn split_points(&self) -> Vec<f64> {
        self.segments().windows(2).map(|w| w[0].1.hi).collect()
    }

    /// Validation helper: the entries exactly cover the segment.
    pub fn check_cover(&self) -> Result<(), crate::Error> {
        self.list.check_cover()
    }

    /// Semantic equivalence to another result of the same query: identical
    /// coverage and answer *values* (within `tol`) at sampled parameters —
    /// the entry midpoints of both results plus a 33-point even grid.
    ///
    /// This is the right gate for comparisons **across kernel modes**:
    /// blind Dijkstra and A* may settle equal-length shortest paths in
    /// different order, shifting distances (and the split points derived
    /// from them) by a few ULPs. Same-kernel comparisons (fresh vs reused
    /// engine, serial vs batch) should stay bitwise instead.
    pub fn values_equivalent(&self, other: &ConnResult, tol: f64) -> bool {
        let mut ts: Vec<f64> = self
            .entries()
            .iter()
            .chain(other.entries())
            .map(|e| (e.interval.lo + e.interval.hi) * 0.5)
            .collect();
        ts.extend((0..=32).map(|i| self.q.len() * i as f64 / 32.0));
        ts.into_iter()
            .all(|t| match (self.nn_at(t), other.nn_at(t)) {
                (None, None) => true,
                (Some((_, da)), Some((_, db))) => (da - db).abs() <= tol,
                _ => false,
            })
    }
}

/// CONN search over two separate R-trees (paper Algorithm 4).
///
/// Returns the result list and the paper's per-query metrics. Counters of
/// both trees are reset at query start, so the returned statistics are
/// exactly this query's footprint.
///
/// This is the legacy one-shot API, kept as a thin wrapper over the typed
/// service ([`crate::ConnService`]) so both surfaces answer byte-identically
/// by construction. It builds a throwaway service (and engine) per call;
/// callers answering many queries should hold a [`crate::ConnService`] or a
/// [`crate::QueryEngine`] (or use [`crate::conn_batch`]) to amortize substrate
/// allocations across queries. Invalid input (degenerate/NaN segment)
/// panics here — the service's [`crate::Query::conn`] builder is the
/// non-panicking path.
pub fn conn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    q: &Segment,
    cfg: &ConnConfig,
) -> (ConnResult, QueryStats) {
    let service =
        crate::ConnService::with_config(crate::Scene::borrowing(data_tree, obstacle_tree), *cfg);
    let query = crate::Query::conn(*q)
        .build()
        .unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    let resp = service.execute(&query).unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
                                                                          // Infallible: the service answers each query kind with its own family.
                                                                          // lint:allow(no-panic-in-query-path)
    let conn = resp.answer.into_conn().expect("conn answer");
    (conn, resp.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    fn search(points: Vec<DataPoint>, obstacles: Vec<Rect>) -> (ConnResult, QueryStats) {
        let dt = RStarTree::bulk_load(points, 4096);
        let ot = RStarTree::bulk_load(obstacles, 4096);
        conn_search(&dt, &ot, &q(), &ConnConfig::default())
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn cover_audit_fires_on_gapped_answer() {
        use crate::rlu::ResultList;
        let q = q();
        let intact = ResultList::new(q.len());
        let _ = ConnResult::new(q, intact.clone()); // full cover passes

        let mut gapped = intact;
        gapped.force_qlen_for_test(q.len() + 5.0); // entries now stop short
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ConnResult::new(q, gapped)
            }))
            .is_err(),
            "cover audit must reject a gapped result list"
        );
    }

    #[test]
    fn empty_data_set_yields_unassigned_cover() {
        let (res, stats) = search(vec![], vec![]);
        res.check_cover().unwrap();
        assert_eq!(stats.npe, 0);
        assert!(res.nn_at(50.0).is_none());
        assert_eq!(res.segments().len(), 1);
        assert!(res.segments()[0].0.is_none());
    }

    #[test]
    fn single_point_free_space() {
        let p = DataPoint::new(0, Point::new(40.0, 30.0));
        let (res, stats) = search(vec![p], vec![]);
        res.check_cover().unwrap();
        assert_eq!(stats.npe, 1);
        let (nn, d) = res.nn_at(40.0).unwrap();
        assert_eq!(nn.id, 0);
        assert!((d - 30.0).abs() < 1e-9);
    }

    /// Free space: CONN must match Euclidean continuous NN (bisector split).
    #[test]
    fn two_points_free_space_bisector() {
        let a = DataPoint::new(0, Point::new(20.0, 10.0));
        let b = DataPoint::new(1, Point::new(80.0, 10.0));
        let (res, _) = search(vec![a, b], vec![]);
        let segs = res.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0.unwrap().id, 0);
        assert_eq!(segs[1].0.unwrap().id, 1);
        assert!((segs[0].1.hi - 50.0).abs() < 1e-6);
        assert_eq!(res.split_points().len(), 1);
    }

    /// The paper's Figure 1(b) phenomenon: an obstacle flips the winner at
    /// the segment start compared to the Euclidean answer.
    #[test]
    fn obstacle_changes_the_winner() {
        // `a` is Euclidean-closest to t=0 (30 < √(900+25) ≈ 30.4) but a long
        // wall forces it on a ~92.5 detour; `b` sits below the wall with a
        // clear sight-line.
        let a = DataPoint::new(0, Point::new(0.0, 30.0));
        let b = DataPoint::new(1, Point::new(30.0, 5.0));
        let wall = Rect::new(-40.0, 10.0, 40.0, 20.0);
        let (res, _) = search(vec![a, b], vec![wall]);
        res.check_cover().unwrap();
        let (euclid_nn, _) = {
            // sanity: a IS the euclidean NN of t=0
            let d_a = a.pos.dist(Point::new(0.0, 0.0));
            let d_b = b.pos.dist(Point::new(0.0, 0.0));
            assert!(d_a < d_b);
            (a, d_a)
        };
        let (onn, od) = res.nn_at(0.0).unwrap();
        assert_ne!(onn.id, euclid_nn.id, "obstacle must flip the winner");
        assert_eq!(onn.id, b.id);
        assert!((od - b.pos.dist(Point::new(0.0, 0.0))).abs() < 1e-9);
    }

    #[test]
    fn far_points_are_pruned_by_lemma2() {
        let mut points = vec![
            DataPoint::new(0, Point::new(50.0, 10.0)),
            DataPoint::new(1, Point::new(20.0, 15.0)),
        ];
        // a distant cloud that can never win
        for i in 0..50 {
            points.push(DataPoint::new(
                100 + i,
                Point::new(5000.0 + (i as f64) * 7.0, 5000.0),
            ));
        }
        let (res, stats) = search(points, vec![]);
        res.check_cover().unwrap();
        assert!(stats.npe <= 5, "NPE {} — pruning failed", stats.npe);
    }

    #[test]
    fn result_covers_and_is_consistent_with_entries() {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 20.0)),
            DataPoint::new(1, Point::new(50.0, 8.0)),
            DataPoint::new(2, Point::new(90.0, 25.0)),
        ];
        let obstacles = vec![
            Rect::new(30.0, 5.0, 40.0, 30.0),
            Rect::new(60.0, 10.0, 75.0, 18.0),
        ];
        let (res, stats) = search(points, obstacles);
        res.check_cover().unwrap();
        assert!(stats.noe <= 2);
        assert!(stats.svg_nodes >= 2);
        // every sampled point has an answer and matches its entry's value
        for i in 0..=20 {
            let t = 100.0 * (i as f64) / 20.0;
            let (nn, d) = res.nn_at(t).unwrap();
            assert!(d >= 0.0);
            assert!(nn.id <= 2);
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_query_rejected() {
        let dt = RStarTree::bulk_load(vec![DataPoint::new(0, Point::new(1.0, 1.0))], 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let bad = Segment::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0));
        let _ = conn_search(&dt, &ot, &bad, &ConnConfig::default());
    }
}
