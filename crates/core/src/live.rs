//! Live scenes: incremental mutation with surgical invalidation and
//! standing queries.
//!
//! The serving layer of [`crate::epoch`] publishes whole replacement
//! scenes: cheap to reason about, but a single inserted obstacle pays a
//! full republish *and* a full re-run of every query a client keeps
//! resident. This module closes that gap in three layers:
//!
//! * **[`LiveScene`]** owns the world behind `Arc`-shared R\*-trees and
//!   mutates it in place — [`LiveScene::insert_site`] /
//!   [`LiveScene::remove_site`] / [`LiveScene::insert_obstacle`] /
//!   [`LiveScene::remove_obstacle`] repair the touched tree by ordinary
//!   R\*-tree insert/delete surgery (forking it copy-on-write only while
//!   published epochs still share it) and publish the result as a **cheap
//!   derived epoch**: the untouched tree is shared by `Arc`, so
//!   publication cost is proportional to what changed, not to the scene.
//!
//! * **Surgical invalidation.** Each mutation is described by a
//!   [`SceneDelta`], and the resident substrate repairs itself instead of
//!   rebuilding: obstacle insertion reuses the growth reseed of
//!   [`conn_vgraph::DijkstraEngine::ensure_prepared`] (keep every label
//!   whose witness path avoids the new rectangle), and obstacle removal
//!   uses its **paths-only-shorten** counterpart,
//!   [`conn_vgraph::DijkstraEngine::reseed_after_removal`]:
//!
//!   > Removing a rectangle `R` can only *shorten* obstructed distances,
//!   > and a label `d(u)` can only improve if its new witness path routes
//!   > through `R`'s footprint. Any such path is at least
//!   > `mindist(src, R) + mindist(u, R)` long, so every settled label
//!   > with `mindist(src, R) + mindist(u, R) ≥ d(u)` is kept as exact;
//!   > only labels inside that *shadow ellipse* are invalidated and
//!   > re-discovered by ordinary relaxation.
//!
//!   The same shape argument powers the adjacency side
//!   ([`conn_vgraph::VisGraph::remove_obstacle`]): only CSR ranges whose
//!   cached visibility window intersects `R` are staled, everything else
//!   survives byte-for-byte.
//!
//! * **Standing queries.** [`crate::ConnService::register`] keeps a
//!   query's result resident; every [`crate::ConnService::publish_delta`]
//!   patches it under a kinetic-style **certificate region**: a delta
//!   whose footprint stays Euclidean-farther from the query's anchor than
//!   the answer's worst obstructed distance `dmax` cannot change the
//!   answer (obstructed ≥ Euclidean, and obstacle edits only matter to
//!   paths they touch — lengthening on insert, shortening through the
//!   footprint on removal), so the resident tuples stand untouched.
//!   Deltas inside the region are repaired at the cheapest sound level:
//!   ONN/range tuple lists absorb a site insertion by one point-to-point
//!   distance evaluation, point-to-point entries (odist/route) keep a
//!   resident [`conn_vgraph::VisGraph`] + Dijkstra kernel and re-settle
//!   from the surviving labels, and everything else falls back to a
//!   re-run of that one query. The full re-run is also the proptest
//!   oracle: `live_equivalence.rs` pins every patched answer to a cold
//!   rebuild at 1e-6.

use std::sync::{Arc, Mutex};

use conn_geom::{Point, Rect};
use conn_index::{RStarTree, DEFAULT_PAGE_SIZE};
use conn_vgraph::{DijkstraEngine, Goal, NodeId, NodeKind, VisGraph};

use crate::config::ConnConfig;
use crate::engine::QueryEngine;
use crate::epoch::PinnedEpoch;
use crate::query::{Answer, Query, QueryKind, Response};
use crate::service::{coknn_dmax, conn_dmax, dispatch, onn_dmax, ConnService, Scene};
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// One mutation of a live scene, as published alongside its derived
/// epoch. The variants carry the mutated item so standing-query patching
/// can test certificate regions and membership without re-diffing trees.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SceneDelta {
    /// A data point was inserted.
    SiteInserted(DataPoint),
    /// A data point was removed.
    SiteRemoved(DataPoint),
    /// An obstacle was inserted.
    ObstacleInserted(Rect),
    /// An obstacle was removed.
    ObstacleRemoved(Rect),
}

impl SceneDelta {
    /// Short label of the mutation (telemetry, BENCH reports).
    pub fn kind(&self) -> &'static str {
        match self {
            SceneDelta::SiteInserted(_) => "site_inserted",
            SceneDelta::SiteRemoved(_) => "site_removed",
            SceneDelta::ObstacleInserted(_) => "obstacle_inserted",
            SceneDelta::ObstacleRemoved(_) => "obstacle_removed",
        }
    }

    /// The delta's spatial footprint (a point collapses to a degenerate
    /// rectangle) — what certificate regions are tested against.
    pub fn footprint(&self) -> Rect {
        match self {
            SceneDelta::SiteInserted(p) | SceneDelta::SiteRemoved(p) => Rect::from_point(p.pos),
            SceneDelta::ObstacleInserted(r) | SceneDelta::ObstacleRemoved(r) => *r,
        }
    }
}

/// Token for one standing query (see [`crate::ConnService::register`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StandingHandle {
    id: u64,
}

impl StandingHandle {
    /// The registry id this handle names.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// What one [`crate::ConnService::publish_delta`] did to the standing
/// set. The four outcome counters partition `standing`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchReport {
    /// Standing queries resident when the delta arrived.
    pub standing: usize,
    /// Answers kept untouched: the delta fell outside the certificate
    /// region (or removed a site the answer never mentions).
    pub kept: usize,
    /// Answers patched at the tuple level (ONN/range absorbing a site
    /// insertion by one distance evaluation).
    pub tuple_patched: usize,
    /// Answers patched by a resident point-to-point kernel re-settling
    /// from surviving Dijkstra labels (odist/route).
    pub kernel_patched: usize,
    /// Answers recomputed by a full re-run of that one query.
    pub recomputed: usize,
    /// Settled labels dropped by the kernels' surgical invalidation while
    /// absorbing this delta.
    pub labels_invalidated: u64,
    /// Adjacency-cache ranges the kernels repaired/staled in place while
    /// absorbing this delta.
    pub adjacency_repairs: u64,
}

/// Conservative slack for "can this delta touch the answer" tests: the
/// certificate must err toward *recomputing*, never toward keeping a
/// stale answer.
fn affected(lower_bound: f64, dmax: f64) -> bool {
    lower_bound <= dmax + 1e-9 * dmax.max(1.0)
}

/// The kinetic certificate of one standing query: the region a delta
/// must touch to be able to change the answer.
#[derive(Debug, Clone, Copy)]
enum Certificate {
    /// Point/segment-anchored families (CONN, COkNN, ONN, range): every
    /// witness path of the answer stays within obstructed — hence
    /// Euclidean — distance `dmax` of the anchor. `dmax = None` means the
    /// answer gave no finite bound (unassigned stretches, short lists):
    /// obstacle deltas always recompute.
    Anchored { anchor: Rect, dmax: Option<f64> },
    /// Point-to-point families (odist/route): a delta only matters if its
    /// footprint meets the shortest-path ellipse
    /// `mindist(a, R) + mindist(b, R) ≤ dist`.
    Ellipse { a: Point, b: Point, dist: f64 },
    /// No certificate (reverse NN, joins, trajectories): every delta
    /// recomputes.
    Always,
}

fn certificate_for(query: &Query, answer: &Answer) -> Certificate {
    match (query.kind(), answer) {
        (QueryKind::Conn { q }, Answer::Conn(r)) => Certificate::Anchored {
            anchor: Rect::from_segment(q),
            dmax: conn_dmax(r, q),
        },
        (QueryKind::Coknn { q, k }, Answer::Coknn(r)) => Certificate::Anchored {
            anchor: Rect::from_segment(q),
            dmax: coknn_dmax(r, q, *k),
        },
        (QueryKind::Onn { s, k }, Answer::Onn(v)) => Certificate::Anchored {
            anchor: Rect::from_point(*s),
            dmax: onn_dmax(v, *k),
        },
        (QueryKind::Range { s, radius }, _) => Certificate::Anchored {
            anchor: Rect::from_point(*s),
            dmax: Some(*radius),
        },
        (QueryKind::Odist { a, b }, Answer::Odist(d)) => Certificate::Ellipse {
            a: *a,
            b: *b,
            dist: *d,
        },
        (QueryKind::Route { a, b }, Answer::Route { dist, .. }) => Certificate::Ellipse {
            a: *a,
            b: *b,
            dist: *dist,
        },
        _ => Certificate::Always,
    }
}

/// True when `answer` mentions data point `id` anywhere. Removing a point
/// the answer never mentions cannot change it: an absent point is either
/// unreachable or dominated wherever the family looked, and removals only
/// thin the candidate set. Families without a membership reading report
/// `true` (always affected).
fn answer_mentions(answer: &Answer, id: u32) -> bool {
    match answer {
        Answer::Conn(r) => r
            .entries()
            .iter()
            .any(|e| e.point.map(|p| p.id) == Some(id)),
        Answer::Coknn(r) => r
            .entries()
            .iter()
            .any(|e| e.members.iter().any(|m| m.point.id == id)),
        Answer::Onn(v) | Answer::Range(v) | Answer::Rnn(v) => v.iter().any(|(p, _)| p.id == id),
        Answer::Odist(_) | Answer::Route { .. } => false,
        _ => true,
    }
}

/// The resident point-to-point kernel of a standing odist/route entry:
/// its own visibility graph and Dijkstra engine, repaired per delta
/// instead of rebuilt — obstacle insertion grows the graph and reseeds,
/// removal runs the in-place CSR surgery plus the paths-only-shorten
/// reseed, then the answer re-settles from whatever labels survived.
///
/// The graph holds only the *ellipse subset* of the field: every obstacle
/// `R` with `mindist(a,R) + mindist(b,R) ≤ bound`. Any point `x` on a
/// path of length `≤ bound` satisfies `|ax| + |xb| ≤ bound`, so an
/// obstacle outside the subset cannot touch such a path — once the
/// settled distance lands `≤ bound`, the witness provably avoids the
/// excluded obstacles too and the subset answer *is* the full-field
/// answer. This is the same locality the engine's lazily-grown local
/// visibility graphs exploit, and what keeps a resident kernel cheap on
/// the paper-scale field (131 k obstacles, of which a handful matter).
#[derive(Debug)]
struct LiveKernel {
    g: VisGraph,
    dij: DijkstraEngine,
    src: NodeId,
    dst: NodeId,
    goal: Goal,
    a: Point,
    b: Point,
    /// Ellipse radius of the resident subset: the graph holds every field
    /// obstacle with `mindist(a,R) + mindist(b,R) ≤ bound`, and the
    /// settled distance is `≤ bound` (or `∞`, which a subset can only
    /// over-report, so `∞` is exact too).
    bound: f64,
}

impl LiveKernel {
    /// Cold build over the ellipse subset of the obstacle field
    /// (registration time and the repair-failure fallback — never the
    /// per-delta path). Grows the subset geometrically until the settled
    /// distance certifies itself against the bound.
    fn build(field: &[Rect], a: Point, b: Point, cfg: &ConnConfig) -> (Self, f64) {
        let mut bound = (2.0 * a.dist(b)).max(40.0);
        loop {
            let subset: Vec<Rect> = field
                .iter()
                .filter(|r| affected(r.mindist_point(a) + r.mindist_point(b), bound))
                .copied()
                .collect();
            // cell size adapted to the subset's typical extent, matching
            // the engine's odist priming
            let cell = subset
                .iter()
                .map(|r| r.width().max(r.height()))
                .fold(0.0f64, f64::max)
                .max(20.0);
            let mut g = VisGraph::new(cell); // lint:allow(no-full-rebuild-in-delta-path): construction-time cold build, not a delta
            cfg.tune_graph(&mut g);
            for r in &subset {
                g.add_obstacle(*r);
            }
            let src = g.add_point(a, NodeKind::DataPoint);
            let dst = g.add_point(b, NodeKind::DataPoint);
            let goal = cfg.kernel.point_goal(b);
            let mut dij = DijkstraEngine::default();
            dij.prepare_directed(&g, src, goal); // lint:allow(no-full-rebuild-in-delta-path): construction-time cold build, not a delta
            let d = dij.run_until_settled(&mut g, dst);
            // `∞` over a subset forces `∞` over the superset (obstacles
            // only block), so both exits below return exact distances.
            if !d.is_finite() || affected(d, bound) {
                return (
                    LiveKernel {
                        g,
                        dij,
                        src,
                        dst,
                        goal,
                        a,
                        b,
                        bound,
                    },
                    d,
                );
            }
            bound = d.max(2.0 * bound);
        }
    }

    /// True when `r` falls inside the resident ellipse subset.
    fn holds(&self, r: &Rect) -> bool {
        affected(
            r.mindist_point(self.a) + r.mindist_point(self.b),
            self.bound,
        )
    }

    /// Absorbs an obstacle insertion: grow the graph, keep every label
    /// whose witness path avoids the new rectangle, re-settle. `None`
    /// when the new distance overflows the resident bound — the subset
    /// is then no longer provably sufficient (caller rebuilds cold).
    fn insert_obstacle(&mut self, r: Rect) -> Option<f64> {
        self.g.add_obstacle(r);
        self.dij.ensure_prepared(&self.g, self.src, self.goal, true);
        let d = self.dij.run_until_settled(&mut self.g, self.dst);
        (!d.is_finite() || affected(d, self.bound)).then_some(d)
    }

    /// Absorbs an obstacle removal: in-place CSR surgery plus the
    /// paths-only-shorten reseed, then re-settle. `None` when the graph
    /// holds no such rectangle (caller falls back to a cold rebuild).
    fn remove_obstacle(&mut self, r: &Rect) -> Option<f64> {
        self.g.remove_obstacle(r)?;
        self.dij
            .reseed_after_removal(&self.g, self.src, self.goal, r);
        Some(self.dij.run_until_settled(&mut self.g, self.dst))
    }

    /// The settled shortest path polyline (`None` when unreachable).
    fn path(&self, d: f64) -> Option<Vec<Point>> {
        d.is_finite().then(|| {
            self.dij
                .path_to(self.dst)
                .iter()
                .map(|&n| self.g.node_pos(n))
                .collect()
        })
    }
}

/// One resident standing query.
#[derive(Debug)]
struct StandingEntry {
    id: u64,
    query: Query,
    answer: Answer,
    cert: Certificate,
    kernel: Option<LiveKernel>,
}

impl StandingEntry {
    /// Refreshes the certificate after the answer changed.
    fn recertify(&mut self) {
        self.cert = certificate_for(&self.query, &self.answer);
    }
}

/// What `apply` decided to do with one entry.
enum Outcome {
    Kept,
    TuplePatched,
    KernelPatched,
    Recomputed,
}

/// The standing-query registry a [`ConnService`] owns. Interior-mutable
/// (one mutex, held per registry operation) so registration and patching
/// work through the service's shared reference like every other call.
#[derive(Debug, Default)]
pub(crate) struct StandingRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: u64,
    entries: Vec<StandingEntry>,
}

impl StandingRegistry {
    pub(crate) fn register(
        &self,
        pin: &PinnedEpoch<'_>,
        cfg: &ConnConfig,
        query: Query,
        response: Response,
    ) -> StandingHandle {
        let answer = response.answer;
        let cert = certificate_for(&query, &answer);
        let kernel = match query.kind() {
            QueryKind::Odist { a, b } | QueryKind::Route { a, b } => {
                Some(LiveKernel::build(pin.obstacle_field(), *a, *b, cfg).0)
            }
            _ => None,
        };
        let mut inner = lock(&self.inner);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.entries.push(StandingEntry {
            id,
            query,
            answer,
            cert,
            kernel,
        });
        StandingHandle { id }
    }

    pub(crate) fn answer(&self, handle: &StandingHandle) -> Option<Answer> {
        let inner = lock(&self.inner);
        inner
            .entries
            .iter()
            .find(|e| e.id == handle.id)
            .map(|e| e.answer.clone())
    }

    pub(crate) fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    pub(crate) fn unregister(&self, handle: StandingHandle) -> bool {
        let mut inner = lock(&self.inner);
        let before = inner.entries.len();
        inner.entries.retain(|e| e.id != handle.id);
        inner.entries.len() != before
    }

    /// Patches every standing entry against the just-published epoch.
    /// Returns the report plus the pooled [`QueryStats`] of the patch work
    /// (recompute runs and kernel counter diffs, with `delta_publishes`
    /// set) for the engine pool's lifetime totals.
    pub(crate) fn apply(
        &self,
        engine: &mut QueryEngine,
        pin: &PinnedEpoch<'_>,
        cfg: &ConnConfig,
        delta: &SceneDelta,
    ) -> (PatchReport, QueryStats) {
        let mut inner = lock(&self.inner);
        let mut report = PatchReport {
            standing: inner.entries.len(),
            ..PatchReport::default()
        };
        let mut pooled = QueryStats::default();
        pooled.reuse.delta_publishes = 1;
        for entry in &mut inner.entries {
            let outcome = patch_entry(entry, engine, pin, cfg, delta, &mut report, &mut pooled);
            match outcome {
                Outcome::Kept => report.kept += 1,
                Outcome::TuplePatched => report.tuple_patched += 1,
                Outcome::KernelPatched => report.kernel_patched += 1,
                Outcome::Recomputed => report.recomputed += 1,
            }
        }
        pooled.reuse.labels_invalidated += report.labels_invalidated;
        pooled.reuse.adjacency_repairs += report.adjacency_repairs;
        (report, pooled)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Decides and executes the cheapest sound repair for one entry.
fn patch_entry(
    entry: &mut StandingEntry,
    engine: &mut QueryEngine,
    pin: &PinnedEpoch<'_>,
    cfg: &ConnConfig,
    delta: &SceneDelta,
    report: &mut PatchReport,
    pooled: &mut QueryStats,
) -> Outcome {
    // Point-to-point entries own a resident kernel: site deltas never
    // matter, obstacle deltas inside the ellipse are absorbed surgically.
    if entry.kernel.is_some() {
        return patch_kernel_entry(entry, pin, cfg, delta, report);
    }
    let decision = match (entry.cert, delta) {
        (Certificate::Always, _) => Outcome::Recomputed,
        // A removed site the answer never mentions cannot change it.
        (_, SceneDelta::SiteRemoved(p)) => {
            if answer_mentions(&entry.answer, p.id) {
                Outcome::Recomputed
            } else {
                Outcome::Kept
            }
        }
        (Certificate::Anchored { anchor, dmax }, SceneDelta::SiteInserted(p)) => {
            // ONN/range tuple lists absorb an insertion by one distance
            // evaluation; that patch is sound with or without a finite
            // certificate, so try the region test first only to skip work.
            let tuple_patchable = matches!(
                entry.query.kind(),
                QueryKind::Onn { .. } | QueryKind::Range { .. }
            );
            match dmax {
                Some(d) if !affected(anchor.mindist_point(p.pos), d) => Outcome::Kept,
                _ if tuple_patchable => Outcome::TuplePatched,
                _ => Outcome::Recomputed,
            }
        }
        (Certificate::Anchored { anchor, dmax }, _) => {
            let r = delta.footprint();
            match dmax {
                Some(d) if !affected(anchor.mindist_rect(&r), d) => Outcome::Kept,
                _ => Outcome::Recomputed,
            }
        }
        // Unreachable: odist/route without a kernel (registered answers of
        // those families always build one).
        (Certificate::Ellipse { .. }, _) => Outcome::Recomputed,
    };
    match decision {
        Outcome::TuplePatched => {
            let SceneDelta::SiteInserted(p) = delta else {
                // lint:allow(no-panic-in-query-path): TuplePatched is only picked under the SiteInserted arm above
                unreachable!("tuple patch is only chosen for site insertions");
            };
            tuple_patch_insert(entry, engine, pin, *p);
            entry.recertify();
            Outcome::TuplePatched
        }
        Outcome::Recomputed => {
            let (answer, stats) = dispatch(
                engine,
                pin.scene(),
                pin.obstacle_field(),
                *cfg,
                &entry.query,
                false,
            );
            pooled.accumulate(&stats);
            entry.answer = answer;
            entry.recertify();
            Outcome::Recomputed
        }
        other => other,
    }
}

/// Kernel-backed repair of an odist/route entry.
fn patch_kernel_entry(
    entry: &mut StandingEntry,
    pin: &PinnedEpoch<'_>,
    cfg: &ConnConfig,
    delta: &SceneDelta,
    report: &mut PatchReport,
) -> Outcome {
    let Certificate::Ellipse { a, b, dist } = entry.cert else {
        // a kernel without an ellipse certificate cannot happen
        return Outcome::Kept;
    };
    let rect = match delta {
        // point-to-point distance ignores data points entirely
        SceneDelta::SiteInserted(_) | SceneDelta::SiteRemoved(_) => return Outcome::Kept,
        SceneDelta::ObstacleInserted(r) | SceneDelta::ObstacleRemoved(r) => *r,
    };
    let lower = rect.mindist_point(a) + rect.mindist_point(b);
    let inside = !dist.is_finite() || affected(lower, dist);
    let removal = matches!(delta, SceneDelta::ObstacleRemoved(_));
    let Some(kernel) = entry.kernel.as_mut() else {
        // an entry holding an ellipse certificate always carries a kernel
        return Outcome::Kept;
    };
    // Outside the resident ellipse subset the delta is invisible to the
    // kernel by construction: an insertion there cannot touch any path
    // of length ≤ bound (so the settled answer stands), a removal there
    // deletes an obstacle the subset never held (and a subset distance
    // of ∞ still forces ∞ over the thinned field). The graph stays
    // consistent with `field ∩ ellipse(bound)` without absorbing anything.
    if !kernel.holds(&rect) {
        return Outcome::Kept;
    }
    // Inside the subset the graph absorbs the delta surgically so its
    // obstacle set keeps tracking the scene — but only deltas inside the
    // *answer's* ellipse (`inside`) can actually move the settled value.
    let labels_before = kernel.dij.labels_invalidated();
    let repairs_before = kernel.g.adjacency_repairs();
    let patched = if removal {
        kernel.remove_obstacle(&rect)
    } else {
        kernel.insert_obstacle(rect)
    };
    let (d, outcome) = match patched {
        Some(d) => {
            report.labels_invalidated += kernel.dij.labels_invalidated() - labels_before;
            report.adjacency_repairs += kernel.g.adjacency_repairs() - repairs_before;
            (
                d,
                if inside {
                    Outcome::KernelPatched
                } else {
                    Outcome::Kept
                },
            )
        }
        None => {
            // the graph held no such rectangle (duplicate-removal skew),
            // or the insertion pushed the distance past the resident
            // bound: rebuild the kernel cold from the published field
            let (fresh, d) = LiveKernel::build(pin.obstacle_field(), a, b, cfg);
            *kernel = fresh;
            (d, Outcome::Recomputed)
        }
    };
    if matches!(outcome, Outcome::Kept) {
        return Outcome::Kept;
    }
    entry.answer = match entry.answer {
        Answer::Odist(_) => Answer::Odist(d),
        Answer::Route { .. } => Answer::Route {
            dist: d,
            path: kernel.path(d),
        },
        // lint:allow(no-panic-in-query-path): kernels are built only for odist/route entries
        _ => unreachable!("kernel entries are odist/route"),
    };
    entry.recertify();
    outcome
}

/// Absorbs a site insertion into an ONN/range tuple list: one obstructed
/// distance evaluation against the published field, merged in ascending
/// order (ONN truncates back to `k`).
fn tuple_patch_insert(
    entry: &mut StandingEntry,
    engine: &mut QueryEngine,
    pin: &PinnedEpoch<'_>,
    p: DataPoint,
) {
    let (s, cap, radius) = match entry.query.kind() {
        QueryKind::Onn { s, k } => (*s, Some(*k), f64::INFINITY),
        QueryKind::Range { s, radius } => (*s, None, *radius),
        // lint:allow(no-panic-in-query-path): patch_entry routes only ONN/range here
        _ => unreachable!("tuple patch is only chosen for ONN/range"),
    };
    let d = engine.obstructed_distance(pin.obstacle_field(), s, p.pos);
    let (Answer::Onn(list) | Answer::Range(list)) = &mut entry.answer else {
        // lint:allow(no-panic-in-query-path): ONN/range queries always hold ONN/range answers
        unreachable!("tuple patch is only chosen for ONN/range answers");
    };
    if d.is_finite() && d <= radius * (1.0 + 1e-12) {
        let at = list.partition_point(|(_, existing)| *existing <= d);
        list.insert(at, (p, d));
        if let Some(k) = cap {
            list.truncate(k);
        }
    }
}

/// A mutable world published through a [`ConnService`] as cheap derived
/// epochs. See the module docs for the full picture.
///
/// ```
/// use conn_core::{ConnConfig, DataPoint, LiveScene, Query};
/// use conn_geom::{Point, Rect};
///
/// let mut live = LiveScene::new(
///     vec![
///         DataPoint::new(0, Point::new(20.0, 60.0)),
///         DataPoint::new(1, Point::new(80.0, 60.0)),
///     ],
///     vec![Rect::new(45.0, 30.0, 55.0, 70.0)],
///     ConnConfig::default(),
/// );
/// // a standing query stays resident and is patched per delta
/// let h = live
///     .service()
///     .register(Query::onn(Point::new(0.0, 60.0), 1).build()?)?;
/// assert_eq!(live.service().standing(&h).unwrap().neighbors().unwrap()[0].0.id, 0);
///
/// // a far-away obstacle edit keeps the answer untouched (certificate)
/// let (epoch, report) = live.insert_obstacle(Rect::new(200.0, 0.0, 210.0, 10.0));
/// assert_eq!(epoch, 1);
/// assert_eq!(report.kept, 1);
///
/// // removing the resident neighbor forces a recompute
/// let removed = live.remove_site(Point::new(20.0, 60.0)).unwrap();
/// assert_eq!(removed.1.recomputed, 1);
/// assert_eq!(live.service().standing(&h).unwrap().neighbors().unwrap()[0].0.id, 1);
/// # Ok::<(), conn_core::Error>(())
/// ```
#[derive(Debug)]
pub struct LiveScene {
    service: ConnService<'static>,
    data: Arc<RStarTree<DataPoint>>,
    obstacles: Arc<RStarTree<Rect>>,
    deltas_published: u64,
}

impl LiveScene {
    /// Indexes `points` and `obstacles` and wraps them in a service whose
    /// epoch 0 shares the trees (every later epoch shares whatever a
    /// mutation did not touch).
    pub fn new(points: Vec<DataPoint>, obstacles: Vec<Rect>, cfg: ConnConfig) -> Self {
        let data = Arc::new(RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE)); // lint:allow(no-full-rebuild-in-delta-path): construction-time cold build, not a delta
        let obstacles = Arc::new(RStarTree::bulk_load(obstacles, DEFAULT_PAGE_SIZE)); // lint:allow(no-full-rebuild-in-delta-path): construction-time cold build, not a delta
        let service = ConnService::with_config(
            Scene::shared(Arc::clone(&data), Arc::clone(&obstacles)),
            cfg,
        );
        LiveScene {
            service,
            data,
            obstacles,
            deltas_published: 0,
        }
    }

    /// A paper-style live scene (LA-like obstacles, uniform points).
    pub fn uniform(n_points: usize, n_obstacles: usize, seed: u64, cfg: ConnConfig) -> Self {
        let obstacles = conn_datasets::la_like(n_obstacles, seed);
        let points = DataPoint::from_points(&conn_datasets::uniform_points(
            n_points,
            seed.wrapping_add(1),
            &obstacles,
        ));
        LiveScene::new(points, obstacles, cfg)
    }

    /// The serving front door: execute queries, register standing ones.
    pub fn service(&self) -> &ConnService<'static> {
        &self.service
    }

    /// Number of data points in the live world.
    pub fn num_points(&self) -> usize {
        self.data.len()
    }

    /// Number of obstacles in the live world.
    pub fn num_obstacles(&self) -> usize {
        self.obstacles.len()
    }

    /// The live world's points, collected (the cold-rebuild oracle input).
    pub fn points(&self) -> Vec<DataPoint> {
        self.data.iter_items().copied().collect()
    }

    /// The live world's obstacles, collected.
    pub fn obstacles(&self) -> Vec<Rect> {
        self.obstacles.iter_items().copied().collect()
    }

    /// Deltas published so far (equals the current epoch number).
    pub fn deltas_published(&self) -> u64 {
        self.deltas_published
    }

    /// Copy-on-write handle on the data tree: forks the pages only while
    /// a published epoch still shares them, then repairs in place.
    fn data_mut(&mut self) -> &mut RStarTree<DataPoint> {
        if Arc::get_mut(&mut self.data).is_none() {
            self.data = Arc::new(self.data.fork());
        }
        // lint:allow(no-panic-in-query-path): the fork above restored unique ownership
        Arc::get_mut(&mut self.data).expect("uniquely owned after fork")
    }

    /// Copy-on-write handle on the obstacle tree.
    fn obstacles_mut(&mut self) -> &mut RStarTree<Rect> {
        if Arc::get_mut(&mut self.obstacles).is_none() {
            self.obstacles = Arc::new(self.obstacles.fork());
        }
        // lint:allow(no-panic-in-query-path): the fork above restored unique ownership
        Arc::get_mut(&mut self.obstacles).expect("uniquely owned after fork")
    }

    fn publish(&mut self, delta: SceneDelta) -> (u64, PatchReport) {
        self.deltas_published += 1;
        let scene = Scene::shared(Arc::clone(&self.data), Arc::clone(&self.obstacles));
        self.service.publish_delta(scene, &delta)
    }

    /// Inserts a data point (in-place R\*-tree repair), publishes the
    /// derived epoch and patches the standing set.
    pub fn insert_site(&mut self, p: DataPoint) -> (u64, PatchReport) {
        self.data_mut().insert(p);
        self.publish(SceneDelta::SiteInserted(p))
    }

    /// Removes the data point at `pos` (exact coordinate match); `None`
    /// when no point sits there (nothing is published).
    pub fn remove_site(&mut self, pos: Point) -> Option<(u64, PatchReport)> {
        let removed = self.data_mut().delete_by_mbr(&Rect::from_point(pos))?;
        Some(self.publish(SceneDelta::SiteRemoved(removed)))
    }

    /// Inserts an obstacle (in-place R\*-tree repair), publishes the
    /// derived epoch and patches the standing set.
    pub fn insert_obstacle(&mut self, r: Rect) -> (u64, PatchReport) {
        self.obstacles_mut().insert(r);
        self.publish(SceneDelta::ObstacleInserted(r))
    }

    /// Removes the obstacle matching `r` (exact coordinate match); `None`
    /// when no such obstacle exists (nothing is published).
    pub fn remove_obstacle(&mut self, r: &Rect) -> Option<(u64, PatchReport)> {
        let removed = self.obstacles_mut().delete_by_mbr(r)?;
        Some(self.publish(SceneDelta::ObstacleRemoved(removed)))
    }
}

/// 1e-6-style equivalence between two answers of the same family — the
/// oracle comparator of the live-equivalence suites. Distances compare
/// within `tol` (relative above 1, absolute below); identities are
/// compared where the family pins them and ties allow either side.
pub fn answers_equivalent(a: &Answer, b: &Answer, tol: f64) -> bool {
    let close = |x: f64, y: f64| {
        (x.is_infinite() && y.is_infinite() && x.signum() == y.signum())
            || (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0)
    };
    match (a, b) {
        (Answer::Conn(x), Answer::Conn(y)) => x.values_equivalent(y, tol),
        (Answer::Coknn(x), Answer::Coknn(y)) => {
            if x.query() != y.query() || x.k() != y.k() {
                return false;
            }
            // sample the union of both covers' boundaries: within one
            // joint interval both sides are fixed member sets
            let mut ts: Vec<f64> = x
                .entries()
                .iter()
                .chain(y.entries())
                .flat_map(|e| [e.interval.lo, e.interval.hi])
                .collect();
            ts.sort_by(f64::total_cmp);
            ts.dedup();
            ts.windows(2).all(|w| {
                let &[lo, hi] = w else { return true };
                let t = 0.5 * (lo + hi);
                let (va, vb) = (x.knn_at(t), y.knn_at(t));
                va.len() == vb.len() && va.iter().zip(&vb).all(|((_, da), (_, db))| close(*da, *db))
            })
        }
        (Answer::Onn(x), Answer::Onn(y))
        | (Answer::Range(x), Answer::Range(y))
        | (Answer::Rnn(x), Answer::Rnn(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|((_, da), (_, db))| close(*da, *db))
        }
        (Answer::Odist(x), Answer::Odist(y)) => close(*x, *y),
        (Answer::Route { dist: x, .. }, Answer::Route { dist: y, .. }) => close(*x, *y),
        (Answer::EDistanceJoin(x), Answer::EDistanceJoin(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((_, _, da), (_, _, db))| close(*da, *db))
        }
        (Answer::ClosestPair(x), Answer::ClosestPair(y)) => match (x, y) {
            (None, None) => true,
            (Some((_, _, da)), Some((_, _, db))) => close(*da, *db),
            _ => false,
        },
        (Answer::Trajectory(x), Answer::Trajectory(y)) => {
            x.segments().len() == y.segments().len()
                && x.segments()
                    .iter()
                    .zip(y.segments())
                    .all(|((pa, ia), (pb, ib))| {
                        pa.map(|p| p.id) == pb.map(|p| p.id)
                            && close(ia.lo, ib.lo)
                            && close(ia.hi, ib.hi)
                    })
        }
        (Answer::TrajectoryKnn(x), Answer::TrajectoryKnn(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(ra, rb)| {
                    answers_equivalent(&Answer::Coknn(ra.clone()), &Answer::Coknn(rb.clone()), tol)
                })
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::query::Query;
    use conn_geom::Segment;

    fn points() -> Vec<DataPoint> {
        vec![
            DataPoint::new(0, Point::new(10.0, 20.0)),
            DataPoint::new(1, Point::new(50.0, 8.0)),
            DataPoint::new(2, Point::new(90.0, 25.0)),
            DataPoint::new(3, Point::new(45.0, 60.0)),
        ]
    }

    fn obstacles() -> Vec<Rect> {
        vec![
            Rect::new(30.0, 5.0, 40.0, 30.0),
            Rect::new(60.0, 10.0, 75.0, 18.0),
        ]
    }

    /// Re-runs a standing query cold on a fresh service over the live
    /// world's current state — the oracle every patch must match.
    fn cold_answer(live: &LiveScene, q: &Query) -> Answer {
        let svc = ConnService::new(Scene::new(live.points(), live.obstacles()));
        svc.execute(q).unwrap().answer
    }

    #[test]
    fn frozen_scenes_reject_mutation_with_typed_error() {
        let dt = RStarTree::bulk_load(points(), DEFAULT_PAGE_SIZE);
        let ot = RStarTree::bulk_load(obstacles(), DEFAULT_PAGE_SIZE);
        let mut borrowed = Scene::borrowing(&dt, &ot);
        let err = borrowed
            .insert_site(DataPoint::new(9, Point::new(1.0, 1.0)))
            .unwrap_err();
        assert!(matches!(err, Error::FrozenScene(_)));
        assert!(err.reason().contains("borrows"), "{err}");

        let mut shared = Scene::shared(
            Arc::new(RStarTree::bulk_load(points(), DEFAULT_PAGE_SIZE)),
            Arc::new(RStarTree::bulk_load(obstacles(), DEFAULT_PAGE_SIZE)),
        );
        let err = shared
            .remove_obstacle(&Rect::new(30.0, 5.0, 40.0, 30.0))
            .unwrap_err();
        assert!(matches!(err, Error::FrozenScene(_)));
        assert_eq!(err.to_string(), format!("frozen scene: {}", err.reason()));
        assert!(err.reason().contains("shares"), "{err}");

        let mut owned = Scene::new(points(), obstacles());
        assert!(owned.is_mutable());
        owned
            .insert_site(DataPoint::new(9, Point::new(1.0, 1.0)))
            .unwrap();
        assert_eq!(owned.num_points(), 5);
        assert_eq!(
            owned
                .remove_site(Point::new(1.0, 1.0))
                .unwrap()
                .map(|p| p.id),
            Some(9)
        );
        owned
            .insert_obstacle(Rect::new(0.0, 0.0, 1.0, 1.0))
            .unwrap();
        assert_eq!(
            owned
                .remove_obstacle(&Rect::new(0.0, 0.0, 1.0, 1.0))
                .unwrap(),
            Some(Rect::new(0.0, 0.0, 1.0, 1.0))
        );
    }

    #[test]
    fn mutations_publish_derived_epochs() {
        let mut live = LiveScene::new(points(), obstacles(), ConnConfig::default());
        assert_eq!(live.service().current_epoch(), 0);
        let (e1, _) = live.insert_obstacle(Rect::new(0.0, 40.0, 5.0, 45.0));
        assert_eq!(e1, 1);
        let (e2, _) = live.insert_site(DataPoint::new(7, Point::new(5.0, 5.0)));
        assert_eq!(e2, 2);
        assert_eq!(live.num_points(), 5);
        assert_eq!(live.num_obstacles(), 3);
        assert_eq!(live.deltas_published(), 2);
        // absent targets publish nothing
        assert!(live.remove_site(Point::new(999.0, 999.0)).is_none());
        assert!(live
            .remove_obstacle(&Rect::new(900.0, 900.0, 901.0, 901.0))
            .is_none());
        assert_eq!(live.service().current_epoch(), 2);
        // old epochs retire as nothing pins them
        assert_eq!(
            live.service().epochs_live() + live.service().epochs_retired(),
            3
        );
    }

    #[test]
    fn standing_onn_patches_match_cold_reruns() {
        let mut live = LiveScene::new(points(), obstacles(), ConnConfig::default());
        let q = Query::onn(Point::new(50.0, 0.0), 2).build().unwrap();
        let h = live.service().register(q.clone()).unwrap();

        // far-away obstacle: certificate holds, answer kept
        let (_, report) = live.insert_obstacle(Rect::new(400.0, 400.0, 410.0, 410.0));
        assert_eq!(report.kept, 1, "{report:?}");
        assert!(answers_equivalent(
            &live.service().standing(&h).unwrap(),
            &cold_answer(&live, &q),
            1e-6
        ));

        // close site insertion: tuple patch, one distance evaluation
        let (_, report) = live.insert_site(DataPoint::new(8, Point::new(52.0, 2.0)));
        assert_eq!(report.tuple_patched, 1, "{report:?}");
        assert!(answers_equivalent(
            &live.service().standing(&h).unwrap(),
            &cold_answer(&live, &q),
            1e-6
        ));

        // removing a resident member: recompute
        let (_, report) = live.remove_site(Point::new(52.0, 2.0)).unwrap();
        assert_eq!(report.recomputed, 1, "{report:?}");
        assert!(answers_equivalent(
            &live.service().standing(&h).unwrap(),
            &cold_answer(&live, &q),
            1e-6
        ));

        // blocking obstacle straight through the neighborhood: recompute
        let (_, report) = live.insert_obstacle(Rect::new(44.0, -5.0, 56.0, 6.0));
        assert_eq!(report.recomputed, 1, "{report:?}");
        assert!(answers_equivalent(
            &live.service().standing(&h).unwrap(),
            &cold_answer(&live, &q),
            1e-6
        ));

        assert!(live.service().unregister(h));
        assert_eq!(live.service().standing_count(), 0);
        assert!(live.service().standing(&h).is_none());
    }

    #[test]
    fn standing_odist_kernel_patches_track_every_mutation() {
        let mut live = LiveScene::new(points(), obstacles(), ConnConfig::default());
        let q = Query::odist(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
            .build()
            .unwrap();
        let h = live.service().register(q.clone()).unwrap();
        let d0 = live.service().standing(&h).unwrap().distance().unwrap();
        assert!(d0 >= 100.0);

        // wall through the corridor: kernel patch, longer distance
        let wall = Rect::new(48.0, -20.0, 52.0, 40.0);
        let (_, report) = live.insert_obstacle(wall);
        assert_eq!(report.kernel_patched, 1, "{report:?}");
        assert!(report.adjacency_repairs > 0 || report.labels_invalidated > 0);
        let d1 = live.service().standing(&h).unwrap().distance().unwrap();
        assert!(d1 > d0);
        assert!(answers_equivalent(
            &live.service().standing(&h).unwrap(),
            &cold_answer(&live, &q),
            1e-6
        ));

        // take it back out: paths-only-shorten repair restores d0
        let (_, report) = live.remove_obstacle(&wall).unwrap();
        assert_eq!(report.kernel_patched, 1, "{report:?}");
        let d2 = live.service().standing(&h).unwrap().distance().unwrap();
        assert!((d2 - d0).abs() <= 1e-6 * d0.max(1.0));

        // site mutations never touch a point-to-point answer
        let (_, report) = live.insert_site(DataPoint::new(9, Point::new(50.0, 1.0)));
        assert_eq!(report.kept, 1, "{report:?}");
    }

    #[test]
    fn standing_conn_certificate_skips_far_deltas() {
        let mut live = LiveScene::new(points(), obstacles(), ConnConfig::default());
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let q = Query::conn(seg).build().unwrap();
        let h = live.service().register(q.clone()).unwrap();

        let (_, report) = live.insert_obstacle(Rect::new(500.0, 500.0, 510.0, 510.0));
        assert_eq!(report.kept, 1, "{report:?}");
        let (_, report) = live.insert_site(DataPoint::new(11, Point::new(48.0, 1.0)));
        assert_eq!(report.recomputed, 1, "{report:?}");
        assert!(answers_equivalent(
            &live.service().standing(&h).unwrap(),
            &cold_answer(&live, &q),
            1e-6
        ));
    }
}
