//! Streaming trajectory sessions — trajectory CONN as a *moving-client
//! serving primitive* rather than a batch reproduction artifact.
//!
//! The batch API ([`crate::trajectory_conn_search`]) answers a complete
//! polyline. A session answers it **one leg at a time**: the caller pushes
//! the next vertex as the client reports it, receives the delta tuples of
//! the new leg in cumulative arclength, and the session keeps one
//! [`QueryEngine`] warm across the legs:
//!
//! * the **local visibility graph persists** — obstacle loads are monotone
//!   within a session (a loaded rectangle is a real obstacle for every
//!   later leg), so the graph, its grid, and its base adjacency caches
//!   carry over; the per-leg obstacle stream
//!   ([`crate::streams::SessionStreams`]) re-orders the R-tree traversal
//!   for the new goal segment but skips everything already loaded;
//! * the **joint vertex node is shared** — each leg starts at the previous
//!   leg's end node, and old endpoint nodes stay in the graph as harmless
//!   free vertices (extra nodes never shorten a corner-optimal shortest
//!   path, so distances are unchanged);
//! * the **Dijkstra substrate warm-starts** — within a leg the PR 3
//!   replay/reseed machinery works as before, and because node additions
//!   no longer disturb the engine's shape snapshot, repeated
//!   goal-directed searches can *retarget* the retained labels when only
//!   the goal moved (see [`conn_vgraph::Prep::Retargeted`]);
//! * **per-leg `RLMAX` bounds are seeded from the previous leg's answer**
//!   — the obstructed NN distance is 1-Lipschitz along an unblocked leg,
//!   so `d(joint) + leg_len` upper-bounds the new leg's final `RLMAX`
//!   before any point is evaluated, capping the point stream and the
//!   early obstacle certification loads
//!   ([`crate::ConnConfig::seed_leg_bound`]). Early legs thereby pre-pay
//!   obstacle loads that later legs reuse for free.
//!
//! Every leg remains an exact Algorithm-4 run: the shared state is a
//! *superset* of what a cold run would load, and the certification logic
//! only ever benefits from extra loaded obstacles. Answers are equivalent
//! to the cold-per-leg reference (identical tuples; distances and split
//! points match to float noise), which the `trajectory_session`
//! equivalence proptests enforce across kernels and layouts.
//!
//! Under the concurrent serving layer, sessions are opened from a pinned
//! epoch ([`crate::SceneEpoch::open_session`], reached through a
//! [`crate::PinnedEpoch`]): the session borrows the
//! snapshot's trees, so a long-lived moving client keeps answering
//! against the world it started on even while the service publishes new
//! epochs behind it — the snapshot retires only after the session's pin
//! drops.
//!
//! ```
//! use conn_core::{ConnConfig, DataPoint, TrajectorySession};
//! use conn_geom::{Point, Rect};
//! use conn_index::RStarTree;
//!
//! let points = RStarTree::bulk_load(
//!     vec![
//!         DataPoint::new(0, Point::new(10.0, 30.0)),
//!         DataPoint::new(1, Point::new(100.0, 60.0)),
//!     ],
//!     4096,
//! );
//! let obstacles: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
//!
//! let mut session =
//!     TrajectorySession::new(&points, &obstacles, Point::new(0.0, 0.0), ConnConfig::default());
//! // the client reports positions as it moves; each push returns the new
//! // tuples in cumulative arclength
//! let delta = session.push_leg(Point::new(100.0, 0.0));
//! assert_eq!(delta.first().unwrap().0.unwrap().id, 0);
//! let delta = session.push_leg(Point::new(100.0, 80.0));
//! assert_eq!(delta.last().unwrap().0.unwrap().id, 1);
//!
//! let (result, stats) = session.finish();
//! result.check_cover().unwrap();
//! assert!(stats.reuse.graph_reuses >= 1, "the second leg ran warm");
//! ```

use std::time::Instant;

use conn_geom::{Interval, Point, Rect, Segment};
use conn_index::RStarTree;
use conn_vgraph::{NodeId, NodeKind};

use crate::coknn::{CoknnResult, KnnResultList};
use crate::config::ConnConfig;
use crate::conn::{run_leg, ConnResult, ResultSink};
use crate::engine::QueryEngine;
use crate::rlu::ResultList;
use crate::stats::QueryStats;
use crate::streams::{LoadedObstacles, SessionStreams};
use crate::trajectory::{stitch_leg, Trajectory, TrajectoryResult};
use crate::types::DataPoint;

/// The engine a session runs on: its own, or one lent by a caller that
/// amortizes a single engine across many sessions (the batch workers).
enum EngineSlot<'e> {
    Owned(Box<QueryEngine>),
    Borrowed(&'e mut QueryEngine),
}

impl EngineSlot<'_> {
    fn get(&mut self) -> &mut QueryEngine {
        match self {
            EngineSlot::Owned(e) => e,
            EngineSlot::Borrowed(e) => e,
        }
    }
}

/// Shared machinery of the CONN and COkNN sessions: trees, engine,
/// session-monotone obstacle set, trajectory geometry, pooled stats.
struct SessionCore<'t, 'e> {
    data_tree: &'t RStarTree<DataPoint>,
    obstacle_tree: &'t RStarTree<Rect>,
    engine: EngineSlot<'e>,
    loaded: LoadedObstacles,
    vertices: Vec<Point>,
    cum: Vec<f64>,
    /// The previous leg's end node — the next leg's start node.
    joint_node: Option<NodeId>,
    /// Basis of the next leg's seeded `RLMAX` bound: the answer value at
    /// the current joint (the NN distance for CONN, the k-th distance for
    /// COkNN), when one exists.
    joint_bound: Option<f64>,
    stats: QueryStats,
    track_io: bool,
}

impl<'t, 'e> SessionCore<'t, 'e> {
    fn new(
        data_tree: &'t RStarTree<DataPoint>,
        obstacle_tree: &'t RStarTree<Rect>,
        start: Point,
        engine: EngineSlot<'e>,
    ) -> Self {
        assert!(
            start.x.is_finite() && start.y.is_finite(),
            "non-finite session start"
        );
        SessionCore {
            data_tree,
            obstacle_tree,
            engine,
            loaded: LoadedObstacles::default(),
            vertices: vec![start],
            cum: vec![0.0],
            joint_node: None,
            joint_bound: None,
            stats: QueryStats::default(),
            track_io: true,
        }
    }

    fn position(&self) -> Point {
        // Infallible: vertices starts with the session origin and only grows.
        // lint:allow(no-panic-in-query-path)
        *self.vertices.last().unwrap()
    }

    /// Runs one leg of Algorithm 4 on the session substrate and pools the
    /// leg's stats. Returns the filled sink, the leg segment, and its
    /// cumulative offset.
    fn run_leg_sink<R: ResultSink>(
        &mut self,
        to: Point,
        make_sink: impl FnOnce(f64) -> R,
    ) -> (R, Segment, f64) {
        assert!(
            to.x.is_finite() && to.y.is_finite(),
            "non-finite leg vertex"
        );
        let leg = Segment::new(self.position(), to);
        assert!(!leg.is_degenerate(), "degenerate trajectory leg");
        // Infallible: cum starts as vec![0.0] and only grows.
        // lint:allow(no-panic-in-query-path)
        let offset = *self.cum.last().unwrap();
        let cfg = *self.engine.get().config();

        if self.track_io {
            self.data_tree.reset_stats();
            self.obstacle_tree.reset_stats();
        }
        // Query-boundary elapsed time for QueryStats; the kernel loop
        // below never reads the clock.
        let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)

        // Lipschitz continuation bound: along an unblocked leg the NN
        // distance moves at most 1:1 with the parameter, so the previous
        // joint's answer caps this leg's final RLMAX. Blocked legs (a
        // trajectory cutting through an obstacle) fall back to ∞ — the
        // 1-Lipschitz argument needs the straight run back to the joint.
        // (Inside the stats window: the clearance check is a real per-leg
        // cost the session pays and the cold path does not.)
        let seed_bound = match self.joint_bound {
            Some(d) if cfg.seed_leg_bound && leg_is_clear(self.obstacle_tree, &leg) => {
                d + leg.len()
            }
            _ => f64::INFINITY,
        };
        let ws = self.engine.get().workspace();
        let s_node = match self.joint_node {
            Some(n) => {
                ws.begin_leg(&cfg);
                n
            }
            None => {
                // first leg: a clean query start on (possibly reused) state
                ws.begin_query(&cfg);
                self.loaded.clear();
                ws.g.add_point(leg.a, NodeKind::Endpoint)
            }
        };
        let e_node = ws.g.add_point(leg.b, NodeKind::Endpoint);
        let mut sink = make_sink(leg.len());
        let mut streams =
            SessionStreams::new(self.data_tree, self.obstacle_tree, &leg, &mut self.loaded);
        let telemetry = run_leg(
            &mut streams,
            &leg,
            &cfg,
            &mut sink,
            ws,
            s_node,
            e_node,
            seed_bound,
        );
        let mut stats = QueryStats {
            cpu: started.elapsed(),
            npe: telemetry.npe,
            noe: telemetry.noe,
            svg_nodes: telemetry.svg_nodes,
            result_tuples: sink.tuples(),
            reuse: ws.finish_query(),
            ..QueryStats::default()
        };
        if self.track_io {
            stats.data_io = self.data_tree.stats();
            stats.obstacle_io = self.obstacle_tree.stats();
        }
        self.stats.accumulate(&stats);
        self.joint_node = Some(e_node);
        self.vertices.push(to);
        self.cum.push(offset + leg.len());
        (sink, leg, offset)
    }

    fn num_legs(&self) -> usize {
        self.vertices.len() - 1
    }

    fn trajectory(&self) -> Trajectory {
        assert!(
            self.num_legs() >= 1,
            "session has no legs yet — push at least one"
        );
        Trajectory::new(self.vertices.clone())
    }
}

/// No loaded obstacle may cross the leg — the precondition of the seeded
/// bound's 1-Lipschitz argument (checked against the *full* obstacle tree,
/// not just the loaded subset, so the bound is sound unconditionally).
fn leg_is_clear(obstacle_tree: &RStarTree<Rect>, leg: &Segment) -> bool {
    obstacle_tree
        .range(&Rect::from_segment(leg))
        .iter()
        .all(|r| !r.blocks(leg))
}

/// A streaming trajectory CONN session (k = 1). See the module docs for
/// the reuse model; [`crate::trajectory_conn_search`] is the batch facade
/// that replays a complete [`Trajectory`] through one of these.
pub struct TrajectorySession<'t, 'e> {
    core: SessionCore<'t, 'e>,
    segments: Vec<(Option<DataPoint>, Interval)>,
}

impl<'t> TrajectorySession<'t, 'static> {
    /// A session starting at `start`, on its own engine.
    pub fn new(
        data_tree: &'t RStarTree<DataPoint>,
        obstacle_tree: &'t RStarTree<Rect>,
        start: Point,
        cfg: ConnConfig,
    ) -> Self {
        TrajectorySession {
            core: SessionCore::new(
                data_tree,
                obstacle_tree,
                start,
                EngineSlot::Owned(Box::new(QueryEngine::new(cfg))),
            ),
            segments: Vec::new(),
        }
    }
}

impl<'t, 'e> TrajectorySession<'t, 'e> {
    /// A session on a caller-provided engine (batch workers amortize one
    /// engine across many trajectories). The first leg rewinds the engine
    /// exactly like any new query, so no state leaks between sessions.
    pub fn with_engine(
        data_tree: &'t RStarTree<DataPoint>,
        obstacle_tree: &'t RStarTree<Rect>,
        start: Point,
        engine: &'e mut QueryEngine,
    ) -> Self {
        TrajectorySession {
            core: SessionCore::new(
                data_tree,
                obstacle_tree,
                start,
                EngineSlot::Borrowed(engine),
            ),
            segments: Vec::new(),
        }
    }

    /// Builder: disable per-leg tree-counter resets (batch workers pool
    /// I/O at the batch level; per-leg stats then report zero I/O).
    pub fn pooled_io(mut self) -> Self {
        self.core.track_io = false;
        self
    }

    /// Extends the trajectory to `to` and answers the new leg, keeping the
    /// engine warm. Returns the **delta**: the `⟨p, R⟩` tuples covering
    /// `(prev_len, new_len]` in cumulative arclength. When the answer
    /// persists across the joint, the delta's first tuple starts exactly
    /// at `prev_len` and [`TrajectorySession::segments`] shows it merged
    /// with the previous tuple.
    pub fn push_leg(&mut self, to: Point) -> Vec<(Option<DataPoint>, Interval)> {
        let (list, leg, offset) = self.core.run_leg_sink(to, ResultList::new);
        let res = ConnResult::new(leg, list);
        let end = offset + leg.len();
        stitch_leg(&mut self.segments, &res.segments(), offset, end);
        // next leg's seed: the NN distance at the new joint
        self.core.joint_bound = res.nn_at(leg.len()).map(|(_, d)| d);

        let mut delta: Vec<(Option<DataPoint>, Interval)> = Vec::new();
        for &(p, iv) in self.segments.iter().rev() {
            if iv.hi <= offset {
                break;
            }
            delta.push((p, Interval::new(iv.lo.max(offset), iv.hi)));
        }
        delta.reverse();
        delta
    }

    /// The stitched `⟨p, R⟩` tuples over everything pushed so far.
    pub fn segments(&self) -> &[(Option<DataPoint>, Interval)] {
        &self.segments
    }

    /// The ONN at cumulative arclength `t` over the legs pushed so far.
    pub fn nn_at(&self, t: f64) -> Option<DataPoint> {
        self.segments
            .iter()
            .find(|(_, iv)| iv.contains(t))
            .and_then(|(p, _)| *p)
    }

    /// Vertices pushed so far (the start point included).
    pub fn vertices(&self) -> &[Point] {
        &self.core.vertices
    }

    /// Legs answered so far.
    pub fn num_legs(&self) -> usize {
        self.core.num_legs()
    }

    /// Cumulative arclength covered so far.
    pub fn len(&self) -> f64 {
        // Infallible: cum starts as vec![0.0] and only grows.
        // lint:allow(no-panic-in-query-path)
        *self.core.cum.last().unwrap()
    }

    /// True until the first leg is pushed.
    pub fn is_empty(&self) -> bool {
        self.core.num_legs() == 0
    }

    /// Pooled statistics over the legs answered so far.
    pub fn stats(&self) -> QueryStats {
        let mut s = self.core.stats;
        s.result_tuples = self.segments.len() as u64;
        s
    }

    /// Snapshot of the stitched result as a [`TrajectoryResult`]. Panics
    /// when no leg has been pushed (a trajectory needs ≥ 2 vertices).
    pub fn result(&self) -> TrajectoryResult {
        TrajectoryResult::new(self.core.trajectory(), self.segments.clone())
    }

    /// Consumes the session into its final result and pooled stats.
    pub fn finish(self) -> (TrajectoryResult, QueryStats) {
        let stats = self.stats();
        (
            TrajectoryResult::new(self.core.trajectory(), self.segments),
            stats,
        )
    }
}

/// A streaming trajectory COkNN session: like [`TrajectorySession`] but
/// each pushed leg yields its full [`CoknnResult`] (kNN sets keep every
/// member's control points, so the per-leg structure is the honest API —
/// see [`crate::trajectory_coknn_search`]). The new leg's pruning bound is
/// seeded from the k-th distance at the joint.
pub struct TrajectoryCoknnSession<'t, 'e> {
    core: SessionCore<'t, 'e>,
    k: usize,
    legs: Vec<CoknnResult>,
}

impl<'t> TrajectoryCoknnSession<'t, 'static> {
    /// Opens a session at `start` over borrowed trees.
    pub fn new(
        data_tree: &'t RStarTree<DataPoint>,
        obstacle_tree: &'t RStarTree<Rect>,
        start: Point,
        k: usize,
        cfg: ConnConfig,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TrajectoryCoknnSession {
            core: SessionCore::new(
                data_tree,
                obstacle_tree,
                start,
                EngineSlot::Owned(Box::new(QueryEngine::new(cfg))),
            ),
            k,
            legs: Vec::new(),
        }
    }
}

impl<'t, 'e> TrajectoryCoknnSession<'t, 'e> {
    /// See [`TrajectorySession::with_engine`].
    pub fn with_engine(
        data_tree: &'t RStarTree<DataPoint>,
        obstacle_tree: &'t RStarTree<Rect>,
        start: Point,
        k: usize,
        engine: &'e mut QueryEngine,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TrajectoryCoknnSession {
            core: SessionCore::new(
                data_tree,
                obstacle_tree,
                start,
                EngineSlot::Borrowed(engine),
            ),
            k,
            legs: Vec::new(),
        }
    }

    /// See [`TrajectorySession::pooled_io`].
    pub fn pooled_io(mut self) -> Self {
        self.core.track_io = false;
        self
    }

    /// Extends the trajectory to `to`; returns the new leg's result.
    pub fn push_leg(&mut self, to: Point) -> &CoknnResult {
        let k = self.k;
        let (list, leg, _) = self
            .core
            .run_leg_sink(to, |qlen| KnnResultList::new(qlen, k));
        let res = CoknnResult::new(leg, list);
        // seed basis: the k-th (worst of the k) distance at the joint —
        // only when a full k-set is reachable there
        let knn = res.knn_at(leg.len());
        self.core.joint_bound =
            (knn.len() == k).then(|| knn.iter().map(|(_, d)| *d).fold(0.0, f64::max));
        self.legs.push(res);
        // Infallible: pushed on the line above.
        // lint:allow(no-panic-in-query-path)
        self.legs.last().unwrap()
    }

    /// Per-leg results answered so far.
    pub fn legs(&self) -> &[CoknnResult] {
        &self.legs
    }

    /// The per-point neighbor count every leg answers with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pooled statistics over the legs answered so far.
    pub fn stats(&self) -> QueryStats {
        self.core.stats
    }

    /// Consumes the session into the per-leg results and pooled stats.
    pub fn finish(self) -> (Vec<CoknnResult>, QueryStats) {
        (self.legs, self.core.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{trajectory_conn_search_cold, Trajectory};

    fn setup() -> (RStarTree<DataPoint>, RStarTree<Rect>) {
        let points = vec![
            DataPoint::new(0, Point::new(20.0, 30.0)),
            DataPoint::new(1, Point::new(80.0, -20.0)),
            DataPoint::new(2, Point::new(130.0, 50.0)),
            DataPoint::new(3, Point::new(60.0, 90.0)),
        ];
        let obstacles = vec![
            Rect::new(40.0, 10.0, 60.0, 25.0),
            Rect::new(110.0, 20.0, 120.0, 60.0),
            Rect::new(30.0, 55.0, 80.0, 70.0),
        ];
        (
            RStarTree::bulk_load(points, 4096),
            RStarTree::bulk_load(obstacles, 4096),
        )
    }

    fn route() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 80.0),
            Point::new(10.0, 80.0),
        ]
    }

    #[test]
    fn session_matches_cold_per_leg() {
        let (dt, ot) = setup();
        let verts = route();
        let traj = Trajectory::new(verts.clone());
        let cfg = ConnConfig::default();
        let (cold, _) = trajectory_conn_search_cold(&dt, &ot, &traj, &cfg);

        let mut session = TrajectorySession::new(&dt, &ot, verts[0], cfg);
        let mut concat: Vec<(Option<DataPoint>, Interval)> = Vec::new();
        for &v in &verts[1..] {
            let delta = session.push_leg(v);
            // deltas chain contiguously
            assert!(
                (delta.first().unwrap().1.lo - concat.last().map_or(0.0, |x| x.1.hi)).abs() < 1e-9
            );
            concat.extend(delta);
        }
        let (res, stats) = session.finish();
        res.check_cover().unwrap();
        cold.check_cover().unwrap();
        assert!(stats.reuse.graph_reuses >= 2, "later legs must run warm");

        // same answers everywhere (ties resolved identically here)
        for i in 0..=120 {
            let t = traj.len() * (i as f64) / 120.0;
            let a = cold.nn_at(t).map(|p| p.id);
            let b = res.nn_at(t).map(|p| p.id);
            assert_eq!(a, b, "answer diverged at t = {t}");
        }
        // the concatenated deltas reproduce the stitched segments
        let mut merged: Vec<(Option<DataPoint>, Interval)> = Vec::new();
        for (p, iv) in concat {
            match merged.last_mut() {
                Some((lp, liv)) if lp.map(|x| x.id) == p.map(|x| x.id) => liv.hi = iv.hi,
                _ => merged.push((p, iv)),
            }
        }
        assert_eq!(merged.len(), res.segments().len());
        for ((p1, iv1), (p2, iv2)) in merged.iter().zip(res.segments()) {
            assert_eq!(p1.map(|x| x.id), p2.map(|x| x.id));
            assert!((iv1.lo - iv2.lo).abs() < 1e-9 && (iv1.hi - iv2.hi).abs() < 1e-9);
        }
    }

    #[test]
    fn seeded_bound_does_not_change_answers() {
        let (dt, ot) = setup();
        let verts = route();
        let mut seeded = TrajectorySession::new(&dt, &ot, verts[0], ConnConfig::default());
        let mut unseeded = TrajectorySession::new(
            &dt,
            &ot,
            verts[0],
            ConnConfig {
                seed_leg_bound: false,
                ..ConnConfig::default()
            },
        );
        for &v in &verts[1..] {
            seeded.push_leg(v);
            unseeded.push_leg(v);
        }
        let (a, sa) = seeded.finish();
        let (b, sb) = unseeded.finish();
        assert_eq!(a.segments().len(), b.segments().len());
        for ((p1, iv1), (p2, iv2)) in a.segments().iter().zip(b.segments()) {
            assert_eq!(p1.map(|x| x.id), p2.map(|x| x.id));
            assert_eq!(iv1.lo.to_bits(), iv2.lo.to_bits());
            assert_eq!(iv1.hi.to_bits(), iv2.hi.to_bits());
        }
        assert!(
            sa.npe <= sb.npe,
            "the seeded bound may only prune: {} vs {}",
            sa.npe,
            sb.npe
        );
    }

    #[test]
    fn coknn_session_covers_each_leg() {
        let (dt, ot) = setup();
        let verts = route();
        let mut session = TrajectoryCoknnSession::new(&dt, &ot, verts[0], 2, ConnConfig::default());
        for &v in &verts[1..] {
            let res = session.push_leg(v);
            res.check_cover().unwrap();
            assert_eq!(res.knn_at(1.0).len(), 2);
        }
        let (legs, stats) = session.finish();
        assert_eq!(legs.len(), 3);
        assert!(stats.npe >= 3);
    }

    #[test]
    #[should_panic(expected = "degenerate trajectory leg")]
    fn zero_length_leg_is_rejected() {
        let (dt, ot) = setup();
        let mut s = TrajectorySession::new(&dt, &ot, Point::new(0.0, 0.0), ConnConfig::default());
        let _ = s.push_leg(Point::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "non-finite leg vertex")]
    fn non_finite_leg_is_rejected() {
        let (dt, ot) = setup();
        let mut s = TrajectorySession::new(&dt, &ot, Point::new(0.0, 0.0), ConnConfig::default());
        let _ = s.push_leg(Point {
            x: f64::NAN,
            y: 1.0,
        });
    }
}
