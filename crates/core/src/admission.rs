//! The admission front door (serving layer): queueing, coalescing and
//! backpressure ahead of the service.
//!
//! Independent clients [`submit`] single typed [`Query`] values and get a
//! [`Ticket`] back immediately; pump threads drain the queue in
//! [`AdmissionConfig::coalesce`]-sized slices and drive each slice
//! through the existing mixed-family batch path
//! ([`crate::ConnService::execute_batch_threads`]), so single-query
//! clients transparently get batch economics — warm pooled engines,
//! pooled tree I/O — without holding a service reference themselves.
//! When the queue is full, [`submit`] rejects with [`Error::Overloaded`]
//! instead of buffering unboundedly: admission is where backpressure
//! belongs, not inside the kernels.
//!
//! [`submit`]: Admission::submit

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::error::Error;
use crate::query::{Query, Response};
use crate::service::ConnService;

/// Tunables of the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queued (admitted but not yet executed) queries before
    /// [`Admission::submit`] starts rejecting with [`Error::Overloaded`].
    pub max_pending: usize,
    /// Maximum queries one [`Admission::pump`] call drains into a single
    /// mixed-family batch.
    pub coalesce: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_pending: 1024,
            coalesce: 32,
        }
    }
}

/// Shared completion cell between a [`Ticket`] and the pump that fulfils
/// it.
#[derive(Debug)]
struct TicketState {
    // Justified lock: guards only the completion hand-off slot.
    done: Mutex<Option<Result<Response, Error>>>, // lint:allow(no-interior-mutability-in-service)
    cv: Condvar,
}

fn lock_done(state: &TicketState) -> MutexGuard<'_, Option<Result<Response, Error>>> {
    state
        .done
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A client's handle on one admitted query: blocks on [`Ticket::wait`]
/// until a pump executes the coalesced batch containing it.
#[derive(Debug)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until the query is executed and returns its response (or
    /// the batch-level error).
    pub fn wait(self) -> Result<Response, Error> {
        let mut done = lock_done(&self.state);
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = self
                .state
                .cv
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Non-blocking poll: the response if the query already executed.
    pub fn try_take(&self) -> Option<Result<Response, Error>> {
        lock_done(&self.state).take()
    }
}

/// One admitted query waiting in the queue.
#[derive(Debug)]
struct Pending {
    query: Query,
    state: Arc<TicketState>,
    submitted: Instant,
}

/// The admission queue itself (see the module docs). `Send + Sync`:
/// clients submit and pumps drain from any thread.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    // Justified lock: guards only queue push/drain, never query execution.
    queue: Mutex<VecDeque<Pending>>, // lint:allow(no-interior-mutability-in-service)
    served: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    // Justified lock: latency samples appended post-fulfilment.
    latencies: Mutex<Vec<f64>>, // lint:allow(no-interior-mutability-in-service)
}

impl Admission {
    /// An empty queue with `cfg` tunables.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            // lint:allow(no-interior-mutability-in-service)
            queue: Mutex::new(VecDeque::new()),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            // lint:allow(no-interior-mutability-in-service)
            latencies: Mutex::new(Vec::new()),
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Pending>> {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admits one query, returning the [`Ticket`] a pump will fulfil —
    /// or [`Error::Overloaded`] when `max_pending` queries are already
    /// waiting (backpressure; resubmit after the queue drains).
    pub fn submit(&self, query: Query) -> Result<Ticket, Error> {
        let mut queue = self.lock_queue();
        if queue.len() >= self.cfg.max_pending {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Error::overloaded(format!(
                "admission queue full ({} pending)",
                queue.len()
            )));
        }
        let state = Arc::new(TicketState {
            // lint:allow(no-interior-mutability-in-service)
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        queue.push_back(Pending {
            query,
            state: Arc::clone(&state),
            // Queue-boundary arrival stamp for the latency tail record;
            // the kernels never read the clock.
            submitted: Instant::now(), // lint:allow(no-wallclock-in-kernels)
        });
        Ok(Ticket { state })
    }

    /// Drains up to [`AdmissionConfig::coalesce`] queued queries into one
    /// mixed-family batch on `service` (with `threads` workers), fulfils
    /// their tickets, and returns how many queries were executed. Call in
    /// a loop from one or more pump threads; returns 0 when the queue was
    /// empty.
    pub fn pump(&self, service: &ConnService<'_>, threads: usize) -> usize {
        let slice: Vec<Pending> = {
            let mut queue = self.lock_queue();
            let n = queue.len().min(self.cfg.coalesce.max(1));
            queue.drain(..n).collect()
        };
        if slice.is_empty() {
            return 0;
        }
        let queries: Vec<Query> = slice.iter().map(|p| p.query.clone()).collect();
        let n = slice.len();
        match service.execute_batch_threads(&queries, threads) {
            Ok((responses, _batch)) => {
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.served.fetch_add(n as u64, Ordering::Relaxed);
                // Queue-boundary completion stamp for the latency tails.
                let finished = Instant::now(); // lint:allow(no-wallclock-in-kernels)
                let mut lat = self
                    .latencies
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                for (pending, response) in slice.into_iter().zip(responses) {
                    lat.push(finished.duration_since(pending.submitted).as_secs_f64());
                    fulfil(&pending.state, Ok(response));
                }
            }
            Err(e) => {
                for pending in slice {
                    fulfil(&pending.state, Err(e.clone()));
                }
            }
        }
        n
    }

    /// Queries currently admitted but not yet executed.
    pub fn pending(&self) -> usize {
        self.lock_queue().len()
    }

    /// Queries executed and fulfilled so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Submissions rejected by backpressure so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Coalesced batches executed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Drains the recorded submit→fulfil latency samples (seconds) —
    /// the open-loop queueing latency tail, including time spent waiting
    /// for a pump.
    pub fn take_latencies(&self) -> Vec<f64> {
        std::mem::take(
            &mut self
                .latencies
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }
}

/// Posts `result` into the ticket's completion cell and wakes the waiter.
fn fulfil(state: &TicketState, result: Result<Response, Error>) {
    *lock_done(state) = Some(result);
    state.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Scene;
    use crate::types::DataPoint;
    use conn_geom::{Point, Rect, Segment};

    fn service() -> ConnService<'static> {
        ConnService::new(Scene::new(
            vec![
                DataPoint::new(0, Point::new(10.0, 20.0)),
                DataPoint::new(1, Point::new(90.0, 25.0)),
            ],
            vec![Rect::new(30.0, 5.0, 40.0, 30.0)],
        ))
    }

    #[test]
    fn submit_pump_wait_roundtrip_matches_direct_execute() {
        let service = service();
        let admission = Admission::new(AdmissionConfig::default());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let queries = [
            Query::conn(q).build().unwrap(),
            Query::onn(Point::new(50.0, 0.0), 1).build().unwrap(),
            Query::odist(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
                .build()
                .unwrap(),
        ];
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| admission.submit(q.clone()).unwrap())
            .collect();
        assert_eq!(admission.pending(), 3);
        assert_eq!(admission.pump(&service, 1), 3);
        assert_eq!(admission.pending(), 0);
        assert_eq!(admission.served(), 3);
        assert_eq!(admission.batches(), 1);
        for (ticket, query) in tickets.into_iter().zip(&queries) {
            let via_queue = ticket.wait().unwrap();
            let direct = service.execute(query).unwrap();
            assert_eq!(
                format!("{:?}", via_queue.answer),
                format!("{:?}", direct.answer)
            );
        }
        assert_eq!(admission.take_latencies().len(), 3);
    }

    #[test]
    fn backpressure_rejects_past_max_pending() {
        let admission = Admission::new(AdmissionConfig {
            max_pending: 2,
            coalesce: 32,
        });
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let query = Query::conn(q).build().unwrap();
        let _a = admission.submit(query.clone()).unwrap();
        let _b = admission.submit(query.clone()).unwrap();
        let err = admission.submit(query).unwrap_err();
        assert!(matches!(err, Error::Overloaded(_)));
        assert_eq!(admission.rejected(), 1);
    }

    #[test]
    fn coalesce_bounds_one_pump_slice() {
        let service = service();
        let admission = Admission::new(AdmissionConfig {
            max_pending: 64,
            coalesce: 2,
        });
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| admission.submit(Query::conn(q).build().unwrap()).unwrap())
            .collect();
        assert_eq!(admission.pump(&service, 1), 2);
        assert_eq!(admission.pump(&service, 1), 2);
        assert_eq!(admission.pump(&service, 1), 1);
        assert_eq!(admission.pump(&service, 1), 0);
        assert_eq!(admission.batches(), 3);
        for t in tickets {
            let _ = t.wait().unwrap();
        }
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let service = service();
        let admission = Admission::new(AdmissionConfig::default());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let ticket = admission.submit(Query::conn(q).build().unwrap()).unwrap();
        assert!(ticket.try_take().is_none());
        admission.pump(&service, 1);
        assert!(ticket.try_take().unwrap().is_ok());
    }
}
