//! IOR — Incremental Obstacle Retrieval (paper §4.1, Algorithm 1).
//!
//! Before a data point `p` can be evaluated, the local visibility graph must
//! contain every obstacle that can affect obstructed distances from `p` to
//! the query segment. Theorem 2 bounds those obstacles by the region between
//! the shortest paths `SP(p,S)`, `SP(p,E)` and `q`; Lemma 4 converts that to
//! "every obstacle with `mindist(o, q) ≤ max(‖p,S‖, ‖p,E‖)`". IOR therefore
//! alternates Dijkstra runs with obstacle loading until the bound stops
//! growing (Lemma 3 certifies the fix-point paths as exact).
//!
//! The graph — and the loading threshold in [`IorState`] — is shared across
//! all data points of one query, so the obstacle R-tree is traversed at most
//! once per query.
//!
//! Under [`crate::KernelMode::GoalDirected`] the Dijkstra runs are A*
//! searches keyed toward the query segment (`S` and `E` both lie on it, so
//! the heuristic is admissible for either target), expanding a corridor
//! between `p` and `q` instead of a full disk of radius `max(‖p,S‖,‖p,E‖)`.
//! With label continuation on, each retrieval round *reseeds* the previous
//! round's labels — only labels whose witness paths cross the newly loaded
//! obstacles are recomputed — and the converged search is left in the
//! workspace for CPLC to replay instead of re-running it from a cold heap.

use conn_geom::Segment;
use conn_vgraph::{DijkstraEngine, NodeId, VisGraph};

use crate::config::ConnConfig;
use crate::streams::QueryStreams;

/// Cross-point state: how far (in `mindist` to `q`) obstacles have been
/// loaded — the paper's "previous search distance d".
#[derive(Debug, Default, Clone, Copy)]
pub struct IorState {
    /// `mindist` to `q` up to which obstacles are fully loaded.
    pub loaded_bound: f64,
}

/// Shortest paths from `p` to both query endpoints after IOR converges.
#[derive(Debug, Clone, Copy)]
pub struct EndpointPaths {
    /// Obstructed distance from `p` to `S`.
    pub dist_s: f64,
    /// Obstructed distance from `p` to `E`.
    pub dist_e: f64,
}

/// Runs Algorithm 1 for the data point at `p_node`. On return the graph
/// holds every obstacle with `mindist(o, q) ≤ state.loaded_bound`, and the
/// returned endpoint distances are exact — or ∞ when an endpoint is
/// unreachable within `cap`. `dij` is the caller's reusable Dijkstra
/// scratch (re-prepared on every retrieval round).
///
/// `cap` (∞ when the caller has no bound) prunes the retrieval itself: a
/// value of `p` can only decide the result below the caller's incumbent
/// bound, and any obstructed path from `p` to `q` shorter than `cap`
/// touches only obstacles with `mindist(o, q) < cap` (the remaining path
/// from the touch point reaches `q`). The endpoint searches therefore run
/// with `cap` as their expansion bound, and when an endpoint is bounded
/// out the loop loads exactly the `mindist ≤ cap` obstacles and stops —
/// every value `< cap` computed afterwards is as exact as with the
/// uncapped retrieval, and everything it gave up on is territory the
/// incumbent already owns.
#[allow(clippy::too_many_arguments)]
pub fn ior<S: QueryStreams>(
    q: &Segment,
    g: &mut VisGraph,
    s_node: NodeId,
    e_node: NodeId,
    p_node: NodeId,
    streams: &mut S,
    state: &mut IorState,
    dij: &mut DijkstraEngine,
    cfg: &ConnConfig,
    cap: f64,
) -> EndpointPaths {
    let goal = cfg.kernel.goal(q);
    loop {
        dij.ensure_prepared(g, p_node, goal, cfg.label_continuation);
        if cap.is_finite() {
            dij.set_bound(cap);
        }
        let dist_s = dij.run_until_settled(g, s_node);
        let dist_e = dij.run_until_settled(g, e_node);
        let d_prime = dist_s.max(dist_e);

        if d_prime.is_infinite() {
            if cap.is_finite() {
                // Bounded out (or genuinely walled in — indistinguishable,
                // and equally irrelevant past the cap): make the loaded
                // set sub-cap complete, give the new corners one re-run,
                // then accept.
                if state.loaded_bound < cap {
                    let added = streams.load_obstacles_until(g, cap);
                    state.loaded_bound = cap;
                    if added > 0 {
                        continue;
                    }
                }
                return EndpointPaths { dist_s, dist_e };
            }
            // No path with the current obstacle set: with disjoint obstacles
            // this only happens transiently (or when p is genuinely walled
            // in) — widen one obstacle at a time until connectivity returns
            // or the source is exhausted.
            if streams.load_next_obstacle(g) == 0 {
                return EndpointPaths { dist_s, dist_e };
            }
            continue;
        }
        if d_prime > state.loaded_bound {
            state.loaded_bound = d_prime;
            if streams.load_obstacles_until(g, d_prime) > 0 {
                continue; // revalidate the paths against the new obstacles
            }
        }
        return EndpointPaths { dist_s, dist_e };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::TwoTreeStreams;
    use crate::types::DataPoint;
    use conn_geom::{Point, Rect};
    use conn_index::RStarTree;
    use conn_vgraph::NodeKind;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    fn run_ior(ppos: Point, obstacles: Vec<Rect>) -> (EndpointPaths, usize, f64) {
        let data = RStarTree::bulk_load(vec![DataPoint::new(0, ppos)], 4096);
        let obs = RStarTree::bulk_load(obstacles, 4096);
        let q = q();
        let mut streams = TwoTreeStreams::new(&data, &obs, &q);
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(q.a, NodeKind::Endpoint);
        let e = g.add_point(q.b, NodeKind::Endpoint);
        let p = g.add_point(ppos, NodeKind::DataPoint);
        let mut state = IorState::default();
        let mut dij = DijkstraEngine::default();
        let cfg = ConnConfig::default();
        let paths = ior(
            &q,
            &mut g,
            s,
            e,
            p,
            &mut streams,
            &mut state,
            &mut dij,
            &cfg,
            f64::INFINITY,
        );
        (paths, streams.obstacles_loaded(), state.loaded_bound)
    }

    #[test]
    fn free_space_loads_nothing_relevant() {
        let (paths, loaded, bound) = run_ior(Point::new(50.0, 30.0), vec![]);
        assert!((paths.dist_s - Point::new(50.0, 30.0).dist(Point::new(0.0, 0.0))).abs() < 1e-9);
        assert!((paths.dist_e - Point::new(50.0, 30.0).dist(Point::new(100.0, 0.0))).abs() < 1e-9);
        assert_eq!(loaded, 0);
        assert!(bound > 0.0);
    }

    #[test]
    fn distant_obstacles_stay_unloaded() {
        let (paths, loaded, _) = run_ior(
            Point::new(50.0, 30.0),
            vec![Rect::new(5000.0, 5000.0, 5100.0, 5100.0)],
        );
        assert!(paths.dist_s.is_finite());
        assert_eq!(loaded, 0, "far obstacle must not be retrieved");
    }

    #[test]
    fn blocking_obstacle_is_loaded_and_detour_found() {
        // wall between p and the whole segment
        let wall = Rect::new(-20.0, 15.0, 120.0, 25.0);
        let ppos = Point::new(50.0, 40.0);
        let (paths, loaded, _) = run_ior(ppos, vec![wall]);
        assert_eq!(loaded, 1);
        // detour via a wall end: (-20,15)/(120,15) corners etc.
        let direct_s = ppos.dist(Point::new(0.0, 0.0));
        assert!(paths.dist_s > direct_s + 1.0, "no detour: {}", paths.dist_s);
        // sanity: detour via left end
        let via_left = ppos.dist(Point::new(-20.0, 25.0))
            + Point::new(-20.0, 25.0).dist(Point::new(-20.0, 15.0))
            + Point::new(-20.0, 15.0).dist(Point::new(0.0, 0.0));
        assert!(paths.dist_s <= via_left + 1e-9);
    }

    /// A finite cap stops both the endpoint searches and the obstacle
    /// loading: obstacles beyond the cap's mindist stay unloaded, and a
    /// bounded-out endpoint reports ∞ instead of dragging in the world.
    #[test]
    fn capped_retrieval_stays_local() {
        let far_wall = Rect::new(-2000.0, 500.0, 2200.0, 520.0); // mindist 500
        let data = RStarTree::bulk_load(vec![DataPoint::new(0, Point::new(50.0, 30.0))], 4096);
        let obs = RStarTree::bulk_load(vec![far_wall], 4096);
        let q = q();
        let mut streams = TwoTreeStreams::new(&data, &obs, &q);
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(q.a, NodeKind::Endpoint);
        let e = g.add_point(q.b, NodeKind::Endpoint);
        let p = g.add_point(Point::new(50.0, 30.0), NodeKind::DataPoint);
        let mut state = IorState::default();
        let mut dij = DijkstraEngine::default();
        let cfg = ConnConfig::default();
        let paths = ior(
            &q,
            &mut g,
            s,
            e,
            p,
            &mut streams,
            &mut state,
            &mut dij,
            &cfg,
            200.0,
        );
        // within the cap everything is exact and the far wall stays out
        assert!((paths.dist_s - Point::new(50.0, 30.0).dist(q.a)).abs() < 1e-9);
        assert_eq!(streams.obstacles_loaded(), 0);

        // a cap below the true endpoint distances bounds the search out
        // without loading past the cap either
        let p2 = g.add_point(Point::new(50.0, 2000.0), NodeKind::DataPoint);
        let paths = ior(
            &q,
            &mut g,
            s,
            e,
            p2,
            &mut streams,
            &mut state,
            &mut dij,
            &cfg,
            100.0,
        );
        assert!(paths.dist_s.is_infinite() && paths.dist_e.is_infinite());
        assert_eq!(streams.obstacles_loaded(), 0, "mindist 500 > cap 100");
    }

    #[test]
    fn cascading_retrieval_until_fixpoint() {
        // first wall forces a detour whose length pulls in a second wall
        let walls = vec![
            Rect::new(30.0, 10.0, 70.0, 20.0), // near q, close mindist
            Rect::new(10.0, 30.0, 90.0, 40.0), // farther from q, blocks detour
        ];
        let ppos = Point::new(50.0, 60.0);
        let (paths, loaded, bound) = run_ior(ppos, walls);
        assert_eq!(loaded, 2, "both walls affect the shortest paths");
        assert!(paths.dist_s.is_finite() && paths.dist_e.is_finite());
        assert!(bound >= paths.dist_s.max(paths.dist_e) - 1e-9);
    }

    #[test]
    fn shared_state_avoids_reloading() {
        let data = RStarTree::bulk_load(
            vec![
                DataPoint::new(0, Point::new(50.0, 30.0)),
                DataPoint::new(1, Point::new(55.0, 28.0)),
            ],
            4096,
        );
        let obs = RStarTree::bulk_load(vec![Rect::new(40.0, 10.0, 60.0, 20.0)], 4096);
        let q = q();
        let mut streams = TwoTreeStreams::new(&data, &obs, &q);
        let mut g = VisGraph::new(50.0);
        let s = g.add_point(q.a, NodeKind::Endpoint);
        let e = g.add_point(q.b, NodeKind::Endpoint);
        let mut state = IorState::default();
        let mut dij = DijkstraEngine::default();
        let cfg = ConnConfig::default();

        let p0 = g.add_point(Point::new(50.0, 30.0), NodeKind::DataPoint);
        ior(
            &q,
            &mut g,
            s,
            e,
            p0,
            &mut streams,
            &mut state,
            &mut dij,
            &cfg,
            f64::INFINITY,
        );
        g.remove_node(p0);
        let bound_after_first = state.loaded_bound;
        let loaded_after_first = streams.obstacles_loaded();

        let p1 = g.add_point(Point::new(55.0, 28.0), NodeKind::DataPoint);
        ior(
            &q,
            &mut g,
            s,
            e,
            p1,
            &mut streams,
            &mut state,
            &mut dij,
            &cfg,
            f64::INFINITY,
        );
        g.remove_node(p1);
        // second, similar point: bound may grow slightly but nothing new to load
        assert_eq!(streams.obstacles_loaded(), loaded_after_first);
        assert!(state.loaded_bound >= bound_after_first);
    }
}
