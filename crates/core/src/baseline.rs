//! Reference baselines.
//!
//! * [`brute_force_oknn`] — exact obstructed kNN at a single location by
//!   exhaustive Dijkstra over the full visibility graph. Ground truth for
//!   every correctness test.
//! * [`sampled_conn`] — the naive CONN strategy the paper's introduction
//!   rules out: sample `m` locations along `q` and run an ONN query at each.
//!   Used as the accuracy/efficiency baseline and in tests (the exact
//!   algorithm must agree with it at every sample away from split points).

use conn_geom::{Point, Rect, Segment};
use conn_vgraph::{DijkstraEngine, NodeId, NodeKind, VisGraph};

use crate::types::DataPoint;

/// Exact obstructed k-nearest-neighbors of the location `s`, by full-graph
/// Dijkstra. Returns up to `k` `(point, obstructed distance)` pairs in
/// ascending distance; unreachable points are excluded.
pub fn brute_force_oknn(
    points: &[DataPoint],
    obstacles: &[Rect],
    s: Point,
    k: usize,
) -> Vec<(DataPoint, f64)> {
    let mut g = full_graph(obstacles);
    let source = g.add_point(s, NodeKind::DataPoint);
    let ids: Vec<(DataPoint, NodeId)> = points
        .iter()
        .map(|p| (*p, g.add_point(p.pos, NodeKind::DataPoint)))
        .collect();
    let mut dij = DijkstraEngine::new(&g, source);
    dij.run_all(&mut g);
    let mut out: Vec<(DataPoint, f64)> = ids
        .into_iter()
        .filter_map(|(p, n)| dij.settled_dist(n).map(|d| (p, d)))
        .filter(|(_, d)| d.is_finite())
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
    out.truncate(k);
    out
}

/// One sample of the naive baseline: parameter, and the kNN set there.
#[derive(Debug, Clone)]
pub struct ConnSample {
    /// Sample parameter on the query segment.
    pub t: f64,
    /// The k nearest data points at `t`, ascending by obstructed distance.
    pub neighbors: Vec<(DataPoint, f64)>,
}

/// The sampling-based CONN baseline: exact OkNN at `samples` evenly spaced
/// parameters along `q` (endpoints included).
///
/// Builds the full visibility graph once and runs one Dijkstra per sample —
/// still exact per sample, but with unbounded error *between* samples,
/// which is precisely the drawback (paper §2.2) that motivates the exact
/// algorithm.
pub fn sampled_conn(
    points: &[DataPoint],
    obstacles: &[Rect],
    q: &Segment,
    samples: usize,
    k: usize,
) -> Vec<ConnSample> {
    assert!(samples >= 2, "need at least the two endpoints");
    let mut g = full_graph(obstacles);
    let ids: Vec<(DataPoint, NodeId)> = points
        .iter()
        .map(|p| (*p, g.add_point(p.pos, NodeKind::DataPoint)))
        .collect();
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        let t = q.len() * (i as f64) / ((samples - 1) as f64);
        let source = g.add_point(q.at(t), NodeKind::DataPoint);
        let mut dij = DijkstraEngine::new(&g, source);
        dij.run_all(&mut g);
        let mut neighbors: Vec<(DataPoint, f64)> = ids
            .iter()
            .filter_map(|(p, n)| dij.settled_dist(*n).map(|d| (*p, d)))
            .filter(|(_, d)| d.is_finite())
            .collect();
        neighbors.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        neighbors.truncate(k);
        g.remove_node(source);
        out.push(ConnSample { t, neighbors });
    }
    out
}

fn full_graph(obstacles: &[Rect]) -> VisGraph {
    let cell = obstacles
        .iter()
        .map(|r| r.width().max(r.height()))
        .fold(0.0f64, f64::max)
        .max(20.0);
    let mut g = VisGraph::new(cell);
    for r in obstacles {
        g.add_obstacle(*r);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<DataPoint> {
        vec![
            DataPoint::new(0, Point::new(10.0, 20.0)),
            DataPoint::new(1, Point::new(50.0, 40.0)),
            DataPoint::new(2, Point::new(90.0, 10.0)),
        ]
    }

    #[test]
    fn brute_force_free_space_is_euclid_knn() {
        let s = Point::new(0.0, 0.0);
        let got = brute_force_oknn(&pts(), &[], s, 3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0.id, 0);
        assert!((got[0].1 - s.dist(Point::new(10.0, 20.0))).abs() < 1e-9);
        assert!(got[0].1 <= got[1].1 && got[1].1 <= got[2].1);
    }

    #[test]
    fn obstacle_reorders_neighbors() {
        let s = Point::new(0.0, 0.0);
        // wall isolates point 0 behind a long detour
        let wall = Rect::new(-5.0, 10.0, 30.0, 15.0);
        let free = brute_force_oknn(&pts(), &[], s, 1);
        let blocked = brute_force_oknn(&pts(), &[wall], s, 1);
        assert_eq!(free[0].0.id, 0);
        assert!(blocked[0].1 >= free[0].1);
    }

    #[test]
    fn unreachable_points_are_dropped() {
        let boxed = vec![
            Rect::new(40.0, 30.0, 60.0, 35.0),
            Rect::new(40.0, 45.0, 60.0, 50.0),
            Rect::new(40.0, 30.0, 45.0, 50.0),
            Rect::new(55.0, 30.0, 60.0, 50.0),
        ];
        let inside = vec![DataPoint::new(9, Point::new(50.0, 40.0))];
        let got = brute_force_oknn(&inside, &boxed, Point::new(0.0, 0.0), 1);
        assert!(got.is_empty());
    }

    #[test]
    fn sampled_conn_spans_the_segment() {
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let samples = sampled_conn(&pts(), &[], &q, 11, 2);
        assert_eq!(samples.len(), 11);
        assert_eq!(samples[0].t, 0.0);
        assert!((samples[10].t - 100.0).abs() < 1e-9);
        for s in &samples {
            assert_eq!(s.neighbors.len(), 2);
            assert!(s.neighbors[0].1 <= s.neighbors[1].1);
        }
        // the left end's NN is point 0, the right end's point 2
        assert_eq!(samples[0].neighbors[0].0.id, 0);
        assert_eq!(samples[10].neighbors[0].0.id, 2);
    }
}
