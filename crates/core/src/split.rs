//! Quadratic-based split-point computation (paper §3, Theorem 1, Lemma 1).
//!
//! Given two control-point distance functions over an interval of `q`,
//!
//! ```text
//! F(t) = A + dist(a, q(t))        (incumbent)
//! G(t) = B + dist(b, q(t))        (challenger)
//! ```
//!
//! their crossings satisfy `dist(a, q(t)) − dist(b, q(t)) = B − A`, the
//! paper's Equation (1). Squaring twice yields a quadratic in `t` with at
//! most two real roots (Theorem 1) — the *split points*. Because squaring
//! introduces spurious roots and the paper's Cases 1–4 depend on a
//! coordinate frame with many degenerate special cases, this implementation
//! solves the same quadratic and then (a) verifies every candidate root
//! against the unsquared equation and (b) classifies the elementary
//! sub-intervals by midpoint evaluation. The output is therefore exactly the
//! Case 1–4 partition, computed robustly.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use conn_geom::{solve_quadratic, Interval, Segment, EPS};

use crate::dist::ControlPoint;

/// Which function wins (is the smaller) on a sub-interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// The incumbent `F` keeps the sub-interval (ties favour it).
    Incumbent,
    /// The challenger `G` takes the sub-interval.
    Challenger,
}

/// Partition of `iv` into maximal sub-intervals with a constant winner.
///
/// `f` is the incumbent and wins ties. The pieces are returned in ascending
/// order and exactly cover `iv`.
pub fn split(
    q: &Segment,
    f: &ControlPoint,
    g: &ControlPoint,
    iv: Interval,
) -> Vec<(Interval, Winner)> {
    debug_assert!(!iv.is_empty());
    let mut cuts = crossing_params(q, f, g, &iv);
    cuts.push(iv.lo);
    cuts.push(iv.hi);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() <= EPS);

    let mut out: Vec<(Interval, Winner)> = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        let piece = Interval::new(w[0], w[1]);
        if piece.is_empty() {
            continue;
        }
        let mid = piece.midpoint();
        let winner = if f.value(q, mid) <= g.value(q, mid) + EPS {
            Winner::Incumbent
        } else {
            Winner::Challenger
        };
        match out.last_mut() {
            Some((prev, pw)) if *pw == winner => prev.hi = piece.hi,
            _ => out.push((piece, winner)),
        }
    }
    if out.is_empty() {
        // iv was a sliver below EPS resolution; incumbent keeps it
        out.push((iv, Winner::Incumbent));
    } else {
        // make the partition exactly cover iv
        // Infallible: this is the non-empty branch of the check above.
        // lint:allow(no-panic-in-query-path)
        out.first_mut().unwrap().0.lo = iv.lo;
        // lint:allow(no-panic-in-query-path)
        out.last_mut().unwrap().0.hi = iv.hi;
    }
    out
}

/// The candidate split parameters inside `iv` where `F(t) = G(t)`
/// (paper Equation 1, at most two — Theorem 1).
pub fn crossing_params(q: &Segment, f: &ControlPoint, g: &ControlPoint, iv: &Interval) -> Vec<f64> {
    // frame coordinates: x along q (arclength), y perpendicular
    let (ax, ay) = q.to_frame(f.pos);
    let (bx, by) = q.to_frame(g.pos);
    let d = g.base - f.base; // solve dist(a,·) − dist(b,·) = d

    // L(t) = dist²(a) − dist²(b) is linear: alpha·t + beta
    let alpha = 2.0 * (bx - ax);
    let beta = ax * ax + ay * ay - bx * bx - by * by;

    let mut candidates: Vec<f64> = Vec::with_capacity(2);
    let scale = 1.0 + iv.hi.abs().max(f.base).max(g.base);
    if d.abs() <= EPS {
        // dist(a,·) = dist(b,·): the perpendicular-bisector crossing, linear
        if alpha.abs() > EPS {
            candidates.push(-beta / alpha);
        }
    } else {
        // (L − d²)² = 4 d² · dist²(b,·)
        let c2 = alpha * alpha - 4.0 * d * d;
        let c1 = 2.0 * alpha * (beta - d * d) + 8.0 * d * d * bx;
        let c0 = (beta - d * d) * (beta - d * d) - 4.0 * d * d * (bx * bx + by * by);
        candidates.extend(solve_quadratic(c2, c1, c0));
    }

    // verify against the unsquared equation and clamp into the interval
    let tol = 1e-7 * scale;
    let mut out = Vec::with_capacity(2);
    for t in candidates {
        if !t.is_finite() || t < iv.lo - EPS || t > iv.hi + EPS {
            continue;
        }
        let t = t.clamp(iv.lo, iv.hi);
        let lhs = f.pos.dist(q.at(t)) - g.pos.dist(q.at(t));
        if (lhs - d).abs() <= tol {
            out.push(t);
        }
    }
    out
}

/// Lemma 1 fast path: the incumbent certainly wins everywhere on `iv` when
/// it wins at both endpoints **and** its control point lies no farther from
/// the query line than the challenger's.
///
/// (The perpendicular-distance condition makes `G − F` quasi-concave on the
/// line, so its minimum over the interval is at an endpoint — the paper's
/// Figure 4(b) shape argument.)
pub fn lemma1_incumbent_wins(
    q: &Segment,
    f: &ControlPoint,
    g: &ControlPoint,
    iv: &Interval,
) -> bool {
    let (_, ay) = q.to_frame(f.pos);
    let (_, by) = q.to_frame(g.pos);
    ay.abs() <= by.abs() + EPS
        && f.value(q, iv.lo) <= g.value(q, iv.lo) + EPS
        && f.value(q, iv.hi) <= g.value(q, iv.hi) + EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    fn check_partition(pieces: &[(Interval, Winner)], iv: &Interval) {
        assert!((pieces.first().unwrap().0.lo - iv.lo).abs() < 1e-9);
        assert!((pieces.last().unwrap().0.hi - iv.hi).abs() < 1e-9);
        for w in pieces.windows(2) {
            assert!((w[0].0.hi - w[1].0.lo).abs() < 1e-9, "gap in partition");
            assert_ne!(w[0].1, w[1].1, "unmerged adjacent pieces");
        }
    }

    /// Case 3 analogue: equal bases, symmetric points → one split at the
    /// bisector.
    #[test]
    fn single_split_at_perpendicular_bisector() {
        let f = ControlPoint::new(Point::new(20.0, 10.0), 0.0);
        let g = ControlPoint::new(Point::new(80.0, 10.0), 0.0);
        let iv = Interval::new(0.0, 100.0);
        let pieces = split(&q(), &f, &g, iv);
        check_partition(&pieces, &iv);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].1, Winner::Incumbent);
        assert_eq!(pieces[1].1, Winner::Challenger);
        assert!((pieces[0].0.hi - 50.0).abs() < 1e-6);
    }

    /// Case 2 analogue: challenger with head start loses only a middle
    /// pocket around the incumbent's projection → two split points.
    #[test]
    fn two_splits_center_pocket() {
        // incumbent very close to the line at the centre
        let f = ControlPoint::new(Point::new(50.0, 5.0), 0.0);
        // challenger far to the side but with smaller total cost at the ends
        let g = ControlPoint::new(Point::new(50.0, 40.0), -0.0);
        // give the challenger a base *discount* is impossible (bases >= 0),
        // instead pull it closer in base: f pays a detour premium
        let f = ControlPoint::new(f.pos, 20.0);
        let iv = Interval::new(0.0, 100.0);
        let pieces = split(&q(), &f, &g, iv);
        check_partition(&pieces, &iv);
        // F(50) = 25 < G(50) = 40; F(0) = 20+√(2500+25) ≈ 70.2 > G(0) ≈ 64
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].1, Winner::Challenger);
        assert_eq!(pieces[1].1, Winner::Incumbent);
        assert_eq!(pieces[2].1, Winner::Challenger);
    }

    /// Case 1 analogue: challenger dominates everywhere.
    #[test]
    fn challenger_sweeps() {
        let f = ControlPoint::new(Point::new(50.0, 80.0), 100.0);
        let g = ControlPoint::new(Point::new(50.0, 10.0), 0.0);
        let iv = Interval::new(0.0, 100.0);
        let pieces = split(&q(), &f, &g, iv);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].1, Winner::Challenger);
    }

    /// Case 4 analogue: incumbent dominates everywhere; ties go incumbent.
    #[test]
    fn incumbent_holds_and_wins_ties() {
        let f = ControlPoint::new(Point::new(50.0, 10.0), 0.0);
        let g = ControlPoint::new(Point::new(50.0, 10.0), 0.0); // identical
        let iv = Interval::new(0.0, 100.0);
        let pieces = split(&q(), &f, &g, iv);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].1, Winner::Incumbent);
    }

    #[test]
    fn split_agrees_with_dense_sampling() {
        // a grid of configurations, validated pointwise
        let configs = [
            ((10.0, 5.0, 0.0), (90.0, 15.0, 0.0)),
            ((30.0, 25.0, 12.0), (60.0, 8.0, 3.0)),
            ((50.0, 1.0, 40.0), (50.0, 60.0, 0.0)),
            ((0.0, 10.0, 5.0), (100.0, 10.0, 5.0)),
            ((20.0, -30.0, 2.0), (80.0, 30.0, 2.0)), // opposite sides
        ];
        let iv = Interval::new(0.0, 100.0);
        for ((fx, fy, fb), (gx, gy, gb)) in configs {
            let f = ControlPoint::new(Point::new(fx, fy), fb);
            let g = ControlPoint::new(Point::new(gx, gy), gb);
            let pieces = split(&q(), &f, &g, iv);
            check_partition(&pieces, &iv);
            for i in 0..=200 {
                let t = 100.0 * (i as f64) / 200.0;
                let fv = f.value(&q(), t);
                let gv = g.value(&q(), t);
                if (fv - gv).abs() < 1e-4 {
                    continue; // too close to a crossing for a strict check
                }
                let piece = pieces.iter().find(|(p, _)| p.contains(t)).unwrap();
                let expect = if fv < gv {
                    Winner::Incumbent
                } else {
                    Winner::Challenger
                };
                // at piece boundaries containment is ambiguous within EPS
                let near_cut = (t - piece.0.lo).abs() < 1e-4 || (t - piece.0.hi).abs() < 1e-4;
                if !near_cut {
                    assert_eq!(piece.1, expect, "t={t} f={fv} g={gv}");
                }
            }
        }
    }

    #[test]
    fn crossing_params_match_equation() {
        let f = ControlPoint::new(Point::new(20.0, 10.0), 4.0);
        let g = ControlPoint::new(Point::new(70.0, 25.0), 1.0);
        let iv = Interval::new(0.0, 100.0);
        for t in crossing_params(&q(), &f, &g, &iv) {
            assert!((f.value(&q(), t) - g.value(&q(), t)).abs() < 1e-6);
        }
    }

    #[test]
    fn at_most_two_crossings_theorem1() {
        // randomized-ish sweep over configurations
        let mut k = 0.37_f64;
        for _ in 0..500 {
            k = (k * 997.13).fract();
            let f = ControlPoint::new(Point::new(k * 100.0, 50.0 * (k - 0.5)), k * 30.0);
            let g = ControlPoint::new(
                Point::new((1.0 - k) * 100.0, 35.0 * (0.3 - k)),
                (1.0 - k) * 20.0,
            );
            let n = crossing_params(&q(), &f, &g, &Interval::new(0.0, 100.0)).len();
            assert!(n <= 2, "got {n} crossings");
        }
    }

    #[test]
    fn lemma1_shortcut_never_contradicts_split() {
        let mut k = 0.11_f64;
        let iv = Interval::new(0.0, 100.0);
        for _ in 0..500 {
            k = (k * 613.71).fract();
            let f = ControlPoint::new(Point::new(k * 100.0, 20.0 * k), k * 10.0);
            let g = ControlPoint::new(
                Point::new(100.0 - 90.0 * k, 30.0 * k + 5.0),
                15.0 * (1.0 - k),
            );
            if lemma1_incumbent_wins(&q(), &f, &g, &iv) {
                let pieces = split(&q(), &f, &g, iv);
                assert!(
                    pieces.iter().all(|(_, w)| *w == Winner::Incumbent),
                    "lemma 1 unsound for f={f:?} g={g:?}: {pieces:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_vertical_and_parallel_configs() {
        // [u,v] vertical to q (a = 0 in the paper's frame)
        let f = ControlPoint::new(Point::new(50.0, 10.0), 0.0);
        let g = ControlPoint::new(Point::new(50.0, 30.0), 0.0);
        let iv = Interval::new(0.0, 100.0);
        let pieces = split(&q(), &f, &g, iv);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].1, Winner::Incumbent);
        // [u,v] parallel to q with equal offsets (b = c)
        let f = ControlPoint::new(Point::new(30.0, 20.0), 0.0);
        let g = ControlPoint::new(Point::new(70.0, 20.0), 0.0);
        let pieces = split(&q(), &f, &g, iv);
        check_partition(&pieces, &iv);
        assert_eq!(pieces.len(), 2);
        assert!((pieces[0].0.hi - 50.0).abs() < 1e-6);
    }
}
