//! Typed errors of the query layer.
//!
//! Historically the crate signalled misuse with panics (`assert!` inside
//! the family internals) and invariant violations with `Result<(), String>`.
//! The typed front door ([`crate::Query`] / [`crate::ConnService`]) reports
//! both through this one [`enum@Error`] instead: malformed requests are
//! rejected by [`crate::QueryBuilder::build`] *before* they reach an algorithm,
//! and the `check_cover` validators return structured cover violations.

use std::fmt;

/// Everything the query layer can report going wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The request is malformed and was rejected up front: a NaN/infinite
    /// coordinate, a degenerate (zero-length) query segment, `k = 0`, a
    /// negative radius or join distance, or an empty join set.
    InvalidQuery(String),
    /// A result list violates its coverage invariant (gaps, zero-width
    /// tuples, or a cover that does not end at the query length).
    CoverViolation(String),
    /// The admission queue is full: backpressure rejected the submission
    /// before it reached the service. The request itself is well-formed —
    /// resubmitting after the queue drains is expected to succeed.
    Overloaded(String),
    /// A mutation was attempted on a [`crate::Scene`] that does not own
    /// its trees (it borrows or shares them), so repairing them in place
    /// is impossible without silently cloning caller-visible state. Build
    /// the scene with an owning constructor ([`crate::Scene::new`],
    /// [`crate::Scene::from_trees`], …) to mutate it.
    FrozenScene(String),
}

impl Error {
    /// Builds an [`Error::InvalidQuery`].
    pub fn invalid_query(reason: impl Into<String>) -> Self {
        Error::InvalidQuery(reason.into())
    }

    /// Builds an [`Error::CoverViolation`].
    pub fn cover_violation(reason: impl Into<String>) -> Self {
        Error::CoverViolation(reason.into())
    }

    /// Builds an [`Error::Overloaded`].
    pub fn overloaded(reason: impl Into<String>) -> Self {
        Error::Overloaded(reason.into())
    }

    /// Builds an [`Error::FrozenScene`].
    pub fn frozen_scene(reason: impl Into<String>) -> Self {
        Error::FrozenScene(reason.into())
    }

    /// The human-readable reason, whatever the variant.
    pub fn reason(&self) -> &str {
        match self {
            Error::InvalidQuery(r)
            | Error::CoverViolation(r)
            | Error::Overloaded(r)
            | Error::FrozenScene(r) => r,
        }
    }

    /// True for [`Error::InvalidQuery`].
    pub fn is_invalid_query(&self) -> bool {
        matches!(self, Error::InvalidQuery(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidQuery(r) => write!(f, "invalid query: {r}"),
            Error::CoverViolation(r) => write!(f, "cover violation: {r}"),
            Error::Overloaded(r) => write!(f, "overloaded: {r}"),
            Error::FrozenScene(r) => write!(f, "frozen scene: {r}"),
        }
    }
}

impl std::error::Error for Error {}

/// Shorthand result type of the query layer.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_reason() {
        let e = Error::invalid_query("k must be at least 1");
        assert!(e.is_invalid_query());
        assert_eq!(e.reason(), "k must be at least 1");
        assert_eq!(e.to_string(), "invalid query: k must be at least 1");
        let c = Error::cover_violation("gap at 3");
        assert!(!c.is_invalid_query());
        assert_eq!(c.to_string(), "cover violation: gap at 3");
        let fz = Error::frozen_scene("scene borrows its trees");
        assert_eq!(fz.reason(), "scene borrows its trees");
        assert_eq!(fz.to_string(), "frozen scene: scene borrows its trees");
    }
}
