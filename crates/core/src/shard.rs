//! Spatial tiling of a scene into overlapping shards (serving layer).
//!
//! A [`ShardSet`] cuts the scene's bounding box into an `nx × ny` grid of
//! *core* tiles and indexes each tile's neighborhood — the core expanded by
//! a `margin` on every side, the shard's **coverage** rect — in its own
//! pair of R\*-trees. Shards overlap by construction, so a query landing
//! near a tile boundary still sees everything within `margin` of it.
//!
//! ## The locality certificate
//!
//! A shard answer equals the full-scene answer whenever the query's
//! geometry, expanded by the largest reported obstructed distance `dmax`,
//! fits inside the shard's coverage rect ([`Shard::certifies`]). The
//! argument: obstructed distance dominates Euclidean distance, so every
//! candidate the full scene could prefer lies within `dmax` of the query
//! anchor — inside coverage, hence inside the shard's data tree. Any
//! shortest path of length ≤ `dmax` stays within `dmax` of its query-side
//! endpoint, so it never leaves coverage — where the shard holds *every*
//! obstacle of the full scene (obstacles are assigned by coverage
//! intersection). Shard paths are therefore valid full-scene paths and
//! vice versa, and the distances coincide.
//!
//! When the certificate fails the shard attempt is *discarded* and the
//! query re-runs against the full scene — never min-merged: a shard is an
//! obstacle *subset*, so its distances can underestimate, and taking the
//! minimum across shards would prefer exactly the underestimates. The
//! certificate-or-fallback rule is counted per query in
//! [`crate::ReuseCounters::shard_local`] /
//! [`crate::ReuseCounters::shard_merges`].

use conn_geom::Rect;
use conn_index::{RStarTree, DEFAULT_PAGE_SIZE};

use crate::error::Error;
use crate::service::Scene;
use crate::types::DataPoint;

/// Tiling parameters of a sharded service: grid dimensions and the
/// coverage margin every tile is expanded by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    nx: usize,
    ny: usize,
    margin: f64,
}

impl ShardSpec {
    /// An `nx × ny` grid with coverage `margin`. Rejects empty grids and
    /// non-finite or negative margins.
    pub fn new(nx: usize, ny: usize, margin: f64) -> Result<Self, Error> {
        if nx == 0 || ny == 0 {
            return Err(Error::invalid_query("shard grid must be at least 1x1"));
        }
        if !margin.is_finite() || margin < 0.0 {
            return Err(Error::invalid_query(
                "shard margin must be finite and non-negative",
            ));
        }
        Ok(ShardSpec { nx, ny, margin })
    }

    /// Grid width (tiles along x).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (tiles along y).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Coverage margin every tile is expanded by.
    pub fn margin(&self) -> f64 {
        self.margin
    }
}

/// One tile of a [`ShardSet`]: the core rect it is responsible for, the
/// expanded coverage rect it indexed, and the R\*-trees over the scene
/// subset that falls inside coverage.
#[derive(Debug)]
pub struct Shard {
    core: Rect,
    coverage: Rect,
    data: RStarTree<DataPoint>,
    obstacles: RStarTree<Rect>,
}

impl Shard {
    /// The tile this shard is routed queries for.
    pub fn core(&self) -> &Rect {
        &self.core
    }

    /// The expanded rect this shard actually indexed.
    pub fn coverage(&self) -> &Rect {
        &self.coverage
    }

    /// The shard's data-point tree (points whose position lies in
    /// coverage).
    pub fn data_tree(&self) -> &RStarTree<DataPoint> {
        &self.data
    }

    /// The shard's obstacle tree (obstacles intersecting coverage).
    pub fn obstacle_tree(&self) -> &RStarTree<Rect> {
        &self.obstacles
    }

    /// The locality certificate: true when `anchor` (the query geometry's
    /// bounding box) expanded by `dmax` on every side fits inside this
    /// shard's coverage — the shard then provably holds every candidate
    /// and every obstacle any ≤ `dmax` path can touch, so the shard
    /// answer *is* the full-scene answer (see the module docs).
    pub fn certifies(&self, anchor: &Rect, dmax: f64) -> bool {
        dmax.is_finite()
            && anchor.min_x - dmax >= self.coverage.min_x
            && anchor.min_y - dmax >= self.coverage.min_y
            && anchor.max_x + dmax <= self.coverage.max_x
            && anchor.max_y + dmax <= self.coverage.max_y
    }
}

/// The full tiling of one scene epoch: every shard plus the routing grid.
/// Built once per published epoch and shared immutably by all readers.
#[derive(Debug)]
pub struct ShardSet {
    spec: ShardSpec,
    bounds: Rect,
    shards: Vec<Shard>,
}

impl ShardSet {
    /// Tiles `scene` per `spec`: the scene bounding box is cut into the
    /// grid, each tile indexes the points inside — and the obstacles
    /// intersecting — its margin-expanded coverage rect.
    pub fn build(scene: &Scene<'_>, spec: ShardSpec) -> Self {
        let bounds = scene_bounds(scene);
        let tile_w = bounds.width() / spec.nx as f64;
        let tile_h = bounds.height() / spec.ny as f64;
        let mut shards = Vec::with_capacity(spec.nx * spec.ny);
        for iy in 0..spec.ny {
            for ix in 0..spec.nx {
                let core = Rect::new(
                    bounds.min_x + tile_w * ix as f64,
                    bounds.min_y + tile_h * iy as f64,
                    bounds.min_x + tile_w * (ix + 1) as f64,
                    bounds.min_y + tile_h * (iy + 1) as f64,
                );
                let coverage = Rect::new(
                    core.min_x - spec.margin,
                    core.min_y - spec.margin,
                    core.max_x + spec.margin,
                    core.max_y + spec.margin,
                );
                let points: Vec<DataPoint> = scene
                    .data_tree()
                    .iter_items()
                    .filter(|p| coverage.contains(p.pos))
                    .copied()
                    .collect();
                let obstacles: Vec<Rect> = scene
                    .obstacle_tree()
                    .iter_items()
                    .filter(|o| o.intersects(&coverage))
                    .copied()
                    .collect();
                shards.push(Shard {
                    core,
                    coverage,
                    data: RStarTree::bulk_load(points, DEFAULT_PAGE_SIZE),
                    obstacles: RStarTree::bulk_load(obstacles, DEFAULT_PAGE_SIZE),
                });
            }
        }
        ShardSet {
            spec,
            bounds,
            shards,
        }
    }

    /// The tiling parameters this set was built with.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The scene bounding box the grid tiles.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// All shards, row-major.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Routes a query to the shard whose core tile contains the center of
    /// `anchor` (clamped to the grid, so anchors outside the scene bounds
    /// land in the nearest edge tile). `None` only for non-finite anchors.
    pub fn route(&self, anchor: &Rect) -> Option<&Shard> {
        let c = anchor.center();
        if !c.x.is_finite() || !c.y.is_finite() {
            return None;
        }
        let tile = |v: f64, lo: f64, extent: f64, n: usize| -> usize {
            if extent <= 0.0 {
                return 0;
            }
            let i = ((v - lo) / extent * n as f64).floor();
            (i.max(0.0) as usize).min(n - 1)
        };
        let ix = tile(c.x, self.bounds.min_x, self.bounds.width(), self.spec.nx);
        let iy = tile(c.y, self.bounds.min_y, self.bounds.height(), self.spec.ny);
        self.shards.get(iy * self.spec.nx + ix)
    }
}

/// The scene's bounding box: union of every data point and obstacle MBR.
/// Empty scenes get a degenerate unit box so the grid math stays finite.
fn scene_bounds(scene: &Scene<'_>) -> Rect {
    let mut acc: Option<Rect> = None;
    let mut grow = |r: Rect| {
        acc = Some(match acc.take() {
            Some(b) => b.union(&r),
            None => r,
        });
    };
    for p in scene.data_tree().iter_items() {
        grow(Rect::from_point(p.pos));
    }
    for o in scene.obstacle_tree().iter_items() {
        grow(*o);
    }
    acc.unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn scene() -> Scene<'static> {
        let points: Vec<DataPoint> = (0..40)
            .map(|i| {
                DataPoint::new(
                    i,
                    Point::new((i as f64 * 37.0) % 1000.0, (i as f64 * 91.0) % 1000.0),
                )
            })
            .collect();
        let obstacles = vec![
            Rect::new(100.0, 100.0, 180.0, 160.0),
            Rect::new(700.0, 650.0, 780.0, 720.0),
            Rect::new(480.0, 480.0, 520.0, 520.0),
        ];
        Scene::new(points, obstacles)
    }

    #[test]
    fn spec_rejects_degenerate_grids() {
        assert!(ShardSpec::new(0, 2, 10.0).is_err());
        assert!(ShardSpec::new(2, 2, -1.0).is_err());
        assert!(ShardSpec::new(2, 2, f64::NAN).is_err());
        assert!(ShardSpec::new(2, 2, 0.0).is_ok());
    }

    #[test]
    fn every_item_lands_in_some_shard_and_overlap_duplicates() {
        let s = scene();
        let set = ShardSet::build(&s, ShardSpec::new(2, 2, 150.0).unwrap());
        assert_eq!(set.shards().len(), 4);
        let total_points: usize = set.shards().iter().map(|sh| sh.data_tree().len()).sum();
        // every point is in at least its home shard; margin overlap makes
        // the shard total at least the scene total
        assert!(total_points >= s.num_points());
        let total_obs: usize = set.shards().iter().map(|sh| sh.obstacle_tree().len()).sum();
        assert!(total_obs >= s.num_obstacles());
    }

    #[test]
    fn routing_is_total_over_finite_anchors() {
        let s = scene();
        let set = ShardSet::build(&s, ShardSpec::new(3, 2, 50.0).unwrap());
        for (x, y) in [(0.0, 0.0), (999.0, 999.0), (-500.0, 2000.0), (500.0, 500.0)] {
            let anchor = Rect::from_point(Point::new(x, y));
            let shard = set.route(&anchor).expect("finite anchor routes");
            // clamped routing: the anchor center is inside (or clamped to)
            // the shard's core tile, never outside the grid
            assert!(shard.core().width() > 0.0);
        }
        let nan = Rect::from_point(Point::new(f64::NAN, 0.0));
        assert!(set.route(&nan).is_none());
    }

    #[test]
    fn certificate_matches_containment() {
        let s = scene();
        let set = ShardSet::build(&s, ShardSpec::new(2, 2, 200.0).unwrap());
        let anchor = Rect::from_point(Point::new(250.0, 250.0));
        let shard = set.route(&anchor).unwrap();
        // small expansion fits deep inside the expanded tile...
        assert!(shard.certifies(&anchor, 10.0));
        // ...but an expansion past the margin cannot be certified
        assert!(!shard.certifies(&anchor, 1e6));
        assert!(!shard.certifies(&anchor, f64::INFINITY));
    }
}
