//! Tunables for the CONN/COkNN search algorithms.

use conn_geom::Segment;
use conn_vgraph::{Goal, SweepMode, DEFAULT_GROWTH_MARGIN};

/// Which obstructed-distance kernel the query families run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Blind Dijkstra expansion (`h ≡ 0`): the paper's traversal *order*.
    /// Engine-level machinery that is heuristic-independent still applies
    /// under this mode — Lemma 7's `CPLMAX` acts as an expansion bound
    /// (keyed by plain `d`), and the radius-bounded adjacency caches
    /// follow from whatever bound is active — so `Blind` isolates the
    /// *goal heuristic* for comparison rather than reverting every
    /// engine optimization.
    Blind,
    /// Goal-directed A*: searches are keyed by `d + h` with an admissible
    /// Euclidean heuristic toward the query (segment for IOR/CPLC, point
    /// for odist), so pruning thresholds stop *expansion* instead of just
    /// filtering settled nodes. Results are identical to `Blind`.
    #[default]
    GoalDirected,
}

impl KernelMode {
    /// The heuristic the CONN/COkNN loop hands the Dijkstra engine for the
    /// query segment `q`.
    #[inline]
    pub fn goal(&self, q: &Segment) -> Goal {
        match self {
            KernelMode::Blind => Goal::None,
            KernelMode::GoalDirected => Goal::Segment(*q),
        }
    }

    /// The heuristic for a point-to-point search toward `target`.
    #[inline]
    pub fn point_goal(&self, target: conn_geom::Point) -> Goal {
        match self {
            KernelMode::Blind => Goal::None,
            KernelMode::GoalDirected => Goal::Point(target),
        }
    }
}

/// Configuration of the search pipeline.
///
/// The three lemma switches exist for the ablation experiments (DESIGN.md
/// A1); production use keeps everything on. All switches preserve
/// correctness — they only trade pruning work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnConfig {
    /// Lemma 1 endpoint shortcut in RLU/CPLC: skip the quadratic when the
    /// incumbent wins both interval endpoints and sits closer to the query
    /// line than the challenger.
    pub use_lemma1: bool,
    /// Lemma 6 triangle refinement of candidate control-point regions.
    pub use_lemma6: bool,
    /// Lemma 7 early termination of the CPLC graph traversal.
    pub use_lemma7: bool,
    /// Strict refinement loop (DESIGN.md §4): after CPLC, if a control-point
    /// value exceeds the obstacle-loading threshold, load further obstacles
    /// and recompute. Guarantees exactness in deep-shadow corner cases the
    /// paper's literal IOR bound does not cover. Off = the paper's literal
    /// algorithm.
    pub strict_refinement: bool,
    /// Spatial-hash cell size for the local visibility graph's obstacle
    /// index, in workspace units.
    pub vgraph_cell: f64,
    /// Which obstructed-distance kernel to run searches on.
    pub kernel: KernelMode,
    /// Warm label continuation: let CPLC replay the settled prefix of the
    /// IOR search it follows (same source, goal and graph), and let
    /// repeated searches across obstacle loads reseed from labels whose
    /// witness paths the new obstacles do not cross, instead of cold
    /// heaps. Results are identical either way.
    pub label_continuation: bool,
    /// Feed the result sink's Lemma 2 bound (`RLMAX`, or the k-th bound
    /// for COkNN) into CPLC as an extra expansion/refinement cap: control
    /// points whose best possible value exceeds it can never change the
    /// result, so their expansion — and the strict-refinement loads that
    /// would certify them — is skipped. Results are identical either way.
    pub use_rlu_bound: bool,
    /// Trajectory sessions only: seed each new leg's pruning bound from
    /// the previous leg's answer at the shared joint. The obstructed NN
    /// distance is 1-Lipschitz along an unblocked leg, so
    /// `d(joint) + leg_len` upper-bounds the final `RLMAX` of the leg
    /// before a single point is evaluated — capping the point stream and
    /// the early obstacle loads. Applied only when the leg is verified
    /// unblocked; answers are identical either way.
    pub seed_leg_bound: bool,
    /// When adjacency-cache builds use the rotational plane-sweep instead
    /// of per-candidate grid walks. Edge lists — and therefore results —
    /// are bit-identical in every mode; only the work to derive them
    /// changes (see `conn_vgraph::sweep`).
    pub sweep: SweepMode,
    /// Speculative radius-growth margin of bounded adjacency-cache builds:
    /// a request for radius `r` builds out to `r ×` this so the next
    /// slightly-larger request costs only the annulus. Values below `1.0`
    /// are clamped at the use site — any setting yields correct caches.
    pub growth_margin: f64,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            use_lemma1: true,
            use_lemma6: true,
            use_lemma7: true,
            strict_refinement: true,
            vgraph_cell: 50.0,
            kernel: KernelMode::GoalDirected,
            label_continuation: true,
            use_rlu_bound: true,
            seed_leg_bound: true,
            sweep: SweepMode::Auto,
            growth_margin: DEFAULT_GROWTH_MARGIN,
        }
    }
}

impl ConnConfig {
    /// The paper's literal algorithm: all pruning lemmas, blind Dijkstra,
    /// cold heaps, no strict refinement loop.
    pub fn paper() -> Self {
        ConnConfig {
            strict_refinement: false,
            kernel: KernelMode::Blind,
            label_continuation: false,
            use_rlu_bound: false,
            ..ConnConfig::default()
        }
    }

    /// All optional pruning off (ablation baseline).
    pub fn no_pruning() -> Self {
        ConnConfig {
            use_lemma1: false,
            use_lemma6: false,
            use_lemma7: false,
            ..ConnConfig::default()
        }
    }

    /// Applies this config's visibility-substrate tuning — sweep mode and
    /// speculative growth margin — to a graph a query family builds on.
    pub(crate) fn tune_graph(&self, g: &mut conn_vgraph::VisGraph) {
        g.set_sweep_mode(self.sweep);
        g.set_growth_margin(self.growth_margin);
    }

    /// A fresh visibility graph sized and tuned by this config.
    pub(crate) fn new_graph(&self) -> conn_vgraph::VisGraph {
        let mut g = conn_vgraph::VisGraph::new(self.vgraph_cell);
        self.tune_graph(&mut g);
        g
    }

    /// The pre-goal-directed kernel on otherwise default settings: blind
    /// Dijkstra, no label continuation, no RLU expansion cap. This is the
    /// baseline the `BENCH_conn.json` speedup and the `odist_kernel` bench
    /// measure the goal-directed kernel against. Heuristic-independent
    /// engine machinery (Lemma 7 as an expansion stopper, radius-bounded
    /// adjacency caches) stays on — see [`KernelMode::Blind`] — so the
    /// recorded speedup isolates heuristic + continuation + RLU capping
    /// and *understates* the distance to the original literal traversal.
    pub fn baseline_kernel() -> Self {
        ConnConfig {
            kernel: KernelMode::Blind,
            label_continuation: false,
            use_rlu_bound: false,
            ..ConnConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = ConnConfig::default();
        assert!(c.use_lemma1 && c.use_lemma6 && c.use_lemma7 && c.strict_refinement);
        assert!(c.vgraph_cell > 0.0);
        assert_eq!(c.kernel, KernelMode::GoalDirected);
        assert!(c.label_continuation && c.use_rlu_bound);
        assert!(c.seed_leg_bound);
        assert_eq!(c.sweep, SweepMode::Auto);
        assert!((c.growth_margin - DEFAULT_GROWTH_MARGIN).abs() < 1e-12);
    }

    #[test]
    fn presets_differ_as_documented() {
        assert!(!ConnConfig::paper().strict_refinement);
        assert!(ConnConfig::paper().use_lemma7);
        assert_eq!(ConnConfig::paper().kernel, KernelMode::Blind);
        let np = ConnConfig::no_pruning();
        assert!(!np.use_lemma1 && !np.use_lemma6 && !np.use_lemma7);
        assert!(np.strict_refinement);
        let base = ConnConfig::baseline_kernel();
        assert_eq!(base.kernel, KernelMode::Blind);
        assert!(!base.label_continuation && !base.use_rlu_bound);
        assert!(base.strict_refinement, "baseline differs only in kernel");
    }

    #[test]
    fn kernel_goals_match_mode() {
        use conn_geom::{Point, Segment};
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(KernelMode::Blind.goal(&q), conn_vgraph::Goal::None);
        assert_eq!(
            KernelMode::GoalDirected.goal(&q),
            conn_vgraph::Goal::Segment(q)
        );
        let t = Point::new(3.0, 4.0);
        assert_eq!(
            KernelMode::GoalDirected.point_goal(t),
            conn_vgraph::Goal::Point(t)
        );
        assert_eq!(KernelMode::Blind.point_goal(t), conn_vgraph::Goal::None);
    }
}
