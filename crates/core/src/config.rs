//! Tunables for the CONN/COkNN search algorithms.

/// Configuration of the search pipeline.
///
/// The three lemma switches exist for the ablation experiments (DESIGN.md
/// A1); production use keeps everything on. All switches preserve
/// correctness — they only trade pruning work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnConfig {
    /// Lemma 1 endpoint shortcut in RLU/CPLC: skip the quadratic when the
    /// incumbent wins both interval endpoints and sits closer to the query
    /// line than the challenger.
    pub use_lemma1: bool,
    /// Lemma 6 triangle refinement of candidate control-point regions.
    pub use_lemma6: bool,
    /// Lemma 7 early termination of the CPLC graph traversal.
    pub use_lemma7: bool,
    /// Strict refinement loop (DESIGN.md §4): after CPLC, if a control-point
    /// value exceeds the obstacle-loading threshold, load further obstacles
    /// and recompute. Guarantees exactness in deep-shadow corner cases the
    /// paper's literal IOR bound does not cover. Off = the paper's literal
    /// algorithm.
    pub strict_refinement: bool,
    /// Spatial-hash cell size for the local visibility graph's obstacle
    /// index, in workspace units.
    pub vgraph_cell: f64,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            use_lemma1: true,
            use_lemma6: true,
            use_lemma7: true,
            strict_refinement: true,
            vgraph_cell: 50.0,
        }
    }
}

impl ConnConfig {
    /// The paper's literal algorithm: all pruning lemmas, no strict
    /// refinement loop.
    pub fn paper() -> Self {
        ConnConfig {
            strict_refinement: false,
            ..ConnConfig::default()
        }
    }

    /// All optional pruning off (ablation baseline).
    pub fn no_pruning() -> Self {
        ConnConfig {
            use_lemma1: false,
            use_lemma6: false,
            use_lemma7: false,
            ..ConnConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = ConnConfig::default();
        assert!(c.use_lemma1 && c.use_lemma6 && c.use_lemma7 && c.strict_refinement);
        assert!(c.vgraph_cell > 0.0);
    }

    #[test]
    fn presets_differ_as_documented() {
        assert!(!ConnConfig::paper().strict_refinement);
        assert!(ConnConfig::paper().use_lemma7);
        let np = ConnConfig::no_pruning();
        assert!(!np.use_lemma1 && !np.use_lemma6 && !np.use_lemma7);
        assert!(np.strict_refinement);
    }
}
