//! COkNN — continuous obstructed k-nearest neighbors (paper §4.5).
//!
//! The result list generalizes to tuples `⟨ONNSᵢ, Rᵢ⟩`: an ordered list of
//! up to `k` members per interval, each member carrying the control point
//! its distance function routes through. Intervals are refined at every
//! crossing between a new candidate's function and a member's function, so
//! the member order is constant within each interval; the pruning bound
//! becomes `RLMAX = maxᵢ max(kth-dist(Rᵢ.l), kth-dist(Rᵢ.r))`, infinite
//! while any interval holds fewer than `k` members.
//!
//! COkNN runs on the same kernel as CONN (the shared loop in
//! [`crate::conn`]): under [`crate::KernelMode::GoalDirected`] the k-th
//! bound above is handed to CPLC as its outer expansion cap — a candidate
//! control point that cannot beat the k-th member anywhere stops the graph
//! traversal instead of merely being filtered out of the result.

// lint:allow-file(no-panic-in-query-path[index]): k-list slots are allocated up front; member indices are bounded by k
use conn_geom::{Interval, Rect, Segment, EPS};
use conn_index::RStarTree;

use crate::config::ConnConfig;
use crate::conn::ResultSink;
use crate::cpl::ControlPointList;
use crate::dist::ControlPoint;
use crate::split::crossing_params;
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// One member of an interval's ONN set.
#[derive(Debug, Clone, Copy)]
pub struct Member {
    /// The data point.
    pub point: DataPoint,
    /// The control point its distance function is anchored at.
    pub cp: ControlPoint,
}

/// One tuple `⟨ONNS, R⟩`: members sorted ascending by distance over all of
/// `R` (the order is constant within the interval by construction).
#[derive(Debug, Clone)]
pub struct KnnEntry {
    /// The interval's ONN set, ascending by distance.
    pub members: Vec<Member>,
    /// The interval of the query segment this set answers.
    pub interval: Interval,
}

/// The COkNN result list.
#[derive(Debug, Clone)]
pub struct KnnResultList {
    entries: Vec<KnnEntry>,
    k: usize,
    qlen: f64,
}

impl KnnResultList {
    /// A single-interval list covering `[0, qlen]` with an empty ONN set.
    pub fn new(qlen: f64, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KnnResultList {
            entries: vec![KnnEntry {
                members: Vec::new(),
                interval: Interval::new(0.0, qlen),
            }],
            k,
            qlen,
        }
    }

    /// The `k` the list was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The tuples, in ascending interval order.
    pub fn entries(&self) -> &[KnnEntry] {
        &self.entries
    }

    /// §4.5 pruning bound: ∞ until every interval holds `k` members.
    pub fn rlmax(&self, q: &Segment) -> f64 {
        let mut m = 0.0f64;
        for e in &self.entries {
            if e.members.len() < self.k {
                return f64::INFINITY;
            }
            let kth = &e.members[self.k - 1].cp;
            m = m.max(kth.max_over(q, &e.interval));
        }
        m
    }

    /// The k answers at parameter `t` (ascending obstructed distance).
    pub fn answers_at(&self, q: &Segment, t: f64) -> Vec<(DataPoint, f64)> {
        self.entries
            .iter()
            .find(|e| e.interval.contains(t))
            .map(|e| {
                e.members
                    .iter()
                    .map(|m| (m.point, m.cp.value(q, t)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Folds in one evaluated data point (the COkNN result-list update).
    pub fn update(&mut self, q: &Segment, p: DataPoint, cpl: &ControlPointList) {
        self.update_with(q, p, cpl, &mut crate::rlu::RluScratch::default());
    }

    /// Update with caller-retained scratch (the workspace's buffer rotates
    /// with the list's own storage).
    pub fn update_with(
        &mut self,
        q: &Segment,
        p: DataPoint,
        cpl: &ControlPointList,
        scratch: &mut crate::rlu::RluScratch,
    ) {
        let mut old = std::mem::take(&mut self.entries);
        let mut out = std::mem::take(&mut scratch.knn);
        out.clear();
        out.reserve(old.len() * 2);
        let cpl_entries = cpl.entries();

        for entry in old.drain(..) {
            let mut cursor = entry.interval.lo;
            let mut j = cpl_entries
                .iter()
                .position(|(_, iv)| iv.hi > cursor + EPS)
                .unwrap_or(cpl_entries.len() - 1);
            while cursor < entry.interval.hi - EPS {
                let (ref new_cp, cpl_iv) = cpl_entries[j];
                let hi = entry.interval.hi.min(cpl_iv.hi);
                let piece = Interval::new(cursor, hi.max(cursor));
                if !piece.is_empty() {
                    match new_cp {
                        None => out.push(KnnEntry {
                            members: entry.members.clone(),
                            interval: piece,
                        }),
                        Some(cp) => self.challenge(q, &entry, p, cp, piece, &mut out),
                    }
                }
                cursor = hi;
                if cpl_iv.hi < entry.interval.hi - EPS && j + 1 < cpl_entries.len() {
                    j += 1;
                } else {
                    break;
                }
            }
        }
        self.entries = out;
        self.normalize_with(&mut scratch.knn2);
        scratch.knn = old; // recycle the pre-update storage
    }

    /// Inserts candidate `(p, cp)` into one piece: cut at every crossing
    /// with a member, then rank the candidate per sub-piece.
    fn challenge(
        &self,
        q: &Segment,
        entry: &KnnEntry,
        p: DataPoint,
        cp: &ControlPoint,
        piece: Interval,
        out: &mut Vec<KnnEntry>,
    ) {
        let mut cuts: Vec<f64> = vec![piece.lo, piece.hi];
        for m in &entry.members {
            cuts.extend(crossing_params(q, &m.cp, cp, &piece));
        }
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| (*a - *b).abs() <= EPS);

        for w in cuts.windows(2) {
            let sub = Interval::new(w[0], w[1]);
            if sub.is_empty() {
                continue;
            }
            let mid = sub.midpoint();
            let cand_v = cp.value(q, mid);
            // members are sorted by value at mid (order constant on sub)
            let rank = entry
                .members
                .partition_point(|m| m.cp.value(q, mid) <= cand_v + EPS);
            let mut members = entry.members.clone();
            if rank < self.k {
                members.insert(rank, Member { point: p, cp: *cp });
                members.truncate(self.k);
            }
            out.push(KnnEntry {
                members,
                interval: sub,
            });
        }
    }

    /// Merges adjacent entries with identical member lists. `buf` receives
    /// the merged list, then swaps with the entry storage — no allocation
    /// when `buf` has capacity.
    fn normalize_with(&mut self, buf: &mut Vec<KnnEntry>) {
        buf.clear();
        for e in self.entries.drain(..) {
            match buf.last_mut() {
                Some(prev) if same_members(&prev.members, &e.members) => {
                    prev.interval.hi = e.interval.hi;
                }
                Some(prev) if e.interval.is_empty() => prev.interval.hi = e.interval.hi,
                _ => {
                    if e.interval.is_empty() && !buf.is_empty() {
                        continue;
                    }
                    buf.push(e);
                }
            }
        }
        std::mem::swap(&mut self.entries, buf);
    }

    /// Validation helper: the entries exactly cover `[0, qlen]`.
    pub fn check_cover(&self) -> Result<(), crate::Error> {
        let mut cursor = 0.0;
        for e in &self.entries {
            if (e.interval.lo - cursor).abs() > 1e-6 {
                return Err(crate::Error::cover_violation(format!("gap at {cursor}")));
            }
            cursor = e.interval.hi;
        }
        if (cursor - self.qlen).abs() > 1e-6 {
            return Err(crate::Error::cover_violation(format!(
                "cover ends at {cursor} != {}",
                self.qlen
            )));
        }
        Ok(())
    }
}

fn same_members(a: &[Member], b: &[Member]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.point.id == y.point.id && x.cp.same_as(&y.cp))
}

impl ResultSink for KnnResultList {
    fn prune_bound(&self, q: &Segment) -> f64 {
        self.rlmax(q)
    }

    fn absorb(
        &mut self,
        q: &Segment,
        p: DataPoint,
        cpl: &ControlPointList,
        _cfg: &ConnConfig,
        scratch: &mut crate::rlu::RluScratch,
    ) {
        self.update_with(q, p, cpl, scratch);
    }

    fn tuples(&self) -> u64 {
        self.entries.len() as u64
    }
}

/// Answer of a COkNN query.
#[derive(Debug, Clone)]
#[must_use]
pub struct CoknnResult {
    q: Segment,
    list: KnnResultList,
}

impl CoknnResult {
    pub(crate) fn new(q: Segment, list: KnnResultList) -> Self {
        let res = CoknnResult { q, list };
        // Sanitizer choke point: every COkNN answer passes through this
        // constructor, so the cover audit sees all of them.
        if conn_geom::sanitize::enabled() {
            if let Err(e) = res.check_cover() {
                conn_geom::sanitize::violation("CoknnResult cover", &e.to_string());
            }
        }
        res
    }

    /// The query segment.
    pub fn query(&self) -> &Segment {
        &self.q
    }

    /// The `k` the query asked for.
    pub fn k(&self) -> usize {
        self.list.k()
    }

    /// Raw tuples at control-point granularity.
    pub fn entries(&self) -> &[KnnEntry] {
        self.list.entries()
    }

    /// The k nearest data points (ascending distance) at parameter `t`.
    pub fn knn_at(&self, t: f64) -> Vec<(DataPoint, f64)> {
        self.list.answers_at(&self.q, t)
    }

    /// `⟨ONNS, R⟩` tuples with adjacent intervals of identical member *id
    /// sets* merged (order within the set may change inside an interval).
    pub fn segments(&self) -> Vec<(Vec<u32>, Interval)> {
        let mut out: Vec<(Vec<u32>, Interval)> = Vec::new();
        for e in self.list.entries() {
            let mut ids: Vec<u32> = e.members.iter().map(|m| m.point.id).collect();
            ids.sort_unstable();
            match out.last_mut() {
                Some((prev, iv)) if *prev == ids => iv.hi = e.interval.hi,
                _ => out.push((ids, e.interval)),
            }
        }
        out
    }

    /// Validates the answer's cover invariants (see
    /// [`KnnResultList::check_cover`]).
    pub fn check_cover(&self) -> Result<(), crate::Error> {
        self.list.check_cover()
    }
}

/// COkNN search over two separate R-trees.
///
/// ```
/// use conn_core::{coknn_search, ConnConfig, DataPoint};
/// use conn_geom::{Point, Rect, Segment};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(
///     vec![
///         DataPoint::new(0, Point::new(20.0, 30.0)),
///         DataPoint::new(1, Point::new(60.0, 20.0)),
///         DataPoint::new(2, Point::new(90.0, 40.0)),
///     ],
///     4096,
/// );
/// let obstacles = RStarTree::bulk_load(vec![Rect::new(45.0, 5.0, 55.0, 35.0)], 4096);
/// let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
///
/// let (result, _) = coknn_search(&points, &obstacles, &q, 2, &ConnConfig::default());
/// let two_nearest = result.knn_at(50.0);
/// assert_eq!(two_nearest.len(), 2);
/// assert!(two_nearest[0].1 <= two_nearest[1].1);
/// ```
pub fn coknn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    q: &Segment,
    k: usize,
    cfg: &ConnConfig,
) -> (CoknnResult, QueryStats) {
    let service =
        crate::ConnService::with_config(crate::Scene::borrowing(data_tree, obstacle_tree), *cfg);
    let query = crate::Query::coknn(*q, k)
        .build()
        .unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    let resp = service.execute(&query).unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
                                                                          // Infallible: the service answers each query kind with its own family.
                                                                          // lint:allow(no-panic-in-query-path)
    let res = resp.answer.into_coknn().expect("coknn answer");
    (res, resp.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Point;

    fn q() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    fn search(points: Vec<DataPoint>, obstacles: Vec<Rect>, k: usize) -> (CoknnResult, QueryStats) {
        let dt = RStarTree::bulk_load(points, 4096);
        let ot = RStarTree::bulk_load(obstacles, 4096);
        coknn_search(&dt, &ot, &q(), k, &ConnConfig::default())
    }

    fn pts() -> Vec<DataPoint> {
        vec![
            DataPoint::new(0, Point::new(15.0, 12.0)),
            DataPoint::new(1, Point::new(45.0, 18.0)),
            DataPoint::new(2, Point::new(75.0, 9.0)),
            DataPoint::new(3, Point::new(95.0, 30.0)),
        ]
    }

    #[test]
    fn k2_free_space_members_sorted() {
        let (res, _) = search(pts(), vec![], 2);
        res.check_cover().unwrap();
        for i in 0..=20 {
            let t = 100.0 * (i as f64) / 20.0;
            let ans = res.knn_at(t);
            assert_eq!(ans.len(), 2, "t = {t}");
            assert!(ans[0].1 <= ans[1].1 + 1e-9);
        }
    }

    #[test]
    fn k1_matches_expected_winners() {
        let (res, _) = search(pts(), vec![], 1);
        assert_eq!(res.knn_at(0.0)[0].0.id, 0);
        assert_eq!(res.knn_at(99.0)[0].0.id, 2);
    }

    #[test]
    fn k_larger_than_data_keeps_all() {
        let (res, _) = search(pts(), vec![], 9);
        res.check_cover().unwrap();
        let ans = res.knn_at(50.0);
        assert_eq!(ans.len(), 4, "only 4 points exist");
        // pruning bound must stay infinite, so all points are evaluated
    }

    #[test]
    fn member_sets_change_at_segment_boundaries() {
        let (res, _) = search(pts(), vec![], 2);
        let segs = res.segments();
        assert!(segs.len() >= 2);
        for w in segs.windows(2) {
            assert_ne!(w[0].0, w[1].0, "unmerged identical neighbor sets");
        }
    }

    #[test]
    fn obstacle_affects_knn_order() {
        let wall = Rect::new(40.0, 5.0, 50.0, 40.0);
        let (free, _) = search(pts(), vec![], 2);
        let (blocked, _) = search(pts(), vec![wall], 2);
        // behind the wall, point 1's distance grows; ranking at t=55 may flip
        let f = free.knn_at(55.0);
        let b = blocked.knn_at(55.0);
        assert_eq!(f.len(), 2);
        assert_eq!(b.len(), 2);
        let fd: f64 = f.iter().map(|x| x.1).sum();
        let bd: f64 = b.iter().map(|x| x.1).sum();
        assert!(bd >= fd - 1e-9, "obstacles cannot shrink distances");
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = KnnResultList::new(10.0, 0);
    }
}
