//! Parallel batch execution over shared R\*-trees.
//!
//! [`conn_batch`] / [`coknn_batch`] fan a workload of query segments out
//! across a small `std::thread` worker pool. The trees are shared immutably
//! (`RStarTree` is `Sync`: page counters are atomic, the LRU buffer is
//! mutex-guarded); each worker owns one [`QueryEngine`], so per-query
//! substrate allocations are amortized across the whole batch. Results come
//! back in workload order, together with aggregated [`BatchStats`].
//!
//! I/O accounting: per-query counter resets would race on the shared trees,
//! so the batch resets each tree's counters once up front and pools the
//! totals into [`BatchStats::pooled`]. The per-query [`QueryStats`] inside
//! a batch therefore report zero tree I/O and real CPU/NPE/NOE.

// lint:allow-file(no-panic-in-query-path[index]): chunk bounds are computed from the same slice's length
use std::time::{Duration, Instant};

use conn_geom::{Rect, Segment};
use conn_index::RStarTree;

use crate::coknn::CoknnResult;
use crate::config::ConnConfig;
use crate::conn::ConnResult;
use crate::engine::QueryEngine;
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// Aggregated telemetry of one batch run.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct BatchStats {
    /// Number of queries answered.
    pub queries: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Pooled counters: per-query stats summed, plus the shared trees' I/O
    /// totals for the batch.
    pub pooled: QueryStats,
    /// Mean per-query CPU latency, in seconds.
    pub mean_s: f64,
    /// Median per-query CPU latency, in seconds.
    pub p50_s: f64,
    /// 99th-percentile per-query CPU latency, in seconds.
    pub p99_s: f64,
    /// Batch throughput in queries per second of wall time.
    pub throughput_qps: f64,
}

impl BatchStats {
    pub(crate) fn from_parts(
        queries: usize,
        threads: usize,
        wall: Duration,
        pooled: QueryStats,
        mut lat: Vec<f64>,
    ) -> Self {
        lat.sort_by(f64::total_cmp);
        let pick = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        let mean = if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<f64>() / lat.len() as f64
        };
        BatchStats {
            queries,
            threads,
            wall,
            pooled,
            mean_s: mean,
            p50_s: pick(0.5),
            p99_s: pick(0.99),
            throughput_qps: if wall.as_secs_f64() > 0.0 {
                queries as f64 / wall.as_secs_f64()
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Generic batch driver: a one-shot [`EnginePool`] work-steals workload
/// indices off a shared atomic cursor, one warm engine per worker, results
/// re-assembled in workload order. Items are whatever the workload is made
/// of — query segments for CONN/COkNN, whole trajectories for the session
/// batch. (The service's mixed-family batch runs the same driver on its
/// *persistent* pool instead, so engines stay warm across batches.)
///
/// [`EnginePool`]: crate::EnginePool
pub(crate) fn run_batch<I, R, F>(
    items: &[I],
    cfg: &ConnConfig,
    threads: usize,
    f: F,
) -> (Vec<R>, usize, Vec<(usize, QueryStats)>)
where
    I: Sync,
    R: Send,
    F: Fn(&mut QueryEngine, &I) -> (R, QueryStats) + Sync,
{
    crate::pool::EnginePool::new(*cfg).run(items, threads, f)
}

/// Answers every CONN query of `queries` over the shared trees with a pool
/// of `threads` workers (`0` = available parallelism). Results are in
/// workload order and identical to answering each query with
/// [`crate::conn_search`].
///
/// ```
/// use conn_core::{conn_batch, ConnConfig, DataPoint};
/// use conn_geom::{Point, Rect, Segment};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(vec![DataPoint::new(0, Point::new(20.0, 30.0))], 4096);
/// let obstacles = RStarTree::bulk_load(vec![Rect::new(40.0, 5.0, 55.0, 35.0)], 4096);
/// let queries: Vec<Segment> = (0..8)
///     .map(|i| {
///         let x = 10.0 * i as f64;
///         Segment::new(Point::new(x, 0.0), Point::new(x + 50.0, 0.0))
///     })
///     .collect();
///
/// let (results, stats) = conn_batch(&points, &obstacles, &queries, &ConnConfig::default(), 0);
/// assert_eq!(results.len(), 8);
/// assert_eq!(stats.queries, 8);
/// assert!(stats.pooled.reuse.graph_reuses >= 8 - stats.threads as u64);
/// ```
pub fn conn_batch(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    queries: &[Segment],
    cfg: &ConnConfig,
    threads: usize,
) -> (Vec<ConnResult>, BatchStats) {
    batch_over(
        data_tree,
        obstacle_tree,
        queries,
        cfg,
        threads,
        |engine, q| engine.conn_pooled_io(data_tree, obstacle_tree, q),
    )
}

/// Trajectory-session batch: a *fleet* workload. Each trajectory is
/// answered by a [`crate::TrajectorySession`] (warm engine across its
/// legs); the sessions fan out across the worker pool and each worker's
/// engine is reused across the trajectories it picks up, so a fleet of N
/// vehicles costs one substrate allocation per worker, not per vehicle or
/// per leg. Per-trajectory latencies feed the percentile stats.
///
/// ```
/// use conn_core::{trajectory_conn_batch, ConnConfig, DataPoint, Trajectory};
/// use conn_geom::{Point, Rect};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(vec![DataPoint::new(0, Point::new(20.0, 30.0))], 4096);
/// let obstacles = RStarTree::bulk_load(vec![Rect::new(40.0, 5.0, 55.0, 35.0)], 4096);
/// let fleet: Vec<Trajectory> = (0..4)
///     .map(|i| {
///         let y = 10.0 * i as f64;
///         Trajectory::new(vec![
///             Point::new(0.0, y),
///             Point::new(60.0, y),
///             Point::new(60.0, y + 50.0),
///         ])
///     })
///     .collect();
///
/// let (results, stats) = trajectory_conn_batch(&points, &obstacles, &fleet, &ConnConfig::default(), 0);
/// assert_eq!(results.len(), 4);
/// results.iter().for_each(|r| r.check_cover().unwrap());
/// assert_eq!(stats.queries, 4);
/// ```
pub fn trajectory_conn_batch(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    trajectories: &[crate::Trajectory],
    cfg: &ConnConfig,
    threads: usize,
) -> (Vec<crate::TrajectoryResult>, BatchStats) {
    data_tree.reset_stats();
    obstacle_tree.reset_stats();
    // Batch-boundary wall time for BatchStats, not kernel-side timing.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
    let (results, threads, per_traj) = run_batch(trajectories, cfg, threads, |engine, traj| {
        let mut session = crate::TrajectorySession::with_engine(
            data_tree,
            obstacle_tree,
            traj.vertices()[0],
            engine,
        )
        .pooled_io();
        for &v in &traj.vertices()[1..] {
            session.push_leg(v);
        }
        session.finish()
    });
    let wall = started.elapsed();
    let mut pooled = QueryStats::default();
    let mut lat = Vec::with_capacity(per_traj.len());
    for (_, s) in &per_traj {
        pooled.accumulate(s);
        lat.push(s.cpu.as_secs_f64());
    }
    pooled.data_io = data_tree.stats();
    pooled.obstacle_io = obstacle_tree.stats();
    (
        results,
        BatchStats::from_parts(trajectories.len(), threads, wall, pooled, lat),
    )
}

/// COkNN batch: like [`conn_batch`] with a per-query `k`.
pub fn coknn_batch(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    queries: &[Segment],
    k: usize,
    cfg: &ConnConfig,
    threads: usize,
) -> (Vec<CoknnResult>, BatchStats) {
    batch_over(
        data_tree,
        obstacle_tree,
        queries,
        cfg,
        threads,
        |engine, q| engine.coknn_pooled_io(data_tree, obstacle_tree, q, k),
    )
}

/// Shared front-end: reset shared-tree counters, fan out, pool counters and
/// latencies into [`BatchStats`].
fn batch_over<R, F>(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    queries: &[Segment],
    cfg: &ConnConfig,
    threads: usize,
    f: F,
) -> (Vec<R>, BatchStats)
where
    R: Send,
    F: Fn(&mut QueryEngine, &Segment) -> (R, QueryStats) + Sync,
{
    data_tree.reset_stats();
    obstacle_tree.reset_stats();
    // Batch-boundary wall time for BatchStats, not kernel-side timing.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
    let (results, threads, per_query) = run_batch(queries, cfg, threads, f);
    let wall = started.elapsed();
    let mut pooled = QueryStats::default();
    let mut lat = Vec::with_capacity(per_query.len());
    for (_, s) in &per_query {
        pooled.accumulate(s);
        lat.push(s.cpu.as_secs_f64());
    }
    pooled.data_io = data_tree.stats();
    pooled.obstacle_io = obstacle_tree.stats();
    (
        results,
        BatchStats::from_parts(queries.len(), threads, wall, pooled, lat),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coknn::coknn_search;
    use crate::conn::conn_search;
    use conn_geom::Point;

    fn setup(n_queries: usize) -> (RStarTree<DataPoint>, RStarTree<Rect>, Vec<Segment>) {
        let points: Vec<DataPoint> = (0..24)
            .map(|i| {
                DataPoint::new(
                    i,
                    Point::new((i as f64 * 37.0) % 300.0, (i as f64 * 91.0) % 200.0),
                )
            })
            .collect();
        let obstacles = vec![
            Rect::new(40.0, 20.0, 60.0, 80.0),
            Rect::new(120.0, 50.0, 150.0, 70.0),
            Rect::new(200.0, 10.0, 220.0, 120.0),
        ];
        let queries: Vec<Segment> = (0..n_queries)
            .map(|i| {
                let x = (i as f64 * 23.0) % 250.0;
                let y = (i as f64 * 17.0) % 150.0;
                Segment::new(Point::new(x, y), Point::new(x + 60.0, y + 5.0))
            })
            .collect();
        (
            RStarTree::bulk_load(points, 4096),
            RStarTree::bulk_load(obstacles, 4096),
            queries,
        )
    }

    #[test]
    fn batch_matches_serial_conn() {
        let (dt, ot, queries) = setup(16);
        let cfg = ConnConfig::default();
        let (batch, stats) = conn_batch(&dt, &ot, &queries, &cfg, 2);
        assert_eq!(batch.len(), queries.len());
        assert_eq!(stats.queries, queries.len());
        assert!(stats.threads >= 1 && stats.threads <= 2);
        for (res, q) in batch.iter().zip(&queries) {
            let (serial, _) = conn_search(&dt, &ot, q, &cfg);
            assert_eq!(res.entries().len(), serial.entries().len());
            for (x, y) in res.entries().iter().zip(serial.entries()) {
                assert_eq!(x.point.map(|p| p.id), y.point.map(|p| p.id));
                assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                assert_eq!(x.interval.hi.to_bits(), y.interval.hi.to_bits());
            }
        }
        // engines are reused: at most one fresh workspace per worker
        assert!(stats.pooled.reuse.graph_reuses >= (queries.len() - stats.threads) as u64);
        assert!(stats.pooled.reads() > 0, "pooled tree I/O missing");
    }

    #[test]
    fn batch_matches_serial_coknn() {
        let (dt, ot, queries) = setup(10);
        let cfg = ConnConfig::default();
        let (batch, stats) = coknn_batch(&dt, &ot, &queries, 3, &cfg, 0);
        assert_eq!(batch.len(), queries.len());
        for (res, q) in batch.iter().zip(&queries) {
            let (serial, _) = coknn_search(&dt, &ot, q, 3, &cfg);
            assert_eq!(res.entries().len(), serial.entries().len());
        }
        assert!(stats.p50_s <= stats.p99_s + 1e-12);
        assert!(stats.mean_s > 0.0);
        assert!(stats.throughput_qps > 0.0);
    }

    #[test]
    fn trajectory_batch_matches_serial_sessions() {
        let (dt, ot, _) = setup(0);
        let routes: Vec<crate::Trajectory> = (0..6)
            .map(|i| {
                let x = (i as f64 * 31.0) % 180.0;
                let y = (i as f64 * 19.0) % 120.0;
                crate::Trajectory::new(vec![
                    Point::new(x, y),
                    Point::new(x + 50.0, y + 5.0),
                    Point::new(x + 50.0, y + 60.0),
                    Point::new(x + 5.0, y + 60.0),
                ])
            })
            .collect();
        let cfg = ConnConfig::default();
        let (batch, stats) = trajectory_conn_batch(&dt, &ot, &routes, &cfg, 2);
        assert_eq!(batch.len(), routes.len());
        assert_eq!(stats.queries, routes.len());
        for (res, traj) in batch.iter().zip(&routes) {
            res.check_cover().unwrap();
            let (serial, _) = crate::trajectory::trajectory_conn_search(&dt, &ot, traj, &cfg);
            assert_eq!(res.segments().len(), serial.segments().len());
            for (a, b) in res.segments().iter().zip(serial.segments()) {
                assert_eq!(a.0.map(|p| p.id), b.0.map(|p| p.id));
                assert_eq!(a.1.lo.to_bits(), b.1.lo.to_bits());
                assert_eq!(a.1.hi.to_bits(), b.1.hi.to_bits());
            }
        }
        assert!(stats.pooled.reads() > 0, "pooled tree I/O missing");
        // workers reuse their engine across trajectories: the warm legs
        // plus cross-trajectory begin_query reuses dominate
        assert!(stats.pooled.reuse.graph_reuses > routes.len() as u64);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (dt, ot, _) = setup(0);
        let (res, stats) = conn_batch(&dt, &ot, &[], &ConnConfig::default(), 4);
        assert!(res.is_empty());
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.mean_s, 0.0);
    }

    #[test]
    fn oversized_pool_is_clamped() {
        let (dt, ot, queries) = setup(3);
        let (_, stats) = conn_batch(&dt, &ot, &queries, &ConnConfig::default(), 64);
        assert!(stats.threads <= 3);
    }
}
