//! The reusable query engine and its workspace.
//!
//! The free functions ([`crate::conn_search`], [`crate::coknn_search`], …)
//! answer one query on fresh state: a new visibility graph, new Dijkstra
//! labels, a new visible-region cache. That is faithful to the paper but
//! wasteful for a server answering a stream of queries — every query pays
//! the same substrate allocations again.
//!
//! [`QueryEngine`] owns all of that per-query scratch state in a
//! [`Workspace`] behind reset-and-reuse APIs: answering N queries performs
//! O(1) substrate allocations instead of O(N). The engine is deliberately
//! `!Sync` — one engine serves one thread; the batch layer
//! ([`crate::conn_batch`]) and the persistent [`crate::EnginePool`] keep
//! one engine per worker slot (each slot mutex-owned, so the pool itself
//! is `Sync`) over the shared (immutable, `Sync`) R\*-trees.
//! [`crate::ConnService`] holds such a pool for its whole lifetime: warm
//! engines survive across queries, batches *and* epoch publishes, since
//! the reuse contract below never lets retained capacity leak answers
//! from one scene into another.
//!
//! ## Reuse contract
//!
//! Between queries, `Workspace::begin_query` **clears** all query-visible
//! state — the node set, the loaded obstacle set, the visible-region cache,
//! the IOR loading threshold and all Dijkstra labels — so a reused engine is
//! *byte-identical* in its answers to fresh per-query state (guarded by the
//! `engine_equivalence` proptest suite). It **keeps** heap allocations: node
//! slots, per-slot edge lists, grid cell buckets, Dijkstra label arrays and
//! heap capacity, and the result-list scratch buffers. The
//! [`ReuseCounters`] on [`QueryStats`] report how much retained capacity
//! each query re-bound.

use std::time::Instant;

use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;
use conn_vgraph::{DijkstraEngine, NodeKind, VisGraph};

use crate::coknn::{CoknnResult, KnnResultList};
use crate::config::ConnConfig;
use crate::conn::{run_search, ConnResult, ResultSink};
use crate::cpl::VrCache;
use crate::ior::IorState;
use crate::rlu::{ResultList, RluScratch};
use crate::single_tree::{OneTreeStreams, SpatialObject};
use crate::stats::{QueryStats, ReuseCounters};
use crate::streams::{QueryStreams, TwoTreeStreams};
use crate::types::DataPoint;

/// All per-query scratch state, owned long-term and re-bound per query.
#[derive(Debug)]
pub struct Workspace {
    pub(crate) g: VisGraph,
    pub(crate) dij: DijkstraEngine,
    pub(crate) vr_cache: VrCache,
    pub(crate) ior_state: IorState,
    pub(crate) rlu_scratch: RluScratch,
    /// Set once the workspace has served a query (reuse is counted from the
    /// second query on).
    primed: bool,
    /// True while the graph holds a full odist obstacle field that the next
    /// odist call may reuse verbatim.
    odist_primed: bool,
    /// Source point and node of the last odist search, kept alive so a
    /// repeated call from the same origin can continue (or retarget) the
    /// retained labels instead of starting cold.
    odist_src: Option<(Point, conn_vgraph::NodeId)>,
    /// Target nodes of previous odist calls on the primed field, kept
    /// alive (removal would invalidate the retained labels); capped, then
    /// the field is re-primed from scratch.
    odist_targets: Vec<(Point, conn_vgraph::NodeId)>,
    /// Reuse telemetry of the query in flight.
    current: ReuseCounters,
    heap_reuse_mark: u64,
    continuation_mark: u64,
    reseed_mark: u64,
    retarget_mark: u64,
    sight_mark: u64,
    sweep_mark: u64,
    invalidated_mark: u64,
    repair_mark: u64,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new(ConnConfig::default().vgraph_cell)
    }
}

impl Workspace {
    /// A workspace whose obstacle grid uses the given cell size.
    pub fn new(cell: f64) -> Self {
        Workspace {
            g: VisGraph::new(cell),
            dij: DijkstraEngine::default(),
            vr_cache: VrCache::default(),
            ior_state: IorState::default(),
            rlu_scratch: RluScratch::default(),
            primed: false,
            odist_primed: false,
            odist_src: None,
            odist_targets: Vec::new(),
            current: ReuseCounters::default(),
            heap_reuse_mark: 0,
            continuation_mark: 0,
            reseed_mark: 0,
            retarget_mark: 0,
            sight_mark: 0,
            sweep_mark: 0,
            invalidated_mark: 0,
            repair_mark: 0,
        }
    }

    /// Rewinds the workspace for a new query: clears all query-visible
    /// state, retains allocations, starts the reuse-counter window. The
    /// graph picks up `cfg`'s substrate tuning (cell size, sweep mode,
    /// growth margin) for the query.
    pub(crate) fn begin_query(&mut self, cfg: &ConnConfig) {
        self.begin_query_with_cell(cfg, cfg.vgraph_cell);
    }

    /// [`Workspace::begin_query`] with an explicit grid cell size (the
    /// odist priming path adapts the cell to the obstacle field instead of
    /// using `cfg.vgraph_cell`).
    pub(crate) fn begin_query_with_cell(&mut self, cfg: &ConnConfig, cell: f64) {
        self.current = ReuseCounters::default();
        if self.primed {
            self.current.graph_reuses = 1;
            self.current.nodes_retained = self.g.reset_with_cell(cell) as u64;
        } else if (self.g.grid_cell() - cell).abs() > f64::EPSILON {
            self.g = VisGraph::new(cell);
        }
        cfg.tune_graph(&mut self.g);
        self.begin_window();
    }

    /// Rewinds the workspace for the next *leg* of a trajectory session:
    /// unlike [`Workspace::begin_query`] the visibility graph is kept —
    /// obstacle loads are monotone within a session, so every loaded
    /// rectangle (and every previous leg's endpoint node) stays valid. The
    /// visible-region cache and the IOR loading threshold are cleared
    /// because both are keyed to the goal segment, which changes per leg.
    pub(crate) fn begin_leg(&mut self, cfg: &ConnConfig) {
        self.current = ReuseCounters::default();
        self.current.graph_reuses = 1; // the graph survives, loaded
        self.current.nodes_retained = self.g.num_nodes() as u64;
        cfg.tune_graph(&mut self.g);
        self.begin_window();
    }

    /// Shared tail of [`Workspace::begin_query`] / [`Workspace::begin_leg`]:
    /// clears the goal-keyed caches and opens the reuse-counter window.
    /// Every query-visible `Workspace` field except the graph (which the
    /// two entry points treat differently) must be reset here.
    fn begin_window(&mut self) {
        self.primed = true;
        self.odist_primed = false;
        self.odist_src = None;
        self.odist_targets.clear();
        self.vr_cache.clear();
        self.ior_state = IorState::default();
        self.heap_reuse_mark = self.dij.reuses();
        self.continuation_mark = self.dij.continuations();
        self.reseed_mark = self.dij.reseeds();
        self.retarget_mark = self.dij.retargets();
        // the graph's sight-test and sweep-event counters are lifetime
        // counters (they survive workspace resets), so per-query
        // attribution is a window diff
        self.sight_mark = self.g.sight_tests();
        self.sweep_mark = self.g.sweep_events();
        self.invalidated_mark = self.dij.labels_invalidated();
        self.repair_mark = self.g.adjacency_repairs();
    }

    /// Closes the reuse-counter window of the current query.
    pub(crate) fn finish_query(&mut self) -> ReuseCounters {
        self.current.heap_reuses = self.dij.reuses() - self.heap_reuse_mark;
        self.current.label_continuations = self.dij.continuations() - self.continuation_mark;
        self.current.label_reseeds = self.dij.reseeds() - self.reseed_mark;
        self.current.label_retargets = self.dij.retargets() - self.retarget_mark;
        self.current.sight_tests = self.g.sight_tests() - self.sight_mark;
        self.current.sweep_events = self.g.sweep_events() - self.sweep_mark;
        self.current.labels_invalidated = self.dij.labels_invalidated() - self.invalidated_mark;
        self.current.adjacency_repairs = self.g.adjacency_repairs() - self.repair_mark;
        self.current
    }
}

/// A long-lived query engine: configuration plus a reusable [`Workspace`].
///
/// ```
/// use conn_core::{ConnConfig, DataPoint, QueryEngine};
/// use conn_geom::{Point, Rect, Segment};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(
///     vec![DataPoint::new(0, Point::new(20.0, 60.0))],
///     4096,
/// );
/// let obstacles = RStarTree::bulk_load(vec![Rect::new(45.0, 30.0, 55.0, 70.0)], 4096);
/// let mut engine = QueryEngine::new(ConnConfig::default());
///
/// for x in [0.0, 10.0, 20.0] {
///     let q = Segment::new(Point::new(x, 0.0), Point::new(x + 100.0, 0.0));
///     let (result, stats) = engine.conn(&points, &obstacles, &q);
///     assert!(!result.entries().is_empty());
///     if x > 0.0 {
///         // from the second query on, the substrate is reused
///         assert_eq!(stats.reuse.graph_reuses, 1);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    cfg: ConnConfig,
    ws: Workspace,
}

impl Default for QueryEngine {
    fn default() -> Self {
        QueryEngine::new(ConnConfig::default())
    }
}

impl QueryEngine {
    /// An engine with a fresh workspace sized for `cfg`.
    pub fn new(cfg: ConnConfig) -> Self {
        QueryEngine {
            ws: Workspace::new(cfg.vgraph_cell),
            cfg,
        }
    }

    /// The configuration every query on this engine runs under.
    pub fn config(&self) -> &ConnConfig {
        &self.cfg
    }

    /// Swaps the engine's configuration for subsequent queries (the typed
    /// service applies per-query [`ConnConfig`] overrides this way). The
    /// workspace rewind at the next query start picks up the new grid cell
    /// size; retained allocations survive.
    pub fn set_config(&mut self, cfg: ConnConfig) {
        self.cfg = cfg;
    }

    /// Lifetime total of goal-retargeted warm searches this engine served
    /// (the moving-target odist pattern; per-query counts are in
    /// [`QueryStats::reuse`](crate::QueryStats)).
    pub fn label_retargets(&self) -> u64 {
        self.ws.dij.retargets()
    }

    /// CONN search (paper Algorithm 4) on the reused workspace. Tree I/O
    /// counters are reset at query start, exactly like
    /// [`crate::conn_search`].
    pub fn conn(
        &mut self,
        data_tree: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        q: &Segment,
    ) -> (ConnResult, QueryStats) {
        self.conn_impl(data_tree, obstacle_tree, q, true)
    }

    /// Like [`QueryEngine::conn`], but leaves the shared trees' I/O
    /// counters alone (batch workers pool tree I/O at the batch level; the
    /// returned per-query stats report zero I/O).
    pub fn conn_pooled_io(
        &mut self,
        data_tree: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        q: &Segment,
    ) -> (ConnResult, QueryStats) {
        self.conn_impl(data_tree, obstacle_tree, q, false)
    }

    /// The one shared query driver: runs Algorithm 4's loop over any
    /// stream source and result sink on the reused workspace, returning
    /// the filled sink plus assembled stats (I/O snapshots are layered on
    /// by the caller, since their source differs per tree layout).
    fn drive<S: QueryStreams, R: ResultSink>(
        &mut self,
        q: &Segment,
        mut streams: S,
        mut sink: R,
    ) -> (R, QueryStats) {
        assert!(!q.is_degenerate(), "degenerate query segment");
        // Query-boundary elapsed time for QueryStats; the kernel loop
        // below never reads the clock.
        let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
        let telemetry = run_search(&mut streams, q, &self.cfg, &mut sink, &mut self.ws);
        let stats = QueryStats {
            cpu: started.elapsed(),
            npe: telemetry.npe,
            noe: telemetry.noe,
            svg_nodes: telemetry.svg_nodes,
            result_tuples: sink.tuples(),
            reuse: self.ws.finish_query(),
            ..QueryStats::default()
        };
        (sink, stats)
    }

    fn conn_impl(
        &mut self,
        data_tree: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        q: &Segment,
        track_io: bool,
    ) -> (ConnResult, QueryStats) {
        if track_io {
            data_tree.reset_stats();
            obstacle_tree.reset_stats();
        }
        let streams = TwoTreeStreams::new(data_tree, obstacle_tree, q);
        let (list, mut stats) = self.drive(q, streams, ResultList::new(q.len()));
        if track_io {
            stats.data_io = data_tree.stats();
            stats.obstacle_io = obstacle_tree.stats();
        }
        (ConnResult::new(*q, list), stats)
    }

    /// COkNN search (paper §4.5) on the reused workspace.
    pub fn coknn(
        &mut self,
        data_tree: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        q: &Segment,
        k: usize,
    ) -> (CoknnResult, QueryStats) {
        self.coknn_impl(data_tree, obstacle_tree, q, k, true)
    }

    /// Pooled-I/O variant of [`QueryEngine::coknn`] for batch workers.
    pub fn coknn_pooled_io(
        &mut self,
        data_tree: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        q: &Segment,
        k: usize,
    ) -> (CoknnResult, QueryStats) {
        self.coknn_impl(data_tree, obstacle_tree, q, k, false)
    }

    fn coknn_impl(
        &mut self,
        data_tree: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        q: &Segment,
        k: usize,
        track_io: bool,
    ) -> (CoknnResult, QueryStats) {
        if track_io {
            data_tree.reset_stats();
            obstacle_tree.reset_stats();
        }
        let streams = TwoTreeStreams::new(data_tree, obstacle_tree, q);
        let (list, mut stats) = self.drive(q, streams, KnnResultList::new(q.len(), k));
        if track_io {
            stats.data_io = data_tree.stats();
            stats.obstacle_io = obstacle_tree.stats();
        }
        (CoknnResult::new(*q, list), stats)
    }

    /// CONN over a single unified R-tree (§4.5) on the reused workspace.
    pub fn conn_single_tree(
        &mut self,
        tree: &RStarTree<SpatialObject>,
        q: &Segment,
    ) -> (ConnResult, QueryStats) {
        tree.reset_stats();
        let streams = OneTreeStreams::new(tree, q);
        let (list, mut stats) = self.drive(q, streams, ResultList::new(q.len()));
        stats.data_io = tree.stats();
        (ConnResult::new(*q, list), stats)
    }

    /// COkNN over a single unified R-tree (§4.5) on the reused workspace.
    pub fn coknn_single_tree(
        &mut self,
        tree: &RStarTree<SpatialObject>,
        q: &Segment,
        k: usize,
    ) -> (CoknnResult, QueryStats) {
        tree.reset_stats();
        let streams = OneTreeStreams::new(tree, q);
        let (list, mut stats) = self.drive(q, streams, KnnResultList::new(q.len(), k));
        stats.data_io = tree.stats();
        (CoknnResult::new(*q, list), stats)
    }

    // ----- point-to-point obstructed distance ----------------------------

    /// Ensures the workspace graph holds exactly `obstacles` (rebuilding
    /// only when the field changed since the last odist call on this
    /// engine).
    fn prime_odist(&mut self, obstacles: &[Rect]) {
        let expected = 4 * obstacles.len()
            + usize::from(self.ws.odist_src.is_some())
            + self.ws.odist_targets.len();
        if self.ws.odist_primed
            && self.ws.g.obstacles() == obstacles
            && self.ws.g.num_nodes() == expected
        {
            return;
        }
        // cell size adapted to the obstacle field's typical extent, as the
        // historical free functions did
        let cell = obstacles
            .iter()
            .map(|r| r.width().max(r.height()))
            .fold(0.0f64, f64::max)
            .max(20.0);
        self.ws.begin_query_with_cell(&self.cfg, cell);
        for r in obstacles {
            self.ws.g.add_obstacle(*r);
        }
        let _ = self.ws.finish_query();
        self.ws.odist_primed = true;
    }

    /// Retained odist endpoint nodes are capped so the transient overlay
    /// (walked once per settled node) stays small; past the cap the kept
    /// targets are dropped and the next search starts cold.
    const ODIST_TARGET_CAP: usize = 32;

    /// Endpoint nodes for an odist run on the primed field. The source and
    /// every target node stay *alive* between calls: node additions no
    /// longer disturb the Dijkstra engine's shape snapshot, so a repeated
    /// call from the same origin replays (same target), reseeds, or
    /// retargets (moved target) the retained labels instead of starting
    /// cold — the moving-target serving pattern of fleet tracking.
    fn odist_nodes(&mut self, a: Point, b: Point) -> (conn_vgraph::NodeId, conn_vgraph::NodeId) {
        let na = match self.ws.odist_src {
            Some((p, n)) if p == a => n,
            _ => {
                // a new origin invalidates the retained labels anyway;
                // drop the kept transients so the overlay stays small
                if let Some((_, n)) = self.ws.odist_src.take() {
                    self.ws.g.remove_node(n);
                }
                for (_, n) in std::mem::take(&mut self.ws.odist_targets) {
                    self.ws.g.remove_node(n);
                }
                let n = self.ws.g.add_point(a, NodeKind::DataPoint);
                self.ws.odist_src = Some((a, n));
                n
            }
        };
        let nb = match self.ws.odist_targets.iter().find(|(p, _)| *p == b) {
            Some(&(_, n)) => n,
            None => {
                if self.ws.odist_targets.len() >= Self::ODIST_TARGET_CAP {
                    for (_, n) in std::mem::take(&mut self.ws.odist_targets) {
                        self.ws.g.remove_node(n);
                    }
                }
                let n = self.ws.g.add_point(b, NodeKind::DataPoint);
                self.ws.odist_targets.push((b, n));
                n
            }
        };
        (na, nb)
    }

    /// An endpoint strictly inside some obstacle is unreachable by
    /// definition — blocking is open-interior containment — so the search
    /// can answer ∞ without running. Without this the goal-directed
    /// Dijkstra would settle every reachable node of the primed graph
    /// before concluding the target cannot be reached.
    fn odist_endpoint_swallowed(obstacles: &[Rect], a: Point, b: Point) -> bool {
        obstacles
            .iter()
            .any(|r| r.strictly_contains(a) || r.strictly_contains(b))
    }

    /// Obstructed distance *and* path in one Dijkstra run (∞ / `None` when
    /// unreachable). Repeated calls against the same obstacle slice reuse
    /// the primed graph instead of rebuilding it, and repeated calls from
    /// the same origin reuse the retained labels — retargeted when only
    /// the destination moved.
    pub fn obstructed_route(
        &mut self,
        obstacles: &[Rect],
        a: Point,
        b: Point,
    ) -> (f64, Option<Vec<Point>>) {
        if Self::odist_endpoint_swallowed(obstacles, a, b) {
            return (f64::INFINITY, None);
        }
        self.prime_odist(obstacles);
        let (na, nb) = self.odist_nodes(a, b);
        let goal = self.cfg.kernel.point_goal(b);
        self.ws
            .dij
            .ensure_prepared(&self.ws.g, na, goal, self.cfg.label_continuation);
        let d = self.ws.dij.run_until_settled(&mut self.ws.g, nb);
        let g = &self.ws.g;
        let path = d.is_finite().then(|| {
            self.ws
                .dij
                .path_to(nb)
                .iter()
                .map(|&n| g.node_pos(n))
                .collect()
        });
        (d, path)
    }

    /// Engine-backed [`crate::obstructed_distance`].
    pub fn obstructed_distance(&mut self, obstacles: &[Rect], a: Point, b: Point) -> f64 {
        if Self::odist_endpoint_swallowed(obstacles, a, b) {
            return f64::INFINITY;
        }
        self.prime_odist(obstacles);
        let (na, nb) = self.odist_nodes(a, b);
        let goal = self.cfg.kernel.point_goal(b);
        self.ws
            .dij
            .ensure_prepared(&self.ws.g, na, goal, self.cfg.label_continuation);
        self.ws.dij.run_until_settled(&mut self.ws.g, nb)
    }

    /// Engine-backed [`crate::obstructed_path`].
    pub fn obstructed_path(
        &mut self,
        obstacles: &[Rect],
        a: Point,
        b: Point,
    ) -> Option<Vec<Point>> {
        self.obstructed_route(obstacles, a, b).1
    }

    /// The workspace, for algorithm layers that drive it directly (joins).
    pub(crate) fn workspace(&mut self) -> &mut Workspace {
        &mut self.ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coknn::coknn_search;
    use crate::conn::conn_search;

    fn setup() -> (RStarTree<DataPoint>, RStarTree<Rect>, Vec<Segment>) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 20.0)),
            DataPoint::new(1, Point::new(50.0, 8.0)),
            DataPoint::new(2, Point::new(90.0, 25.0)),
            DataPoint::new(3, Point::new(45.0, 60.0)),
        ];
        let obstacles = vec![
            Rect::new(30.0, 5.0, 40.0, 30.0),
            Rect::new(60.0, 10.0, 75.0, 18.0),
            Rect::new(20.0, 40.0, 60.0, 50.0),
        ];
        let queries = vec![
            Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0)),
            Segment::new(Point::new(0.0, 35.0), Point::new(100.0, 35.0)),
            Segment::new(Point::new(10.0, 70.0), Point::new(95.0, 2.0)),
        ];
        (
            RStarTree::bulk_load(points, 4096),
            RStarTree::bulk_load(obstacles, 4096),
            queries,
        )
    }

    fn assert_same_conn(a: &ConnResult, b: &ConnResult) {
        assert_eq!(a.entries().len(), b.entries().len());
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.point.map(|p| p.id), y.point.map(|p| p.id));
            assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
            assert_eq!(x.interval.hi.to_bits(), y.interval.hi.to_bits());
        }
    }

    #[test]
    fn reused_engine_matches_free_functions() {
        let (dt, ot, queries) = setup();
        let cfg = ConnConfig::default();
        let mut engine = QueryEngine::new(cfg);
        for (i, q) in queries.iter().enumerate() {
            let (fresh, fresh_stats) = conn_search(&dt, &ot, q, &cfg);
            let (reused, stats) = engine.conn(&dt, &ot, q);
            assert_same_conn(&fresh, &reused);
            assert_eq!(stats.npe, fresh_stats.npe);
            assert_eq!(stats.noe, fresh_stats.noe);
            assert_eq!(stats.svg_nodes, fresh_stats.svg_nodes);
            assert_eq!(stats.reuse.graph_reuses, u64::from(i > 0));
            if i > 0 {
                assert!(stats.reuse.heap_reuses > 0, "no Dijkstra reuse recorded");
            }
        }
    }

    #[test]
    fn reused_engine_matches_coknn() {
        let (dt, ot, queries) = setup();
        let cfg = ConnConfig::default();
        let mut engine = QueryEngine::new(cfg);
        for q in &queries {
            for k in [1usize, 2, 3] {
                let (fresh, _) = coknn_search(&dt, &ot, q, k, &cfg);
                let (reused, _) = engine.coknn(&dt, &ot, q, k);
                assert_eq!(fresh.entries().len(), reused.entries().len());
                for (x, y) in fresh.entries().iter().zip(reused.entries()) {
                    assert_eq!(x.members.len(), y.members.len());
                    for (mx, my) in x.members.iter().zip(&y.members) {
                        assert_eq!(mx.point.id, my.point.id);
                        assert_eq!(mx.cp.base.to_bits(), my.cp.base.to_bits());
                    }
                    assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                }
            }
        }
    }

    #[test]
    fn interleaved_query_kinds_stay_clean() {
        let (dt, ot, queries) = setup();
        let cfg = ConnConfig::default();
        let mut engine = QueryEngine::new(cfg);
        let obstacles: Vec<Rect> = ot.iter_items().copied().collect();
        for q in &queries {
            let (c1, _) = engine.conn(&dt, &ot, q);
            let d = engine.obstructed_distance(&obstacles, q.a, q.b);
            assert!(d >= q.len() - 1e-9);
            let (k1, _) = engine.coknn(&dt, &ot, q, 2);
            let (c2, _) = conn_search(&dt, &ot, q, &cfg);
            assert_same_conn(&c1, &c2);
            k1.check_cover().unwrap();
        }
    }

    /// Satellite of the plane-sweep PR: forcing the sweep on and off must
    /// not change a single result bit, and the `sweep_events` counter must
    /// attribute the sweep's work to the query (and stay zero when off).
    #[test]
    fn sweep_mode_is_result_invariant_and_counted() {
        use conn_vgraph::SweepMode;
        let (dt, ot, queries) = setup();
        let mut on = QueryEngine::new(ConnConfig {
            sweep: SweepMode::Always,
            ..ConnConfig::default()
        });
        let mut off = QueryEngine::new(ConnConfig {
            sweep: SweepMode::Never,
            ..ConnConfig::default()
        });
        let mut on_events = 0u64;
        for q in &queries {
            let (a, sa) = on.conn(&dt, &ot, q);
            let (b, sb) = off.conn(&dt, &ot, q);
            assert_same_conn(&a, &b);
            assert_eq!(sb.reuse.sweep_events, 0, "sweep off must record no events");
            on_events += sa.reuse.sweep_events;
        }
        assert!(on_events > 0, "forced sweep recorded no events");
    }

    #[test]
    fn odist_reuses_primed_field() {
        let obstacles = vec![
            Rect::new(40.0, -10.0, 60.0, 30.0),
            Rect::new(10.0, 50.0, 30.0, 70.0),
        ];
        let mut engine = QueryEngine::default();
        let d1 =
            engine.obstructed_distance(&obstacles, Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let before = engine.ws.dij.reuses();
        let d2 =
            engine.obstructed_distance(&obstacles, Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert!(engine.ws.dij.reuses() > before);
        // changing the field rebuilds
        let d3 = engine.obstructed_distance(
            &obstacles[..1],
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
        );
        assert!(d3 <= d1 + 1e-9);
    }
}
