//! The serving front door: [`Scene`] owns the indexed world, a
//! [`ConnService`] executes typed [`Query`] values against it.
//!
//! This is the one interface every query family is driven through — the
//! way a database exposes a single query interface over many plans:
//!
//! * [`Scene`] builds (or borrows) the data and obstacle R\*-trees, from
//!   raw vecs, the paper-style dataset generators, or trees the caller
//!   already holds;
//! * [`ConnService::execute`] answers one validated [`Query`] of *any*
//!   family — the engine-backed families on the service's long-lived
//!   [`QueryEngine`] (substrate allocations amortized across queries) —
//!   with answers byte-identical to the legacy free functions (the
//!   `service_equivalence` suite enforces it);
//! * [`ConnService::execute_batch`] is the first **mixed-family** batch
//!   path: where [`crate::conn_batch`] / [`crate::coknn_batch`] /
//!   [`crate::trajectory_conn_batch`] each fan one homogeneous family,
//!   the service schedules a heterogeneous workload across the same
//!   worker pool and pools one [`BatchStats`];
//! * [`ConnService::open_session`] hands out the streaming
//!   [`TrajectorySession`] behind the same handle.
//!
//! The legacy free functions remain as thin wrappers over this service,
//! so both surfaces stay in lock-step by construction.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use std::cell::{OnceCell, RefCell};
use std::time::Instant;

use conn_geom::{Point, Rect};
use conn_index::{RStarTree, DEFAULT_PAGE_SIZE};

use crate::batch::{run_batch, BatchStats};
use crate::config::ConnConfig;
use crate::engine::QueryEngine;
use crate::error::Error;
use crate::query::{Answer, Query, QueryKind, Response};
use crate::session::{TrajectoryCoknnSession, TrajectorySession};
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// One R\*-tree, owned by the scene or borrowed from the caller.
#[derive(Debug)]
enum TreeSlot<'a, T> {
    Owned(RStarTree<T>),
    Borrowed(&'a RStarTree<T>),
}

impl<T> TreeSlot<'_, T> {
    fn tree(&self) -> &RStarTree<T> {
        match self {
            TreeSlot::Owned(t) => t,
            TreeSlot::Borrowed(t) => t,
        }
    }
}

/// The indexed world every query family runs against: the data-point and
/// obstacle R\*-trees.
///
/// Build it from raw vecs ([`Scene::new`] /
/// [`Scene::with_page_size`]), from the paper-style dataset generators
/// ([`Scene::uniform`] / [`Scene::clustered`]), from trees you already
/// own ([`Scene::from_trees`]), or borrow trees in place
/// ([`Scene::borrowing`] — the zero-copy path the legacy free-function
/// wrappers use).
#[derive(Debug)]
pub struct Scene<'a> {
    data: TreeSlot<'a, DataPoint>,
    obstacles: TreeSlot<'a, Rect>,
}

impl Scene<'static> {
    /// Indexes `points` and `obstacles` in owned R\*-trees with the
    /// default 4 KB page size.
    pub fn new(points: Vec<DataPoint>, obstacles: Vec<Rect>) -> Self {
        Scene::with_page_size(points, obstacles, DEFAULT_PAGE_SIZE)
    }

    /// [`Scene::new`] with an explicit page size.
    pub fn with_page_size(points: Vec<DataPoint>, obstacles: Vec<Rect>, page_size: usize) -> Self {
        Scene {
            data: TreeSlot::Owned(RStarTree::bulk_load(points, page_size)),
            obstacles: TreeSlot::Owned(RStarTree::bulk_load(obstacles, page_size)),
        }
    }

    /// Adopts trees the caller already built (bulk-loaded, persisted, …).
    pub fn from_trees(data_tree: RStarTree<DataPoint>, obstacle_tree: RStarTree<Rect>) -> Self {
        Scene {
            data: TreeSlot::Owned(data_tree),
            obstacles: TreeSlot::Owned(obstacle_tree),
        }
    }

    /// A paper-style scene: LA-like obstacles with uniformly distributed
    /// data points (the UL combination of §5).
    pub fn uniform(n_points: usize, n_obstacles: usize, seed: u64) -> Self {
        let obstacles = conn_datasets::la_like(n_obstacles, seed);
        let points = DataPoint::from_points(&conn_datasets::uniform_points(
            n_points,
            seed.wrapping_add(1),
            &obstacles,
        ));
        Scene::new(points, obstacles)
    }

    /// A paper-style scene: LA-like obstacles with CA-like *clustered*
    /// data points (the CL combination of §5).
    pub fn clustered(n_points: usize, n_obstacles: usize, seed: u64) -> Self {
        let obstacles = conn_datasets::la_like(n_obstacles, seed);
        let points = DataPoint::from_points(&conn_datasets::ca_like(
            n_points,
            seed.wrapping_add(1),
            &obstacles,
        ));
        Scene::new(points, obstacles)
    }
}

impl<'a> Scene<'a> {
    /// Borrows trees in place — no copy, the scene lives as long as the
    /// borrow. This is how the legacy free functions wrap the service.
    pub fn borrowing(
        data_tree: &'a RStarTree<DataPoint>,
        obstacle_tree: &'a RStarTree<Rect>,
    ) -> Scene<'a> {
        Scene {
            data: TreeSlot::Borrowed(data_tree),
            obstacles: TreeSlot::Borrowed(obstacle_tree),
        }
    }

    /// The data-point tree.
    pub fn data_tree(&self) -> &RStarTree<DataPoint> {
        self.data.tree()
    }

    /// The obstacle tree.
    pub fn obstacle_tree(&self) -> &RStarTree<Rect> {
        self.obstacles.tree()
    }

    /// Number of data points in the scene.
    pub fn num_points(&self) -> usize {
        self.data_tree().len()
    }

    /// Number of obstacles in the scene.
    pub fn num_obstacles(&self) -> usize {
        self.obstacle_tree().len()
    }

    /// All obstacles, collected from the tree (the flat field the
    /// point-to-point distance kernel primes its graph from).
    pub fn obstacles(&self) -> Vec<Rect> {
        self.obstacle_tree().iter_items().copied().collect()
    }
}

/// The unified execution handle: one typed front door for every query
/// family over one [`Scene`].
///
/// Owns a long-lived [`QueryEngine`] for serial [`execute`] calls —
/// substrate reuse across queries *and* families for the engine-backed
/// ones (CONN, COkNN, odist/route, the joins, trajectories; the
/// point-anchored ONN/range/RNN families build their incremental local
/// graph per query, as their free functions always have) — and fans
/// [`execute_batch`] workloads across the same worker pool the
/// per-family batch entry points use, but accepting a *mixed* vector of
/// families in one call.
///
/// [`execute`]: ConnService::execute
/// [`execute_batch`]: ConnService::execute_batch
///
/// ```
/// use conn_core::{ConnService, DataPoint, Query, Scene};
/// use conn_geom::{Point, Rect, Segment};
///
/// let scene = Scene::new(
///     vec![
///         DataPoint::new(0, Point::new(20.0, 60.0)),
///         DataPoint::new(1, Point::new(80.0, 60.0)),
///     ],
///     vec![Rect::new(45.0, 30.0, 55.0, 70.0)],
/// );
/// let service = ConnService::new(scene);
///
/// let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
/// let response = service.execute(&Query::conn(q).build()?)?;
/// let conn = response.answer.as_conn().expect("conn answer");
/// assert!(!conn.entries().is_empty());
/// assert!(response.stats.npe >= 1);
///
/// // …and a mixed-family batch through the same handle:
/// let batch = vec![
///     Query::conn(q).build()?,
///     Query::coknn(q, 2).build()?,
///     Query::onn(Point::new(50.0, 0.0), 1).build()?,
///     Query::odist(Point::new(0.0, 0.0), Point::new(100.0, 0.0)).build()?,
/// ];
/// let (responses, stats) = service.execute_batch(&batch)?;
/// assert_eq!(responses.len(), 4);
/// assert_eq!(stats.queries, 4);
/// # Ok::<(), conn_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ConnService<'a> {
    scene: Scene<'a>,
    cfg: ConnConfig,
    engine: RefCell<QueryEngine>,
    /// Obstacles collected once for the point-to-point distance family.
    field: OnceCell<Vec<Rect>>,
}

impl<'a> ConnService<'a> {
    /// A service over `scene` with the default configuration.
    pub fn new(scene: Scene<'a>) -> Self {
        ConnService::with_config(scene, ConnConfig::default())
    }

    /// A service over `scene` with an explicit default [`ConnConfig`]
    /// (individual queries may still override it via
    /// [`crate::QueryBuilder::config`]).
    pub fn with_config(scene: Scene<'a>, cfg: ConnConfig) -> Self {
        ConnService {
            scene,
            cfg,
            engine: RefCell::new(QueryEngine::new(cfg)),
            field: OnceCell::new(),
        }
    }

    /// The scene this service answers queries over.
    pub fn scene(&self) -> &Scene<'a> {
        &self.scene
    }

    /// The service's default configuration.
    pub fn config(&self) -> &ConnConfig {
        &self.cfg
    }

    fn obstacle_field(&self) -> &[Rect] {
        self.field.get_or_init(|| self.scene.obstacles())
    }

    /// Answers one query of any family on the service's long-lived
    /// engine. Answers are byte-identical to the corresponding legacy
    /// free function; tree I/O counters are reset per query exactly like
    /// the free functions do.
    ///
    /// Note on empty scenes: a scene with no data points (or no
    /// obstacles) is *legal* — CONN reports an unassigned cover, the
    /// point families report empty answers — matching the free-function
    /// semantics. Only the emptiness a [`Query`] itself can see (the join
    /// families' `other` set) is rejected at build time.
    pub fn execute(&self, query: &Query) -> Result<Response, Error> {
        // the flat obstacle field is only read by the point-to-point
        // distance family; collecting it for every query would tax each
        // free-function wrapper call with an O(|O|) tree scan
        let field: &[Rect] = match query.kind() {
            QueryKind::Odist { .. } | QueryKind::Route { .. } => self.obstacle_field(),
            _ => &[],
        };
        let mut engine = self.engine.borrow_mut();
        let (answer, stats) = dispatch(&mut engine, &self.scene, field, self.cfg, query, true);
        Ok(Response { answer, stats })
    }

    /// Answers a **mixed-family** workload across the shared worker pool
    /// (`0` workers = available parallelism — see
    /// [`ConnService::execute_batch_threads`]). Responses come back in
    /// workload order; per-query tree I/O is pooled into the returned
    /// [`BatchStats`] (the per-response stats report zero I/O), exactly
    /// like the per-family batch entry points.
    ///
    /// Pooling covers the **scene's** two trees. The `other` tree a join
    /// query carries is owned by the caller (and possibly shared with
    /// concurrent users), so the batch neither resets nor reads its
    /// counters — accesses to it are not part of `pooled`; run joins
    /// through [`ConnService::execute`] when their full I/O footprint
    /// matters.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<(Vec<Response>, BatchStats), Error> {
        self.execute_batch_threads(queries, 0)
    }

    /// [`ConnService::execute_batch`] with an explicit worker-pool size.
    pub fn execute_batch_threads(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Result<(Vec<Response>, BatchStats), Error> {
        let dt = self.scene.data_tree();
        let ot = self.scene.obstacle_tree();
        // The odist field cache is per-service (OnceCell is !Sync): fill
        // it before fanning out if any query needs it.
        let field: &[Rect] = if queries
            .iter()
            .any(|q| matches!(q.kind(), QueryKind::Odist { .. } | QueryKind::Route { .. }))
        {
            self.obstacle_field()
        } else {
            &[]
        };
        dt.reset_stats();
        ot.reset_stats();
        // Query-boundary elapsed time for QueryStats; the kernel loop
        // below never reads the clock.
        let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
        let scene = &self.scene;
        let cfg = self.cfg;
        let (answers, threads, per_query) = run_batch(queries, &cfg, threads, |engine, q| {
            dispatch(engine, scene, field, cfg, q, false)
        });
        let wall = started.elapsed();
        let mut pooled = QueryStats::default();
        let mut lat = Vec::with_capacity(per_query.len());
        for (_, s) in &per_query {
            pooled.accumulate(s);
            lat.push(s.cpu.as_secs_f64());
        }
        pooled.data_io = dt.stats();
        pooled.obstacle_io = ot.stats();
        let stats = BatchStats::from_parts(queries.len(), threads, wall, pooled, lat);
        let responses = answers
            .into_iter()
            .zip(per_query)
            .map(|(answer, (_, stats))| Response { answer, stats })
            .collect();
        Ok((responses, stats))
    }

    /// Opens a streaming trajectory CONN session over the scene (its own
    /// warm engine; the service's serial engine stays free for
    /// [`ConnService::execute`] calls alongside).
    pub fn open_session(&self, start: Point) -> TrajectorySession<'_, 'static> {
        TrajectorySession::new(
            self.scene.data_tree(),
            self.scene.obstacle_tree(),
            start,
            self.cfg,
        )
    }

    /// Opens a streaming trajectory COkNN session over the scene.
    pub fn open_coknn_session(
        &self,
        start: Point,
        k: usize,
    ) -> TrajectoryCoknnSession<'_, 'static> {
        TrajectoryCoknnSession::new(
            self.scene.data_tree(),
            self.scene.obstacle_tree(),
            start,
            k,
            self.cfg,
        )
    }
}

/// The one family dispatcher `execute` and the batch workers share.
/// `track_io = true` resets the scene trees' counters per query (the
/// serial / free-function contract); `false` leaves them to be pooled at
/// the batch level.
fn dispatch(
    engine: &mut QueryEngine,
    scene: &Scene<'_>,
    field: &[Rect],
    default_cfg: ConnConfig,
    query: &Query,
    track_io: bool,
) -> (Answer, QueryStats) {
    let cfg = query.config().copied().unwrap_or(default_cfg);
    engine.set_config(cfg);
    let dt = scene.data_tree();
    let ot = scene.obstacle_tree();
    match query.kind() {
        QueryKind::Conn { q } => {
            let (res, stats) = if track_io {
                engine.conn(dt, ot, q)
            } else {
                engine.conn_pooled_io(dt, ot, q)
            };
            (Answer::Conn(res), stats)
        }
        QueryKind::Coknn { q, k } => {
            let (res, stats) = if track_io {
                engine.coknn(dt, ot, q, *k)
            } else {
                engine.coknn_pooled_io(dt, ot, q, *k)
            };
            (Answer::Coknn(res), stats)
        }
        QueryKind::Onn { s, k } => {
            let (v, stats) = crate::onn::onn_search_impl(dt, ot, *s, *k, &cfg, track_io);
            (Answer::Onn(v), stats)
        }
        QueryKind::Range { s, radius } => {
            let (v, stats) = crate::orange::range_search_impl(dt, ot, *s, *radius, &cfg, track_io);
            (Answer::Range(v), stats)
        }
        QueryKind::Rnn { s } => {
            let (v, stats) = crate::rnn::rnn_impl(dt, ot, *s, &cfg, track_io);
            (Answer::Rnn(v), stats)
        }
        QueryKind::Odist { a, b } => {
            // Query-boundary elapsed time for QueryStats; the kernel loop
            // below never reads the clock.
            let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
            let retargets = engine.label_retargets();
            let d = engine.obstructed_distance(field, *a, *b);
            let mut stats = QueryStats {
                cpu: started.elapsed(),
                result_tuples: 1,
                ..QueryStats::default()
            };
            stats.reuse.label_retargets = engine.label_retargets() - retargets;
            (Answer::Odist(d), stats)
        }
        QueryKind::Route { a, b } => {
            // Query-boundary elapsed time for QueryStats; the kernel loop
            // below never reads the clock.
            let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
            let retargets = engine.label_retargets();
            let (dist, path) = engine.obstructed_route(field, *a, *b);
            let mut stats = QueryStats {
                cpu: started.elapsed(),
                result_tuples: 1,
                ..QueryStats::default()
            };
            stats.reuse.label_retargets = engine.label_retargets() - retargets;
            (Answer::Route { dist, path }, stats)
        }
        QueryKind::EDistanceJoin { other, e } => {
            let (pairs, stats) = engine.edistance_join_impl(dt, other, ot, *e, track_io);
            (Answer::EDistanceJoin(pairs), stats)
        }
        QueryKind::ClosestPair { other } => {
            let (best, stats) = engine.closest_pair_impl(dt, other, ot, track_io);
            (Answer::ClosestPair(best), stats)
        }
        QueryKind::Trajectory { route, k } => {
            if *k == 1 {
                let mut session =
                    TrajectorySession::with_engine(dt, ot, route.vertices()[0], engine);
                if !track_io {
                    session = session.pooled_io();
                }
                for &v in &route.vertices()[1..] {
                    session.push_leg(v);
                }
                let (res, stats) = session.finish();
                (Answer::Trajectory(res), stats)
            } else {
                let mut session =
                    TrajectoryCoknnSession::with_engine(dt, ot, route.vertices()[0], *k, engine);
                if !track_io {
                    session = session.pooled_io();
                }
                for &v in &route.vertices()[1..] {
                    session.push_leg(v);
                }
                let (legs, stats) = session.finish();
                (Answer::TrajectoryKnn(legs), stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coknn_search, conn_search, Query, Trajectory};
    use conn_geom::Segment;

    fn scene() -> Scene<'static> {
        Scene::new(
            vec![
                DataPoint::new(0, Point::new(10.0, 20.0)),
                DataPoint::new(1, Point::new(50.0, 8.0)),
                DataPoint::new(2, Point::new(90.0, 25.0)),
                DataPoint::new(3, Point::new(45.0, 60.0)),
            ],
            vec![
                Rect::new(30.0, 5.0, 40.0, 30.0),
                Rect::new(60.0, 10.0, 75.0, 18.0),
            ],
        )
    }

    #[test]
    fn scene_constructors_agree() {
        let s = scene();
        assert_eq!(s.num_points(), 4);
        assert_eq!(s.num_obstacles(), 2);
        assert_eq!(s.obstacles().len(), 2);
        let gen = Scene::uniform(30, 20, 7);
        assert_eq!(gen.num_points(), 30);
        assert_eq!(gen.num_obstacles(), 20);
        let cl = Scene::clustered(30, 20, 7);
        assert_eq!(cl.num_points(), 30);
    }

    #[test]
    fn execute_matches_free_functions() {
        let service = ConnService::new(scene());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let cfg = ConnConfig::default();

        let resp = service.execute(&Query::conn(q).build().unwrap()).unwrap();
        let (free, free_stats) = conn_search(
            service.scene().data_tree(),
            service.scene().obstacle_tree(),
            &q,
            &cfg,
        );
        let got = resp.answer.as_conn().unwrap();
        assert_eq!(got.entries().len(), free.entries().len());
        for (a, b) in got.entries().iter().zip(free.entries()) {
            assert_eq!(a.point.map(|p| p.id), b.point.map(|p| p.id));
            assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
        }
        assert_eq!(resp.stats.npe, free_stats.npe);
        assert_eq!(resp.stats.noe, free_stats.noe);

        let resp = service
            .execute(&Query::coknn(q, 2).build().unwrap())
            .unwrap();
        let (free, _) = coknn_search(
            service.scene().data_tree(),
            service.scene().obstacle_tree(),
            &q,
            2,
            &cfg,
        );
        assert_eq!(
            resp.answer.as_coknn().unwrap().entries().len(),
            free.entries().len()
        );
    }

    #[test]
    fn per_query_config_override_applies() {
        let service = ConnService::new(scene());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let blind = Query::conn(q)
            .config(ConnConfig::baseline_kernel())
            .build()
            .unwrap();
        let a = service.execute(&blind).unwrap();
        let b = service.execute(&Query::conn(q).build().unwrap()).unwrap();
        // both kernels agree on the answer values
        assert!(a
            .answer
            .as_conn()
            .unwrap()
            .values_equivalent(b.answer.as_conn().unwrap(), 1e-6));
    }

    #[test]
    fn mixed_batch_covers_every_family() {
        let service = ConnService::new(scene());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let other = std::sync::Arc::new(RStarTree::bulk_load(
            vec![
                DataPoint::new(100, Point::new(5.0, 50.0)),
                DataPoint::new(101, Point::new(95.0, 55.0)),
            ],
            4096,
        ));
        let route = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(60.0, 50.0),
        ]);
        let batch = vec![
            Query::conn(q).build().unwrap(),
            Query::coknn(q, 3).build().unwrap(),
            Query::onn(Point::new(50.0, 0.0), 2).build().unwrap(),
            Query::range(Point::new(50.0, 0.0), 60.0).build().unwrap(),
            Query::rnn(Point::new(20.0, 30.0)).build().unwrap(),
            Query::odist(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
                .build()
                .unwrap(),
            Query::route(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
                .build()
                .unwrap(),
            Query::edistance_join(std::sync::Arc::clone(&other), 80.0)
                .build()
                .unwrap(),
            Query::closest_pair(other).build().unwrap(),
            Query::trajectory(route, 1).build().unwrap(),
        ];
        let (responses, stats) = service.execute_batch_threads(&batch, 2).unwrap();
        assert_eq!(responses.len(), batch.len());
        assert_eq!(stats.queries, batch.len());
        assert!(stats.pooled.reads() > 0, "pooled tree I/O missing");
        for (resp, q) in responses.iter().zip(&batch) {
            assert_eq!(resp.answer.family(), q.kind().family());
            // inside a batch, per-query I/O is pooled at the batch level
            assert_eq!(resp.stats.reads(), 0);
        }
        // spot-check against serial execution
        for (resp, q) in responses.iter().zip(&batch) {
            let serial = service.execute(q).unwrap();
            match (&resp.answer, &serial.answer) {
                (Answer::Conn(a), Answer::Conn(b)) => {
                    assert_eq!(a.entries().len(), b.entries().len())
                }
                (Answer::Odist(a), Answer::Odist(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Answer::ClosestPair(a), Answer::ClosestPair(b)) => {
                    assert_eq!(a.is_some(), b.is_some())
                }
                _ => {}
            }
        }
    }

    #[test]
    fn open_session_matches_trajectory_search() {
        let service = ConnService::new(scene());
        let verts = [
            Point::new(0.0, 0.0),
            Point::new(70.0, 5.0),
            Point::new(70.0, 55.0),
        ];
        let mut session = service.open_session(verts[0]);
        for &v in &verts[1..] {
            session.push_leg(v);
        }
        let (plan, _) = session.finish();
        plan.check_cover().unwrap();
        let (free, _) = crate::trajectory_conn_search(
            service.scene().data_tree(),
            service.scene().obstacle_tree(),
            &Trajectory::new(verts.to_vec()),
            service.config(),
        );
        assert_eq!(plan.segments().len(), free.segments().len());
        for (a, b) in plan.segments().iter().zip(free.segments()) {
            assert_eq!(a.0.map(|p| p.id), b.0.map(|p| p.id));
            assert_eq!(a.1.lo.to_bits(), b.1.lo.to_bits());
            assert_eq!(a.1.hi.to_bits(), b.1.hi.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = ConnService::new(scene());
        let (responses, stats) = service.execute_batch(&[]).unwrap();
        assert!(responses.is_empty());
        assert_eq!(stats.queries, 0);
    }
}
