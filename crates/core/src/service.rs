//! The serving front door: [`Scene`] owns the indexed world, a
//! [`ConnService`] executes typed [`Query`] values against it.
//!
//! This is the one interface every query family is driven through — the
//! way a database exposes a single query interface over many plans:
//!
//! * [`Scene`] builds (or borrows) the data and obstacle R\*-trees, from
//!   raw vecs, the paper-style dataset generators, or trees the caller
//!   already holds;
//! * [`ConnService::execute`] answers one validated [`Query`] of *any*
//!   family on a warm engine from the service's persistent
//!   [`EnginePool`], with answers byte-identical to the legacy free
//!   functions (the `service_equivalence` suite enforces it);
//! * the service is `Send + Sync`: independent client threads call
//!   [`ConnService::execute`] concurrently, each against the scene epoch it pins at
//!   query start ([`ConnService::pin`]), while a writer publishes whole
//!   replacement scenes ([`ConnService::publish`]) without blocking
//!   readers — see [`crate::epoch`];
//! * [`ConnService::execute_batch`] is the **mixed-family** batch path:
//!   where [`crate::conn_batch`] / [`crate::coknn_batch`] /
//!   [`crate::trajectory_conn_batch`] each fan one homogeneous family,
//!   the service schedules a heterogeneous workload across the same
//!   engine pool and pools one [`BatchStats`];
//! * [`ConnService::sharded`] tiles giant scenes spatially
//!   ([`crate::shard`]): queries whose expansion bound fits one tile's
//!   coverage run on that shard alone, the rest fall back to the full
//!   scene (never a min-merge — see the shard module docs for why);
//! * streaming trajectory sessions hang off the pinned epoch
//!   ([`crate::SceneEpoch::open_session`]), so a session keeps its
//!   snapshot alive across legs however many epochs publish meanwhile.
//!
//! The legacy free functions remain as thin wrappers over this service,
//! so both surfaces stay in lock-step by construction.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use std::sync::Arc;
use std::time::Instant;

use conn_geom::{Point, Rect, Segment};
use conn_index::{RStarTree, DEFAULT_PAGE_SIZE};

use crate::batch::BatchStats;
use crate::coknn::CoknnResult;
use crate::config::ConnConfig;
use crate::conn::ConnResult;
use crate::engine::QueryEngine;
use crate::epoch::{EpochCell, PinnedEpoch, SceneEpoch};
use crate::error::Error;
use crate::live::{PatchReport, SceneDelta, StandingHandle, StandingRegistry};
use crate::pool::EnginePool;
use crate::query::{Answer, Query, QueryKind, Response};
use crate::session::{TrajectoryCoknnSession, TrajectorySession};
use crate::shard::{ShardSet, ShardSpec};
use crate::stats::{QueryStats, ReuseCounters};
use crate::types::DataPoint;

/// One R\*-tree: owned by the scene, borrowed from the caller, or shared
/// (`Arc`) with a live-mutation front end that structurally shares
/// untouched trees across derived epochs.
#[derive(Debug)]
enum TreeSlot<'a, T> {
    Owned(RStarTree<T>),
    Borrowed(&'a RStarTree<T>),
    Shared(Arc<RStarTree<T>>),
}

impl<T> TreeSlot<'_, T> {
    fn tree(&self) -> &RStarTree<T> {
        match self {
            TreeSlot::Owned(t) => t,
            TreeSlot::Borrowed(t) => t,
            TreeSlot::Shared(t) => t,
        }
    }

    /// Mutable access, only when the scene owns the tree outright.
    fn tree_mut(&mut self) -> Option<&mut RStarTree<T>> {
        match self {
            TreeSlot::Owned(t) => Some(t),
            TreeSlot::Borrowed(_) | TreeSlot::Shared(_) => None,
        }
    }

    /// How this slot holds its tree, for error messages.
    fn holding(&self) -> &'static str {
        match self {
            TreeSlot::Owned(_) => "owns",
            TreeSlot::Borrowed(_) => "borrows",
            TreeSlot::Shared(_) => "shares",
        }
    }
}

/// The indexed world every query family runs against: the data-point and
/// obstacle R\*-trees.
///
/// Build it from raw vecs ([`Scene::new`] /
/// [`Scene::with_page_size`]), from the paper-style dataset generators
/// ([`Scene::uniform`] / [`Scene::clustered`]), from trees you already
/// own ([`Scene::from_trees`]), or borrow trees in place
/// ([`Scene::borrowing`] — the zero-copy path the legacy free-function
/// wrappers use).
#[derive(Debug)]
pub struct Scene<'a> {
    data: TreeSlot<'a, DataPoint>,
    obstacles: TreeSlot<'a, Rect>,
}

impl Scene<'static> {
    /// Indexes `points` and `obstacles` in owned R\*-trees with the
    /// default 4 KB page size.
    pub fn new(points: Vec<DataPoint>, obstacles: Vec<Rect>) -> Self {
        Scene::with_page_size(points, obstacles, DEFAULT_PAGE_SIZE)
    }

    /// [`Scene::new`] with an explicit page size.
    pub fn with_page_size(points: Vec<DataPoint>, obstacles: Vec<Rect>, page_size: usize) -> Self {
        Scene {
            data: TreeSlot::Owned(RStarTree::bulk_load(points, page_size)),
            obstacles: TreeSlot::Owned(RStarTree::bulk_load(obstacles, page_size)),
        }
    }

    /// Adopts trees the caller already built (bulk-loaded, persisted, …).
    pub fn from_trees(data_tree: RStarTree<DataPoint>, obstacle_tree: RStarTree<Rect>) -> Self {
        Scene {
            data: TreeSlot::Owned(data_tree),
            obstacles: TreeSlot::Owned(obstacle_tree),
        }
    }

    /// Wraps shared trees — the cheap-derived-epoch path of
    /// [`crate::LiveScene`]: a mutation forks only the touched tree and
    /// republish shares the untouched one by `Arc`, so publication cost is
    /// proportional to what changed, not to the scene. A shared scene is
    /// frozen: the in-place mutators return [`Error::FrozenScene`].
    pub fn shared(
        data_tree: Arc<RStarTree<DataPoint>>,
        obstacle_tree: Arc<RStarTree<Rect>>,
    ) -> Self {
        Scene {
            data: TreeSlot::Shared(data_tree),
            obstacles: TreeSlot::Shared(obstacle_tree),
        }
    }

    /// A paper-style scene: LA-like obstacles with uniformly distributed
    /// data points (the UL combination of §5).
    pub fn uniform(n_points: usize, n_obstacles: usize, seed: u64) -> Self {
        let obstacles = conn_datasets::la_like(n_obstacles, seed);
        let points = DataPoint::from_points(&conn_datasets::uniform_points(
            n_points,
            seed.wrapping_add(1),
            &obstacles,
        ));
        Scene::new(points, obstacles)
    }

    /// A paper-style scene: LA-like obstacles with CA-like *clustered*
    /// data points (the CL combination of §5).
    pub fn clustered(n_points: usize, n_obstacles: usize, seed: u64) -> Self {
        let obstacles = conn_datasets::la_like(n_obstacles, seed);
        let points = DataPoint::from_points(&conn_datasets::ca_like(
            n_points,
            seed.wrapping_add(1),
            &obstacles,
        ));
        Scene::new(points, obstacles)
    }
}

impl<'a> Scene<'a> {
    /// Borrows trees in place — no copy, the scene lives as long as the
    /// borrow. This is how the legacy free functions wrap the service.
    pub fn borrowing(
        data_tree: &'a RStarTree<DataPoint>,
        obstacle_tree: &'a RStarTree<Rect>,
    ) -> Scene<'a> {
        Scene {
            data: TreeSlot::Borrowed(data_tree),
            obstacles: TreeSlot::Borrowed(obstacle_tree),
        }
    }

    /// The data-point tree.
    pub fn data_tree(&self) -> &RStarTree<DataPoint> {
        self.data.tree()
    }

    /// The obstacle tree.
    pub fn obstacle_tree(&self) -> &RStarTree<Rect> {
        self.obstacles.tree()
    }

    /// Number of data points in the scene.
    pub fn num_points(&self) -> usize {
        self.data_tree().len()
    }

    /// Number of obstacles in the scene.
    pub fn num_obstacles(&self) -> usize {
        self.obstacle_tree().len()
    }

    /// All obstacles, collected from the tree (the flat field the
    /// point-to-point distance kernel primes its graph from).
    pub fn obstacles(&self) -> Vec<Rect> {
        self.obstacle_tree().iter_items().copied().collect()
    }

    /// True when the scene owns both trees outright and may be mutated in
    /// place; borrowed and shared scenes are frozen.
    pub fn is_mutable(&self) -> bool {
        matches!(self.data, TreeSlot::Owned(_)) && matches!(self.obstacles, TreeSlot::Owned(_))
    }

    fn frozen(&self, op: &str) -> Error {
        let how = match (&self.data, &self.obstacles) {
            (TreeSlot::Owned(_), slot) => slot.holding(),
            (slot, _) => slot.holding(),
        };
        Error::frozen_scene(format!(
            "cannot {op}: this scene {how} its trees, so repairing them in place would \
             mutate (or silently clone) state the caller still holds; build the scene \
             with an owning constructor (Scene::new / Scene::from_trees) to mutate it, \
             or drive mutations through LiveScene"
        ))
    }

    /// Inserts a data point by in-place R\*-tree repair. Owned scenes
    /// only: borrowed/shared scenes return [`Error::FrozenScene`].
    pub fn insert_site(&mut self, p: DataPoint) -> Result<(), Error> {
        let Some(t) = self.data.tree_mut() else {
            return Err(self.frozen("insert_site"));
        };
        t.insert(p);
        Ok(())
    }

    /// Removes the data point at `pos` (exact coordinate match) by
    /// in-place R\*-tree repair; `None` when no point sits there. Owned
    /// scenes only: borrowed/shared scenes return [`Error::FrozenScene`].
    pub fn remove_site(&mut self, pos: Point) -> Result<Option<DataPoint>, Error> {
        let Some(t) = self.data.tree_mut() else {
            return Err(self.frozen("remove_site"));
        };
        Ok(t.delete_by_mbr(&Rect::from_point(pos)))
    }

    /// Inserts an obstacle by in-place R\*-tree repair. Owned scenes only:
    /// borrowed/shared scenes return [`Error::FrozenScene`].
    pub fn insert_obstacle(&mut self, r: Rect) -> Result<(), Error> {
        let Some(t) = self.obstacles.tree_mut() else {
            return Err(self.frozen("insert_obstacle"));
        };
        t.insert(r);
        Ok(())
    }

    /// Removes the obstacle matching `r` (exact coordinate match) by
    /// in-place R\*-tree repair; `None` when no such obstacle exists.
    /// Owned scenes only: borrowed/shared scenes return
    /// [`Error::FrozenScene`].
    pub fn remove_obstacle(&mut self, r: &Rect) -> Result<Option<Rect>, Error> {
        let Some(t) = self.obstacles.tree_mut() else {
            return Err(self.frozen("remove_obstacle"));
        };
        Ok(t.delete_by_mbr(r))
    }
}

/// The unified execution handle: one typed front door for every query
/// family over epoch-published [`Scene`]s.
///
/// The service is `Send + Sync` end to end: every call pins the current
/// [`SceneEpoch`] (an `Arc` snapshot — see [`ConnService::pin`]), borrows
/// a warm engine from the persistent [`EnginePool`], and runs entirely
/// against that snapshot. Writers swap in whole replacement scenes with
/// [`ConnService::publish`]; a published-over epoch stays alive until its
/// last pinned reader drops, so mid-query publications can never tear an
/// answer. There is no interior mutability in this type beyond the
/// publication slot and the pool locks (the
/// `no-interior-mutability-in-service` conn-lint rule keeps it that way).
///
/// [`execute`]: ConnService::execute
/// [`execute_batch`]: ConnService::execute_batch
///
/// ```
/// use conn_core::{ConnService, DataPoint, Query, Scene};
/// use conn_geom::{Point, Rect, Segment};
///
/// let scene = Scene::new(
///     vec![
///         DataPoint::new(0, Point::new(20.0, 60.0)),
///         DataPoint::new(1, Point::new(80.0, 60.0)),
///     ],
///     vec![Rect::new(45.0, 30.0, 55.0, 70.0)],
/// );
/// let service = ConnService::new(scene);
///
/// let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
/// let response = service.execute(&Query::conn(q).build()?)?;
/// let conn = response.answer.as_conn().expect("conn answer");
/// assert!(!conn.entries().is_empty());
/// assert!(response.stats.npe >= 1);
///
/// // …a mixed-family batch through the same handle:
/// let batch = vec![
///     Query::conn(q).build()?,
///     Query::coknn(q, 2).build()?,
///     Query::onn(Point::new(50.0, 0.0), 1).build()?,
///     Query::odist(Point::new(0.0, 0.0), Point::new(100.0, 0.0)).build()?,
/// ];
/// let (responses, stats) = service.execute_batch(&batch)?;
/// assert_eq!(responses.len(), 4);
/// assert_eq!(stats.queries, 4);
///
/// // …and a whole-scene update published under running readers:
/// let pin = service.pin();
/// let epoch = service.publish(Scene::new(
///     vec![DataPoint::new(2, Point::new(50.0, 10.0))],
///     vec![],
/// ));
/// assert_eq!(epoch, 1);
/// assert_eq!(pin.epoch(), 0); // the pinned snapshot is unaffected
/// # Ok::<(), conn_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ConnService<'a> {
    cfg: ConnConfig,
    epochs: EpochCell<'a>,
    pool: EnginePool,
    shard_spec: Option<ShardSpec>,
    /// Standing queries kept resident and patched per scene delta (see
    /// [`crate::live`]). Justified lock: held per registry operation, never
    /// across an epoch build.
    standing: StandingRegistry, // lint:allow(no-interior-mutability-in-service)
}

impl<'a> ConnService<'a> {
    /// A service over `scene` with the default configuration.
    pub fn new(scene: Scene<'a>) -> Self {
        ConnService::with_config(scene, ConnConfig::default())
    }

    /// A service over `scene` with an explicit default [`ConnConfig`]
    /// (individual queries may still override it via
    /// [`crate::QueryBuilder::config`]).
    pub fn with_config(scene: Scene<'a>, cfg: ConnConfig) -> Self {
        ConnService {
            cfg,
            epochs: EpochCell::new(scene, None),
            pool: EnginePool::new(cfg),
            shard_spec: None,
            standing: StandingRegistry::default(),
        }
    }

    /// A spatially sharded service: the scene (and every scene published
    /// later) is tiled per `spec`; point- and segment-anchored queries
    /// whose expansion bound fits one tile's coverage are answered on
    /// that shard alone ([`ReuseCounters::shard_local`]), the rest fall
    /// back to the full scene ([`ReuseCounters::shard_merges`]). Answers
    /// are equivalent to the unsharded service (proptest-pinned at 1e-6;
    /// split positions may differ by Dijkstra tie-break ULPs on the
    /// rebuilt shard trees).
    pub fn sharded(scene: Scene<'a>, cfg: ConnConfig, spec: ShardSpec) -> Self {
        ConnService {
            cfg,
            epochs: EpochCell::new(scene, Some(spec)),
            pool: EnginePool::new(cfg),
            shard_spec: Some(spec),
            standing: StandingRegistry::default(),
        }
    }

    /// Pins the currently published scene epoch: a cheap `Arc` clone
    /// every query in flight runs against. The snapshot stays fully
    /// alive — trees, obstacle field, shards — until the last pin drops,
    /// however many epochs publish in the meantime.
    pub fn pin(&self) -> PinnedEpoch<'a> {
        self.epochs.pin()
    }

    /// Publishes `scene` as the next epoch (sharded per the service's
    /// [`ShardSpec`] if any) and returns its number. Readers pinned to
    /// older epochs are unaffected; new pins see the new scene.
    pub fn publish(&self, scene: Scene<'a>) -> u64 {
        self.epochs.publish(scene, self.shard_spec)
    }

    /// The number of the currently published epoch (0 at construction).
    pub fn current_epoch(&self) -> u64 {
        self.epochs.current_epoch()
    }

    /// How many published-over epochs have been fully released (their
    /// last pin dropped) — the deferred-retirement ledger.
    pub fn retired_epochs(&self) -> u64 {
        self.epochs.retired()
    }

    /// [`ConnService::retired_epochs`] under the ledger's canonical name:
    /// epochs whose last pin has dropped.
    pub fn epochs_retired(&self) -> u64 {
        self.epochs.retired()
    }

    /// Epochs still alive: the current one plus every published-over epoch
    /// a reader still pins. Balances the ledger —
    /// `epochs_live() == current_epoch() + 1 - epochs_retired()` (epoch
    /// numbering starts at 0).
    pub fn epochs_live(&self) -> u64 {
        self.epochs.live()
    }

    /// Registers a standing query: executes it once against the current
    /// epoch and keeps the result resident. Every
    /// [`ConnService::publish_delta`] then patches the resident answer —
    /// kept untouched when the delta falls outside the query's certificate
    /// region, tuple-patched or kernel-patched when a surgical repair
    /// applies, recomputed otherwise. Read the live answer back with
    /// [`ConnService::standing`].
    pub fn register(&self, query: Query) -> Result<StandingHandle, Error> {
        let pin = self.pin();
        let response = self.execute_at(&pin, &query)?;
        Ok(self.standing.register(&pin, &self.cfg, query, response))
    }

    /// The resident answer of a standing query (`None` after
    /// [`ConnService::unregister`], or for a foreign handle).
    pub fn standing(&self, handle: &StandingHandle) -> Option<Answer> {
        self.standing.answer(handle)
    }

    /// Number of standing queries currently resident.
    pub fn standing_count(&self) -> usize {
        self.standing.len()
    }

    /// Drops a standing query; true when the handle was resident.
    pub fn unregister(&self, handle: StandingHandle) -> bool {
        self.standing.unregister(handle)
    }

    /// Publishes `scene` as the next epoch *as a known single-mutation
    /// delta*, then patches every standing query against the new epoch
    /// (see [`ConnService::register`]). This is the live-scene publication
    /// path ([`crate::LiveScene`] drives it); compared to
    /// [`ConnService::publish`] + re-running every standing query, deltas
    /// outside a query's certificate region cost nothing.
    pub fn publish_delta(&self, scene: Scene<'a>, delta: &SceneDelta) -> (u64, PatchReport) {
        let epoch = self.epochs.publish(scene, self.shard_spec);
        let pin = self.pin();
        let cfg = self.cfg;
        // apply() returns the patch work's pooled QueryStats (with
        // `delta_publishes = 1`), which with_engine folds into the pool's
        // lifetime totals — the BENCH_live counter thread.
        let (report, _stats) = self
            .pool
            .with_engine(|engine| self.standing.apply(engine, &pin, &cfg, delta));
        (epoch, report)
    }

    /// The service's default configuration.
    pub fn config(&self) -> &ConnConfig {
        &self.cfg
    }

    /// The tiling of this service, if it was built with
    /// [`ConnService::sharded`].
    pub fn shard_spec(&self) -> Option<&ShardSpec> {
        self.shard_spec.as_ref()
    }

    /// Lifetime reuse-counter totals across the engine pool — the
    /// race-free aggregate of every query this service has served,
    /// serial and batch (`sight_tests`, `sweep_events`, `shard_local`,
    /// …).
    pub fn reuse_totals(&self) -> ReuseCounters {
        self.pool.reuse_totals()
    }

    /// Answers one query of any family against the *current* epoch on a
    /// warm pool engine. Answers are byte-identical to the corresponding
    /// legacy free function; tree I/O counters are reset per query
    /// exactly like the free functions do (under concurrent executes the
    /// per-query I/O attribution on the shared trees is best-effort —
    /// the counters themselves are atomic).
    ///
    /// Note on empty scenes: a scene with no data points (or no
    /// obstacles) is *legal* — CONN reports an unassigned cover, the
    /// point families report empty answers — matching the free-function
    /// semantics. Only the emptiness a [`Query`] itself can see (the join
    /// families' `other` set) is rejected at build time.
    pub fn execute(&self, query: &Query) -> Result<Response, Error> {
        self.execute_at(&self.pin(), query)
    }

    /// [`ConnService::execute`] against an explicitly pinned epoch — the
    /// snapshot-isolation primitive: every read of this call sees `pin`'s
    /// scene, whatever publishes concurrently.
    pub fn execute_at(&self, pin: &PinnedEpoch<'a>, query: &Query) -> Result<Response, Error> {
        // the flat obstacle field is only read by the point-to-point
        // distance family; collecting it for every query would tax each
        // free-function wrapper call with an O(|O|) tree scan
        let field: &[Rect] = match query.kind() {
            QueryKind::Odist { .. } | QueryKind::Route { .. } => pin.obstacle_field(),
            _ => &[],
        };
        let cfg = self.cfg;
        let (answer, stats) = self
            .pool
            .with_engine(|engine| shard_dispatch(engine, pin, field, cfg, query, true));
        Ok(Response { answer, stats })
    }

    /// Answers a **mixed-family** workload across the persistent engine
    /// pool (`0` workers = available parallelism — see
    /// [`ConnService::execute_batch_threads`]). Responses come back in
    /// workload order; per-query tree I/O is pooled into the returned
    /// [`BatchStats`] (the per-response stats report zero I/O), exactly
    /// like the per-family batch entry points.
    ///
    /// Pooling covers the **epoch's** two trees. The `other` tree a join
    /// query carries is owned by the caller (and possibly shared with
    /// concurrent users), so the batch neither resets nor reads its
    /// counters — accesses to it are not part of `pooled`; run joins
    /// through [`ConnService::execute`] when their full I/O footprint
    /// matters.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<(Vec<Response>, BatchStats), Error> {
        self.execute_batch_threads(queries, 0)
    }

    /// [`ConnService::execute_batch`] with an explicit worker count. The
    /// whole batch pins one epoch up front, so every query of the batch
    /// sees the same scene whatever publishes mid-flight.
    pub fn execute_batch_threads(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Result<(Vec<Response>, BatchStats), Error> {
        self.execute_batch_at(&self.pin(), queries, threads)
    }

    /// [`ConnService::execute_batch_threads`] against an explicitly
    /// pinned epoch.
    pub fn execute_batch_at(
        &self,
        pin: &PinnedEpoch<'a>,
        queries: &[Query],
        threads: usize,
    ) -> Result<(Vec<Response>, BatchStats), Error> {
        let dt = pin.scene().data_tree();
        let ot = pin.scene().obstacle_tree();
        // The epoch's field cache is filled before fanning out so workers
        // share one collection pass.
        let field: &[Rect] = if queries
            .iter()
            .any(|q| matches!(q.kind(), QueryKind::Odist { .. } | QueryKind::Route { .. }))
        {
            pin.obstacle_field()
        } else {
            &[]
        };
        dt.reset_stats();
        ot.reset_stats();
        // Query-boundary elapsed time for QueryStats; the kernel loop
        // below never reads the clock.
        let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
        let cfg = self.cfg;
        let (answers, threads, per_query) = self.pool.run(queries, threads, |engine, q| {
            shard_dispatch(engine, pin, field, cfg, q, false)
        });
        let wall = started.elapsed();
        let mut pooled = QueryStats::default();
        let mut lat = Vec::with_capacity(per_query.len());
        for (_, s) in &per_query {
            pooled.accumulate(s);
            lat.push(s.cpu.as_secs_f64());
        }
        pooled.data_io = dt.stats();
        pooled.obstacle_io = ot.stats();
        let stats = BatchStats::from_parts(queries.len(), threads, wall, pooled, lat);
        let responses = answers
            .into_iter()
            .zip(per_query)
            .map(|(answer, (_, stats))| Response { answer, stats })
            .collect();
        Ok((responses, stats))
    }
}

/// Shard-aware wrapper around [`dispatch`]: on sharded epochs, routes
/// point/segment-anchored families to their home shard and serves from it
/// when the locality certificate holds; everything else (and every
/// straddling query) runs against the full scene.
fn shard_dispatch(
    engine: &mut QueryEngine,
    epoch: &SceneEpoch<'_>,
    field: &[Rect],
    default_cfg: ConnConfig,
    query: &Query,
    track_io: bool,
) -> (Answer, QueryStats) {
    if let Some(shards) = epoch.shards() {
        match try_shard(engine, shards, default_cfg, query, track_io) {
            ShardOutcome::Served(answer, mut stats) => {
                stats.reuse.shard_local = 1;
                return (answer, *stats);
            }
            ShardOutcome::Straddles => {
                let (answer, mut stats) =
                    dispatch(engine, epoch.scene(), field, default_cfg, query, track_io);
                stats.reuse.shard_merges = 1;
                return (answer, stats);
            }
            ShardOutcome::NotShardable => {}
        }
    }
    dispatch(engine, epoch.scene(), field, default_cfg, query, track_io)
}

/// Outcome of a shard-local attempt.
enum ShardOutcome {
    /// The certificate held: the shard answer is the full-scene answer.
    Served(Answer, Box<QueryStats>),
    /// The expansion bound straddled the coverage margin (or the shard
    /// could not bound it); the attempt is discarded and the caller runs
    /// the full scene. Discarded-attempt stats are dropped — the final
    /// [`QueryStats`] describe the run that produced the answer.
    Straddles,
    /// The family has no local expansion bound (joins, reverse NN,
    /// point-to-point distance, trajectories): always full-scene.
    NotShardable,
}

/// Runs the query on its home shard if the family supports a locality
/// certificate (see [`crate::shard`] for the soundness argument).
fn try_shard(
    engine: &mut QueryEngine,
    shards: &ShardSet,
    default_cfg: ConnConfig,
    query: &Query,
    track_io: bool,
) -> ShardOutcome {
    let cfg = query.config().copied().unwrap_or(default_cfg);
    match query.kind() {
        QueryKind::Conn { q } => {
            let anchor = Rect::from_segment(q);
            let Some(shard) = shards.route(&anchor) else {
                return ShardOutcome::Straddles;
            };
            engine.set_config(cfg);
            let (res, stats) = if track_io {
                engine.conn(shard.data_tree(), shard.obstacle_tree(), q)
            } else {
                engine.conn_pooled_io(shard.data_tree(), shard.obstacle_tree(), q)
            };
            match conn_dmax(&res, q) {
                Some(dmax) if shard.certifies(&anchor, dmax) => {
                    ShardOutcome::Served(Answer::Conn(res), Box::new(stats))
                }
                _ => ShardOutcome::Straddles,
            }
        }
        QueryKind::Coknn { q, k } => {
            let anchor = Rect::from_segment(q);
            let Some(shard) = shards.route(&anchor) else {
                return ShardOutcome::Straddles;
            };
            engine.set_config(cfg);
            let (res, stats) = if track_io {
                engine.coknn(shard.data_tree(), shard.obstacle_tree(), q, *k)
            } else {
                engine.coknn_pooled_io(shard.data_tree(), shard.obstacle_tree(), q, *k)
            };
            match coknn_dmax(&res, q, *k) {
                Some(dmax) if shard.certifies(&anchor, dmax) => {
                    ShardOutcome::Served(Answer::Coknn(res), Box::new(stats))
                }
                _ => ShardOutcome::Straddles,
            }
        }
        QueryKind::Onn { s, k } => {
            let anchor = Rect::from_point(*s);
            let Some(shard) = shards.route(&anchor) else {
                return ShardOutcome::Straddles;
            };
            let (v, stats) = crate::onn::onn_search_impl(
                shard.data_tree(),
                shard.obstacle_tree(),
                *s,
                *k,
                &cfg,
                track_io,
            );
            match onn_dmax(&v, *k) {
                Some(dmax) if shard.certifies(&anchor, dmax) => {
                    ShardOutcome::Served(Answer::Onn(v), Box::new(stats))
                }
                _ => ShardOutcome::Straddles,
            }
        }
        QueryKind::Range { s, radius } => {
            let anchor = Rect::from_point(*s);
            let Some(shard) = shards.route(&anchor) else {
                return ShardOutcome::Straddles;
            };
            // The radius *is* the expansion bound, so the certificate is
            // decidable before running anything.
            if !shard.certifies(&anchor, *radius) {
                return ShardOutcome::Straddles;
            }
            let (v, stats) = crate::orange::range_search_impl(
                shard.data_tree(),
                shard.obstacle_tree(),
                *s,
                *radius,
                &cfg,
                track_io,
            );
            ShardOutcome::Served(Answer::Range(v), Box::new(stats))
        }
        _ => ShardOutcome::NotShardable,
    }
}

/// Largest distance a CONN answer reports anywhere on the segment: per
/// entry, `d(t) = base + |cp − q(t)|` is convex in `t`, so the maximum
/// over the entry's interval is at an endpoint. `None` when any stretch
/// is unassigned (the shard saw no candidate — the full scene might).
pub(crate) fn conn_dmax(res: &ConnResult, q: &Segment) -> Option<f64> {
    if res.entries().is_empty() {
        return None;
    }
    let mut dmax = 0.0f64;
    for e in res.entries() {
        e.point?;
        let cp = e.cp?;
        for t in [e.interval.lo, e.interval.hi] {
            dmax = dmax.max(cp.base + cp.pos.dist(q.at(t)));
        }
    }
    Some(dmax)
}

/// Largest distance any of the k members reports anywhere on the segment
/// (`None` when any stretch has fewer than `k` members in the shard).
pub(crate) fn coknn_dmax(res: &CoknnResult, q: &Segment, k: usize) -> Option<f64> {
    if res.entries().is_empty() {
        return None;
    }
    let mut dmax = 0.0f64;
    for e in res.entries() {
        if e.members.len() < k {
            return None;
        }
        for m in &e.members {
            for t in [e.interval.lo, e.interval.hi] {
                dmax = dmax.max(m.cp.base + m.cp.pos.dist(q.at(t)));
            }
        }
    }
    Some(dmax)
}

/// The k-th ONN distance (`None` when the shard found fewer than `k`
/// reachable points).
pub(crate) fn onn_dmax(v: &[(DataPoint, f64)], k: usize) -> Option<f64> {
    if v.len() < k {
        return None;
    }
    let mut dmax = 0.0f64;
    for (_, d) in v {
        if !d.is_finite() {
            return None;
        }
        dmax = dmax.max(*d);
    }
    Some(dmax)
}

/// The one family dispatcher `execute` and the batch workers share.
/// `track_io = true` resets the scene trees' counters per query (the
/// serial / free-function contract); `false` leaves them to be pooled at
/// the batch level.
pub(crate) fn dispatch(
    engine: &mut QueryEngine,
    scene: &Scene<'_>,
    field: &[Rect],
    default_cfg: ConnConfig,
    query: &Query,
    track_io: bool,
) -> (Answer, QueryStats) {
    let cfg = query.config().copied().unwrap_or(default_cfg);
    engine.set_config(cfg);
    let dt = scene.data_tree();
    let ot = scene.obstacle_tree();
    match query.kind() {
        QueryKind::Conn { q } => {
            let (res, stats) = if track_io {
                engine.conn(dt, ot, q)
            } else {
                engine.conn_pooled_io(dt, ot, q)
            };
            (Answer::Conn(res), stats)
        }
        QueryKind::Coknn { q, k } => {
            let (res, stats) = if track_io {
                engine.coknn(dt, ot, q, *k)
            } else {
                engine.coknn_pooled_io(dt, ot, q, *k)
            };
            (Answer::Coknn(res), stats)
        }
        QueryKind::Onn { s, k } => {
            let (v, stats) = crate::onn::onn_search_impl(dt, ot, *s, *k, &cfg, track_io);
            (Answer::Onn(v), stats)
        }
        QueryKind::Range { s, radius } => {
            let (v, stats) = crate::orange::range_search_impl(dt, ot, *s, *radius, &cfg, track_io);
            (Answer::Range(v), stats)
        }
        QueryKind::Rnn { s } => {
            let (v, stats) = crate::rnn::rnn_impl(dt, ot, *s, &cfg, track_io);
            (Answer::Rnn(v), stats)
        }
        QueryKind::Odist { a, b } => {
            // Query-boundary elapsed time for QueryStats; the kernel loop
            // below never reads the clock.
            let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
            let retargets = engine.label_retargets();
            let d = engine.obstructed_distance(field, *a, *b);
            let mut stats = QueryStats {
                cpu: started.elapsed(),
                result_tuples: 1,
                ..QueryStats::default()
            };
            stats.reuse.label_retargets = engine.label_retargets() - retargets;
            (Answer::Odist(d), stats)
        }
        QueryKind::Route { a, b } => {
            // Query-boundary elapsed time for QueryStats; the kernel loop
            // below never reads the clock.
            let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
            let retargets = engine.label_retargets();
            let (dist, path) = engine.obstructed_route(field, *a, *b);
            let mut stats = QueryStats {
                cpu: started.elapsed(),
                result_tuples: 1,
                ..QueryStats::default()
            };
            stats.reuse.label_retargets = engine.label_retargets() - retargets;
            (Answer::Route { dist, path }, stats)
        }
        QueryKind::EDistanceJoin { other, e } => {
            let (pairs, stats) = engine.edistance_join_impl(dt, other, ot, *e, track_io);
            (Answer::EDistanceJoin(pairs), stats)
        }
        QueryKind::ClosestPair { other } => {
            let (best, stats) = engine.closest_pair_impl(dt, other, ot, track_io);
            (Answer::ClosestPair(best), stats)
        }
        QueryKind::Trajectory { route, k } => {
            if *k == 1 {
                let mut session =
                    TrajectorySession::with_engine(dt, ot, route.vertices()[0], engine);
                if !track_io {
                    session = session.pooled_io();
                }
                for &v in &route.vertices()[1..] {
                    session.push_leg(v);
                }
                let (res, stats) = session.finish();
                (Answer::Trajectory(res), stats)
            } else {
                let mut session =
                    TrajectoryCoknnSession::with_engine(dt, ot, route.vertices()[0], *k, engine);
                if !track_io {
                    session = session.pooled_io();
                }
                for &v in &route.vertices()[1..] {
                    session.push_leg(v);
                }
                let (legs, stats) = session.finish();
                (Answer::TrajectoryKnn(legs), stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coknn_search, conn_search, Query, Trajectory};
    use conn_geom::Point;

    fn scene() -> Scene<'static> {
        Scene::new(
            vec![
                DataPoint::new(0, Point::new(10.0, 20.0)),
                DataPoint::new(1, Point::new(50.0, 8.0)),
                DataPoint::new(2, Point::new(90.0, 25.0)),
                DataPoint::new(3, Point::new(45.0, 60.0)),
            ],
            vec![
                Rect::new(30.0, 5.0, 40.0, 30.0),
                Rect::new(60.0, 10.0, 75.0, 18.0),
            ],
        )
    }

    #[test]
    fn scene_constructors_agree() {
        let s = scene();
        assert_eq!(s.num_points(), 4);
        assert_eq!(s.num_obstacles(), 2);
        assert_eq!(s.obstacles().len(), 2);
        let gen = Scene::uniform(30, 20, 7);
        assert_eq!(gen.num_points(), 30);
        assert_eq!(gen.num_obstacles(), 20);
        let cl = Scene::clustered(30, 20, 7);
        assert_eq!(cl.num_points(), 30);
    }

    #[test]
    fn execute_matches_free_functions() {
        let service = ConnService::new(scene());
        let pin = service.pin();
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let cfg = ConnConfig::default();

        let resp = service.execute(&Query::conn(q).build().unwrap()).unwrap();
        let (free, free_stats) = conn_search(
            pin.scene().data_tree(),
            pin.scene().obstacle_tree(),
            &q,
            &cfg,
        );
        let got = resp.answer.as_conn().unwrap();
        assert_eq!(got.entries().len(), free.entries().len());
        for (a, b) in got.entries().iter().zip(free.entries()) {
            assert_eq!(a.point.map(|p| p.id), b.point.map(|p| p.id));
            assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
        }
        assert_eq!(resp.stats.npe, free_stats.npe);
        assert_eq!(resp.stats.noe, free_stats.noe);

        let resp = service
            .execute(&Query::coknn(q, 2).build().unwrap())
            .unwrap();
        let (free, _) = coknn_search(
            pin.scene().data_tree(),
            pin.scene().obstacle_tree(),
            &q,
            2,
            &cfg,
        );
        assert_eq!(
            resp.answer.as_coknn().unwrap().entries().len(),
            free.entries().len()
        );
    }

    #[test]
    fn per_query_config_override_applies() {
        let service = ConnService::new(scene());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let blind = Query::conn(q)
            .config(ConnConfig::baseline_kernel())
            .build()
            .unwrap();
        let a = service.execute(&blind).unwrap();
        let b = service.execute(&Query::conn(q).build().unwrap()).unwrap();
        // both kernels agree on the answer values
        assert!(a
            .answer
            .as_conn()
            .unwrap()
            .values_equivalent(b.answer.as_conn().unwrap(), 1e-6));
    }

    #[test]
    fn mixed_batch_covers_every_family() {
        let service = ConnService::new(scene());
        let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let other = std::sync::Arc::new(RStarTree::bulk_load(
            vec![
                DataPoint::new(100, Point::new(5.0, 50.0)),
                DataPoint::new(101, Point::new(95.0, 55.0)),
            ],
            4096,
        ));
        let route = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(60.0, 50.0),
        ]);
        let batch = vec![
            Query::conn(q).build().unwrap(),
            Query::coknn(q, 3).build().unwrap(),
            Query::onn(Point::new(50.0, 0.0), 2).build().unwrap(),
            Query::range(Point::new(50.0, 0.0), 60.0).build().unwrap(),
            Query::rnn(Point::new(20.0, 30.0)).build().unwrap(),
            Query::odist(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
                .build()
                .unwrap(),
            Query::route(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
                .build()
                .unwrap(),
            Query::edistance_join(std::sync::Arc::clone(&other), 80.0)
                .build()
                .unwrap(),
            Query::closest_pair(other).build().unwrap(),
            Query::trajectory(route, 1).build().unwrap(),
        ];
        let (responses, stats) = service.execute_batch_threads(&batch, 2).unwrap();
        assert_eq!(responses.len(), batch.len());
        assert_eq!(stats.queries, batch.len());
        assert!(stats.pooled.reads() > 0, "pooled tree I/O missing");
        for (resp, q) in responses.iter().zip(&batch) {
            assert_eq!(resp.answer.family(), q.kind().family());
            // inside a batch, per-query I/O is pooled at the batch level
            assert_eq!(resp.stats.reads(), 0);
        }
        // spot-check against serial execution
        for (resp, q) in responses.iter().zip(&batch) {
            let serial = service.execute(q).unwrap();
            match (&resp.answer, &serial.answer) {
                (Answer::Conn(a), Answer::Conn(b)) => {
                    assert_eq!(a.entries().len(), b.entries().len())
                }
                (Answer::Odist(a), Answer::Odist(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Answer::ClosestPair(a), Answer::ClosestPair(b)) => {
                    assert_eq!(a.is_some(), b.is_some())
                }
                _ => {}
            }
        }
    }

    #[test]
    fn open_session_matches_trajectory_search() {
        let service = ConnService::new(scene());
        let pin = service.pin();
        let verts = [
            Point::new(0.0, 0.0),
            Point::new(70.0, 5.0),
            Point::new(70.0, 55.0),
        ];
        let mut session = pin.open_session(verts[0], *service.config());
        for &v in &verts[1..] {
            session.push_leg(v);
        }
        let (plan, _) = session.finish();
        plan.check_cover().unwrap();
        let (free, _) = crate::trajectory_conn_search(
            pin.scene().data_tree(),
            pin.scene().obstacle_tree(),
            &Trajectory::new(verts.to_vec()),
            service.config(),
        );
        assert_eq!(plan.segments().len(), free.segments().len());
        for (a, b) in plan.segments().iter().zip(free.segments()) {
            assert_eq!(a.0.map(|p| p.id), b.0.map(|p| p.id));
            assert_eq!(a.1.lo.to_bits(), b.1.lo.to_bits());
            assert_eq!(a.1.hi.to_bits(), b.1.hi.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let service = ConnService::new(scene());
        let (responses, stats) = service.execute_batch(&[]).unwrap();
        assert!(responses.is_empty());
        assert_eq!(stats.queries, 0);
    }

    #[test]
    fn publish_swaps_answers_for_new_pins_only() {
        let service = ConnService::new(scene());
        let pin0 = service.pin();
        let probe = Query::onn(Point::new(10.0, 20.0), 1).build().unwrap();
        let before = service.execute_at(&pin0, &probe).unwrap();
        assert_eq!(before.answer.neighbors().unwrap()[0].0.id, 0);

        // move the world: only point 7 remains, far from the probe
        let epoch = service.publish(Scene::new(
            vec![DataPoint::new(7, Point::new(90.0, 90.0))],
            vec![],
        ));
        assert_eq!(epoch, 1);
        assert_eq!(service.current_epoch(), 1);

        // the old pin still answers from epoch 0…
        let old = service.execute_at(&pin0, &probe).unwrap();
        assert_eq!(old.answer.neighbors().unwrap()[0].0.id, 0);
        // …while fresh executes see epoch 1
        let new = service.execute(&probe).unwrap();
        assert_eq!(new.answer.neighbors().unwrap()[0].0.id, 7);

        assert_eq!(service.retired_epochs(), 0);
        drop(pin0);
        assert_eq!(service.retired_epochs(), 1);
    }

    #[test]
    fn sharded_service_certifies_local_queries_and_falls_back() {
        // points spread over [0,1000]^2, shards 2x2 with a 400 margin
        let points: Vec<DataPoint> = (0..60)
            .map(|i| {
                DataPoint::new(
                    i,
                    Point::new((i as f64 * 137.0) % 1000.0, (i as f64 * 211.0) % 1000.0),
                )
            })
            .collect();
        let obstacles = vec![
            Rect::new(200.0, 200.0, 260.0, 300.0),
            Rect::new(700.0, 600.0, 760.0, 700.0),
        ];
        let unsharded = ConnService::new(Scene::new(points.clone(), obstacles.clone()));
        let sharded = ConnService::sharded(
            Scene::new(points, obstacles),
            ConnConfig::default(),
            ShardSpec::new(2, 2, 400.0).unwrap(),
        );

        // deep-inside query (clear of the obstacles): certificate holds
        let local = Query::onn(Point::new(100.0, 450.0), 2).build().unwrap();
        let a = sharded.execute(&local).unwrap();
        assert_eq!(a.stats.reuse.shard_local, 1);
        assert_eq!(a.stats.reuse.shard_merges, 0);
        let b = unsharded.execute(&local).unwrap();
        for (x, y) in a
            .answer
            .neighbors()
            .unwrap()
            .iter()
            .zip(b.answer.neighbors().unwrap())
        {
            assert_eq!(x.0.id, y.0.id);
            assert!((x.1 - y.1).abs() <= 1e-6);
        }

        // a range query wider than the margin must fall back
        let wide = Query::range(Point::new(500.0, 500.0), 900.0)
            .build()
            .unwrap();
        let c = sharded.execute(&wide).unwrap();
        assert_eq!(c.stats.reuse.shard_local, 0);
        assert_eq!(c.stats.reuse.shard_merges, 1);
        let d = unsharded.execute(&wide).unwrap();
        assert_eq!(
            c.answer.neighbors().unwrap().len(),
            d.answer.neighbors().unwrap().len()
        );

        // non-shardable families report neither counter
        let odist = Query::odist(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0))
            .build()
            .unwrap();
        let e = sharded.execute(&odist).unwrap();
        assert_eq!(e.stats.reuse.shard_local + e.stats.reuse.shard_merges, 0);
    }
}
