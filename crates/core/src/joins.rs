//! Obstructed join queries from the Zhang et al. suite the paper's §2.3
//! describes: the obstructed **closest pair** and the obstructed
//! **e-distance join** between two point sets indexed by R\*-trees.
//!
//! Both use the classic dual-tree incremental paradigm: node/item pairs
//! ordered (or filtered) by Euclidean `mindist` — a lower bound of the
//! obstructed distance — drive the traversal, and exact obstructed
//! distances are resolved on a shared local visibility graph only for the
//! candidate pairs that survive the bound.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

use conn_geom::{OrdF64, Point, Rect};
use conn_index::{Mbr, RStarTree, Slot};
use conn_vgraph::NodeKind;

use crate::config::ConnConfig;
use crate::engine::{QueryEngine, Workspace};
use crate::stats::QueryStats;
use crate::types::DataPoint;

/// One side of a candidate pair: a subtree (with its MBR, taken from the
/// parent entry so no extra page read is charged) or a concrete point.
#[derive(Clone, Copy)]
enum Side {
    Node(u32, Rect),
    Item(DataPoint),
}

impl Side {
    fn mbr(&self) -> Rect {
        match self {
            Side::Node(_, mbr) => *mbr,
            Side::Item(p) => p.mbr(),
        }
    }
}

struct PairElem {
    key: Reverse<OrdF64>,
    seq: u64,
    a: Side,
    b: Side,
}

impl PartialEq for PairElem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for PairElem {}
impl PartialOrd for PairElem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PairElem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(other.seq.cmp(&self.seq))
    }
}

/// Incremental closest pair under the obstructed distance:
/// `argmin_{a ∈ A, b ∈ B} ‖a, b‖`. One-shot wrapper over
/// [`QueryEngine::closest_pair`].
///
/// Returns `None` when either set is empty or no pair is connected.
pub fn obstructed_closest_pair(
    tree_a: &RStarTree<DataPoint>,
    tree_b: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    cfg: &ConnConfig,
) -> (Option<(DataPoint, DataPoint, f64)>, QueryStats) {
    QueryEngine::new(*cfg).closest_pair(tree_a, tree_b, obstacle_tree)
}

impl QueryEngine {
    /// Engine-backed obstructed closest pair: the shared local visibility
    /// graph and Dijkstra scratch come from the reused workspace.
    pub fn closest_pair(
        &mut self,
        tree_a: &RStarTree<DataPoint>,
        tree_b: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
    ) -> (Option<(DataPoint, DataPoint, f64)>, QueryStats) {
        self.closest_pair_impl(tree_a, tree_b, obstacle_tree, true)
    }

    /// [`QueryEngine::closest_pair`] with tree-counter handling factored
    /// out (`track_io = false` for batch workers).
    pub(crate) fn closest_pair_impl(
        &mut self,
        tree_a: &RStarTree<DataPoint>,
        tree_b: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        track_io: bool,
    ) -> (Option<(DataPoint, DataPoint, f64)>, QueryStats) {
        let cfg = *self.config();
        let ws = self.workspace();
        ws.begin_query(&cfg);
        let (best, mut stats) = closest_pair_on(ws, tree_a, tree_b, obstacle_tree, &cfg, track_io);
        stats.reuse = ws.finish_query();
        (best, stats)
    }

    /// Engine-backed obstructed e-distance join.
    pub fn edistance_join(
        &mut self,
        tree_a: &RStarTree<DataPoint>,
        tree_b: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        e: f64,
    ) -> (Vec<(DataPoint, DataPoint, f64)>, QueryStats) {
        self.edistance_join_impl(tree_a, tree_b, obstacle_tree, e, true)
    }

    /// [`QueryEngine::edistance_join`] with tree-counter handling factored
    /// out (`track_io = false` for batch workers).
    pub(crate) fn edistance_join_impl(
        &mut self,
        tree_a: &RStarTree<DataPoint>,
        tree_b: &RStarTree<DataPoint>,
        obstacle_tree: &RStarTree<Rect>,
        e: f64,
        track_io: bool,
    ) -> (Vec<(DataPoint, DataPoint, f64)>, QueryStats) {
        let cfg = *self.config();
        let ws = self.workspace();
        ws.begin_query(&cfg);
        let (pairs, mut stats) =
            edistance_join_on(ws, tree_a, tree_b, obstacle_tree, e, &cfg, track_io);
        stats.reuse = ws.finish_query();
        (pairs, stats)
    }
}

fn closest_pair_on(
    ws: &mut Workspace,
    tree_a: &RStarTree<DataPoint>,
    tree_b: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    cfg: &ConnConfig,
    track_io: bool,
) -> (Option<(DataPoint, DataPoint, f64)>, QueryStats) {
    // Query-boundary elapsed time for QueryStats; the kernel loop
    // below never reads the clock.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
    if track_io {
        tree_a.reset_stats();
        tree_b.reset_stats();
        obstacle_tree.reset_stats();
    }

    let mut best: Option<(DataPoint, DataPoint, f64)> = None;
    let mut resolver = OdistResolver::new(ws, obstacle_tree, cfg);
    let mut pairs_resolved = 0u64;

    if !tree_a.is_empty() && !tree_b.is_empty() {
        let mut heap: BinaryHeap<PairElem> = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(PairElem {
            key: Reverse(OrdF64::new(tree_a.bounds().mindist_rect(&tree_b.bounds()))),
            seq,
            a: Side::Node(tree_a.root(), tree_a.bounds()),
            b: Side::Node(tree_b.root(), tree_b.bounds()),
        });
        while let Some(PairElem {
            key: Reverse(OrdF64(lower)),
            a,
            b,
            ..
        }) = heap.pop()
        {
            if let Some((_, _, bd)) = &best {
                if lower >= *bd {
                    break; // no unseen pair can beat the incumbent
                }
            }
            match (a, b) {
                (Side::Item(pa), Side::Item(pb)) => {
                    pairs_resolved += 1;
                    let d = resolver.resolve(pa.pos, pb.pos);
                    if d.is_finite() && best.as_ref().is_none_or(|(_, _, bd)| d < *bd) {
                        best = Some((pa, pb, d));
                    }
                }
                // expand the node with the larger MBR (classic heuristic)
                (Side::Node(na, ma), rhs) if expand_left(&Side::Node(na, ma), &rhs) => {
                    for side in node_sides(tree_a.read_node(na)) {
                        seq += 1;
                        heap.push(PairElem {
                            key: Reverse(OrdF64::new(side.mbr().mindist_rect(&rhs.mbr()))),
                            seq,
                            a: side,
                            b: rhs,
                        });
                    }
                }
                (lhs, Side::Node(nb, _)) => {
                    for side in node_sides(tree_b.read_node(nb)) {
                        seq += 1;
                        heap.push(PairElem {
                            key: Reverse(OrdF64::new(lhs.mbr().mindist_rect(&side.mbr()))),
                            seq,
                            a: lhs,
                            b: side,
                        });
                    }
                }
                (Side::Node(na, _), rhs) => {
                    for side in node_sides(tree_a.read_node(na)) {
                        seq += 1;
                        heap.push(PairElem {
                            key: Reverse(OrdF64::new(side.mbr().mindist_rect(&rhs.mbr()))),
                            seq,
                            a: side,
                            b: rhs,
                        });
                    }
                }
            }
        }
    }
    let stats = join_stats(
        started,
        tree_a,
        tree_b,
        obstacle_tree,
        pairs_resolved,
        resolver.noe,
        track_io,
    );
    (best, stats)
}

/// Should the left side be the one expanded? Expand nodes before items and
/// larger MBRs before smaller ones.
fn expand_left(a: &Side, b: &Side) -> bool {
    match (a, b) {
        (Side::Node(_, ma), Side::Node(_, mb)) => ma.area() >= mb.area(),
        (Side::Node(..), Side::Item(_)) => true,
        _ => false,
    }
}

/// Obstructed e-distance join: all pairs `(a, b)` with `‖a, b‖ ≤ e`,
/// ascending by distance. One-shot wrapper over
/// [`QueryEngine::edistance_join`].
pub fn obstructed_edistance_join(
    tree_a: &RStarTree<DataPoint>,
    tree_b: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    e: f64,
    cfg: &ConnConfig,
) -> (Vec<(DataPoint, DataPoint, f64)>, QueryStats) {
    QueryEngine::new(*cfg).edistance_join(tree_a, tree_b, obstacle_tree, e)
}

fn edistance_join_on(
    ws: &mut Workspace,
    tree_a: &RStarTree<DataPoint>,
    tree_b: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    e: f64,
    cfg: &ConnConfig,
    track_io: bool,
) -> (Vec<(DataPoint, DataPoint, f64)>, QueryStats) {
    assert!(e >= 0.0, "negative join distance");
    // Query-boundary elapsed time for QueryStats; the kernel loop
    // below never reads the clock.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)
    if track_io {
        tree_a.reset_stats();
        tree_b.reset_stats();
        obstacle_tree.reset_stats();
    }

    let mut out: Vec<(DataPoint, DataPoint, f64)> = Vec::new();
    let mut resolver = OdistResolver::new(ws, obstacle_tree, cfg);
    let mut pairs_resolved = 0u64;

    let mut stack: Vec<(Side, Side)> = Vec::new();
    if !tree_a.is_empty() && !tree_b.is_empty() {
        stack.push((
            Side::Node(tree_a.root(), tree_a.bounds()),
            Side::Node(tree_b.root(), tree_b.bounds()),
        ));
    }
    while let Some((a, b)) = stack.pop() {
        if a.mbr().mindist_rect(&b.mbr()) > e {
            continue; // euclidean lower bound already exceeds e
        }
        match (a, b) {
            (Side::Item(pa), Side::Item(pb)) => {
                pairs_resolved += 1;
                let d = resolver.resolve(pa.pos, pb.pos);
                if d <= e {
                    out.push((pa, pb, d));
                }
            }
            (Side::Node(na, ma), rhs) if expand_left(&Side::Node(na, ma), &rhs) => {
                for side in node_sides(tree_a.read_node(na)) {
                    stack.push((side, rhs));
                }
            }
            (lhs, Side::Node(nb, _)) => {
                for side in node_sides(tree_b.read_node(nb)) {
                    stack.push((lhs, side));
                }
            }
            (Side::Node(na, _), rhs) => {
                for side in node_sides(tree_a.read_node(na)) {
                    stack.push((side, rhs));
                }
            }
        }
    }
    out.sort_by(|x, y| x.2.total_cmp(&y.2).then(x.0.id.cmp(&y.0.id)));
    let stats = join_stats(
        started,
        tree_a,
        tree_b,
        obstacle_tree,
        pairs_resolved,
        resolver.noe,
        track_io,
    );
    (out, stats)
}

fn slot_side(mbr: &Rect, slot: &Slot<DataPoint>) -> Side {
    match slot {
        Slot::Child(page) => Side::Node(*page, *mbr),
        Slot::Item(p) => Side::Item(*p),
    }
}

/// Iterates a node's slots as [`Side`]s, zipping the envelope lane back in.
fn node_sides<'n>(node: &'n conn_index::Node<DataPoint>) -> impl Iterator<Item = Side> + 'n {
    node.mbrs
        .iter()
        .zip(&node.slots)
        .map(|(m, s)| slot_side(m, s))
}

/// Shared pairwise obstructed-distance resolver over the workspace's
/// visibility graph and Dijkstra scratch. Exactness: after loading every
/// obstacle with `mindist(o, a) ≤ B`, any computed path of length ≤ B is
/// valid and any true shortest path of length ≤ B is present (Lemma 3's
/// argument with the anchor degenerated to the point `a`).
struct OdistResolver<'a, 'w> {
    ws: &'w mut Workspace,
    obstacle_tree: &'a RStarTree<Rect>,
    loaded: HashSet<[u64; 4]>,
    noe: u64,
    kernel: crate::config::KernelMode,
    warm: bool,
}

impl<'a, 'w> OdistResolver<'a, 'w> {
    /// The workspace must already be rewound (`begin_query`) by the caller.
    fn new(ws: &'w mut Workspace, obstacle_tree: &'a RStarTree<Rect>, cfg: &ConnConfig) -> Self {
        OdistResolver {
            ws,
            obstacle_tree,
            loaded: HashSet::new(),
            noe: 0,
            kernel: cfg.kernel,
            warm: cfg.label_continuation,
        }
    }

    fn load_upto(&mut self, anchor: Point, bound: f64) -> usize {
        let mut added = 0;
        for (r, od) in self.obstacle_tree.nearest_iter(anchor) {
            if od > bound {
                break;
            }
            if self.loaded.insert(r.bit_key()) {
                self.ws.g.add_obstacle(r);
                self.noe += 1;
                added += 1;
            }
        }
        added
    }

    fn resolve(&mut self, a: Point, b: Point) -> f64 {
        let na = self.ws.g.add_point(a, NodeKind::DataPoint);
        let nb = self.ws.g.add_point(b, NodeKind::DataPoint);
        let mut bound = a.dist(b);
        let total = self.obstacle_tree.len();
        let goal = self.kernel.point_goal(b);
        let d = loop {
            self.load_upto(a, bound);
            let ws = &mut *self.ws;
            // rounds only add obstacles, so the warm path reseeds the
            // previous round's labels instead of re-running from scratch
            ws.dij.ensure_prepared(&ws.g, na, goal, self.warm);
            let d = ws.dij.run_until_settled(&mut ws.g, nb);
            if d.is_finite() {
                if d <= bound + conn_geom::EPS {
                    break d; // certified exact at this load level
                }
                bound = d;
            } else {
                if self.loaded.len() >= total {
                    break f64::INFINITY; // genuinely disconnected
                }
                bound = bound * 2.0 + 1.0;
            }
        };
        self.ws.g.remove_node(na);
        self.ws.g.remove_node(nb);
        d
    }
}

fn join_stats(
    started: Instant,
    tree_a: &RStarTree<DataPoint>,
    tree_b: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    pairs_resolved: u64,
    noe: u64,
    track_io: bool,
) -> QueryStats {
    let (data_io, obstacle_io) = if track_io {
        let mut data_io = tree_a.stats();
        let b = tree_b.stats();
        data_io.reads += b.reads;
        data_io.faults += b.faults;
        (data_io, obstacle_tree.stats())
    } else {
        (Default::default(), Default::default())
    };
    QueryStats {
        data_io,
        obstacle_io,
        cpu: started.elapsed(),
        npe: pairs_resolved,
        noe,
        svg_nodes: 0,
        result_tuples: 0,
        reuse: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstructed_distance;

    fn sets() -> (Vec<DataPoint>, Vec<DataPoint>, Vec<Rect>) {
        let a = vec![
            DataPoint::new(0, Point::new(0.0, 0.0)),
            DataPoint::new(1, Point::new(50.0, 10.0)),
            DataPoint::new(2, Point::new(90.0, 90.0)),
        ];
        let b = vec![
            DataPoint::new(10, Point::new(30.0, 0.0)),
            DataPoint::new(11, Point::new(55.0, 40.0)),
            DataPoint::new(12, Point::new(100.0, 95.0)),
        ];
        let obstacles = vec![Rect::new(10.0, -5.0, 20.0, 15.0)];
        (a, b, obstacles)
    }

    fn brute_closest(a: &[DataPoint], b: &[DataPoint], obs: &[Rect]) -> (u32, u32, f64) {
        let mut best = (0, 0, f64::INFINITY);
        for x in a {
            for y in b {
                let d = obstructed_distance(obs, x.pos, y.pos);
                if d < best.2 {
                    best = (x.id, y.id, d);
                }
            }
        }
        best
    }

    #[test]
    fn closest_pair_matches_brute_force() {
        let (a, b, obs) = sets();
        let ta = RStarTree::bulk_load(a.clone(), 4096);
        let tb = RStarTree::bulk_load(b.clone(), 4096);
        let to = RStarTree::bulk_load(obs.clone(), 4096);
        let (got, stats) = obstructed_closest_pair(&ta, &tb, &to, &ConnConfig::default());
        let (pa, pb, d) = got.expect("non-empty sets");
        let want = brute_closest(&a, &b, &obs);
        assert!((d - want.2).abs() < 1e-6, "{d} vs {}", want.2);
        assert_eq!((pa.id, pb.id), (want.0, want.1));
        assert!(stats.npe >= 1);
    }

    #[test]
    fn closest_pair_changes_with_obstacle() {
        let (a, b, obs) = sets();
        let ta = RStarTree::bulk_load(a.clone(), 4096);
        let tb = RStarTree::bulk_load(b.clone(), 4096);
        let empty: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let to = RStarTree::bulk_load(obs, 4096);
        let cfg = ConnConfig::default();
        let (free, _) = obstructed_closest_pair(&ta, &tb, &empty, &cfg);
        let (blocked, _) = obstructed_closest_pair(&ta, &tb, &to, &cfg);
        assert!(blocked.unwrap().2 >= free.unwrap().2 - 1e-9);
    }

    #[test]
    fn closest_pair_larger_sets() {
        // brute-force cross-check on a bigger instance
        let a: Vec<DataPoint> = (0..40)
            .map(|i| {
                DataPoint::new(
                    i,
                    Point::new((i as f64 * 37.0) % 300.0, (i as f64 * 91.0) % 300.0),
                )
            })
            .collect();
        let b: Vec<DataPoint> = (0..40)
            .map(|i| {
                DataPoint::new(
                    100 + i,
                    Point::new(150.0 + (i as f64 * 53.0) % 300.0, (i as f64 * 67.0) % 300.0),
                )
            })
            .collect();
        let obs = vec![
            Rect::new(140.0, 50.0, 160.0, 200.0),
            Rect::new(200.0, 220.0, 330.0, 240.0),
        ];
        let ta = RStarTree::bulk_load(a.clone(), 4096);
        let tb = RStarTree::bulk_load(b.clone(), 4096);
        let to = RStarTree::bulk_load(obs.clone(), 4096);
        let (got, _) = obstructed_closest_pair(&ta, &tb, &to, &ConnConfig::default());
        let (_, _, d) = got.unwrap();
        let want = brute_closest(&a, &b, &obs);
        assert!((d - want.2).abs() < 1e-6, "{d} vs {}", want.2);
    }

    #[test]
    fn edistance_join_matches_filtered_brute_force() {
        let (a, b, obs) = sets();
        let ta = RStarTree::bulk_load(a.clone(), 4096);
        let tb = RStarTree::bulk_load(b.clone(), 4096);
        let to = RStarTree::bulk_load(obs.clone(), 4096);
        for e in [10.0, 35.0, 60.0, 200.0] {
            let (got, _) = obstructed_edistance_join(&ta, &tb, &to, e, &ConnConfig::default());
            let mut want = Vec::new();
            for x in &a {
                for y in &b {
                    let d = obstructed_distance(&obs, x.pos, y.pos);
                    if d <= e {
                        want.push((x.id, y.id, d));
                    }
                }
            }
            assert_eq!(got.len(), want.len(), "e = {e}");
            for (pa, pb, d) in &got {
                let w = want
                    .iter()
                    .find(|(ia, ib, _)| *ia == pa.id && *ib == pb.id)
                    .unwrap_or_else(|| panic!("unexpected pair {}-{}", pa.id, pb.id));
                assert!((d - w.2).abs() < 1e-6);
            }
            // ascending by distance
            for w in got.windows(2) {
                assert!(w[0].2 <= w[1].2 + 1e-9);
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let (a, _, _) = sets();
        let ta = RStarTree::bulk_load(a, 4096);
        let tempty: RStarTree<DataPoint> = RStarTree::bulk_load(vec![], 4096);
        let to: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let cfg = ConnConfig::default();
        let (cp, _) = obstructed_closest_pair(&ta, &tempty, &to, &cfg);
        assert!(cp.is_none());
        let (join, _) = obstructed_edistance_join(&tempty, &ta, &to, 100.0, &cfg);
        assert!(join.is_empty());
    }
}
