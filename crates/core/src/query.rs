//! The typed query front door: one [`Query`] type for every family.
//!
//! The paper defines CONN/COkNN as one family of obstructed queries over a
//! shared substrate (R\*-trees, visibility graph, Dijkstra kernel), and the
//! crate grew one free function per family around that substrate. [`Query`]
//! unifies them behind a single request type the way a database exposes one
//! query interface over many plans:
//!
//! * a [`QueryKind`] variant per family — CONN, COkNN, snapshot ONN,
//!   obstructed range / reverse-NN, point-to-point distance and route, the
//!   two join queries, and trajectory CONN/COkNN;
//! * a builder with an optional per-query [`ConnConfig`] override;
//! * **upfront validation**: [`QueryBuilder::build`] rejects NaN and
//!   infinite coordinates, degenerate segments, `k = 0`, negative radii and
//!   empty join sets with [`Error::InvalidQuery`] — inputs that historically
//!   panicked (or span) deep inside the family internals;
//! * a typed [`Answer`] enum (plus [`Response`] with the per-query
//!   [`QueryStats`]) replacing the ad-hoc tuple returns.
//!
//! Execution lives in [`crate::ConnService`]; a built [`Query`] is inert
//! data and can be cloned, stored and shipped across threads.

use std::sync::Arc;

use conn_geom::{Point, Segment};
use conn_index::RStarTree;

use crate::coknn::CoknnResult;
use crate::config::ConnConfig;
use crate::conn::ConnResult;
use crate::error::Error;
use crate::stats::QueryStats;
use crate::trajectory::{Trajectory, TrajectoryResult};
use crate::types::DataPoint;

/// The family a [`Query`] belongs to, with its parameters.
///
/// Join variants carry their second point set as a shared tree
/// (`Arc<RStarTree<DataPoint>>`): the scene owns the *primary* data set,
/// and the join streams candidate pairs between the two.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum QueryKind {
    /// CONN (paper Algorithm 4): the obstructed NN of every point of `q`.
    Conn {
        /// The query segment.
        q: Segment,
    },
    /// COkNN (paper §4.5): the `k` obstructed NNs of every point of `q`.
    Coknn {
        /// The query segment.
        q: Segment,
        /// Neighbors per point.
        k: usize,
    },
    /// Snapshot obstructed kNN at a point.
    Onn {
        /// The query point.
        s: Point,
        /// Number of neighbors.
        k: usize,
    },
    /// All data points within obstructed distance `radius` of `s`.
    Range {
        /// The query point.
        s: Point,
        /// Obstructed-distance radius.
        radius: f64,
    },
    /// Obstructed reverse nearest neighbors of a facility at `s`.
    Rnn {
        /// The facility location.
        s: Point,
    },
    /// Point-to-point obstructed distance over the scene's obstacles.
    Odist {
        /// Path start.
        a: Point,
        /// Path end.
        b: Point,
    },
    /// Obstructed distance *and* shortest path polyline.
    Route {
        /// Path start.
        a: Point,
        /// Path end.
        b: Point,
    },
    /// All pairs `(p, o)` with `‖p, o‖ ≤ e` between the scene's data set
    /// and `other`.
    EDistanceJoin {
        /// The second (outer) data set.
        other: Arc<RStarTree<DataPoint>>,
        /// The distance threshold.
        e: f64,
    },
    /// The closest pair between the scene's data set and `other`.
    ClosestPair {
        /// The second (outer) data set.
        other: Arc<RStarTree<DataPoint>>,
    },
    /// Trajectory CONN (`k = 1`) or COkNN (`k > 1`) along a polyline.
    Trajectory {
        /// The polyline route.
        route: Trajectory,
        /// Neighbors per point (1 = CONN).
        k: usize,
    },
}

impl QueryKind {
    /// Short family label (diagnostics, telemetry).
    pub fn family(&self) -> &'static str {
        match self {
            QueryKind::Conn { .. } => "conn",
            QueryKind::Coknn { .. } => "coknn",
            QueryKind::Onn { .. } => "onn",
            QueryKind::Range { .. } => "range",
            QueryKind::Rnn { .. } => "rnn",
            QueryKind::Odist { .. } => "odist",
            QueryKind::Route { .. } => "route",
            QueryKind::EDistanceJoin { .. } => "edistance_join",
            QueryKind::ClosestPair { .. } => "closest_pair",
            QueryKind::Trajectory { .. } => "trajectory",
        }
    }
}

/// A validated request, ready for [`crate::ConnService::execute`].
///
/// Construct through the per-family builders ([`Query::conn`],
/// [`Query::coknn`], …) — [`QueryBuilder::build`] is the only way to obtain
/// a `Query`, so every instance a service sees has already passed
/// validation.
///
/// ```
/// use conn_core::{ConnConfig, Query};
/// use conn_geom::{Point, Segment};
///
/// let q = Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
/// let query = Query::coknn(q, 3)
///     .config(ConnConfig::paper())
///     .build()
///     .unwrap();
/// assert_eq!(query.kind().family(), "coknn");
///
/// // malformed requests never reach an algorithm
/// let degenerate = Segment::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0));
/// assert!(Query::conn(degenerate).build().is_err());
/// assert!(Query::coknn(q, 0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    kind: QueryKind,
    cfg: Option<ConnConfig>,
}

impl Query {
    /// CONN over a query segment.
    pub fn conn(q: Segment) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Conn { q })
    }

    /// COkNN over a query segment.
    pub fn coknn(q: Segment, k: usize) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Coknn { q, k })
    }

    /// Snapshot obstructed kNN at `s`.
    pub fn onn(s: Point, k: usize) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Onn { s, k })
    }

    /// Obstructed range search around `s`.
    pub fn range(s: Point, radius: f64) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Range { s, radius })
    }

    /// Obstructed reverse nearest neighbors of `s`.
    pub fn rnn(s: Point) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Rnn { s })
    }

    /// Point-to-point obstructed distance.
    pub fn odist(a: Point, b: Point) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Odist { a, b })
    }

    /// Point-to-point obstructed distance plus the path itself.
    pub fn route(a: Point, b: Point) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Route { a, b })
    }

    /// Obstructed e-distance join against a second point set.
    pub fn edistance_join(other: Arc<RStarTree<DataPoint>>, e: f64) -> QueryBuilder {
        QueryBuilder::new(QueryKind::EDistanceJoin { other, e })
    }

    /// Obstructed closest pair against a second point set.
    pub fn closest_pair(other: Arc<RStarTree<DataPoint>>) -> QueryBuilder {
        QueryBuilder::new(QueryKind::ClosestPair { other })
    }

    /// Trajectory CONN (`k = 1`) / COkNN (`k > 1`) along `route`.
    pub fn trajectory(route: Trajectory, k: usize) -> QueryBuilder {
        QueryBuilder::new(QueryKind::Trajectory { route, k })
    }

    /// The validated family and parameters.
    pub fn kind(&self) -> &QueryKind {
        &self.kind
    }

    /// The per-query configuration override, if any (the service default
    /// applies otherwise).
    pub fn config(&self) -> Option<&ConnConfig> {
        self.cfg.as_ref()
    }
}

/// Builder for [`Query`]: set the optional per-query config, then
/// [`build`](QueryBuilder::build) to validate.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    kind: QueryKind,
    cfg: Option<ConnConfig>,
}

fn finite(p: Point) -> bool {
    p.x.is_finite() && p.y.is_finite()
}

fn check_segment(q: &Segment, family: &str) -> Result<(), Error> {
    if !finite(q.a) || !finite(q.b) {
        return Err(Error::invalid_query(format!(
            "{family}: non-finite query segment endpoint"
        )));
    }
    if q.is_degenerate() {
        return Err(Error::invalid_query(format!(
            "{family}: degenerate (zero-length) query segment"
        )));
    }
    Ok(())
}

fn check_point(p: Point, family: &str, role: &str) -> Result<(), Error> {
    if !finite(p) {
        return Err(Error::invalid_query(format!("{family}: non-finite {role}")));
    }
    Ok(())
}

fn check_k(k: usize, family: &str) -> Result<(), Error> {
    if k == 0 {
        return Err(Error::invalid_query(format!(
            "{family}: k must be at least 1"
        )));
    }
    Ok(())
}

impl QueryBuilder {
    fn new(kind: QueryKind) -> Self {
        QueryBuilder { kind, cfg: None }
    }

    /// Overrides the service's default [`ConnConfig`] for this one query.
    pub fn config(mut self, cfg: ConnConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Validates the request. Malformed parameters — the inputs that used
    /// to panic (or loop) deep inside the family internals — come back as
    /// [`Error::InvalidQuery`] instead.
    pub fn build(self) -> Result<Query, Error> {
        let family = self.kind.family();
        match &self.kind {
            QueryKind::Conn { q } => check_segment(q, family)?,
            QueryKind::Coknn { q, k } => {
                check_segment(q, family)?;
                check_k(*k, family)?;
            }
            QueryKind::Onn { s, k } => {
                check_point(*s, family, "query point")?;
                check_k(*k, family)?;
            }
            QueryKind::Range { s, radius } => {
                check_point(*s, family, "query point")?;
                if !radius.is_finite() || *radius < 0.0 {
                    return Err(Error::invalid_query(format!(
                        "{family}: radius must be finite and non-negative (got {radius})"
                    )));
                }
            }
            QueryKind::Rnn { s } => check_point(*s, family, "facility point")?,
            QueryKind::Odist { a, b } | QueryKind::Route { a, b } => {
                check_point(*a, family, "source point")?;
                check_point(*b, family, "target point")?;
            }
            QueryKind::EDistanceJoin { other, e } => {
                if !e.is_finite() || *e < 0.0 {
                    return Err(Error::invalid_query(format!(
                        "{family}: join distance must be finite and non-negative (got {e})"
                    )));
                }
                if other.is_empty() {
                    return Err(Error::invalid_query(format!(
                        "{family}: empty join set (the second tree holds no points)"
                    )));
                }
            }
            QueryKind::ClosestPair { other } => {
                if other.is_empty() {
                    return Err(Error::invalid_query(format!(
                        "{family}: empty join set (the second tree holds no points)"
                    )));
                }
            }
            QueryKind::Trajectory { route, k } => {
                check_k(*k, family)?;
                // Trajectory construction already validates length and
                // degeneracy; re-check the cheap invariants in place so a
                // Trajectory built before a future unchecked constructor
                // still cannot slip through (no clone, no re-derivation).
                if route.vertices().len() < 2 {
                    return Err(Error::invalid_query(format!(
                        "{family}: trajectory needs at least two vertices"
                    )));
                }
                for v in route.vertices() {
                    check_point(*v, family, "trajectory vertex")?;
                }
            }
        }
        Ok(Query {
            kind: self.kind,
            cfg: self.cfg,
        })
    }
}

/// The typed answer of one executed [`Query`], one variant per family.
///
/// The per-family accessors (`as_conn`, `neighbors`, `distance`, …) return
/// `None` when called on the wrong family, so call sites that know what
/// they asked for can unwrap without matching the whole enum.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Answer {
    /// CONN result list.
    Conn(ConnResult),
    /// COkNN result list.
    Coknn(CoknnResult),
    /// Snapshot ONN: `(point, obstructed distance)` ascending.
    Onn(Vec<(DataPoint, f64)>),
    /// Range search: `(point, obstructed distance)` ascending.
    Range(Vec<(DataPoint, f64)>),
    /// Reverse NN: the captured points with their distances to `s`.
    Rnn(Vec<(DataPoint, f64)>),
    /// Obstructed distance (∞ when unreachable).
    Odist(f64),
    /// Obstructed distance plus the path polyline (`None` when
    /// unreachable).
    Route {
        /// Obstructed distance (∞ when unreachable).
        dist: f64,
        /// The shortest path polyline (`None` when unreachable).
        path: Option<Vec<Point>>,
    },
    /// All join pairs `(a, b, ‖a, b‖)` ascending by distance.
    EDistanceJoin(Vec<(DataPoint, DataPoint, f64)>),
    /// The closest pair, or `None` when either set is unreachable.
    ClosestPair(Option<(DataPoint, DataPoint, f64)>),
    /// Trajectory CONN (`k = 1`): stitched tuples in cumulative arclength.
    Trajectory(TrajectoryResult),
    /// Trajectory COkNN (`k > 1`): one full result per leg.
    TrajectoryKnn(Vec<CoknnResult>),
}

impl Answer {
    /// Short family label of this answer (diagnostics, telemetry).
    pub fn family(&self) -> &'static str {
        match self {
            Answer::Conn(_) => "conn",
            Answer::Coknn(_) => "coknn",
            Answer::Onn(_) => "onn",
            Answer::Range(_) => "range",
            Answer::Rnn(_) => "rnn",
            Answer::Odist(_) => "odist",
            Answer::Route { .. } => "route",
            Answer::EDistanceJoin(_) => "edistance_join",
            Answer::ClosestPair(_) => "closest_pair",
            Answer::Trajectory(_) => "trajectory",
            Answer::TrajectoryKnn(_) => "trajectory",
        }
    }

    /// The CONN result, if this is a [`Answer::Conn`].
    pub fn as_conn(&self) -> Option<&ConnResult> {
        match self {
            Answer::Conn(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the CONN result, if this is a [`Answer::Conn`].
    pub fn into_conn(self) -> Option<ConnResult> {
        match self {
            Answer::Conn(r) => Some(r),
            _ => None,
        }
    }

    /// The COkNN result, if this is a [`Answer::Coknn`].
    pub fn as_coknn(&self) -> Option<&CoknnResult> {
        match self {
            Answer::Coknn(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the COkNN result, if this is a [`Answer::Coknn`].
    pub fn into_coknn(self) -> Option<CoknnResult> {
        match self {
            Answer::Coknn(r) => Some(r),
            _ => None,
        }
    }

    /// The `(point, distance)` list of a point-anchored family
    /// ([`Answer::Onn`], [`Answer::Range`] or [`Answer::Rnn`]).
    pub fn neighbors(&self) -> Option<&[(DataPoint, f64)]> {
        match self {
            Answer::Onn(v) | Answer::Range(v) | Answer::Rnn(v) => Some(v),
            _ => None,
        }
    }

    /// The obstructed distance of an [`Answer::Odist`] or
    /// [`Answer::Route`].
    pub fn distance(&self) -> Option<f64> {
        match self {
            Answer::Odist(d) | Answer::Route { dist: d, .. } => Some(*d),
            _ => None,
        }
    }

    /// The path polyline of a reachable [`Answer::Route`].
    pub fn path(&self) -> Option<&[Point]> {
        match self {
            Answer::Route {
                path: Some(path), ..
            } => Some(path),
            _ => None,
        }
    }

    /// The pair list of an [`Answer::EDistanceJoin`].
    pub fn pairs(&self) -> Option<&[(DataPoint, DataPoint, f64)]> {
        match self {
            Answer::EDistanceJoin(v) => Some(v),
            _ => None,
        }
    }

    /// The pair of an [`Answer::ClosestPair`] (inner `None` = no
    /// connected pair).
    pub fn pair(&self) -> Option<&Option<(DataPoint, DataPoint, f64)>> {
        match self {
            Answer::ClosestPair(p) => Some(p),
            _ => None,
        }
    }

    /// The stitched trajectory result, if this is an
    /// [`Answer::Trajectory`].
    pub fn as_trajectory(&self) -> Option<&TrajectoryResult> {
        match self {
            Answer::Trajectory(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the trajectory result, if this is an
    /// [`Answer::Trajectory`].
    pub fn into_trajectory(self) -> Option<TrajectoryResult> {
        match self {
            Answer::Trajectory(r) => Some(r),
            _ => None,
        }
    }

    /// The per-leg results of an [`Answer::TrajectoryKnn`].
    pub fn as_trajectory_knn(&self) -> Option<&[CoknnResult]> {
        match self {
            Answer::TrajectoryKnn(v) => Some(v),
            _ => None,
        }
    }
}

/// One executed query: the typed [`Answer`] plus the paper's per-query
/// metrics.
#[derive(Debug, Clone)]
#[must_use]
pub struct Response {
    /// The typed answer.
    pub answer: Answer,
    /// Per-query metrics (inside a batch, tree I/O is pooled at the batch
    /// level and reads as zero here).
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Rect;

    fn seg() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    fn assert_invalid(b: QueryBuilder, needle: &str) {
        match b.build() {
            Err(Error::InvalidQuery(reason)) => {
                assert!(reason.contains(needle), "{reason:?} missing {needle:?}")
            }
            other => panic!("expected InvalidQuery({needle}), got {other:?}"),
        }
    }

    #[test]
    fn degenerate_and_nan_segments_are_rejected() {
        let z = Point::new(5.0, 5.0);
        assert_invalid(Query::conn(Segment::new(z, z)), "degenerate");
        // NaN/∞ segments bypass Segment::new (it debug-asserts) the way a
        // release-mode caller could; build() must still catch them
        let nan = Segment {
            a: Point {
                x: f64::NAN,
                y: 0.0,
            },
            b: z,
        };
        assert_invalid(Query::conn(nan), "non-finite");
        let inf = Segment {
            a: z,
            b: Point {
                x: f64::INFINITY,
                y: 0.0,
            },
        };
        assert_invalid(Query::coknn(inf, 2), "non-finite");
        assert!(Query::conn(seg()).build().is_ok());
    }

    #[test]
    fn zero_k_is_rejected_everywhere() {
        assert_invalid(Query::coknn(seg(), 0), "k must be at least 1");
        assert_invalid(Query::onn(Point::new(0.0, 0.0), 0), "k must be at least 1");
        let route = Trajectory::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        assert_invalid(Query::trajectory(route, 0), "k must be at least 1");
    }

    #[test]
    fn bad_radii_and_points_are_rejected() {
        let s = Point::new(1.0, 2.0);
        assert_invalid(Query::range(s, -1.0), "non-negative");
        assert_invalid(Query::range(s, f64::NAN), "finite");
        assert_invalid(
            Query::range(
                Point {
                    x: f64::NAN,
                    y: 0.0,
                },
                5.0,
            ),
            "non-finite",
        );
        assert_invalid(
            Query::rnn(Point {
                x: 0.0,
                y: f64::INFINITY,
            }),
            "non-finite",
        );
        assert_invalid(
            Query::odist(
                Point {
                    x: f64::NAN,
                    y: 0.0,
                },
                s,
            ),
            "non-finite",
        );
        assert_invalid(
            Query::route(
                s,
                Point {
                    x: 0.0,
                    y: f64::NAN,
                },
            ),
            "non-finite",
        );
        assert!(Query::range(s, 0.0).build().is_ok(), "zero radius is legal");
    }

    #[test]
    fn empty_join_sets_are_rejected() {
        let empty: Arc<RStarTree<DataPoint>> = Arc::new(RStarTree::bulk_load(vec![], 4096));
        assert_invalid(Query::closest_pair(Arc::clone(&empty)), "empty join set");
        assert_invalid(Query::edistance_join(empty, 10.0), "empty join set");
        let one = Arc::new(RStarTree::bulk_load(
            vec![DataPoint::new(0, Point::new(3.0, 4.0))],
            4096,
        ));
        assert_invalid(
            Query::edistance_join(Arc::clone(&one), -2.0),
            "non-negative",
        );
        assert!(Query::closest_pair(one).build().is_ok());
    }

    #[test]
    fn invalid_trajectories_are_rejected_by_try_new() {
        assert!(Trajectory::try_new(vec![Point::new(0.0, 0.0)]).is_err());
        assert!(Trajectory::try_new(vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)]).is_err());
        assert!(Trajectory::try_new(vec![
            Point::new(0.0, 0.0),
            Point {
                x: f64::NAN,
                y: 1.0
            }
        ])
        .is_err());
        assert!(Trajectory::try_new(vec![Point::new(0.0, 0.0), Point::new(9.0, 1.0)]).is_ok());
    }

    #[test]
    fn builder_carries_the_config_override() {
        let q = Query::conn(seg())
            .config(ConnConfig::paper())
            .build()
            .unwrap();
        assert_eq!(q.config().unwrap().kernel, crate::KernelMode::Blind);
        assert!(Query::conn(seg()).build().unwrap().config().is_none());
    }

    #[test]
    fn answer_accessors_are_family_checked() {
        let a = Answer::Odist(42.0);
        assert_eq!(a.distance(), Some(42.0));
        assert!(a.as_conn().is_none());
        assert!(a.neighbors().is_none());
        let r = Answer::Route {
            dist: 5.0,
            path: Some(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]),
        };
        assert_eq!(r.distance(), Some(5.0));
        assert_eq!(r.path().unwrap().len(), 2);
        assert_eq!(r.family(), "route");
        let n = Answer::Onn(vec![(DataPoint::new(0, Point::new(1.0, 1.0)), 2.0)]);
        assert_eq!(n.neighbors().unwrap().len(), 1);
        assert!(n.distance().is_none());
        let _ = Rect::new(0.0, 0.0, 1.0, 1.0); // keep the import honest
    }
}
