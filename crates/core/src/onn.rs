//! Snapshot ONN — obstructed k-nearest-neighbor queries at a *point*
//! (Zhang et al., EDBT 2004 — reference \[31\] of the paper).
//!
//! This is the operation a naive CONN would issue at every location of `q`
//! (paper §1), and the building block of the honest sampling baseline with
//! R-tree I/O accounting. The implementation mirrors the CONN machinery at
//! a point: stream data points by ascending `mindist(p, s)`, compute each
//! candidate's obstructed distance on a local visibility graph fed by
//! incremental obstacle retrieval anchored at `s`, and stop once the next
//! candidate's Euclidean lower bound exceeds the current k-th best.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use std::time::Instant;

use conn_geom::{Point, Rect};
use conn_index::RStarTree;
use conn_vgraph::{DijkstraEngine, NodeId, NodeKind, VisGraph};

use crate::config::ConnConfig;
use crate::stats::{IoWindow, QueryStats};
use crate::types::DataPoint;

/// Obstructed k-nearest neighbors of location `s`, with per-query metrics.
///
/// Returns up to `k` `(point, obstructed distance)` pairs in ascending
/// distance; unreachable points never qualify.
///
/// ```
/// use conn_core::{onn_search, ConnConfig, DataPoint};
/// use conn_geom::{Point, Rect};
/// use conn_index::RStarTree;
///
/// let points = RStarTree::bulk_load(
///     vec![
///         DataPoint::new(0, Point::new(0.0, 30.0)),  // blocked by the wall
///         DataPoint::new(1, Point::new(35.0, 10.0)), // clear line of sight
///     ],
///     4096,
/// );
/// let wall = RStarTree::bulk_load(vec![Rect::new(-40.0, 10.0, 20.0, 20.0)], 4096);
///
/// let (nn, _) = onn_search(&points, &wall, Point::new(0.0, 0.0), 1, &ConnConfig::default());
/// // point 0 is euclidean-closer (30 < ~36.4) but the wall forces a detour,
/// // so point 1 is the obstructed NN
/// assert_eq!(nn[0].0.id, 1);
/// ```
pub fn onn_search(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    k: usize,
    cfg: &ConnConfig,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    let service =
        crate::ConnService::with_config(crate::Scene::borrowing(data_tree, obstacle_tree), *cfg);
    let query = crate::Query::onn(s, k)
        .build()
        .unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    let resp = service.execute(&query).unwrap_or_else(|e| panic!("{e}")); // lint:allow(no-panic-in-query-path)
    match resp.answer {
        crate::Answer::Onn(v) => (v, resp.stats),
        // Infallible: the service answers each kind with its own family.
        // lint:allow(no-panic-in-query-path)
        _ => unreachable!("onn query answered by another family"),
    }
}

/// [`onn_search`] with the tree-counter handling factored out: batch
/// workers (`track_io = false`) share the trees with other in-flight
/// queries, so per-query resets would race — I/O is pooled at the batch
/// level instead and the returned stats report zero I/O.
pub(crate) fn onn_search_impl(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    s: Point,
    k: usize,
    cfg: &ConnConfig,
    track_io: bool,
) -> (Vec<(DataPoint, f64)>, QueryStats) {
    assert!(k >= 1, "k must be positive");
    let io = IoWindow::begin(track_io, data_tree, obstacle_tree);
    // Query-boundary elapsed time for QueryStats; the kernel loop
    // below never reads the clock.
    let started = Instant::now(); // lint:allow(no-wallclock-in-kernels)

    // An anchor strictly inside an obstacle reaches nothing: every
    // obstructed distance is ∞, the k-th bound never tightens, and the
    // candidate stream would be walked to exhaustion with a full obstacle
    // load per candidate. The answer is exactly empty — say so now.
    if obstacle_tree
        .nearest_iter(s)
        .take_while(|(_, d)| *d <= 0.0)
        .any(|(r, _)| r.strictly_contains(s))
    {
        let (data_io, obstacle_io) = io.end(data_tree, obstacle_tree);
        return (
            Vec::new(),
            QueryStats {
                data_io,
                obstacle_io,
                cpu: started.elapsed(),
                ..QueryStats::default()
            },
        );
    }

    let mut g = cfg.new_graph();
    let s_node = g.add_point(s, NodeKind::Endpoint);
    let mut obstacles = obstacle_tree.nearest_iter(s);
    let mut pending: Option<(Rect, f64)> = None;
    let mut loaded_bound = 0.0f64;
    let mut noe = 0u64;

    // loads every obstacle with mindist(o, s) <= bound; returns #added
    let mut load_until = |g: &mut VisGraph, bound: f64, noe: &mut u64| -> usize {
        let mut added = 0;
        loop {
            if pending.is_none() {
                pending = obstacles.next();
            }
            match pending {
                Some((r, d)) if d <= bound => {
                    g.add_obstacle(r);
                    pending = None;
                    added += 1;
                    *noe += 1;
                }
                _ => break,
            }
        }
        added
    };

    let mut results: Vec<(DataPoint, f64)> = Vec::new();
    let kth_bound = |results: &[(DataPoint, f64)]| -> f64 {
        if results.len() < k {
            f64::INFINITY
        } else {
            results[k - 1].1
        }
    };

    let mut points = data_tree.nearest_iter(s);
    let mut npe = 0u64;
    while let Some(lower) = points.peek_dist() {
        if lower > kth_bound(&results) {
            break;
        }
        // Infallible: the peek above returned Some for this same stream.
        // lint:allow(no-panic-in-query-path)
        let (p, _) = points.next().expect("peeked point");
        npe += 1;
        let p_node = g.add_point(p.pos, NodeKind::DataPoint);
        let od = odist_incremental(
            &mut g,
            p_node,
            s_node,
            &mut loaded_bound,
            &mut |g, bound| load_until(g, bound, &mut noe),
            cfg,
        );
        g.remove_node(p_node);
        if od.is_finite() {
            let at = results.partition_point(|(_, d)| *d <= od);
            if at < k {
                results.insert(at, (p, od));
                results.truncate(k);
            }
        }
    }
    results.truncate(k);

    let (data_io, obstacle_io) = io.end(data_tree, obstacle_tree);
    let stats = QueryStats {
        data_io,
        obstacle_io,
        cpu: started.elapsed(),
        npe,
        noe,
        svg_nodes: g.num_nodes() as u64,
        result_tuples: results.len() as u64,
        reuse: Default::default(),
    };
    (results, stats)
}

/// Point-to-point incremental obstructed distance: goal-directed search +
/// obstacle loading to a fix-point (the point analogue of Algorithm 1,
/// justified by the same Lemma 3 argument with `q` degenerated to `s`).
/// Retrieval rounds only add obstacles, so each re-run reseeds the previous
/// round's labels instead of starting from a cold heap.
fn odist_incremental(
    g: &mut VisGraph,
    p_node: NodeId,
    s_node: NodeId,
    loaded_bound: &mut f64,
    load_until: &mut dyn FnMut(&mut VisGraph, f64) -> usize,
    cfg: &ConnConfig,
) -> f64 {
    let goal = cfg.kernel.point_goal(g.node_pos(s_node));
    let mut dij = DijkstraEngine::default();
    loop {
        dij.ensure_prepared(g, p_node, goal, cfg.label_continuation);
        let d = dij.run_until_settled(g, s_node);
        if d.is_infinite() {
            if load_until(g, f64::INFINITY) == 0 {
                return d;
            }
            continue;
        }
        if d > *loaded_bound {
            *loaded_bound = d;
            if load_until(g, d) > 0 {
                continue;
            }
        }
        return d;
    }
}

/// One sample of the naive strategy: the parameter and its kNN set.
pub type OnnSample = (f64, Vec<(DataPoint, f64)>);

/// The naive CONN of §1: `samples` independent [`onn_search`] calls along
/// `q`, with R-tree I/O charged per call. Exists to quantify how badly the
/// per-point strategy loses against one exact CONN query.
pub fn naive_conn_by_onn(
    data_tree: &RStarTree<DataPoint>,
    obstacle_tree: &RStarTree<Rect>,
    q: &conn_geom::Segment,
    samples: usize,
    k: usize,
    cfg: &ConnConfig,
) -> (Vec<OnnSample>, QueryStats) {
    assert!(samples >= 2);
    let mut total = QueryStats::default();
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        let t = q.len() * (i as f64) / ((samples - 1) as f64);
        let (res, stats) = onn_search(data_tree, obstacle_tree, q.at(t), k, cfg);
        total.accumulate(&stats);
        out.push((t, res));
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_oknn;

    fn world() -> (Vec<DataPoint>, Vec<Rect>) {
        let points = vec![
            DataPoint::new(0, Point::new(10.0, 20.0)),
            DataPoint::new(1, Point::new(50.0, 8.0)),
            DataPoint::new(2, Point::new(90.0, 25.0)),
            DataPoint::new(3, Point::new(45.0, 60.0)),
            DataPoint::new(4, Point::new(-20.0, -10.0)),
        ];
        let obstacles = vec![
            Rect::new(30.0, 5.0, 40.0, 30.0),
            Rect::new(60.0, 10.0, 75.0, 18.0),
            Rect::new(0.0, 30.0, 30.0, 40.0),
        ];
        (points, obstacles)
    }

    #[test]
    fn onn_matches_brute_force() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let cfg = ConnConfig::default();
        for s in [
            Point::new(0.0, 0.0),
            Point::new(55.0, 22.0),
            Point::new(100.0, 0.0),
        ] {
            for k in [1usize, 3, 5] {
                let (got, stats) = onn_search(&dt, &ot, s, k, &cfg);
                let want = brute_force_oknn(&points, &obstacles, s, k);
                assert_eq!(got.len(), want.len(), "s={s} k={k}");
                for ((_, gd), (_, wd)) in got.iter().zip(&want) {
                    assert!((gd - wd).abs() < 1e-6, "s={s} k={k}");
                }
                assert!(stats.npe as usize <= points.len());
            }
        }
    }

    #[test]
    fn pruning_skips_far_points() {
        let mut points = vec![DataPoint::new(0, Point::new(5.0, 5.0))];
        for i in 0..100 {
            points.push(DataPoint::new(1 + i, Point::new(5000.0 + i as f64, 5000.0)));
        }
        let dt = RStarTree::bulk_load(points, 4096);
        let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
        let (res, stats) = onn_search(&dt, &ot, Point::new(0.0, 0.0), 1, &ConnConfig::default());
        assert_eq!(res[0].0.id, 0);
        assert!(stats.npe <= 3, "NPE {}", stats.npe);
    }

    #[test]
    fn naive_conn_by_onn_is_consistent_but_expensive() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points.clone(), 4096);
        let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
        let q = conn_geom::Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        let cfg = ConnConfig::default();
        let (samples, naive_stats) = naive_conn_by_onn(&dt, &ot, &q, 11, 1, &cfg);
        assert_eq!(samples.len(), 11);
        // agreement with the exact CONN at sample points
        let (exact, exact_stats) = crate::conn::conn_search(&dt, &ot, &q, &cfg);
        for (t, nns) in &samples {
            if let (Some((_, gd)), Some((_, wd))) = (nns.first(), exact.nn_at(*t)) {
                assert!((gd - wd).abs() < 1e-6, "t = {t}");
            }
        }
        // and the naive strategy pays way more I/O
        assert!(
            naive_stats.reads() > 3 * exact_stats.reads(),
            "naive {} vs exact {}",
            naive_stats.reads(),
            exact_stats.reads()
        );
    }

    #[test]
    fn enclosed_query_point_answers_empty() {
        let (points, obstacles) = world();
        let dt = RStarTree::bulk_load(points, 4096);
        let ot = RStarTree::bulk_load(obstacles, 4096);
        // strictly inside obstacle (30,5)-(40,30): nothing is reachable
        let (res, stats) = onn_search(&dt, &ot, Point::new(35.0, 15.0), 3, &ConnConfig::default());
        assert!(res.is_empty());
        assert_eq!(stats.npe, 0, "no candidates should be evaluated");
    }

    #[test]
    fn unreachable_target_excluded() {
        let boxed = vec![
            Rect::new(40.0, 30.0, 60.0, 35.0),
            Rect::new(40.0, 45.0, 60.0, 50.0),
            Rect::new(40.0, 30.0, 45.0, 50.0),
            Rect::new(55.0, 30.0, 60.0, 50.0),
        ];
        let points = vec![
            DataPoint::new(0, Point::new(50.0, 40.0)), // walled in
            DataPoint::new(1, Point::new(100.0, 100.0)),
        ];
        let dt = RStarTree::bulk_load(points, 4096);
        let ot = RStarTree::bulk_load(boxed, 4096);
        let (res, _) = onn_search(&dt, &ot, Point::new(0.0, 0.0), 2, &ConnConfig::default());
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.id, 1);
    }
}
