//! Live-scene equivalence suite (the standing-query oracle): after any
//! interleaved sequence of site/obstacle insertions and removals, every
//! standing answer — kept under a certificate, tuple-patched,
//! kernel-patched or recomputed — must be 1e-6-equivalent to a **cold
//! rebuild** of the scene's final state, for every query family, under
//! both kernels and with the rotational sweep forced on and off.
//!
//! An unsound certificate region (keeping an answer a delta actually
//! touched), a tuple patch inserting at the wrong rank, or a resident
//! kernel left stale by the paths-only-shorten reseed would all surface
//! as a divergence somewhere in the sequence — the suite re-checks the
//! whole standing set after *every* delta, not just at the end.

use std::sync::Arc;

use conn_core::{
    answers_equivalent, ConnConfig, ConnService, DataPoint, LiveScene, Query, Scene,
    StandingHandle, SweepMode, Trajectory,
};
use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;
use proptest::prelude::*;

/// One scripted mutation. Removal targets are indices resolved against the
/// live world at apply time, so removals always hit an existing item.
#[derive(Debug, Clone)]
enum Op {
    InsertSite(Point),
    RemoveSite(usize),
    InsertObstacle(Rect),
    RemoveObstacle(usize),
}

fn pt() -> impl Strategy<Value = Point> {
    (0.0..10_000.0f64, 0.0..10_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), 20.0..400.0f64, 20.0..400.0f64)
        .prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

fn op() -> impl Strategy<Value = Op> {
    (0..4usize, pt(), rect(), 0..64usize).prop_map(|(which, p, r, i)| match which {
        0 => Op::InsertSite(p),
        1 => Op::RemoveSite(i),
        2 => Op::InsertObstacle(r),
        _ => Op::RemoveObstacle(i),
    })
}

/// Scene sizes + seed, query geometry seeds, and the mutation script.
type Scenario = ((usize, usize, u64), (Point, Point, Point), Vec<Op>);

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (6..14usize, 6..16usize, 0..1000u64),
        (pt(), pt(), pt()),
        prop::collection::vec(op(), 3..7),
    )
}

/// The second point set the join families run against.
fn other_set(seed: u64) -> Arc<RStarTree<DataPoint>> {
    let pts: Vec<DataPoint> = (0..5)
        .map(|i| {
            DataPoint::new(
                9000 + i,
                Point::new(
                    ((seed.wrapping_mul(37).wrapping_add(i as u64 * 977)) % 10_000) as f64,
                    ((seed.wrapping_mul(53).wrapping_add(i as u64 * 613)) % 10_000) as f64,
                ),
            )
        })
        .collect();
    Arc::new(RStarTree::bulk_load(pts, 4096))
}

/// One standing query per family (segment families skipped when the
/// generated segment is degenerate).
fn standing_queries(a: Point, b: Point, c: Point, other: &Arc<RStarTree<DataPoint>>) -> Vec<Query> {
    let mut out = Vec::new();
    if a.dist(b) > 1e-9 {
        let q = Segment::new(a, b);
        out.push(Query::conn(q).build().unwrap());
        out.push(Query::coknn(q, 2).build().unwrap());
    }
    out.push(Query::onn(a, 2).build().unwrap());
    out.push(Query::range(b, 900.0).build().unwrap());
    out.push(Query::rnn(c).build().unwrap());
    out.push(Query::odist(a, b).build().unwrap());
    out.push(Query::route(a, c).build().unwrap());
    out.push(Query::closest_pair(Arc::clone(other)).build().unwrap());
    out.push(
        Query::edistance_join(Arc::clone(other), 800.0)
            .build()
            .unwrap(),
    );
    if let Ok(route) = Trajectory::try_new(vec![a, b, c]) {
        out.push(Query::trajectory(route.clone(), 1).build().unwrap());
        out.push(Query::trajectory(route, 2).build().unwrap());
    }
    out
}

/// Every standing answer must match a cold service rebuilt from the live
/// world's current state.
fn assert_standing_matches_cold(
    live: &LiveScene,
    standing: &[(StandingHandle, Query)],
    cfg: ConnConfig,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let cold = ConnService::with_config(Scene::new(live.points(), live.obstacles()), cfg);
    for (handle, query) in standing {
        let resident = live.service().standing(handle).expect("handle registered");
        let rebuilt = cold.execute(query).unwrap().answer;
        prop_assert!(
            answers_equivalent(&resident, &rebuilt, 1e-6),
            "{ctx}: standing {} diverged from cold rebuild:\n resident: {resident:?}\n rebuilt:  {rebuilt:?}",
            query.kind().family(),
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interleaved mutations keep every standing family equivalent to a
    /// cold rebuild, under both kernels, with the sweep forced on and off.
    #[test]
    fn standing_answers_track_cold_rebuild(scn in scenario()) {
        let ((n_pts, n_obs, seed), (a, b, c), script) = scn;
        let other = other_set(seed);
        let mut configs = Vec::new();
        for base in [ConnConfig::default(), ConnConfig::baseline_kernel()] {
            for sweep in [SweepMode::Always, SweepMode::Never] {
                configs.push(ConnConfig { sweep, ..base });
            }
        }
        for cfg in configs {
            let mut live = LiveScene::uniform(n_pts, n_obs, seed, cfg);
            let standing: Vec<(StandingHandle, Query)> = standing_queries(a, b, c, &other)
                .into_iter()
                .map(|q| (live.service().register(q.clone()).unwrap(), q))
                .collect();
            prop_assert_eq!(live.service().standing_count(), standing.len());
            assert_standing_matches_cold(&live, &standing, cfg, "before any delta")?;

            let mut next_id = 50_000u32;
            for (step, op) in script.iter().enumerate() {
                let published = match op {
                    Op::InsertSite(p) => {
                        next_id += 1;
                        let (_, report) = live.insert_site(DataPoint::new(next_id, *p));
                        Some(report)
                    }
                    Op::RemoveSite(i) => {
                        let pts = live.points();
                        if pts.is_empty() {
                            None
                        } else {
                            live.remove_site(pts[i % pts.len()].pos).map(|(_, r)| r)
                        }
                    }
                    Op::InsertObstacle(r) => Some(live.insert_obstacle(*r).1),
                    Op::RemoveObstacle(i) => {
                        let obs = live.obstacles();
                        if obs.is_empty() {
                            None
                        } else {
                            live.remove_obstacle(&obs[i % obs.len()]).map(|(_, r)| r)
                        }
                    }
                };
                if let Some(report) = published {
                    prop_assert_eq!(report.standing, standing.len());
                    prop_assert_eq!(
                        report.kept
                            + report.tuple_patched
                            + report.kernel_patched
                            + report.recomputed,
                        report.standing,
                        "patch outcomes must partition the standing set: {:?}",
                        report
                    );
                }
                assert_standing_matches_cold(&live, &standing, cfg, &format!("after step {step} ({op:?})"))?;
            }
            prop_assert_eq!(live.service().current_epoch(), live.deltas_published());
        }
    }
}
