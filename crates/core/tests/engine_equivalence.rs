//! Equivalence suite for the reusable query engine: one `QueryEngine`
//! answering a random *sequence* of CONN / COkNN / odist queries must
//! produce byte-identical results to fresh per-query state (the legacy
//! free functions). Guards against stale-scratch bugs — a leaked interval,
//! a surviving obstacle, an unreset Dijkstra label would all surface as a
//! divergence somewhere in the sequence.

use conn_core::{
    coknn_search, conn_search, CoknnResult, ConnConfig, ConnResult, DataPoint, QueryEngine,
};
use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;
use conn_vgraph::{DijkstraEngine, Goal, NodeKind, Prep, VisGraph};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// Disjoint rectangles (overlapping candidates are dropped while building).
fn rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((pt(), 5.0..80.0f64, 5.0..80.0f64), 0..10).prop_map(|specs| {
        let mut out: Vec<Rect> = Vec::new();
        for (p, w, h) in specs {
            let r = Rect::new(p.x, p.y, p.x + w, p.y + h);
            if !out.iter().any(|o| o.intersects(&r)) {
                out.push(r);
            }
        }
        out
    })
}

fn points(obstacles: Vec<Rect>) -> impl Strategy<Value = (Vec<Rect>, Vec<DataPoint>)> {
    prop::collection::vec(pt(), 1..14).prop_map(move |raw| {
        let ps = raw
            .iter()
            .enumerate()
            .filter(|(_, p)| !obstacles.iter().any(|r| r.strictly_contains(**p)))
            .map(|(i, p)| DataPoint::new(i as u32, *p))
            .collect();
        (obstacles.clone(), ps)
    })
}

/// A random query sequence: each element is a segment plus the query kind
/// (k = 0 encodes a CONN query, k ≥ 1 a COkNN query with that k).
fn query_seq() -> impl Strategy<Value = Vec<(Point, Point, usize)>> {
    prop::collection::vec((pt(), pt(), 0..4usize), 1..8)
}

/// Obstacle field, data points, and a query sequence (`k = 0` ⇒ CONN).
type Scenario = (Vec<Rect>, Vec<DataPoint>, Vec<(Point, Point, usize)>);

fn scenario() -> impl Strategy<Value = Scenario> {
    rects()
        .prop_flat_map(points)
        .prop_flat_map(|(obstacles, ps)| {
            query_seq().prop_map(move |qs| (obstacles.clone(), ps.clone(), qs.clone()))
        })
}

fn assert_conn_identical(fresh: &ConnResult, reused: &ConnResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(fresh.entries().len(), reused.entries().len());
    for (a, b) in fresh.entries().iter().zip(reused.entries()) {
        prop_assert_eq!(a.point.map(|p| p.id), b.point.map(|p| p.id));
        prop_assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
        prop_assert_eq!(a.interval.hi.to_bits(), b.interval.hi.to_bits());
        match (&a.cp, &b.cp) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits());
                prop_assert_eq!(x.pos.y.to_bits(), y.pos.y.to_bits());
                prop_assert_eq!(x.base.to_bits(), y.base.to_bits());
            }
            _ => prop_assert!(false, "control point presence diverged"),
        }
    }
    Ok(())
}

fn assert_coknn_identical(fresh: &CoknnResult, reused: &CoknnResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(fresh.entries().len(), reused.entries().len());
    for (a, b) in fresh.entries().iter().zip(reused.entries()) {
        prop_assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
        prop_assert_eq!(a.interval.hi.to_bits(), b.interval.hi.to_bits());
        prop_assert_eq!(a.members.len(), b.members.len());
        for (ma, mb) in a.members.iter().zip(&b.members) {
            prop_assert_eq!(ma.point.id, mb.point.id);
            prop_assert_eq!(ma.cp.pos.x.to_bits(), mb.cp.pos.x.to_bits());
            prop_assert_eq!(ma.cp.pos.y.to_bits(), mb.cp.pos.y.to_bits());
            prop_assert_eq!(ma.cp.base.to_bits(), mb.cp.base.to_bits());
        }
    }
    Ok(())
}

/// Visibility graph over the scenario's obstacle field and data points,
/// with `src` as an endpoint node (kernel-level equivalence harness).
fn graph_from(obstacles: &[Rect], ps: &[DataPoint], src: Point) -> (VisGraph, conn_vgraph::NodeId) {
    let mut g = VisGraph::new(50.0);
    let s = g.add_point(src, NodeKind::Endpoint);
    for p in ps {
        g.add_point(p.pos, NodeKind::DataPoint);
    }
    for r in obstacles {
        g.add_obstacle(*r);
    }
    (g, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core guarantee: a single engine fed an arbitrary query sequence
    /// answers every query exactly as fresh state would.
    #[test]
    fn reused_engine_is_byte_identical_to_fresh_state(scn in scenario()) {
        let (obstacles, ps, queries) = scn;
        let data_tree = RStarTree::bulk_load(ps, 4096);
        let obstacle_tree = RStarTree::bulk_load(obstacles, 4096);
        let cfg = ConnConfig::default();
        let mut engine = QueryEngine::new(cfg);

        for (a, b, k) in queries {
            if a.dist(b) < 1e-9 {
                continue; // degenerate segment
            }
            let q = Segment::new(a, b);
            if k == 0 {
                let (fresh, fresh_stats) = conn_search(&data_tree, &obstacle_tree, &q, &cfg);
                let (reused, stats) = engine.conn(&data_tree, &obstacle_tree, &q);
                assert_conn_identical(&fresh, &reused)?;
                // the paper's counters must agree too — they are part of
                // the reproduction's observable behavior
                prop_assert_eq!(fresh_stats.npe, stats.npe);
                prop_assert_eq!(fresh_stats.noe, stats.noe);
                prop_assert_eq!(fresh_stats.svg_nodes, stats.svg_nodes);
                prop_assert_eq!(fresh_stats.result_tuples, stats.result_tuples);
            } else {
                let (fresh, _) = coknn_search(&data_tree, &obstacle_tree, &q, k, &cfg);
                let (reused, _) = engine.coknn(&data_tree, &obstacle_tree, &q, k);
                assert_coknn_identical(&fresh, &reused)?;
            }
        }
    }

    /// Interleaving point-to-point odist queries between CONN queries must
    /// not leak state in either direction.
    #[test]
    fn odist_interleaving_does_not_leak(scn in scenario()) {
        let (obstacles, ps, queries) = scn;
        let data_tree = RStarTree::bulk_load(ps, 4096);
        let obstacle_tree = RStarTree::bulk_load(obstacles.clone(), 4096);
        let cfg = ConnConfig::default();
        let mut engine = QueryEngine::new(cfg);

        for (a, b, _) in queries {
            if a.dist(b) < 1e-9 {
                continue;
            }
            let q = Segment::new(a, b);
            // odist through the engine vs a fresh graph (free function uses
            // its own thread-local engine — also exercised)
            let d_engine = engine.obstructed_distance(&obstacles, a, b);
            let d_free = conn_core::obstructed_distance(&obstacles, a, b);
            prop_assert_eq!(d_engine.to_bits(), d_free.to_bits());

            let (fresh, _) = conn_search(&data_tree, &obstacle_tree, &q, &cfg);
            let (reused, _) = engine.conn(&data_tree, &obstacle_tree, &q);
            assert_conn_identical(&fresh, &reused)?;
        }
    }

    /// Kernel-level guarantee: A* with an expansion bound settles every
    /// node whose priority fits the bound with a distance **byte-identical**
    /// to full blind Dijkstra, and never settles a node blind Dijkstra
    /// cannot reach.
    #[test]
    fn astar_with_bound_matches_full_dijkstra(
        scn in scenario(),
        bound in 100.0..1500.0f64,
        gpt in (0.0..1000.0f64, 0.0..1000.0f64),
    ) {
        let (gx, gy) = gpt;
        let (obstacles, ps, queries) = scn;
        let (a, b, _) = queries[0];
        if a.dist(b) < 1e-9 {
            return Ok(()); // degenerate goal segment
        }
        let goals = [
            Goal::Point(Point::new(gx, gy)),
            Goal::Segment(Segment::new(a, b)),
        ];
        let (mut g, s) = graph_from(&obstacles, &ps, a);
        let mut blind = DijkstraEngine::new(&g, s);
        blind.run_all(&mut g);
        for goal in goals {
            let mut astar = DijkstraEngine::default();
            astar.prepare_directed(&g, s, goal);
            astar.set_bound(bound);
            astar.run_all(&mut g);
            for v in g.node_ids().collect::<Vec<_>>() {
                match (astar.settled_dist(v), blind.settled_dist(v)) {
                    (Some(x), Some(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                    (Some(_), None) => prop_assert!(false, "A* settled an unreachable node"),
                    (None, Some(y)) => prop_assert!(
                        y + goal.h(g.node_pos(v)) > bound - 1e-9,
                        "reachable node inside the bound was pruned"
                    ),
                    (None, None) => {}
                }
            }
        }
    }

    /// Label continuation across obstacle loads (the reseed path) matches a
    /// cold-start search on the final graph: identical settled set,
    /// bit-identical distances.
    #[test]
    fn label_continuation_matches_cold_start(
        scn in scenario(),
        at in 0.0..1.0f64,
    ) {
        let (obstacles, ps, queries) = scn;
        let (a, b, _) = queries[0];
        if a.dist(b) < 1e-9 {
            return Ok(()); // degenerate goal segment
        }
        let goal = Goal::Segment(Segment::new(a, b));
        let cut = ((obstacles.len() as f64) * at) as usize;

        // warm engine: search over the first obstacles, then load the rest
        let (mut g, s) = graph_from(&obstacles[..cut], &ps, a);
        let mut warm = DijkstraEngine::default();
        warm.ensure_prepared(&g, s, goal, true);
        warm.run_all(&mut g);
        if obstacles.len() > cut {
            for r in &obstacles[cut..] {
                g.add_obstacle(*r);
            }
            prop_assert_eq!(warm.ensure_prepared(&g, s, goal, true), Prep::Reseeded);
        }
        warm.run_all(&mut g);

        let mut cold = DijkstraEngine::default();
        cold.prepare_directed(&g, s, goal);
        cold.run_all(&mut g);
        for v in g.node_ids().collect::<Vec<_>>() {
            let (x, y) = (warm.settled_dist(v), cold.settled_dist(v));
            prop_assert_eq!(x.is_some(), y.is_some(), "settled set diverged");
            if let (Some(x), Some(y)) = (x, y) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "distance diverged");
            }
        }
    }

    /// End-to-end kernel equivalence: the goal-directed + continued kernel
    /// answers every CONN query identically to the blind baseline kernel.
    #[test]
    fn kernel_modes_answer_identically(scn in scenario()) {
        let (obstacles, ps, queries) = scn;
        let data_tree = RStarTree::bulk_load(ps, 4096);
        let obstacle_tree = RStarTree::bulk_load(obstacles, 4096);
        let blind_cfg = ConnConfig::baseline_kernel();
        let goal_cfg = ConnConfig::default();
        let mut blind_engine = QueryEngine::new(blind_cfg);
        let mut goal_engine = QueryEngine::new(goal_cfg);
        for (a, b, _) in queries {
            if a.dist(b) < 1e-9 {
                continue;
            }
            let q = Segment::new(a, b);
            let (x, _) = blind_engine.conn(&data_tree, &obstacle_tree, &q);
            let (y, _) = goal_engine.conn(&data_tree, &obstacle_tree, &q);
            // value-equivalent, not bitwise: equal-length paths may settle
            // in different order across kernels, shifting split points by
            // a few ULPs (bitwise identity holds *within* a kernel — see
            // the other properties)
            prop_assert!(
                x.values_equivalent(&y, 1e-6),
                "kernels diverged on {q:?}: {:?} vs {:?}",
                x.entries(),
                y.entries()
            );
        }
    }

    /// The batch front-end agrees with the serial reference for any
    /// workload and worker count.
    #[test]
    fn batch_is_byte_identical_to_serial(scn in scenario(), threads in 1..5usize) {
        let (obstacles, ps, queries) = scn;
        let data_tree = RStarTree::bulk_load(ps, 4096);
        let obstacle_tree = RStarTree::bulk_load(obstacles, 4096);
        let cfg = ConnConfig::default();
        let segs: Vec<Segment> = queries
            .iter()
            .filter(|(a, b, _)| a.dist(*b) >= 1e-9)
            .map(|(a, b, _)| Segment::new(*a, *b))
            .collect();
        let (batch, stats) = conn_core::conn_batch(&data_tree, &obstacle_tree, &segs, &cfg, threads);
        prop_assert_eq!(batch.len(), segs.len());
        prop_assert_eq!(stats.queries, segs.len());
        for (res, q) in batch.iter().zip(&segs) {
            let (fresh, _) = conn_search(&data_tree, &obstacle_tree, q, &cfg);
            assert_conn_identical(&fresh, res)?;
        }
    }
}
