//! Equivalence suite for the typed front door: [`ConnService::execute`]
//! and [`ConnService::execute_batch`] must answer **byte-identically** to
//! the corresponding free-function calls, for a random *mixed-family*
//! workload, on uniform and clustered scenes, under both kernels.
//!
//! This is the service-level analogue of `engine_equivalence`: a leaked
//! config override, a worker picking up stale workspace state from a
//! different family, or a family dispatched to the wrong internals would
//! all surface as a divergence somewhere in the sequence.

use std::sync::Arc;

use conn_core::{
    coknn_search, conn_search, obstructed_closest_pair, obstructed_distance,
    obstructed_edistance_join, obstructed_range_search, obstructed_rnn, obstructed_route,
    onn_search, trajectory_conn_search, Answer, ConnConfig, ConnService, DataPoint, Query,
    Response, Scene, Trajectory,
};
use conn_geom::{Point, Segment};
use conn_index::RStarTree;
use proptest::prelude::*;

/// One requested query: the family selector plus enough raw parameters to
/// instantiate any family (unused ones are ignored per family).
#[derive(Debug, Clone)]
struct Spec {
    family: usize,
    a: Point,
    b: Point,
    c: Point,
    k: usize,
    radius: f64,
}

const FAMILIES: usize = 10;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..10_000.0f64, 0.0..10_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn spec() -> impl Strategy<Value = Spec> {
    (0..FAMILIES, pt(), pt(), pt(), 1..4usize, 50.0..1500.0f64).prop_map(
        |(family, a, b, c, k, radius)| Spec {
            family,
            a,
            b,
            c,
            k,
            radius,
        },
    )
}

/// Scene layout (uniform / clustered), sizes, seed, and the query mix.
type Scenario = (bool, usize, usize, u64, Vec<Spec>);

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<bool>(),
        6..18usize,
        10..40usize,
        0..1000u64,
        prop::collection::vec(spec(), 3..7),
    )
}

/// The second point set the join families run against.
fn other_set(seed: u64) -> Arc<RStarTree<DataPoint>> {
    let pts: Vec<DataPoint> = (0..5)
        .map(|i| {
            DataPoint::new(
                9000 + i,
                Point::new(
                    ((seed.wrapping_mul(37).wrapping_add(i as u64 * 977)) % 10_000) as f64,
                    ((seed.wrapping_mul(53).wrapping_add(i as u64 * 613)) % 10_000) as f64,
                ),
            )
        })
        .collect();
    Arc::new(RStarTree::bulk_load(pts, 4096))
}

fn build_query(s: &Spec, other: &Arc<RStarTree<DataPoint>>) -> Option<Query> {
    let q = (s.a.dist(s.b) > 1e-9).then(|| Segment::new(s.a, s.b));
    let built = match s.family {
        0 => Query::conn(q?),
        1 => Query::coknn(q?, s.k),
        2 => Query::onn(s.a, s.k),
        3 => Query::range(s.a, s.radius),
        4 => Query::rnn(s.a),
        5 => Query::odist(s.a, s.b),
        6 => Query::route(s.a, s.b),
        7 => Query::closest_pair(Arc::clone(other)),
        8 => {
            let route = Trajectory::try_new(vec![s.a, s.b, s.c]).ok()?;
            Query::trajectory(route, 1)
        }
        _ => Query::edistance_join(Arc::clone(other), s.radius),
    };
    built.build().ok()
}

fn ids(v: &[(DataPoint, f64)]) -> Vec<(u32, u64)> {
    v.iter().map(|(p, d)| (p.id, d.to_bits())).collect()
}

/// Asserts one service answer equals the corresponding free-function
/// answer, bit for bit.
fn assert_matches_free_fn(
    resp: &Response,
    query: &Query,
    scene: &Scene<'_>,
    obstacles: &[conn_geom::Rect],
    other: &Arc<RStarTree<DataPoint>>,
    cfg: &ConnConfig,
) -> Result<(), TestCaseError> {
    let dt = scene.data_tree();
    let ot = scene.obstacle_tree();
    match (resp.answer.family(), &resp.answer) {
        ("conn", Answer::Conn(got)) => {
            let Some(conn_core::QueryKind::Conn { q }) = Some(query.kind()) else {
                unreachable!()
            };
            let (want, _) = conn_search(dt, ot, q, cfg);
            prop_assert_eq!(got.entries().len(), want.entries().len());
            for (x, y) in got.entries().iter().zip(want.entries()) {
                prop_assert_eq!(x.point.map(|p| p.id), y.point.map(|p| p.id));
                prop_assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                prop_assert_eq!(x.interval.hi.to_bits(), y.interval.hi.to_bits());
            }
        }
        ("coknn", Answer::Coknn(got)) => {
            let conn_core::QueryKind::Coknn { q, k } = query.kind() else {
                unreachable!()
            };
            let (want, _) = coknn_search(dt, ot, q, *k, cfg);
            prop_assert_eq!(got.entries().len(), want.entries().len());
            for (x, y) in got.entries().iter().zip(want.entries()) {
                prop_assert_eq!(x.interval.lo.to_bits(), y.interval.lo.to_bits());
                prop_assert_eq!(x.members.len(), y.members.len());
                for (mx, my) in x.members.iter().zip(&y.members) {
                    prop_assert_eq!(mx.point.id, my.point.id);
                    prop_assert_eq!(mx.cp.base.to_bits(), my.cp.base.to_bits());
                }
            }
        }
        ("onn", Answer::Onn(got)) => {
            let conn_core::QueryKind::Onn { s, k } = query.kind() else {
                unreachable!()
            };
            let (want, _) = onn_search(dt, ot, *s, *k, cfg);
            prop_assert_eq!(ids(got), ids(&want));
        }
        ("range", Answer::Range(got)) => {
            let conn_core::QueryKind::Range { s, radius } = query.kind() else {
                unreachable!()
            };
            let (want, _) = obstructed_range_search(dt, ot, *s, *radius, cfg);
            prop_assert_eq!(ids(got), ids(&want));
        }
        ("rnn", Answer::Rnn(got)) => {
            let conn_core::QueryKind::Rnn { s } = query.kind() else {
                unreachable!()
            };
            let (want, _) = obstructed_rnn(dt, ot, *s, cfg);
            prop_assert_eq!(ids(got), ids(&want));
        }
        ("odist", Answer::Odist(got)) => {
            let conn_core::QueryKind::Odist { a, b } = query.kind() else {
                unreachable!()
            };
            prop_assert_eq!(
                got.to_bits(),
                obstructed_distance(obstacles, *a, *b).to_bits()
            );
        }
        ("route", Answer::Route { dist, path }) => {
            let conn_core::QueryKind::Route { a, b } = query.kind() else {
                unreachable!()
            };
            let (want_d, want_p) = obstructed_route(obstacles, *a, *b);
            prop_assert_eq!(dist.to_bits(), want_d.to_bits());
            prop_assert_eq!(path.is_some(), want_p.is_some());
            if let (Some(p), Some(wp)) = (path, want_p) {
                prop_assert_eq!(p.len(), wp.len());
                for (x, y) in p.iter().zip(&wp) {
                    prop_assert_eq!(x.x.to_bits(), y.x.to_bits());
                    prop_assert_eq!(x.y.to_bits(), y.y.to_bits());
                }
            }
        }
        ("closest_pair", Answer::ClosestPair(got)) => {
            let (want, _) = obstructed_closest_pair(dt, other, ot, cfg);
            prop_assert_eq!(
                got.map(|(a, b, d)| (a.id, b.id, d.to_bits())),
                want.map(|(a, b, d)| (a.id, b.id, d.to_bits()))
            );
        }
        ("edistance_join", Answer::EDistanceJoin(got)) => {
            let conn_core::QueryKind::EDistanceJoin { e, .. } = query.kind() else {
                unreachable!()
            };
            let (want, _) = obstructed_edistance_join(dt, other, ot, *e, cfg);
            prop_assert_eq!(
                got.iter()
                    .map(|(a, b, d)| (a.id, b.id, d.to_bits()))
                    .collect::<Vec<_>>(),
                want.iter()
                    .map(|(a, b, d)| (a.id, b.id, d.to_bits()))
                    .collect::<Vec<_>>()
            );
        }
        ("trajectory", Answer::Trajectory(got)) => {
            let conn_core::QueryKind::Trajectory { route, .. } = query.kind() else {
                unreachable!()
            };
            let (want, _) = trajectory_conn_search(dt, ot, route, cfg);
            prop_assert_eq!(got.segments().len(), want.segments().len());
            for (x, y) in got.segments().iter().zip(want.segments()) {
                prop_assert_eq!(x.0.map(|p| p.id), y.0.map(|p| p.id));
                prop_assert_eq!(x.1.lo.to_bits(), y.1.lo.to_bits());
                prop_assert_eq!(x.1.hi.to_bits(), y.1.hi.to_bits());
            }
        }
        (fam, ans) => prop_assert!(false, "family {fam} answered with {ans:?}"),
    }
    Ok(())
}

fn assert_same_answer(x: &Answer, y: &Answer) -> Result<(), TestCaseError> {
    // Debug formatting covers every field of every variant (f64 Debug is
    // lossless for distinct bit patterns except -0.0/NaN payloads, which
    // the kernels never produce in answers), so it is a faithful
    // byte-equality proxy across the whole enum.
    prop_assert_eq!(format!("{x:?}"), format!("{y:?}"));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `execute` answers every family byte-identically to the free
    /// functions, and `execute_batch` answers byte-identically to
    /// `execute`, across scene layouts and kernels.
    #[test]
    fn service_matches_free_functions(scn in scenario(), threads in 1..4usize) {
        let (clustered, n_pts, n_obs, seed, specs) = scn;
        let scene = if clustered {
            Scene::clustered(n_pts, n_obs, seed)
        } else {
            Scene::uniform(n_pts, n_obs, seed)
        };
        let obstacles = scene.obstacles();
        let other = other_set(seed);
        let queries: Vec<Query> = specs
            .iter()
            .filter_map(|s| build_query(s, &other))
            .collect();

        for cfg in [ConnConfig::default(), ConnConfig::baseline_kernel()] {
            let service = ConnService::with_config(
                Scene::borrowing(scene.data_tree(), scene.obstacle_tree()),
                cfg,
            );
            let mut serial: Vec<Response> = Vec::with_capacity(queries.len());
            for q in &queries {
                let resp = service.execute(q).unwrap();
                assert_matches_free_fn(&resp, q, &scene, &obstacles, &other, &cfg)?;
                serial.push(resp);
            }
            let (batch, stats) = service.execute_batch_threads(&queries, threads).unwrap();
            prop_assert_eq!(batch.len(), queries.len());
            prop_assert_eq!(stats.queries, queries.len());
            for (b, s) in batch.iter().zip(&serial) {
                assert_same_answer(&b.answer, &s.answer)?;
            }
        }
    }
}
