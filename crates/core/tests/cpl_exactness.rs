//! Isolates CPLC (Algorithm 2) from the rest of the pipeline: for a single
//! data point, the control-point list must reproduce the exact obstructed
//! distance `‖p, q(t)‖` at every parameter — the distance that a
//! full-visibility-graph Dijkstra from `q(t)` computes.

use conn_core::cpl::{cplc, VrCache};
use conn_core::obstructed_distance;
use conn_core::ConnConfig;
use conn_geom::{Point, Rect, Segment};
use conn_vgraph::{DijkstraEngine, NodeKind, VisGraph};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..600.0f64, 0.0..600.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn obstacles() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((pt(), 10.0..100.0f64, 10.0..100.0f64), 0..8).prop_map(|specs| {
        let mut out: Vec<Rect> = Vec::new();
        for (p, w, h) in specs {
            let r = Rect::new(p.x, p.y, p.x + w, p.y + h);
            if !out.iter().any(|o| o.intersects(&r)) {
                out.push(r);
            }
        }
        out
    })
}

/// Builds the *local* graph with ALL instance obstacles (so CPLC's answer
/// must be exact everywhere, with no retrieval concerns in play).
fn cpl_values(
    obstacles: &[Rect],
    ppos: Point,
    q: &Segment,
    cfg: &ConnConfig,
) -> Vec<(f64, Option<f64>)> {
    let mut g = VisGraph::new(60.0);
    let _s = g.add_point(q.a, NodeKind::Endpoint);
    let _e = g.add_point(q.b, NodeKind::Endpoint);
    for r in obstacles {
        g.add_obstacle(*r);
    }
    let p_node = g.add_point(ppos, NodeKind::DataPoint);
    let mut cache = VrCache::default();
    let mut dij = DijkstraEngine::default();
    let cpl = cplc(q, &mut g, p_node, cfg, &mut cache, &mut dij);
    cpl.check_cover().unwrap();
    (0..=32)
        .map(|i| {
            let t = q.len() * (i as f64) / 32.0;
            (t, cpl.value_at(q, t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cpl_reproduces_exact_obstructed_distances(
        obs in obstacles(),
        praw in pt(),
        qa in pt(),
        qb in pt(),
    ) {
        let q = Segment::new(qa, qb);
        if q.len() < 40.0 || obs.iter().any(|r| r.blocks(&q)) {
            return Ok(());
        }
        // free data point
        let mut ppos = praw;
        let mut tries = 0;
        while obs.iter().any(|r| r.strictly_contains(ppos)) && tries < 50 {
            ppos = Point::new((ppos.x + 173.1) % 600.0, (ppos.y + 97.7) % 600.0);
            tries += 1;
        }
        if obs.iter().any(|r| r.strictly_contains(ppos)) {
            return Ok(());
        }
        let cfg = ConnConfig::default();
        for (t, got) in cpl_values(&obs, ppos, &q, &cfg) {
            let want = obstructed_distance(&obs, ppos, q.at(t));
            match got {
                Some(v) => prop_assert!(
                    (v - want).abs() < 1e-6,
                    "t={} cpl={} brute={}", t, v, want
                ),
                None => prop_assert!(
                    want.is_infinite(),
                    "t={}: CPL has no value but point is reachable at {}", t, want
                ),
            }
        }
    }

    /// Lemma switches change work, never values.
    #[test]
    fn cpl_invariant_under_lemma_toggles(
        obs in obstacles(),
        praw in pt(),
        qa in pt(),
        qb in pt(),
    ) {
        let q = Segment::new(qa, qb);
        if q.len() < 40.0 || obs.iter().any(|r| r.blocks(&q)) {
            return Ok(());
        }
        if obs.iter().any(|r| r.strictly_contains(praw)) {
            return Ok(());
        }
        let base = cpl_values(&obs, praw, &q, &ConnConfig::default());
        for cfg in [
            ConnConfig::no_pruning(),
            ConnConfig { use_lemma6: false, ..ConnConfig::default() },
            ConnConfig { use_lemma7: false, ..ConnConfig::default() },
        ] {
            for ((t1, a), (t2, b)) in base.iter().zip(cpl_values(&obs, praw, &q, &cfg)) {
                prop_assert_eq!(*t1, t2);
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6, "t={}", t1),
                    (None, None) => {}
                    _ => prop_assert!(false, "coverage differs at t={}", t1),
                }
            }
        }
    }
}
