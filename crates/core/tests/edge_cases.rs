//! Failure injection and degenerate-geometry tests: points on obstacle
//! boundaries, queries grazing walls, duplicates, ties, extreme k, and
//! pathological layouts.

use conn_core::baseline::brute_force_oknn;
use conn_core::{coknn_search, conn_search, onn_search, ConnConfig, DataPoint};
use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;

fn q_h() -> Segment {
    Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
}

fn run(
    points: Vec<DataPoint>,
    obstacles: Vec<Rect>,
    q: &Segment,
    k: usize,
) -> (conn_core::CoknnResult, conn_core::QueryStats) {
    let dt = RStarTree::bulk_load(points, 4096);
    let ot = RStarTree::bulk_load(obstacles, 4096);
    coknn_search(&dt, &ot, q, k, &ConnConfig::default())
}

#[test]
fn data_point_on_obstacle_corner() {
    // the paper allows points on obstacle boundaries
    let obstacles = vec![Rect::new(40.0, 10.0, 60.0, 30.0)];
    let points = vec![
        DataPoint::new(0, Point::new(40.0, 10.0)), // exactly a corner
        DataPoint::new(1, Point::new(60.0, 30.0)), // opposite corner
    ];
    let (res, _) = run(points.clone(), obstacles.clone(), &q_h(), 1);
    res.check_cover().unwrap();
    for i in 0..=20 {
        let t = 100.0 * (i as f64) / 20.0;
        let want = brute_force_oknn(&points, &obstacles, q_h().at(t), 1)[0].1;
        let got = res.knn_at(t)[0].1;
        assert!((got - want).abs() < 1e-6, "t = {t}: {got} vs {want}");
    }
}

#[test]
fn data_point_on_obstacle_edge() {
    let obstacles = vec![Rect::new(40.0, 10.0, 60.0, 30.0)];
    let points = vec![DataPoint::new(0, Point::new(50.0, 30.0))]; // top wall
    let (res, _) = run(points.clone(), obstacles.clone(), &q_h(), 1);
    res.check_cover().unwrap();
    // directly below, the path must round the box (the wall blocks)
    let got = res.knn_at(50.0)[0].1;
    let want = brute_force_oknn(&points, &obstacles, q_h().at(50.0), 1)[0].1;
    assert!((got - want).abs() < 1e-6);
    assert!(got > 30.0 + 1.0, "must detour, got {got}");
}

#[test]
fn query_sliding_along_a_wall() {
    // q runs exactly along the top edge of a long obstacle: touching is
    // not blocking, so everything stays visible from above
    let obstacles = vec![Rect::new(10.0, -20.0, 90.0, 0.0)];
    let points = vec![
        DataPoint::new(0, Point::new(30.0, 40.0)),
        DataPoint::new(1, Point::new(70.0, 25.0)),
    ];
    let (res, _) = run(points.clone(), obstacles, &q_h(), 1);
    res.check_cover().unwrap();
    for i in 0..=10 {
        let t = 100.0 * (i as f64) / 10.0;
        let (p, d) = res.knn_at(t)[0];
        // distances are plain euclidean: the obstacle is below the query
        assert!((d - p.pos.dist(q_h().at(t))).abs() < 1e-6, "t = {t}");
    }
}

#[test]
fn duplicate_points_tie_cleanly() {
    let points = vec![
        DataPoint::new(0, Point::new(50.0, 20.0)),
        DataPoint::new(1, Point::new(50.0, 20.0)), // exact duplicate
        DataPoint::new(2, Point::new(10.0, 60.0)),
    ];
    let (res, _) = run(points, vec![], &q_h(), 2);
    res.check_cover().unwrap();
    let ans = res.knn_at(50.0);
    assert_eq!(ans.len(), 2);
    // the two duplicates share the same distance
    assert!((ans[0].1 - ans[1].1).abs() < 1e-9);
    assert_eq!(ans[0].1, 20.0);
}

#[test]
fn k_exceeding_cardinality_returns_everything() {
    let points = vec![
        DataPoint::new(0, Point::new(10.0, 10.0)),
        DataPoint::new(1, Point::new(90.0, 10.0)),
    ];
    let (res, stats) = run(points, vec![], &q_h(), 7);
    res.check_cover().unwrap();
    assert_eq!(res.knn_at(50.0).len(), 2);
    assert_eq!(stats.npe, 2, "everything must be evaluated");
}

#[test]
fn very_short_query_segment() {
    let q = Segment::new(Point::new(50.0, 0.0), Point::new(50.1, 0.0));
    let points = vec![
        DataPoint::new(0, Point::new(40.0, 10.0)),
        DataPoint::new(1, Point::new(60.0, 10.0)),
    ];
    let dt = RStarTree::bulk_load(points, 4096);
    let ot: RStarTree<Rect> = RStarTree::bulk_load(vec![], 4096);
    let (res, _) = conn_search(&dt, &ot, &q, &ConnConfig::default());
    res.check_cover().unwrap();
    assert!(res.nn_at(0.05).is_some());
}

#[test]
fn point_coincident_with_query_endpoint() {
    let points = vec![DataPoint::new(0, Point::new(0.0, 0.0))]; // == S
    let (res, _) = run(points, vec![], &q_h(), 1);
    res.check_cover().unwrap();
    let (p, d) = res.knn_at(0.0)[0];
    assert_eq!(p.id, 0);
    assert!(d < 1e-9);
    assert!((res.knn_at(100.0)[0].1 - 100.0).abs() < 1e-9);
}

#[test]
fn dense_obstacle_corridor() {
    // a comb of walls perpendicular to q: each data point only reachable
    // through its slot
    let mut obstacles = Vec::new();
    for i in 0..9 {
        let x = 10.0 + i as f64 * 10.0;
        obstacles.push(Rect::new(x - 1.0, 5.0, x + 1.0, 50.0));
    }
    let points = vec![
        DataPoint::new(0, Point::new(15.0, 60.0)),
        DataPoint::new(1, Point::new(55.0, 60.0)),
        DataPoint::new(2, Point::new(95.0, 60.0)),
    ];
    let (res, _) = run(points.clone(), obstacles.clone(), &q_h(), 1);
    res.check_cover().unwrap();
    for i in 0..=20 {
        let t = 100.0 * (i as f64) / 20.0;
        let want = brute_force_oknn(&points, &obstacles, q_h().at(t), 1)[0].1;
        let got = res.knn_at(t)[0].1;
        assert!((got - want).abs() < 1e-6, "t = {t}: {got} vs {want}");
    }
}

#[test]
fn all_points_behind_one_wall() {
    // every data point shares the same wall: control points concentrate on
    // the wall's two free corners
    let wall = Rect::new(20.0, 10.0, 80.0, 20.0);
    let points = vec![
        DataPoint::new(0, Point::new(30.0, 40.0)),
        DataPoint::new(1, Point::new(50.0, 35.0)),
        DataPoint::new(2, Point::new(70.0, 45.0)),
    ];
    let (res, _) = run(points.clone(), vec![wall], &q_h(), 1);
    res.check_cover().unwrap();
    for i in 0..=20 {
        let t = 100.0 * (i as f64) / 20.0;
        let want = brute_force_oknn(&points, &[wall], q_h().at(t), 1)[0].1;
        let got = res.knn_at(t)[0].1;
        assert!((got - want).abs() < 1e-6, "t = {t}");
    }
}

#[test]
fn onn_at_point_on_wall() {
    let wall = Rect::new(20.0, 10.0, 80.0, 20.0);
    let points = vec![
        DataPoint::new(0, Point::new(50.0, 40.0)),
        DataPoint::new(1, Point::new(50.0, -10.0)),
    ];
    let dt = RStarTree::bulk_load(points.clone(), 4096);
    let ot = RStarTree::bulk_load(vec![wall], 4096);
    // query location exactly on the wall's bottom edge
    let s = Point::new(50.0, 10.0);
    let (got, _) = onn_search(&dt, &ot, s, 2, &ConnConfig::default());
    let want = brute_force_oknn(&points, &[wall], s, 2);
    assert_eq!(got.len(), want.len());
    for ((_, gd), (_, wd)) in got.iter().zip(&want) {
        assert!((gd - wd).abs() < 1e-6);
    }
}

#[test]
fn collinear_points_and_query() {
    // all points exactly on the query line
    let points = vec![
        DataPoint::new(0, Point::new(20.0, 0.0)),
        DataPoint::new(1, Point::new(50.0, 0.0)),
        DataPoint::new(2, Point::new(80.0, 0.0)),
    ];
    let (res, _) = run(points, vec![], &q_h(), 1);
    res.check_cover().unwrap();
    assert_eq!(res.knn_at(10.0)[0].0.id, 0);
    assert_eq!(res.knn_at(50.0)[0].0.id, 1);
    assert_eq!(res.knn_at(90.0)[0].0.id, 2);
    // split points at the midpoints 35 and 65
    let (_, d) = res.knn_at(35.0)[0];
    assert!((d - 15.0).abs() < 1e-6);
}

#[test]
fn obstacle_touching_query_endpoint() {
    // obstacle corner exactly at E
    let obstacles = vec![Rect::new(100.0, 0.0, 120.0, 20.0)];
    let points = vec![DataPoint::new(0, Point::new(110.0, 30.0))];
    let (res, _) = run(points.clone(), obstacles.clone(), &q_h(), 1);
    res.check_cover().unwrap();
    let got = res.knn_at(100.0)[0].1;
    let want = brute_force_oknn(&points, &obstacles, Point::new(100.0, 0.0), 1)[0].1;
    assert!((got - want).abs() < 1e-6);
}
