//! End-to-end correctness: the exact CONN/COkNN pipeline must agree with
//! the brute-force full-visibility-graph baseline at every sampled location
//! of the query segment, across randomized instances.

use conn_core::baseline::{brute_force_oknn, sampled_conn};
use conn_core::{
    build_unified_tree, coknn_search, coknn_search_single_tree, conn_search, ConnConfig, DataPoint,
};
use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// Disjoint obstacle rectangles.
fn obstacles() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((pt(), 10.0..120.0f64, 10.0..120.0f64), 0..10).prop_map(|specs| {
        let mut out: Vec<Rect> = Vec::new();
        for (p, w, h) in specs {
            let r = Rect::new(p.x, p.y, p.x + w, p.y + h);
            if !out.iter().any(|o| o.intersects(&r)) {
                out.push(r);
            }
        }
        out
    })
}

/// An instance: obstacles, free data points, and a free query segment.
#[derive(Debug, Clone)]
struct Instance {
    points: Vec<DataPoint>,
    obstacles: Vec<Rect>,
    q: Segment,
}

fn instance() -> impl Strategy<Value = Instance> {
    (obstacles(), prop::collection::vec(pt(), 1..25), pt(), pt()).prop_filter_map(
        "bad query",
        |(obs, raw_points, qa, qb)| {
            let free = |p: Point| !obs.iter().any(|r| r.strictly_contains(p));
            let points: Vec<DataPoint> = raw_points
                .into_iter()
                .filter(|p| free(*p))
                .enumerate()
                .map(|(i, p)| DataPoint::new(i as u32, p))
                .collect();
            if points.is_empty() {
                return None;
            }
            let q = Segment::new(qa, qb);
            if q.len() < 50.0 {
                return None;
            }
            // the query trajectory must not cross obstacle interiors
            if obs.iter().any(|r| r.blocks(&q)) {
                return None;
            }
            Some(Instance {
                points,
                obstacles: obs,
                q,
            })
        },
    )
}

/// Sample parameters avoiding the immediate neighborhood of split points,
/// where ties make winner identity ambiguous.
fn check_against_brute_force(inst: &Instance, k: usize, cfg: &ConnConfig) {
    let dt = RStarTree::bulk_load(inst.points.clone(), 4096);
    let ot = RStarTree::bulk_load(inst.obstacles.clone(), 4096);
    let (res, stats) = coknn_search(&dt, &ot, &inst.q, k, cfg);
    res.check_cover().unwrap();
    assert!(stats.npe as usize <= inst.points.len());

    for i in 0..=40 {
        let t = inst.q.len() * (i as f64) / 40.0;
        let want = brute_force_oknn(&inst.points, &inst.obstacles, inst.q.at(t), k);
        let got = res.knn_at(t);
        assert_eq!(
            got.len(),
            want.len().min(k),
            "t={t}: got {got:?} want {want:?}"
        );
        for (j, ((gp, gd), (wp, wd))) in got.iter().zip(&want).enumerate() {
            assert!(
                (gd - wd).abs() < 1e-6,
                "t={t} rank {j}: dist {gd} vs {wd} (points {} vs {})",
                gp.id,
                wp.id
            );
            // identity can differ only under a distance tie
            if (gd - wd).abs() < 1e-6 && gp.id != wp.id {
                // confirm both are genuinely tied
                let alt = want.iter().find(|(p, _)| p.id == gp.id);
                assert!(
                    alt.is_some_and(|(_, d)| (d - gd).abs() < 1e-6),
                    "t={t} rank {j}: {} not tied with {}",
                    gp.id,
                    wp.id
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conn_matches_brute_force(inst in instance()) {
        check_against_brute_force(&inst, 1, &ConnConfig::default());
    }

    #[test]
    fn coknn_matches_brute_force_k3(inst in instance()) {
        check_against_brute_force(&inst, 3, &ConnConfig::default());
    }

    #[test]
    fn pruning_lemmas_do_not_change_answers(inst in instance()) {
        let dt = RStarTree::bulk_load(inst.points.clone(), 4096);
        let ot = RStarTree::bulk_load(inst.obstacles.clone(), 4096);
        let (full, _) = conn_search(&dt, &ot, &inst.q, &ConnConfig::default());
        let (bare, _) = conn_search(&dt, &ot, &inst.q, &ConnConfig::no_pruning());
        for i in 0..=30 {
            let t = inst.q.len() * (i as f64) / 30.0;
            match (full.nn_at(t), bare.nn_at(t)) {
                (Some((_, d1)), Some((_, d2))) => prop_assert!((d1 - d2).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }
    }

    #[test]
    fn one_tree_equals_two_trees(inst in instance()) {
        let dt = RStarTree::bulk_load(inst.points.clone(), 4096);
        let ot = RStarTree::bulk_load(inst.obstacles.clone(), 4096);
        let ut = build_unified_tree(&inst.points, &inst.obstacles, 4096);
        let cfg = ConnConfig::default();
        let (two, _) = coknn_search(&dt, &ot, &inst.q, 2, &cfg);
        let (one, _) = coknn_search_single_tree(&ut, &inst.q, 2, &cfg);
        for i in 0..=30 {
            let t = inst.q.len() * (i as f64) / 30.0;
            let a = two.knn_at(t);
            let b = one.knn_at(t);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x.1 - y.1).abs() < 1e-6, "t={} {:?} vs {:?}", t, x, y);
            }
        }
    }

    #[test]
    fn coknn_k1_equals_conn(inst in instance()) {
        let dt = RStarTree::bulk_load(inst.points.clone(), 4096);
        let ot = RStarTree::bulk_load(inst.obstacles.clone(), 4096);
        let cfg = ConnConfig::default();
        let (conn, _) = conn_search(&dt, &ot, &inst.q, &cfg);
        let (k1, _) = coknn_search(&dt, &ot, &inst.q, 1, &cfg);
        for i in 0..=30 {
            let t = inst.q.len() * (i as f64) / 30.0;
            let a = conn.nn_at(t);
            let b = k1.knn_at(t);
            match (a, b.first()) {
                (Some((_, d1)), Some((_, d2))) => prop_assert!((d1 - d2).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
        }
    }

    #[test]
    fn sampled_baseline_agrees_with_exact(inst in instance()) {
        let dt = RStarTree::bulk_load(inst.points.clone(), 4096);
        let ot = RStarTree::bulk_load(inst.obstacles.clone(), 4096);
        let (res, _) = conn_search(&dt, &ot, &inst.q, &ConnConfig::default());
        let samples = sampled_conn(&inst.points, &inst.obstacles, &inst.q, 21, 1);
        for s in &samples {
            let got = res.nn_at(s.t);
            match (got, s.neighbors.first()) {
                (Some((_, gd)), Some((_, wd))) => {
                    prop_assert!((gd - wd).abs() < 1e-6, "t={}: {} vs {}", s.t, gd, wd)
                }
                (g, w) => prop_assert_eq!(g.is_none(), w.is_none()),
            }
        }
    }
}
