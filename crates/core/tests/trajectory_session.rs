//! Streaming-vs-batch equivalence for trajectory sessions.
//!
//! A [`TrajectorySession`] shares monotone state across legs (persistent
//! visibility graph, deduplicated obstacle loads, seeded `RLMAX` bounds,
//! old endpoint nodes left in the graph). None of that may change what the
//! query *answers*: concatenated session deltas must be
//! answer-equivalent — same answer identities modulo exact ties, distances
//! within 1e-6 — to the cold per-leg reference, across kernels and across
//! uniform/clustered point layouts. Cover invariants (gap-free, no empty
//! tuples) are asserted on every generated trajectory, which doubles as
//! the multi-leg joint-sliver regression suite.

use conn_core::{
    obstructed_distance, trajectory_conn_search_cold, ConnConfig, DataPoint, KernelMode,
    Trajectory, TrajectorySession,
};
use conn_geom::{Interval, Point, Rect};
use conn_index::RStarTree;
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// Disjoint rectangles (overlapping candidates are dropped while building).
fn rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((pt(), 5.0..80.0f64, 5.0..80.0f64), 0..10).prop_map(|specs| {
        let mut out: Vec<Rect> = Vec::new();
        for (p, w, h) in specs {
            let r = Rect::new(p.x, p.y, p.x + w, p.y + h);
            if !out.iter().any(|o| o.intersects(&r)) {
                out.push(r);
            }
        }
        out
    })
}

/// Uniform or hotspot-clustered data points outside obstacle interiors.
fn points(obstacles: Vec<Rect>) -> impl Strategy<Value = (Vec<Rect>, Vec<DataPoint>)> {
    (prop::collection::vec(pt(), 2..14), 0..2u8, pt()).prop_map(move |(raw, clustered, center)| {
        let clustered = clustered == 1;
        let ps = raw
            .iter()
            .map(|p| {
                if clustered {
                    // squeeze toward a hotspot: the clustered layout of
                    // the batch workloads
                    Point::new(
                        center.x + (p.x - 500.0) * 0.12,
                        center.y + (p.y - 500.0) * 0.12,
                    )
                } else {
                    *p
                }
            })
            .filter(|p| !obstacles.iter().any(|r| r.strictly_contains(*p)))
            .enumerate()
            .map(|(i, p)| DataPoint::new(i as u32, p))
            .collect();
        (obstacles.clone(), ps)
    })
}

/// A trajectory of 3–6 legs: a start plus bounded random steps, with legs
/// shorter than the space so the workload stays local.
fn route() -> impl Strategy<Value = Vec<Point>> {
    (
        pt(),
        prop::collection::vec((-160.0..160.0f64, -160.0..160.0f64), 3..7),
    )
        .prop_map(|(start, steps)| {
            let mut verts = vec![start];
            let mut cur = start;
            for (dx, dy) in steps {
                let (dx, dy) = if dx.abs() + dy.abs() < 1.0 {
                    (7.0, 5.0) // avoid degenerate legs
                } else {
                    (dx, dy)
                };
                cur = Point::new(
                    (cur.x + dx).clamp(0.0, 1000.0),
                    (cur.y + dy).clamp(0.0, 1000.0),
                );
                if cur.dist(*verts.last().unwrap()) > 1.0 {
                    verts.push(cur);
                }
            }
            if verts.len() < 2 {
                verts.push(Point::new(start.x + 10.0, start.y + 10.0));
            }
            verts
        })
}

type Scenario = (Vec<Rect>, Vec<DataPoint>, Vec<Point>);

fn scenario() -> impl Strategy<Value = Scenario> {
    rects()
        .prop_flat_map(points)
        .prop_flat_map(|(obstacles, ps)| {
            route().prop_map(move |verts| (obstacles.clone(), ps.clone(), verts))
        })
}

/// Same answer at `t`, or a tie: both reachable with obstructed distances
/// within `1e-6` of each other.
fn answers_agree(
    obstacles: &[Rect],
    traj: &Trajectory,
    t: f64,
    a: Option<DataPoint>,
    b: Option<DataPoint>,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            if x.id != y.id {
                let q = traj.at(t);
                let dx = obstructed_distance(obstacles, x.pos, q);
                let dy = obstructed_distance(obstacles, y.pos, q);
                prop_assert!(
                    (dx - dy).abs() < 1e-6,
                    "t = {t}: {} (d = {dx}) vs {} (d = {dy})",
                    x.id,
                    y.id
                );
            }
        }
        (a, b) => prop_assert!(false, "reachability diverged at t = {t}: {a:?} vs {b:?}"),
    }
    Ok(())
}

fn check_kernel(scn: &Scenario, kernel: KernelMode) -> Result<(), TestCaseError> {
    let (obstacles, ps, verts) = scn;
    let traj = Trajectory::new(verts.clone());
    let data_tree = RStarTree::bulk_load(ps.clone(), 4096);
    let obstacle_tree = RStarTree::bulk_load(obstacles.clone(), 4096);
    let cfg = ConnConfig {
        kernel,
        ..ConnConfig::default()
    };

    let (cold, _) = trajectory_conn_search_cold(&data_tree, &obstacle_tree, &traj, &cfg);
    prop_assert!(cold.check_cover().is_ok(), "{:?}", cold.check_cover());

    let mut session = TrajectorySession::new(&data_tree, &obstacle_tree, verts[0], cfg);
    let mut concat: Vec<(Option<DataPoint>, Interval)> = Vec::new();
    for &v in &verts[1..] {
        let delta = session.push_leg(v);
        // deltas chain without gaps
        let prev_hi = concat.last().map_or(0.0, |x| x.1.hi);
        prop_assert!((delta[0].1.lo - prev_hi).abs() < 1e-9);
        for (_, iv) in &delta {
            prop_assert!(iv.hi > iv.lo, "empty delta tuple {iv:?}");
        }
        concat.extend(delta);
    }
    let (streamed, _) = session.finish();
    prop_assert!(
        streamed.check_cover().is_ok(),
        "{:?}",
        streamed.check_cover()
    );

    // concatenated deltas == stitched result, and both match the cold
    // reference at sampled parameters (tuple midpoints of both results
    // plus an even grid)
    let mut ts: Vec<f64> = Vec::new();
    for (_, iv) in cold.segments().iter().chain(streamed.segments()) {
        ts.push((iv.lo + iv.hi) * 0.5);
    }
    ts.extend((0..=48).map(|i| traj.len() * i as f64 / 48.0));
    for t in ts {
        let from_cold = cold.nn_at(t);
        let from_stream = streamed.nn_at(t);
        answers_agree(obstacles, &traj, t, from_cold, from_stream)?;
        let from_delta = concat
            .iter()
            .find(|(_, iv)| iv.contains(t))
            .and_then(|(p, _)| *p);
        answers_agree(obstacles, &traj, t, from_delta, from_stream)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming deltas, concatenated, are answer-equivalent to the cold
    /// per-leg batch reference — on the goal-directed kernel.
    #[test]
    fn streamed_deltas_match_batch_goal_directed(scn in scenario()) {
        check_kernel(&scn, KernelMode::GoalDirected)?;
    }

    /// The same guarantee on the blind (paper-literal traversal) kernel.
    #[test]
    fn streamed_deltas_match_batch_blind(scn in scenario()) {
        check_kernel(&scn, KernelMode::Blind)?;
    }
}
