//! Concurrent-serving suite for the epoch/shard/pool/admission stack.
//!
//! Pins the three serving contracts end to end:
//!
//! * **Snapshot isolation** — a reader pinned to epoch N returns answers
//!   byte-identical to a serial run against epoch N while later epochs
//!   publish mid-query;
//! * **Race-free pooling** — reuse counters aggregated by the persistent
//!   engine pool equal the per-query sums even under concurrent batches;
//! * **Shard equivalence** — a sharded service answers equivalently
//!   (1e-6) to the unsharded single-engine reference over random
//!   mixed-family workloads, whichever path (certified shard or full
//!   fallback) each query takes.

use std::sync::atomic::{AtomicBool, Ordering};

use conn_core::{
    Admission, AdmissionConfig, ConnConfig, ConnService, EnginePool, PinnedEpoch, Query,
    ReuseCounters, Scene, SceneEpoch, ShardSpec, Ticket,
};
use conn_geom::{Point, Segment};
use proptest::prelude::*;

/// The whole serving surface must be shareable across threads; these are
/// compile-time assertions (the test body is trivially true once it
/// compiles).
#[test]
fn serving_layer_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConnService<'static>>();
    assert_send_sync::<Scene<'static>>();
    assert_send_sync::<SceneEpoch<'static>>();
    assert_send_sync::<PinnedEpoch<'static>>();
    assert_send_sync::<EnginePool>();
    assert_send_sync::<Admission>();
    assert_send_sync::<Ticket>();
}

/// A deterministic mixed-family probe set over the generated scenes.
fn probes() -> Vec<Query> {
    let mut out = Vec::new();
    for i in 0..6u64 {
        let x = (i as f64 * 1371.0) % 9000.0;
        let y = (i as f64 * 2113.0) % 9000.0;
        let seg = Segment::new(Point::new(x, y), Point::new(x + 800.0, y + 120.0));
        out.push(Query::conn(seg).build().unwrap());
        out.push(Query::coknn(seg, 2).build().unwrap());
        out.push(Query::onn(Point::new(x, y), 2).build().unwrap());
        out.push(Query::range(Point::new(x, y), 1500.0).build().unwrap());
        out.push(
            Query::odist(Point::new(x, y), Point::new(y, x))
                .build()
                .unwrap(),
        );
    }
    out
}

/// Satellite: a reader pinned to epoch N must return answers
/// byte-identical to a serial run against epoch N while epochs N+1, N+2, …
/// publish mid-query.
#[test]
fn pinned_reader_is_isolated_from_concurrent_publishes() {
    let queries = probes();
    // serial reference over an identically constructed scene
    let reference = ConnService::new(Scene::uniform(40, 25, 7));
    let expected: Vec<String> = queries
        .iter()
        .map(|q| format!("{:?}", reference.execute(q).unwrap().answer))
        .collect();

    let service = ConnService::new(Scene::uniform(40, 25, 7));
    let pin0 = service.pin();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let publisher = scope.spawn(|| {
            let mut published = 0u64;
            while !done.load(Ordering::Relaxed) {
                // publish a different world every iteration
                published = service.publish(Scene::uniform(10, 8, 1000 + published));
            }
            published
        });

        // the reader holds its pin across the whole sweep, three times over
        for _ in 0..3 {
            for (q, want) in queries.iter().zip(&expected) {
                let resp = service.execute_at(&pin0, q).unwrap();
                assert_eq!(
                    &format!("{:?}", resp.answer),
                    want,
                    "pinned reader saw a torn scene"
                );
            }
        }
        done.store(true, Ordering::Relaxed);
        let published = publisher.join().unwrap();
        assert!(published >= 1, "publisher never got an epoch in");
        assert_eq!(service.current_epoch(), published);
        // epoch 0 is still pinned: every *other* published-over epoch has
        // retired, epoch 0 has not
        assert_eq!(service.retired_epochs(), published.saturating_sub(1));
        assert_eq!(service.epochs_retired(), service.retired_epochs());
        // the live ledger balances: pinned epoch 0 + the current epoch
        assert_eq!(service.epochs_live(), 2);
    });
    assert_eq!(pin0.epoch(), 0);
    drop(pin0);
    assert!(service.retired_epochs() >= 1);
    assert_eq!(service.epochs_live(), 1, "only the current epoch remains");
}

/// Satellite: per-worker counter pooling. Two batches racing on the same
/// service must aggregate exactly the per-query counter sums — no lost
/// increments on sweep_events / sight_tests.
#[test]
fn pool_counters_aggregate_across_concurrent_batches() {
    let service = ConnService::new(Scene::uniform(30, 20, 11));
    let queries = probes();
    let mut expected = ReuseCounters::default();
    std::thread::scope(|scope| {
        let a = scope.spawn(|| service.execute_batch_threads(&queries, 2).unwrap());
        let b = scope.spawn(|| service.execute_batch_threads(&queries, 2).unwrap());
        for handle in [a, b] {
            let (responses, _) = handle.join().unwrap();
            for r in &responses {
                expected.accumulate(&r.stats.reuse);
            }
        }
    });
    assert!(expected.sight_tests > 0, "probe set exercised no kernels");
    assert_eq!(
        service.reuse_totals(),
        expected,
        "pool totals lost increments under concurrent batches"
    );
}

/// Concurrent admission: clients on several threads submit single queries,
/// a pump thread coalesces them through the batch path; every ticket must
/// resolve to the same answer a direct execute gives.
#[test]
fn admission_serves_concurrent_clients() {
    let service = ConnService::new(Scene::uniform(25, 15, 3));
    let admission = Admission::new(AdmissionConfig {
        max_pending: 256,
        coalesce: 8,
    });
    let queries = probes();
    let total = (queries.len() * 3) as u64;
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let admission = &admission;
            let service = &service;
            let queries = &queries;
            scope.spawn(move || {
                for q in queries {
                    let ticket = admission.submit(q.clone()).unwrap();
                    let got = ticket.wait().unwrap();
                    let want = service.execute(q).unwrap();
                    assert_eq!(
                        format!("{:?}", got.answer),
                        format!("{:?}", want.answer),
                        "queued answer diverged from direct execute"
                    );
                }
            });
        }
        let admission = &admission;
        let service = &service;
        scope.spawn(move || {
            while admission.served() < total {
                if admission.pump(service, 2) == 0 {
                    std::thread::yield_now();
                }
            }
        });
    });
    assert_eq!(admission.served(), total);
    assert_eq!(admission.pending(), 0);
    assert!(admission.batches() <= total, "coalescing never batched");
    assert_eq!(admission.take_latencies().len() as u64, total);
}

/// Scene layout for the shard proptest: points + a few obstacles over
/// [0, 10000]^2, the same inputs for the sharded and unsharded service.
fn shard_scene(seed: u64, n: usize) -> Scene<'static> {
    Scene::uniform(n, 18, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole invariant: sharded answers are equivalent (1e-6) to the
    /// unsharded single-engine reference — whichever path each query took.
    #[test]
    fn sharded_matches_unsharded(
        seed in 0..500u64,
        n in 15..40usize,
        qx in 0.0..9000.0f64,
        qy in 0.0..9000.0f64,
        k in 1..4usize,
        radius in 200.0..6000.0f64,
    ) {
        let unsharded = ConnService::new(shard_scene(seed, n));
        let sharded = ConnService::sharded(
            shard_scene(seed, n),
            ConnConfig::default(),
            ShardSpec::new(2, 2, 2500.0).unwrap(),
        );
        let seg = Segment::new(Point::new(qx, qy), Point::new(qx + 600.0, qy + 90.0));

        // CONN: value-equivalent result lists
        let q = Query::conn(seg).build().unwrap();
        let a = sharded.execute(&q).unwrap();
        let b = unsharded.execute(&q).unwrap();
        prop_assert!(
            a.answer.as_conn().unwrap().values_equivalent(b.answer.as_conn().unwrap(), 1e-6),
            "CONN diverged (shard_local={}, shard_merges={})",
            a.stats.reuse.shard_local,
            a.stats.reuse.shard_merges
        );

        // COkNN: same k-set distances on a parameter grid
        let q = Query::coknn(seg, k).build().unwrap();
        let a = sharded.execute(&q).unwrap();
        let b = unsharded.execute(&q).unwrap();
        let (ra, rb) = (a.answer.as_coknn().unwrap(), b.answer.as_coknn().unwrap());
        for i in 0..=8 {
            let t = seg.len() * i as f64 / 8.0;
            let (va, vb) = (ra.knn_at(t), rb.knn_at(t));
            prop_assert_eq!(va.len(), vb.len(), "COkNN member count diverged at t={}", t);
            for (x, y) in va.iter().zip(&vb) {
                prop_assert!((x.1 - y.1).abs() <= 1e-6, "COkNN distance diverged at t={}", t);
            }
        }

        // ONN: same sorted distance profile
        let q = Query::onn(Point::new(qx, qy), k).build().unwrap();
        let a = sharded.execute(&q).unwrap();
        let b = unsharded.execute(&q).unwrap();
        let (va, vb) = (a.answer.neighbors().unwrap(), b.answer.neighbors().unwrap());
        prop_assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb) {
            prop_assert!((x.1 - y.1).abs() <= 1e-6, "ONN distance diverged");
        }

        // Range: membership may only differ by boundary-ULP points
        let q = Query::range(Point::new(qx, qy), radius).build().unwrap();
        let a = sharded.execute(&q).unwrap();
        let b = unsharded.execute(&q).unwrap();
        let (va, vb) = (a.answer.neighbors().unwrap(), b.answer.neighbors().unwrap());
        for (only, other) in [(va, vb), (vb, va)] {
            for (p, d) in only {
                if !other.iter().any(|(op, _)| op.id == p.id) {
                    prop_assert!(
                        (d - radius).abs() <= 1e-6,
                        "non-boundary range member {} missing from the other answer",
                        p.id
                    );
                }
            }
        }
    }
}
