//! Persistence round-trips for the query-layer item types, including a
//! "build once, query later" flow over a saved unified tree.

use conn_core::{
    build_unified_tree, coknn_search, coknn_search_single_tree, ConnConfig, DataPoint,
    SpatialObject,
};
use conn_geom::{Point, Rect, Segment};
use conn_index::RStarTree;

fn world() -> (Vec<DataPoint>, Vec<Rect>) {
    let points = (0..300)
        .map(|i| {
            DataPoint::new(
                i,
                Point::new((i as f64 * 733.0) % 997.0, (i as f64 * 131.0) % 883.0),
            )
        })
        .collect();
    let obstacles = (0..120)
        .map(|i| {
            let x = (i as f64 * 617.0) % 900.0;
            let y = (i as f64 * 239.0) % 900.0;
            Rect::new(x, y, x + 14.0, y + 6.0)
        })
        .collect();
    (points, obstacles)
}

#[test]
fn data_point_tree_roundtrip() {
    let (points, _) = world();
    let tree = RStarTree::bulk_load(points, 4096);
    let mut bytes = Vec::new();
    tree.save(&mut bytes).unwrap();
    let loaded: RStarTree<DataPoint> = RStarTree::load(&bytes[..]).unwrap();
    loaded.check_invariants().unwrap();
    assert_eq!(loaded.len(), tree.len());
    // ids survive
    let q = Point::new(500.0, 500.0);
    for ((a, da), (b, db)) in tree.knn(q, 20).iter().zip(loaded.knn(q, 20).iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(da, db);
    }
}

#[test]
fn unified_tree_roundtrip_preserves_query_answers() {
    let (points, obstacles) = world();
    let unified = build_unified_tree(&points, &obstacles, 4096);
    let mut bytes = Vec::new();
    unified.save(&mut bytes).unwrap();
    let loaded: RStarTree<SpatialObject> = RStarTree::load(&bytes[..]).unwrap();
    loaded.check_invariants().unwrap();
    assert_eq!(loaded.len(), points.len() + obstacles.len());

    let q = Segment::new(Point::new(100.0, 100.0), Point::new(400.0, 250.0));
    let cfg = ConnConfig::default();
    let (orig, _) = coknn_search_single_tree(&unified, &q, 3, &cfg);
    let (from_disk, _) = coknn_search_single_tree(&loaded, &q, 3, &cfg);
    for i in 0..=20 {
        let t = q.len() * (i as f64) / 20.0;
        let (a, b) = (orig.knn_at(t), from_disk.knn_at(t));
        assert_eq!(a.len(), b.len(), "t = {t}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.id, y.0.id);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }
}

#[test]
fn saved_trees_give_same_answers_as_fresh_builds() {
    let (points, obstacles) = world();
    let dt = RStarTree::bulk_load(points.clone(), 4096);
    let ot = RStarTree::bulk_load(obstacles.clone(), 4096);
    let (mut db, mut ob) = (Vec::new(), Vec::new());
    dt.save(&mut db).unwrap();
    ot.save(&mut ob).unwrap();
    let dt2: RStarTree<DataPoint> = RStarTree::load(&db[..]).unwrap();
    let ot2: RStarTree<Rect> = RStarTree::load(&ob[..]).unwrap();

    let q = Segment::new(Point::new(50.0, 700.0), Point::new(420.0, 640.0));
    let cfg = ConnConfig::default();
    let (a, _) = coknn_search(&dt, &ot, &q, 2, &cfg);
    let (b, _) = coknn_search(&dt2, &ot2, &q, 2, &cfg);
    for i in 0..=15 {
        let t = q.len() * (i as f64) / 15.0;
        let (x, y) = (a.knn_at(t), b.knn_at(t));
        assert_eq!(x.len(), y.len());
        for (u, v) in x.iter().zip(&y) {
            assert_eq!(u.0.id, v.0.id);
            assert!((u.1 - v.1).abs() < 1e-12);
        }
    }
}
