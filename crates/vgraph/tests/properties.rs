//! Property tests for the visibility substrate: path validity, metric
//! lower bounds, symmetry, and agreement between the lazy local graph and a
//! brute-force reference.

use conn_geom::{Point, Rect, Segment};
use conn_vgraph::{visible_region, DijkstraEngine, NodeId, NodeKind, VisGraph};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// Disjoint rectangles (rejection inside the strategy output is awkward, so
/// we drop overlapping ones while building the graph).
fn rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((pt(), 5.0..80.0f64, 5.0..80.0f64), 0..12).prop_map(|specs| {
        let mut out: Vec<Rect> = Vec::new();
        for (p, w, h) in specs {
            let r = Rect::new(p.x, p.y, p.x + w, p.y + h);
            if !out.iter().any(|o| o.intersects(&r)) {
                out.push(r);
            }
        }
        out
    })
}

/// A point in free space (not inside any obstacle).
fn free_point(rs: &[Rect], seed: Point) -> Point {
    let mut p = seed;
    let mut tries = 0;
    while rs.iter().any(|r| r.strictly_contains(p)) && tries < 100 {
        p = Point::new((p.x + 131.7) % 1000.0, (p.y + 311.3) % 1000.0);
        tries += 1;
    }
    p
}

/// Brute-force shortest path: full visibility graph + Dijkstra over it.
fn brute_odist(rs: &[Rect], a: Point, b: Point) -> f64 {
    let mut nodes = vec![a, b];
    for r in rs {
        nodes.extend(r.corners());
    }
    let n = nodes.len();
    let blocked = |u: Point, v: Point| -> bool { rs.iter().any(|r| r.blocks(&Segment::new(u, v))) };
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[0] = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&i| !done[i])
            .min_by(|&i, &j| dist[i].total_cmp(&dist[j]));
        let Some(u) = u else { break };
        if dist[u].is_infinite() {
            break;
        }
        done[u] = true;
        for v in 0..n {
            if !done[v] && !blocked(nodes[u], nodes[v]) {
                let nd = dist[u] + nodes[u].dist(nodes[v]);
                if nd < dist[v] {
                    dist[v] = nd;
                }
            }
        }
    }
    dist[1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lazy_graph_matches_brute_force(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        for r in &rs {
            g.add_obstacle(*r);
        }
        let mut d = DijkstraEngine::new(&g, na);
        let got = d.run_until_settled(&mut g, nb);
        let want = brute_odist(&rs, a, b);
        if want.is_finite() {
            prop_assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        } else {
            prop_assert!(got.is_infinite());
        }
    }

    #[test]
    fn odist_dominates_euclid_and_is_symmetric(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        for r in &rs {
            g.add_obstacle(*r);
        }
        let mut d1 = DijkstraEngine::new(&g, na);
        let fwd = d1.run_until_settled(&mut g, nb);
        let mut d2 = DijkstraEngine::new(&g, nb);
        let bwd = d2.run_until_settled(&mut g, na);
        if fwd.is_finite() {
            prop_assert!(fwd + 1e-9 >= a.dist(b));
            prop_assert!((fwd - bwd).abs() < 1e-6);
        } else {
            prop_assert!(bwd.is_infinite());
        }
    }

    #[test]
    fn shortest_path_edges_are_unblocked(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        for r in &rs {
            g.add_obstacle(*r);
        }
        let mut d = DijkstraEngine::new(&g, na);
        let dist = d.run_until_settled(&mut g, nb);
        if dist.is_finite() {
            let path = d.path_to(nb);
            prop_assert!(path.len() >= 2);
            let mut total = 0.0;
            for w in path.windows(2) {
                let (u, v) = (g.node_pos(w[0]), g.node_pos(w[1]));
                prop_assert!(!rs.iter().any(|r| r.blocks(&Segment::new(u, v))),
                    "path edge {u}→{v} crosses an obstacle");
                total += u.dist(v);
            }
            prop_assert!((total - dist).abs() < 1e-6);
        }
    }

    #[test]
    fn visible_region_agrees_with_point_tests(rs in rects(), vp in pt(), qa in pt(), qb in pt()) {
        let vp = free_point(&rs, vp);
        let q = Segment::new(qa, qb);
        if q.is_degenerate() {
            return Ok(());
        }
        let vr = visible_region(vp, &q, &rs);
        for i in 0..=60 {
            let t = q.len() * (i as f64) / 60.0;
            let sight = Segment::new(vp, q.at(t));
            let blocked = rs.iter().any(|r| r.blocks(&sight));
            let near_boundary = vr.intervals().iter().any(|iv| {
                (t - iv.lo).abs() < 1e-3 || (t - iv.hi).abs() < 1e-3
            });
            if !near_boundary {
                prop_assert_eq!(vr.contains(t), !blocked, "t = {}", t);
            }
        }
    }

    #[test]
    fn csr_adjacency_matches_per_node_reference(rs in rects(), a in pt(), b in pt()) {
        // The CSR arena (contiguous target/weight lanes + per-node ranges,
        // batched grid sight tests) must present exactly the edge lists the
        // legacy per-node layout computed: for every node, every other
        // stable node it can see, weighted by Euclidean distance. The
        // reference below recomputes that per node with scalar
        // `Rect::blocks`, so the comparison also crosses the batched vs
        // scalar kernel boundary.
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        g.add_point(b, NodeKind::Endpoint);
        let mut scratch = Vec::new();
        for (i, r) in rs.iter().enumerate() {
            g.add_obstacle(*r);
            if i % 2 == 0 {
                // interleave reads so caches go version-stale and exercise
                // the repair / annulus-extension paths, not just rebuilds
                g.neighbors_into(na, &mut scratch);
            }
        }
        let n = g.num_nodes();
        for u in 0..n {
            let upos = g.node_pos(NodeId(u as u32));
            let mut want: Vec<(u32, f64)> = (0..n)
                .filter(|&v| v != u)
                .filter_map(|v| {
                    let vpos = g.node_pos(NodeId(v as u32));
                    let seg = Segment::new(upos, vpos);
                    (!rs.iter().any(|r| r.blocks(&seg))).then(|| (v as u32, upos.dist(vpos)))
                })
                .collect();
            let mut got = Vec::new();
            g.neighbors_into(NodeId(u as u32), &mut got);
            got.sort_by_key(|e| e.0);
            want.sort_by_key(|e| e.0);
            prop_assert_eq!(&got, &want, "adjacency of node {} diverged", u);
        }
    }

    #[test]
    fn adding_obstacles_never_shortens_paths(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        let mut prev = a.dist(b);
        for r in &rs {
            g.add_obstacle(*r);
            let mut d = DijkstraEngine::new(&g, na);
            let cur = d.run_until_settled(&mut g, nb);
            prop_assert!(cur + 1e-9 >= prev, "distance shrank: {prev} → {cur}");
            prev = cur;
        }
    }
}
