//! Property tests for the visibility substrate: path validity, metric
//! lower bounds, symmetry, and agreement between the lazy local graph and a
//! brute-force reference.

use conn_geom::{Point, Rect, Segment};
use conn_vgraph::{visible_region, DijkstraEngine, NodeId, NodeKind, SweepMode, VisGraph};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// Disjoint rectangles (rejection inside the strategy output is awkward, so
/// we drop overlapping ones while building the graph).
fn rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((pt(), 5.0..80.0f64, 5.0..80.0f64), 0..12).prop_map(|specs| {
        let mut out: Vec<Rect> = Vec::new();
        for (p, w, h) in specs {
            let r = Rect::new(p.x, p.y, p.x + w, p.y + h);
            if !out.iter().any(|o| o.intersects(&r)) {
                out.push(r);
            }
        }
        out
    })
}

/// Obstacle sets exercising the plane-sweep's degenerate paths: a uniform
/// scatter, a dense cluster (many shared-cell candidates), an axis-aligned
/// row whose corners are collinear from any pivot on the row (shared-angle
/// events), and zero-area rectangles (four coincident corner nodes that
/// can never block). Overlaps are allowed — visibility semantics do not
/// require disjointness.
fn sweep_rects() -> impl Strategy<Value = Vec<Rect>> {
    (
        prop::collection::vec((pt(), 0.0..70.0f64, 0.0..70.0f64), 1..8),
        prop::collection::vec(
            (0.0..150.0f64, 0.0..150.0f64, 1.0..30.0f64, 1.0..30.0f64),
            0..5,
        ),
        (pt(), 2..5usize),
        prop::collection::vec(pt(), 0..3),
    )
        .prop_map(|(uniform, cluster, (row_at, row_n), points)| {
            let mut out = Vec::new();
            for (p, w, h) in uniform {
                out.push(Rect::new(p.x, p.y, p.x + w, p.y + h));
            }
            for (dx, dy, w, h) in cluster {
                let (ax, ay) = (400.0 + dx, 400.0 + dy);
                out.push(Rect::new(ax, ay, ax + w, ay + h));
            }
            for i in 0..row_n {
                let ax = (row_at.x + 60.0 * i as f64) % 950.0;
                out.push(Rect::new(ax, row_at.y, ax + 25.0, row_at.y + 25.0));
            }
            for p in points {
                out.push(Rect::new(p.x, p.y, p.x, p.y)); // zero-area
            }
            out
        })
}

/// A point in free space (not inside any obstacle).
fn free_point(rs: &[Rect], seed: Point) -> Point {
    let mut p = seed;
    let mut tries = 0;
    while rs.iter().any(|r| r.strictly_contains(p)) && tries < 100 {
        p = Point::new((p.x + 131.7) % 1000.0, (p.y + 311.3) % 1000.0);
        tries += 1;
    }
    p
}

/// Brute-force shortest path: full visibility graph + Dijkstra over it.
fn brute_odist(rs: &[Rect], a: Point, b: Point) -> f64 {
    let mut nodes = vec![a, b];
    for r in rs {
        nodes.extend(r.corners());
    }
    let n = nodes.len();
    let blocked = |u: Point, v: Point| -> bool { rs.iter().any(|r| r.blocks(&Segment::new(u, v))) };
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[0] = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&i| !done[i])
            .min_by(|&i, &j| dist[i].total_cmp(&dist[j]));
        let Some(u) = u else { break };
        if dist[u].is_infinite() {
            break;
        }
        done[u] = true;
        for v in 0..n {
            if !done[v] && !blocked(nodes[u], nodes[v]) {
                let nd = dist[u] + nodes[u].dist(nodes[v]);
                if nd < dist[v] {
                    dist[v] = nd;
                }
            }
        }
    }
    dist[1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lazy_graph_matches_brute_force(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        for r in &rs {
            g.add_obstacle(*r);
        }
        let mut d = DijkstraEngine::new(&g, na);
        let got = d.run_until_settled(&mut g, nb);
        let want = brute_odist(&rs, a, b);
        if want.is_finite() {
            prop_assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        } else {
            prop_assert!(got.is_infinite());
        }
    }

    #[test]
    fn odist_dominates_euclid_and_is_symmetric(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        for r in &rs {
            g.add_obstacle(*r);
        }
        let mut d1 = DijkstraEngine::new(&g, na);
        let fwd = d1.run_until_settled(&mut g, nb);
        let mut d2 = DijkstraEngine::new(&g, nb);
        let bwd = d2.run_until_settled(&mut g, na);
        if fwd.is_finite() {
            prop_assert!(fwd + 1e-9 >= a.dist(b));
            prop_assert!((fwd - bwd).abs() < 1e-6);
        } else {
            prop_assert!(bwd.is_infinite());
        }
    }

    #[test]
    fn shortest_path_edges_are_unblocked(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        for r in &rs {
            g.add_obstacle(*r);
        }
        let mut d = DijkstraEngine::new(&g, na);
        let dist = d.run_until_settled(&mut g, nb);
        if dist.is_finite() {
            let path = d.path_to(nb);
            prop_assert!(path.len() >= 2);
            let mut total = 0.0;
            for w in path.windows(2) {
                let (u, v) = (g.node_pos(w[0]), g.node_pos(w[1]));
                prop_assert!(!rs.iter().any(|r| r.blocks(&Segment::new(u, v))),
                    "path edge {u}→{v} crosses an obstacle");
                total += u.dist(v);
            }
            prop_assert!((total - dist).abs() < 1e-6);
        }
    }

    #[test]
    fn visible_region_agrees_with_point_tests(rs in rects(), vp in pt(), qa in pt(), qb in pt()) {
        let vp = free_point(&rs, vp);
        let q = Segment::new(qa, qb);
        if q.is_degenerate() {
            return Ok(());
        }
        let vr = visible_region(vp, &q, &rs);
        for i in 0..=60 {
            let t = q.len() * (i as f64) / 60.0;
            let sight = Segment::new(vp, q.at(t));
            let blocked = rs.iter().any(|r| r.blocks(&sight));
            let near_boundary = vr.intervals().iter().any(|iv| {
                (t - iv.lo).abs() < 1e-3 || (t - iv.hi).abs() < 1e-3
            });
            if !near_boundary {
                prop_assert_eq!(vr.contains(t), !blocked, "t = {}", t);
            }
        }
    }

    #[test]
    fn csr_adjacency_matches_per_node_reference(rs in rects(), a in pt(), b in pt()) {
        // The CSR arena (contiguous target/weight lanes + per-node ranges,
        // batched grid sight tests) must present exactly the edge lists the
        // legacy per-node layout computed: for every node, every other
        // stable node it can see, weighted by Euclidean distance. The
        // reference below recomputes that per node with scalar
        // `Rect::blocks`, so the comparison also crosses the batched vs
        // scalar kernel boundary.
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        g.add_point(b, NodeKind::Endpoint);
        let mut scratch = Vec::new();
        for (i, r) in rs.iter().enumerate() {
            g.add_obstacle(*r);
            if i % 2 == 0 {
                // interleave reads so caches go version-stale and exercise
                // the repair / annulus-extension paths, not just rebuilds
                g.neighbors_into(na, &mut scratch);
            }
        }
        let n = g.num_nodes();
        for u in 0..n {
            let upos = g.node_pos(NodeId(u as u32));
            let mut want: Vec<(u32, f64)> = (0..n)
                .filter(|&v| v != u)
                .filter_map(|v| {
                    let vpos = g.node_pos(NodeId(v as u32));
                    let seg = Segment::new(upos, vpos);
                    (!rs.iter().any(|r| r.blocks(&seg))).then(|| (v as u32, upos.dist(vpos)))
                })
                .collect();
            let mut got = Vec::new();
            g.neighbors_into(NodeId(u as u32), &mut got);
            got.sort_by_key(|e| e.0);
            want.sort_by_key(|e| e.0);
            prop_assert_eq!(&got, &want, "adjacency of node {} diverged", u);
        }
    }

    #[test]
    fn sweep_adjacency_bit_identical_across_build_paths(
        rs in sweep_rects(),
        a in pt(),
        b in pt(),
        radii in prop::collection::vec(0.0..450.0f64, 2..6),
    ) {
        // Two graphs replay the identical operation sequence, one forcing
        // the rotational plane-sweep and one forcing the pre-sweep
        // per-candidate grid walks. Interleaved ranged reads at varying
        // radii drive all three build paths — the first read of a node is
        // a cold build, reads after obstacle adds repair, and a larger
        // radius later extends the annulus. The CSR edge lists must be
        // **bit-identical** (same targets, same order, same f64 weights),
        // and a scalar `Rect::blocks` reference pins membership inside
        // each requested window.
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut gs = VisGraph::new(60.0);
        let mut gw = VisGraph::new(60.0);
        gs.set_sweep_mode(SweepMode::Always);
        gw.set_sweep_mode(SweepMode::Never);
        let nas = gs.add_point(a, NodeKind::Endpoint);
        let naw = gw.add_point(a, NodeKind::Endpoint);
        prop_assert_eq!(nas, naw);
        gs.add_point(b, NodeKind::Endpoint);
        gw.add_point(b, NodeKind::Endpoint);
        let (mut outs, mut outw) = (Vec::new(), Vec::new());
        for (i, r) in rs.iter().enumerate() {
            gs.add_obstacle(*r);
            gw.add_obstacle(*r);
            if i % 2 == 0 {
                let radius = radii[(i / 2) % radii.len()];
                outs.clear();
                outw.clear();
                gs.neighbors_into_ranged(nas, &mut outs, |_, _| true, radius);
                gw.neighbors_into_ranged(naw, &mut outw, |_, _| true, radius);
                prop_assert_eq!(&outs, &outw, "sweep vs walk diverged at step {}", i);
                // scalar reference: inside the requested window, the edge
                // list holds exactly the visible stable nodes
                for v in 0..gs.capacity() {
                    let vid = NodeId(v as u32);
                    if v == nas.index() || !gs.is_alive(vid) {
                        continue;
                    }
                    let vpos = gs.node_pos(vid);
                    let cheb = (vpos.x - a.x).abs().max((vpos.y - a.y).abs());
                    if cheb > radius {
                        continue;
                    }
                    let seg = Segment::new(a, vpos);
                    let want = !rs[..=i].iter().any(|r| r.blocks(&seg));
                    let got = outs.iter().any(|e| e.0 == v as u32);
                    prop_assert_eq!(got, want, "node {} in window {} at step {}", v, radius, i);
                }
            }
        }
        // final pass: every node (endpoints and obstacle corners alike)
        // agrees bit-identically between the two modes
        for u in 0..gs.capacity() {
            let uid = NodeId(u as u32);
            if !gs.is_alive(uid) {
                continue;
            }
            outs.clear();
            outw.clear();
            gs.neighbors_into_ranged(uid, &mut outs, |_, _| true, 300.0);
            gw.neighbors_into_ranged(uid, &mut outw, |_, _| true, 300.0);
            prop_assert_eq!(&outs, &outw, "final adjacency of node {} diverged", u);
        }
    }

    #[test]
    fn tiny_growth_margin_keeps_windows_correct(
        rs in sweep_rects(),
        a in pt(),
        margin_ix in 0..5usize,
        radii in prop::collection::vec(10.0..450.0f64, 2..6),
    ) {
        // The speculative growth margin is a pure performance knob: any
        // configured value (including senseless ones below 1.0, which the
        // graph clamps) must still yield caches satisfying the window-
        // membership invariant — inside every requested radius, exactly
        // the visible stable nodes.
        let margin = [0.0_f64, 0.5, 1.0, 1.2, 3.0][margin_ix];
        let a = free_point(&rs, a);
        let mut g = VisGraph::new(60.0);
        g.set_growth_margin(margin);
        let na = g.add_point(a, NodeKind::Endpoint);
        let mut out = Vec::new();
        for (i, r) in rs.iter().enumerate() {
            g.add_obstacle(*r);
            let radius = radii[i % radii.len()];
            out.clear();
            g.neighbors_into_ranged(na, &mut out, |_, _| true, radius);
            for v in 0..g.capacity() {
                let vid = NodeId(v as u32);
                if v == na.index() || !g.is_alive(vid) {
                    continue;
                }
                let vpos = g.node_pos(vid);
                let cheb = (vpos.x - a.x).abs().max((vpos.y - a.y).abs());
                if cheb > radius {
                    continue;
                }
                let seg = Segment::new(a, vpos);
                let want = !rs[..=i].iter().any(|r| r.blocks(&seg));
                let got = out.iter().any(|e| e.0 == v as u32);
                prop_assert_eq!(
                    got, want,
                    "margin {} broke window membership for node {} at step {}",
                    margin, v, i
                );
            }
        }
    }

    #[test]
    fn adding_obstacles_never_shortens_paths(rs in rects(), a in pt(), b in pt()) {
        let a = free_point(&rs, a);
        let b = free_point(&rs, b);
        let mut g = VisGraph::new(60.0);
        let na = g.add_point(a, NodeKind::Endpoint);
        let nb = g.add_point(b, NodeKind::Endpoint);
        let mut prev = a.dist(b);
        for r in &rs {
            g.add_obstacle(*r);
            let mut d = DijkstraEngine::new(&g, na);
            let cur = d.run_until_settled(&mut g, nb);
            prop_assert!(cur + 1e-9 >= prev, "distance shrank: {prev} → {cur}");
            prev = cur;
        }
    }
}
