//! Visibility substrate for obstructed query processing.
//!
//! The CONN paper computes obstructed distances on a **local** visibility
//! graph (§4.1): it holds only the query endpoints, the data point under
//! evaluation, and the obstacles streamed in so far by incremental obstacle
//! retrieval. This crate provides that graph:
//!
//! * [`VisGraph`] — nodes (query endpoints, data points, obstacle vertices)
//!   plus a growing obstacle set. Adjacency is *lazy*: a node's edge list is
//!   computed when Dijkstra first expands it and invalidated when new
//!   obstacles arrive, so queries never pay for the full `O(n²)` edge set the
//!   paper's related-work section warns about. Storage is a CSR-style arena
//!   with SoA node lanes and `u32` indices (see the [`graph`] module docs
//!   for the layout and overlay semantics).
//! * [`ObstacleGrid`] — a dilated spatial-hash grid making each
//!   "is this sight-line blocked?" test proportional to the cells the
//!   sight-line crosses instead of the whole obstacle set.
//! * [`DijkstraEngine`] — incremental single-source shortest paths with
//!   three kernel modes: blind Dijkstra, goal-directed A* (admissible
//!   Euclidean [`Goal`] heuristics, caller-supplied expansion bound), and
//!   warm label continuation (replay / reseed across obstacle loads).
//!   Settled nodes stream out in ascending priority, exactly the order the
//!   CPLC algorithm (paper Alg. 2) consumes and prunes with Lemma 7.
//! * [`visible_region`] — the visible region of a vertex over the query
//!   segment (paper Def. 2), by shadow subtraction.
//! * [`sweep`] — the rotational plane-sweep that batches a cache build's
//!   per-candidate sight tests into one angular pass (selected by
//!   [`SweepMode`]), with verdicts bit-identical to the grid walks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dijkstra;
pub mod graph;
pub mod grid;
pub mod sweep;
pub mod visregion;

pub use dijkstra::{DijkstraEngine, Goal, Prep};
pub use graph::{NodeId, NodeKind, VisGraph, DEFAULT_GROWTH_MARGIN};
pub use grid::ObstacleGrid;
pub use sweep::SweepMode;
pub use visregion::visible_region;
