//! The incremental local visibility graph.
//!
//! Mirrors the paper's §4.1 usage: the graph starts with the query endpoints
//! `S`, `E`; IOR streams obstacles in (each contributing its four vertices);
//! each data point under evaluation is added, queried, and removed again.
//!
//! Adjacency is computed **lazily per node** and cached with a version
//! stamp. Any structural change (new obstacle, new node) bumps the version
//! and implicitly invalidates every cached edge list; dead nodes are skipped
//! during relaxation. This keeps the cost of a query proportional to the
//! nodes Dijkstra actually expands, not to the full `O(n²)` edge set.

use conn_geom::{Point, Rect, Segment};

use crate::grid::ObstacleGrid;

/// Handle to a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node represents; only used for diagnostics and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A query-segment endpoint (`S` or `E`).
    Endpoint,
    /// A data point under evaluation (transient).
    DataPoint,
    /// A corner of an obstacle rectangle.
    ObstacleVertex,
}

#[derive(Debug, Clone)]
struct VNode {
    pos: Point,
    kind: NodeKind,
    alive: bool,
}

#[derive(Debug, Default, Clone)]
struct CachedAdj {
    version: u64,
    edges: Vec<(u32, f64)>,
}

/// Local visibility graph over a growing obstacle set.
#[derive(Debug)]
pub struct VisGraph {
    nodes: Vec<VNode>,
    free: Vec<u32>,
    grid: ObstacleGrid,
    version: u64,
    adj: Vec<CachedAdj>,
}

impl VisGraph {
    /// Creates an empty graph; `cell` is the spatial-hash cell size for the
    /// obstacle index (≈ a few typical obstacle diameters).
    pub fn new(cell: f64) -> Self {
        VisGraph {
            nodes: Vec::new(),
            free: Vec::new(),
            grid: ObstacleGrid::new(cell),
            version: 0,
            adj: Vec::new(),
        }
    }

    /// Number of live nodes — the `|SVG|` metric of the paper's Figures 9–12
    /// counts the obstacle vertices held in the local graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Total slots, including dead nodes (array sizing for Dijkstra).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_obstacles(&self) -> usize {
        self.grid.len()
    }

    /// Monotone counter bumped by every structural change.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn node_pos(&self, id: NodeId) -> Point {
        self.nodes[id.index()].pos
    }

    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Iterates live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Adds a non-obstacle node (query endpoint or data point).
    pub fn add_point(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        self.version += 1;
        self.push_node(pos, kind)
    }

    /// Removes a node added with [`VisGraph::add_point`] (typically the data
    /// point once its evaluation ends).
    pub fn remove_node(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.index()];
        debug_assert!(node.alive, "double removal of node {id:?}");
        debug_assert!(
            node.kind != NodeKind::ObstacleVertex,
            "obstacle vertices are permanent"
        );
        node.alive = false;
        self.free.push(id.0);
        self.version += 1;
    }

    /// Adds an obstacle: registers it in the grid and adds its four corners
    /// as permanent nodes. Returns the corner node ids.
    pub fn add_obstacle(&mut self, r: Rect) -> [NodeId; 4] {
        self.version += 1;
        self.grid.insert(r);
        r.corners()
            .map(|c| self.push_node(c, NodeKind::ObstacleVertex))
    }

    fn push_node(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = VNode {
                pos,
                kind,
                alive: true,
            };
            self.adj[slot as usize] = CachedAdj::default();
            NodeId(slot)
        } else {
            self.nodes.push(VNode {
                pos,
                kind,
                alive: true,
            });
            self.adj.push(CachedAdj::default());
            NodeId((self.nodes.len() - 1) as u32)
        }
    }

    /// Sight-line test against the *local* obstacle set (paper Def. 1).
    pub fn visible(&mut self, a: Point, b: Point) -> bool {
        !self.grid.blocks(a, b)
    }

    /// The node's edge list: `(neighbor, euclidean length)` for every live
    /// node visible from it. Computed on first use per graph version.
    pub fn neighbors(&mut self, u: NodeId) -> &[(u32, f64)] {
        let ui = u.index();
        debug_assert!(self.nodes[ui].alive, "neighbors of dead node");
        if self.adj[ui].version != self.version {
            let upos = self.nodes[ui].pos;
            let mut edges = std::mem::take(&mut self.adj[ui].edges);
            edges.clear();
            for vi in 0..self.nodes.len() {
                if vi == ui || !self.nodes[vi].alive {
                    continue;
                }
                let vpos = self.nodes[vi].pos;
                if !self.grid.blocks(upos, vpos) {
                    edges.push((vi as u32, upos.dist(vpos)));
                }
            }
            self.adj[ui] = CachedAdj {
                version: self.version,
                edges,
            };
        }
        &self.adj[ui].edges
    }

    /// Grid access for visible-region computation.
    pub(crate) fn grid_mut(&mut self) -> &mut ObstacleGrid {
        &mut self.grid
    }

    /// The local obstacle rectangles (ablation baselines iterate these).
    pub fn obstacles(&self) -> &[Rect] {
        self.grid.rects()
    }

    /// Convenience: true when the straight segment between two nodes is an
    /// edge of the graph.
    pub fn nodes_visible(&mut self, a: NodeId, b: NodeId) -> bool {
        let (pa, pb) = (self.node_pos(a), self.node_pos(b));
        self.visible(pa, pb)
    }

    /// Does any local obstacle block this segment? (negation of `visible`,
    /// exposed for readability at call sites dealing with raw segments).
    pub fn blocked(&mut self, s: &Segment) -> bool {
        self.grid.blocks(s.a, s.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> VisGraph {
        VisGraph::new(50.0)
    }

    #[test]
    fn empty_graph_everything_visible() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        assert!(g.nodes_visible(a, b));
        assert_eq!(g.neighbors(a), &[(b.0, 100.0)]);
    }

    #[test]
    fn obstacle_cuts_sight_line() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert!(g.nodes_visible(a, b));
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        assert!(!g.nodes_visible(a, b));
        // neighbors re-computed after version bump: a now sees the two left
        // corners of the obstacle but not b
        let ns: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!ns.contains(&b.0));
        assert_eq!(ns.len(), 2, "two visible corners, got {ns:?}");
    }

    #[test]
    fn obstacle_vertices_become_nodes() {
        let mut g = graph();
        let corners = g.add_obstacle(Rect::new(10.0, 10.0, 20.0, 20.0));
        assert_eq!(g.num_nodes(), 4);
        for c in corners {
            assert_eq!(g.node_kind(c), NodeKind::ObstacleVertex);
        }
        // adjacent corners see each other along the wall
        assert!(g.nodes_visible(corners[0], corners[1]));
        // diagonal corners are blocked by the interior
        assert!(!g.nodes_visible(corners[0], corners[2]));
    }

    #[test]
    fn removal_frees_slot_and_hides_node() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let p = g.add_point(Point::new(5.0, 5.0), NodeKind::DataPoint);
        assert_eq!(g.num_nodes(), 2);
        g.remove_node(p);
        assert_eq!(g.num_nodes(), 1);
        assert!(g.neighbors(a).is_empty());
        // slot reuse
        let p2 = g.add_point(Point::new(7.0, 7.0), NodeKind::DataPoint);
        assert_eq!(p2.0, p.0);
        assert_eq!(g.num_nodes(), 2);
        let ns = g.neighbors(a).to_vec();
        assert_eq!(ns.len(), 1);
        assert!((ns[0].1 - Point::new(7.0, 7.0).dist(Point::new(0.0, 0.0))).abs() < 1e-12);
    }

    #[test]
    fn version_bumps_invalidate_caches() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert_eq!(g.neighbors(a).len(), 1);
        let v1 = g.version();
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        assert!(g.version() > v1);
        let ns: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!ns.contains(&b.0), "stale edge survived");
    }
}
