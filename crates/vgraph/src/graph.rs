//! The incremental local visibility graph.
//!
//! Mirrors the paper's §4.1 usage: the graph starts with the query endpoints
//! `S`, `E`; IOR streams obstacles in (each contributing its four vertices);
//! each data point under evaluation is added, queried, and removed again.
//!
//! Adjacency is computed **lazily per node** and cached in two tiers:
//!
//! * the **base** tier — edges to stable nodes (query endpoints and obstacle
//!   vertices), cached per node and invalidated only when the stable node
//!   set changes (a new obstacle or endpoint);
//! * the **transient overlay** — edges to data points under evaluation,
//!   recomputed on every access. Transient nodes come and go once per
//!   evaluated point, and the overlay keeps that churn from invalidating the
//!   base tier: without the split, every `add_point`/`remove_node` pair
//!   would throw away *all* cached edge lists of the query.
//!
//! Dead nodes never appear in either tier. This keeps the cost of a query
//! proportional to the nodes Dijkstra actually expands, not to the full
//! `O(n²)` edge set.
//!
//! # Storage layout: CSR arena + SoA node lanes
//!
//! The graph is stored as flat parallel arrays, not per-node allocations:
//!
//! * **Nodes** are three SoA lanes (`node_pos` / `node_kind` /
//!   `node_alive`) indexed by [`NodeId`]. The settle loop of a search only
//!   touches the position lane; kind and liveness stay out of its cache
//!   lines.
//! * **Base adjacency** is a CSR-style arena: one contiguous `Vec<u32>` of
//!   edge targets and a parallel `Vec<f64>` of Euclidean weights, with a
//!   small per-node `AdjMeta` record holding the node's `{start, len}`
//!   range plus its cache-coherency keys (version, removal epoch,
//!   completeness radius). Rebuilt and repaired ranges are appended at the
//!   arena tail; abandoned ranges are tracked as garbage and squeezed out
//!   by an occasional compaction pass, so relaxation streams over
//!   contiguous memory instead of chasing one heap allocation per node.
//! * The **transient overlay** stays a small side table (`transients`):
//!   data-point nodes come and go once per evaluated point and never enter
//!   the arena.
//!
//! Indices are `u32` on purpose: half the bytes of `usize` doubles the
//! edges per cache line, and a self-contained `u32`-indexed arena is the
//! layout an mmap-able graph snapshot (ROADMAP item 6) can serialize
//! verbatim.
//!
//! [`VisGraph::reset`] clears the graph for the next query while retaining
//! every allocation (node lanes, the adjacency arena, grid cells), which is
//! what makes a reused query engine perform O(1) substrate allocations per
//! batch instead of O(N).

// lint:allow-file(no-panic-in-query-path[index]): node ids are dense indices allocated by this module and the per-node arrays are (re)sized on every allocation; the sanitize-invariants adjacency audit cross-checks them
use conn_geom::{Point, Rect, Segment};

use crate::grid::ObstacleGrid;
use crate::sweep::SweepMode;

/// `AdjMeta::version` value marking a slot whose cache is invalid.
const STALE: u64 = u64::MAX;

/// Default speculative radius-growth margin of bounded cache builds: a
/// request for radius `r` builds the cache out to `r ×` this, so the next
/// slightly-larger request costs only the annulus. Config-tunable via
/// [`VisGraph::set_growth_margin`]; values below `1.0` are clamped to
/// `1.0` at the use site (a cache smaller than the requested radius would
/// violate the window-membership invariant).
pub const DEFAULT_GROWTH_MARGIN: f64 = 1.2;

/// Handle to a graph node.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's slot index in the graph's arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node represents; only used for diagnostics and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A query-segment endpoint (`S` or `E`).
    Endpoint,
    /// A data point under evaluation (transient).
    DataPoint,
    /// A corner of an obstacle rectangle.
    ObstacleVertex,
}

/// Per-node metadata of the CSR adjacency arena: the node's `[start,
/// start + len)` range in the targets/weights lanes plus the
/// cache-coherency keys deciding whether that range is current.
#[derive(Debug, Clone, Copy)]
struct AdjMeta {
    version: u64,
    /// [`VisGraph::base_removal_epoch`] at cache time: a removed stable
    /// node invalidates incremental repair (full recompute instead).
    removal_epoch: u64,
    /// Completeness radius: the cache is guaranteed to hold every visible
    /// stable neighbor within this Euclidean distance of the node (∞ = the
    /// classical complete cache). Bounded searches ask for bounded radii,
    /// which keeps rebuild cost proportional to *local* obstacle density
    /// instead of the total graph size — the difference between a
    /// trajectory session's accumulated supergraph and a single query's
    /// neighborhood.
    radius: f64,
    /// First arena index of this node's edge range.
    start: u32,
    /// Number of edges in the range.
    len: u32,
}

impl Default for AdjMeta {
    fn default() -> Self {
        AdjMeta {
            version: STALE,
            removal_epoch: 0,
            radius: 0.0,
            start: 0,
            len: 0,
        }
    }
}

/// Local visibility graph over a growing obstacle set.
#[derive(Debug)]
pub struct VisGraph {
    /// Node positions — the hot lane every relaxation filter reads.
    node_pos: Vec<Point>,
    /// What each node represents (parallel to `node_pos`).
    node_kind: Vec<NodeKind>,
    /// Liveness per node slot (parallel to `node_pos`).
    node_alive: Vec<bool>,
    free: Vec<u32>,
    grid: ObstacleGrid,
    /// Bumped by every structural change (guards running Dijkstras).
    version: u64,
    /// Bumped only when the *stable* node set changes (obstacle or endpoint
    /// added/removed) — the key of the base adjacency tier.
    base_version: u64,
    /// Bumped when a stable node is *removed* (rare; disables incremental
    /// cache repair until the next full recompute).
    base_removal_epoch: u64,
    /// Bumped by node *removals* and [`VisGraph::reset`] only. While it
    /// holds still, a search engine's retained labels can be repaired
    /// incrementally: obstacles only ever lengthen paths (labels whose
    /// witness paths avoid newly added rectangles stay exact), and added
    /// point nodes cannot shorten anything — the corner graph already
    /// realizes the exact obstructed distance over the loaded obstacle
    /// set, so a new free node only adds equal-or-longer alternatives.
    /// Removals invalidate because retained predecessor chains (and slot
    /// ids, via the free list) may alias a departed node (see
    /// `DijkstraEngine` warm reseeding).
    shape_epoch: u64,
    /// Live transient ([`NodeKind::DataPoint`]) node ids — the overlay.
    transients: Vec<u32>,
    /// Per-query log of obstacle insertions `(base_version, rect)`,
    /// ascending in version: a stale base cache is repaired by testing its
    /// retained edges against only the rects newer than its version.
    rect_log: Vec<(u64, Rect)>,
    /// Per-query log of stable-node insertions `(base_version, node id)`.
    node_log: Vec<(u64, u32)>,
    /// Live stable non-corner nodes (query endpoints) — enumerated
    /// explicitly by radius-bounded cache rebuilds, since only obstacle
    /// corners are reachable through the grid.
    endpoints: Vec<u32>,
    /// Corner node ids per grid obstacle id (insertion order) — the
    /// grid-to-node mapping of radius-bounded cache rebuilds.
    rect_corners: Vec<[u32; 4]>,
    /// Scratch for grid candidate queries during bounded rebuilds.
    rect_scratch: Vec<u32>,
    /// When cache builds use the rotational plane-sweep instead of
    /// per-candidate grid walks (verdicts identical either way).
    sweep_mode: SweepMode,
    /// Speculative radius-growth margin (see [`DEFAULT_GROWTH_MARGIN`]).
    growth_margin: f64,
    /// Scratch for cache builds: candidate node ids, their positions, and
    /// the per-candidate visibility verdicts (parallel vectors).
    cand_ids: Vec<u32>,
    cand_pos: Vec<Point>,
    cand_vis: Vec<bool>,
    /// Per-node arena ranges + cache-coherency keys.
    adj: Vec<AdjMeta>,
    /// CSR arena, target lane: edge targets of every cached range.
    adj_targets: Vec<u32>,
    /// CSR arena, weight lane (parallel to `adj_targets`).
    adj_weights: Vec<f64>,
    /// Arena entries no longer referenced by any range (rebuilds and
    /// repairs append at the tail and abandon their old range); compaction
    /// squeezes them out once they dominate.
    adj_dead: usize,
    /// Swap buffers for arena compaction (retained across compactions).
    compact_targets: Vec<u32>,
    compact_weights: Vec<f64>,
    /// Scratch for the slice-returning [`VisGraph::neighbors`] facade.
    combined: Vec<(u32, f64)>,
    /// Scratch for visible-region candidate gathering (ids + rects).
    vr_ids: Vec<u32>,
    vr_rects: Vec<Rect>,
    /// Lifetime count of surgical base-cache operations: incremental
    /// repairs performed plus caches invalidated by obstacle removal.
    /// Monotone across resets, like the sight-test counter.
    adj_repairs: u64,
}

impl VisGraph {
    /// Creates an empty graph; `cell` is the spatial-hash cell size for the
    /// obstacle index (≈ a few typical obstacle diameters).
    pub fn new(cell: f64) -> Self {
        VisGraph {
            node_pos: Vec::new(),
            node_kind: Vec::new(),
            node_alive: Vec::new(),
            free: Vec::new(),
            grid: ObstacleGrid::new(cell),
            version: 0,
            base_version: 0,
            base_removal_epoch: 0,
            shape_epoch: 0,
            transients: Vec::new(),
            rect_log: Vec::new(),
            node_log: Vec::new(),
            endpoints: Vec::new(),
            rect_corners: Vec::new(),
            rect_scratch: Vec::new(),
            sweep_mode: SweepMode::default(),
            growth_margin: DEFAULT_GROWTH_MARGIN,
            cand_ids: Vec::new(),
            cand_pos: Vec::new(),
            cand_vis: Vec::new(),
            adj: Vec::new(),
            adj_targets: Vec::new(),
            adj_weights: Vec::new(),
            adj_dead: 0,
            compact_targets: Vec::new(),
            compact_weights: Vec::new(),
            combined: Vec::new(),
            vr_ids: Vec::new(),
            vr_rects: Vec::new(),
            adj_repairs: 0,
        }
    }

    /// Clears the graph for a fresh query while keeping every allocation:
    /// node slots, cached per-slot edge lists, and the grid's cell map all
    /// survive and are re-bound as the next query adds nodes and obstacles.
    /// Returns the number of adjacency slots whose allocations were
    /// retained (the `nodes_retained` reuse metric).
    ///
    /// Reuse contract: `reset` clears the node set, the obstacle set and
    /// all cached visibility state; it keeps heap allocations and the
    /// monotone version counters (so stale caches can never be mistaken
    /// for fresh ones).
    pub fn reset(&mut self) -> usize {
        if conn_geom::sanitize::enabled() {
            // Query boundary: the graph state the finished query computed
            // with is still intact — audit it before it is torn down.
            self.audit_adjacency();
        }
        let retained = self.adj.iter().filter(|m| m.len > 0).count();
        self.node_pos.clear();
        self.node_kind.clear();
        self.node_alive.clear();
        self.free.clear();
        self.transients.clear();
        self.rect_log.clear();
        self.node_log.clear();
        self.endpoints.clear();
        self.rect_corners.clear();
        self.grid.reset();
        // the edge arena restarts empty (allocations retained); stale
        // metas must not keep ranges into the cleared arena
        self.adj_targets.clear();
        self.adj_weights.clear();
        self.adj_dead = 0;
        for m in &mut self.adj {
            m.version = STALE;
            m.radius = 0.0;
            m.start = 0;
            m.len = 0;
        }
        self.version += 1;
        self.base_version = self.version;
        self.shape_epoch += 1;
        retained
    }

    /// Like [`VisGraph::reset`], but also switches the obstacle grid to a
    /// new cell size (used when a reused workspace serves inputs with a
    /// different typical obstacle extent).
    pub fn reset_with_cell(&mut self, cell: f64) -> usize {
        let retained = self.reset();
        self.grid.set_cell(cell);
        retained
    }

    /// Number of live nodes — the `|SVG|` metric of the paper's Figures 9–12
    /// counts the obstacle vertices held in the local graph.
    pub fn num_nodes(&self) -> usize {
        self.node_alive.iter().filter(|&&a| a).count()
    }

    /// Total slots, including dead nodes (array sizing for Dijkstra).
    pub fn capacity(&self) -> usize {
        self.node_pos.len()
    }

    /// Number of live obstacle rectangles (loads minus removals).
    pub fn num_obstacles(&self) -> usize {
        self.grid.num_live()
    }

    /// Monotone counter bumped by every structural change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Monotone counter bumped only by node removals and resets.
    /// `shape_epoch` unchanged + `version` advanced means everything since
    /// the snapshot was an *addition* (obstacles and/or point nodes) — the
    /// precondition for warm search-label reseeding: additions can only
    /// lengthen or leave shortest paths, never shorten settled labels.
    pub fn shape_epoch(&self) -> u64 {
        self.shape_epoch
    }

    /// Obstacle rectangles registered after the given version snapshot
    /// (ascending in version). Covers the current query only — the log is
    /// emptied on [`VisGraph::reset`], but resets also bump
    /// [`VisGraph::shape_epoch`], so no cross-query snapshot can reach here.
    pub fn rects_since(&self, version: u64) -> &[(u64, Rect)] {
        &self.rect_log[Self::log_start(&self.rect_log, version)..]
    }

    /// The obstacle grid's cell size.
    pub fn grid_cell(&self) -> f64 {
        self.grid.cell_size()
    }

    /// Position of a node (dead or alive).
    pub fn node_pos(&self, id: NodeId) -> Point {
        self.node_pos[id.index()]
    }

    /// What the node represents.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.node_kind[id.index()]
    }

    /// True until the node is removed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.node_alive[id.index()]
    }

    /// Iterates live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_alive
            .iter()
            .enumerate()
            .filter(|(_, &alive)| alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Lifetime count of segment-vs-rect sight classifications performed on
    /// behalf of this graph (grid walks + visible-region fans). Monotone
    /// across [`VisGraph::reset`] — callers diff marks per query window,
    /// like the Dijkstra reuse counters.
    pub fn sight_tests(&self) -> u64 {
        self.grid.sight_tests()
    }

    /// Lifetime count of rotational plane-sweep events processed by cache
    /// builds on behalf of this graph — the sweep's unit of work, the
    /// companion of [`VisGraph::sight_tests`]. Monotone across
    /// [`VisGraph::reset`]; callers diff marks per query window.
    pub fn sweep_events(&self) -> u64 {
        self.grid.sweep_events()
    }

    /// Lifetime count of surgical base-cache operations: incremental
    /// repairs performed ([`VisGraph::neighbors_into_ranged`]'s repair
    /// path) plus caches invalidated by [`VisGraph::remove_obstacle`].
    /// Monotone across [`VisGraph::reset`]; callers diff marks per query
    /// window, like [`VisGraph::sight_tests`].
    pub fn adjacency_repairs(&self) -> u64 {
        self.adj_repairs
    }

    /// How cache builds decide candidate visibility (plane-sweep vs
    /// per-candidate grid walks). Edge lists are identical in every mode.
    pub fn sweep_mode(&self) -> SweepMode {
        self.sweep_mode
    }

    /// Sets the sweep mode for subsequent cache builds (existing caches
    /// stay valid — verdicts do not depend on the mode).
    pub fn set_sweep_mode(&mut self, mode: SweepMode) {
        self.sweep_mode = mode;
    }

    /// The speculative radius-growth margin of bounded cache builds.
    pub fn growth_margin(&self) -> f64 {
        self.growth_margin
    }

    /// Sets the speculative radius-growth margin. Values below `1.0` (or
    /// non-finite) are clamped to `1.0` at the use site, so any setting
    /// yields window-membership-correct caches.
    pub fn set_growth_margin(&mut self, margin: f64) {
        self.growth_margin = margin;
    }

    /// Adds a non-obstacle node (query endpoint or data point). Data points
    /// are *transient*: they live in the overlay tier and do not invalidate
    /// the base adjacency caches.
    pub fn add_point(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        self.version += 1;
        if kind != NodeKind::DataPoint {
            self.base_version = self.version;
        }
        let id = self.push_node(pos, kind);
        if kind == NodeKind::DataPoint {
            self.transients.push(id.0);
        } else {
            self.node_log.push((self.base_version, id.0));
            self.endpoints.push(id.0);
        }
        id
    }

    /// Removes a node added with [`VisGraph::add_point`] (typically the data
    /// point once its evaluation ends).
    pub fn remove_node(&mut self, id: NodeId) {
        let i = id.index();
        debug_assert!(self.node_alive[i], "double removal of node {id:?}");
        debug_assert!(
            self.node_kind[i] != NodeKind::ObstacleVertex,
            "obstacle vertices are permanent"
        );
        let kind = self.node_kind[i];
        self.node_alive[i] = false;
        self.free.push(id.0);
        self.version += 1;
        self.shape_epoch += 1;
        if kind == NodeKind::DataPoint {
            self.transients.retain(|&t| t != id.0);
        } else {
            self.base_version = self.version;
            self.base_removal_epoch += 1;
            self.endpoints.retain(|&t| t != id.0);
        }
    }

    /// Adds an obstacle: registers it in the grid and adds its four corners
    /// as permanent nodes. Returns the corner node ids.
    pub fn add_obstacle(&mut self, r: Rect) -> [NodeId; 4] {
        self.version += 1;
        self.base_version = self.version;
        let gid = self.grid.insert(r);
        self.rect_log.push((self.base_version, r));
        // the sweep repair path maps rect-log indices straight to grid ids
        debug_assert_eq!(gid as usize + 1, self.rect_log.len());
        let ids = r
            .corners()
            .map(|c| self.push_node(c, NodeKind::ObstacleVertex));
        for id in ids {
            self.node_log.push((self.base_version, id.0));
        }
        self.rect_corners.push(ids.map(|id| id.0));
        ids
    }

    /// Removes a previously added obstacle, **surgically**: the grid slot
    /// is tombstoned, the rectangle's four corner nodes die, and the only
    /// base adjacency caches invalidated are those whose completeness
    /// window intersects the removed rectangle.
    ///
    /// Why the window test is exact: a cache of node `u` with radius `ρ`
    /// holds edges only to nodes inside the closed Chebyshev window
    /// `[u ± ρ]` (the window-membership rule every constructor obeys). If
    /// that window is disjoint from `r`, the cache (a) holds no edge to
    /// the departed corners — they lie on `r`'s boundary, inside any
    /// intersecting window — and (b) lost no blocked sight line to `r`:
    /// both endpoints of every cached edge are in the convex window, so
    /// the segment never leaves it and `r` could not have blocked it.
    /// Such a cache stays byte-for-byte valid, which is what makes one
    /// removal cost `O(caches near r)` instead of `O(all caches)`.
    ///
    /// `version` and `shape_epoch` advance — running searches must not
    /// carry labels across a removal without the removal-aware reseed
    /// (`DijkstraEngine::reseed_after_removal`, the "paths only shorten"
    /// counterpart of the insertion lemma). `base_version` does **not**
    /// advance: surviving caches are still exactly current. The rect-log
    /// entry is retained (the sweep repair path maps log indices to grid
    /// ids); it is harmless to survivors by the same disjointness
    /// argument, and tombstoned grid ids are filtered out wherever id
    /// ranges are synthesized.
    ///
    /// `r` must coordinate-match a live obstacle exactly (callers hand
    /// back the rectangle they inserted). Returns the number of adjacency
    /// caches invalidated, or `None` when no live obstacle matches.
    pub fn remove_obstacle(&mut self, r: &Rect) -> Option<u64> {
        let gid = (0..self.grid.len() as u32).rev().find(|&id| {
            self.grid.is_live(id) && {
                let s = self.grid.rects()[id as usize];
                s.min_x == r.min_x && s.min_y == r.min_y && s.max_x == r.max_x && s.max_y == r.max_y
            }
        })?;
        self.grid.remove(gid);
        self.version += 1;
        self.shape_epoch += 1;
        let corners = self.rect_corners[gid as usize];
        for cid in corners {
            let i = cid as usize;
            debug_assert!(self.node_alive[i], "obstacle corner already dead");
            debug_assert_eq!(self.node_kind[i], NodeKind::ObstacleVertex);
            self.node_alive[i] = false;
            self.free.push(cid);
        }
        // dead corners must not resurface through cache repair's
        // node-append pass
        self.node_log.retain(|&(_, nid)| !corners.contains(&nid));
        let mut dropped = 0_u64;
        for i in 0..self.adj.len() {
            let m = self.adj[i];
            if m.version == STALE || i >= self.node_alive.len() || !self.node_alive[i] {
                continue;
            }
            let hit = if m.radius.is_finite() {
                let upos = self.node_pos[i];
                let window = Rect::new(
                    upos.x - m.radius,
                    upos.y - m.radius,
                    upos.x + m.radius,
                    upos.y + m.radius,
                );
                window.intersects(r)
            } else {
                true
            };
            if hit {
                self.retire_range(i);
                self.adj[i].version = STALE;
                self.adj[i].radius = 0.0;
                dropped += 1;
            }
        }
        self.adj_repairs += dropped;
        Some(dropped)
    }

    fn push_node(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.node_pos[i] = pos;
            self.node_kind[i] = kind;
            self.node_alive[i] = true;
            // Mark stale and abandon the slot's old arena range.
            self.retire_range(i);
            self.adj[i].version = STALE;
            self.adj[i].radius = 0.0;
            NodeId(slot)
        } else {
            self.node_pos.push(pos);
            self.node_kind.push(kind);
            self.node_alive.push(true);
            let i = self.node_pos.len() - 1;
            if i < self.adj.len() {
                // slot retained across a reset (range already zeroed there)
                self.retire_range(i);
                self.adj[i].version = STALE;
                self.adj[i].radius = 0.0;
            } else {
                self.adj.push(AdjMeta::default());
            }
            NodeId(i as u32)
        }
    }

    /// Abandons a slot's arena range (if any), accounting it as garbage.
    fn retire_range(&mut self, i: usize) {
        let m = &mut self.adj[i];
        self.adj_dead += m.len as usize;
        m.start = 0;
        m.len = 0;
    }

    /// Sight-line test against the *local* obstacle set (paper Def. 1).
    pub fn visible(&mut self, a: Point, b: Point) -> bool {
        !self.grid.blocks(a, b)
    }

    /// The node's edge list: `(neighbor, euclidean length)` for every live
    /// node visible from it. Appends to `out` (callers clear as needed):
    /// first the cached base edges (stable nodes), then the transient
    /// overlay.
    ///
    /// A stale base cache is brought up to date **incrementally** when
    /// possible: obstacles only ever *remove* base edges (each retained
    /// edge is re-tested against just the rects inserted since the cache's
    /// version) and *add* the few nodes logged since then. Full recompute —
    /// a sight test against the whole grid per candidate node — happens
    /// only for brand-new caches, after a stable-node removal, or when the
    /// backlog of new obstacles makes repair more expensive than rebuild.
    pub fn neighbors_into(&mut self, u: NodeId, out: &mut Vec<(u32, f64)>) {
        self.neighbors_into_filtered(u, out, |_, _| true)
    }

    /// Like [`VisGraph::neighbors_into`], but candidates failing
    /// `keep(id, position)` are skipped — transient-overlay candidates
    /// *before* their sight test is paid, base-tier edges before they are
    /// copied into the caller's scratch. Dijkstra passes
    /// `keep = not-yet-settled ∧ inside-the-search-ellipse`: an edge into a
    /// settled node can never relax anything, a candidate outside the
    /// current distance bound's ellipse can never settle within it, and in
    /// the CONN loop the only live transient is the (always-settled) source
    /// itself, so the overlay's per-settle grid walks vanish entirely.
    ///
    /// The base cache is shared across every data point of the query, each
    /// with a different bound ellipse; `neighbors_into_filtered` therefore
    /// maintains it complete for *all* stable nodes (infinite radius).
    /// Bounded searches should use [`VisGraph::neighbors_into_ranged`],
    /// which settles for a radius-complete cache.
    pub fn neighbors_into_filtered(
        &mut self,
        u: NodeId,
        out: &mut Vec<(u32, f64)>,
        keep: impl Fn(u32, Point) -> bool,
    ) {
        self.neighbors_into_ranged(u, out, keep, f64::INFINITY)
    }

    /// Like [`VisGraph::neighbors_into_filtered`], but the caller promises
    /// it only needs neighbors within Euclidean `radius` of the node (a
    /// bounded Dijkstra passes `bound − d(u)`: any neighbor farther away
    /// can never settle within the bound). The cache records the radius it
    /// is complete for; a bounded rebuild enumerates candidates from the
    /// obstacle grid — cost proportional to the *local* density — instead
    /// of scanning every stable node of the graph, which is what keeps a
    /// trajectory session's accumulated graph from taxing each leg's
    /// searches.
    pub fn neighbors_into_ranged(
        &mut self,
        u: NodeId,
        out: &mut Vec<(u32, f64)>,
        keep: impl Fn(u32, Point) -> bool,
        radius: f64,
    ) {
        let ui = u.index();
        debug_assert!(self.node_alive[ui], "neighbors of dead node");
        let cached = &self.adj[ui];
        if cached.version != self.base_version || cached.radius < radius {
            // modest speculative growth: the margin only has to absorb
            // jitter between consecutive requests, because asking for more
            // later costs just the annulus (sight tests scale with window
            // area, so the margin is paid quadratically)
            let target = if radius.is_finite() {
                // margins below 1.0 would build a cache smaller than the
                // requested radius — clamp so every configured value keeps
                // the window-membership invariant
                let margin = if self.growth_margin.is_finite() {
                    self.growth_margin.max(1.0)
                } else {
                    1.0
                };
                (radius * margin).max(self.grid.cell_size() * 2.0)
            } else {
                f64::INFINITY
            };
            // a finite cache can grow to a finite target by sight-testing
            // just the annulus beyond its old radius, once its version is
            // current (either already, or brought there by a repair)
            let growable = cached.radius > 0.0 && cached.radius.is_finite() && target.is_finite();
            let repairable = cached.version != STALE
                && cached.version != self.base_version
                && cached.removal_epoch == self.base_removal_epoch
                && (cached.radius >= radius || growable)
                && self.repair_cheaper_than_rebuild(cached.version, cached.len as usize);
            if repairable {
                self.repair_base_cache(ui);
                if self.adj[ui].radius < radius {
                    self.extend_base_cache(ui, target);
                }
            } else if cached.version == self.base_version && growable {
                self.extend_base_cache(ui, target);
            } else {
                self.rebuild_base_cache(ui, target);
            }
            self.maybe_compact();
        }
        let m = self.adj[ui];
        let (start, end) = (m.start as usize, (m.start + m.len) as usize);
        let pos = &self.node_pos;
        out.extend(
            self.adj_targets[start..end]
                .iter()
                .zip(&self.adj_weights[start..end])
                .filter(|&(&v, _)| keep(v, pos[v as usize]))
                .map(|(&v, &w)| (v, w)),
        );
        let upos = self.node_pos[ui];
        for ti in 0..self.transients.len() {
            let t = self.transients[ti];
            if t as usize == ui {
                continue;
            }
            debug_assert!(self.node_alive[t as usize], "dead transient tracked");
            let tpos = self.node_pos[t as usize];
            if !keep(t, tpos) {
                continue;
            }
            if !self.grid.blocks(upos, tpos) {
                out.push((t, upos.dist(tpos)));
            }
        }
    }

    /// Index of the first log entry newer than `version` (logs are
    /// ascending in version).
    fn log_start<T>(log: &[(u64, T)], version: u64) -> usize {
        log.partition_point(|&(v, _)| v <= version)
    }

    /// Cost model: repair re-tests `edges × new_rects` segment/rect pairs
    /// plus one grid walk per new node; rebuild walks the grid once per
    /// candidate node. A grid walk costs a few rect tests, so compare in
    /// rect-test units with a small factor on walks.
    fn repair_cheaper_than_rebuild(&self, version: u64, edges: usize) -> bool {
        let new_rects = self.rect_log.len() - Self::log_start(&self.rect_log, version);
        let new_nodes = self.node_log.len() - Self::log_start(&self.node_log, version);
        let candidates = self.node_pos.len().saturating_sub(self.free.len());
        const WALK_COST: usize = 4; // ≈ rect tests per grid walk
        edges * new_rects + new_nodes * WALK_COST < candidates * WALK_COST
    }

    /// Compacts the adjacency arena once abandoned ranges dominate: live
    /// ranges are copied front-to-back in slot order into retained swap
    /// buffers and every meta is rebased. Ranges keep their internal order,
    /// so repairable (stale-but-retained) caches survive compaction intact.
    fn maybe_compact(&mut self) {
        let live = self.adj_targets.len() - self.adj_dead;
        if self.adj_dead < 4096 || self.adj_dead < 2 * live {
            return;
        }
        let mut ts = std::mem::take(&mut self.compact_targets);
        let mut ws = std::mem::take(&mut self.compact_weights);
        ts.clear();
        ws.clear();
        ts.reserve(live);
        ws.reserve(live);
        for m in &mut self.adj {
            if m.len == 0 {
                m.start = 0;
                continue;
            }
            let (s, e) = (m.start as usize, (m.start + m.len) as usize);
            m.start = ts.len() as u32;
            ts.extend_from_slice(&self.adj_targets[s..e]);
            ws.extend_from_slice(&self.adj_weights[s..e]);
        }
        std::mem::swap(&mut self.adj_targets, &mut ts);
        std::mem::swap(&mut self.adj_weights, &mut ws);
        // keep the old arena buffers as the next compaction's scratch
        self.compact_targets = ts;
        self.compact_weights = ws;
        self.adj_dead = 0;
    }

    /// Incremental base-cache repair: drop retained edges blocked by rects
    /// newer than the cache, append newly logged stable nodes inside the
    /// cache's window that are visible.
    ///
    /// Every cache constructor (rebuild, repair, annulus extension) decides
    /// candidates by the same **window-membership rule** — a stable node is
    /// a candidate iff its Chebyshev distance from the cache's node is at
    /// most the recorded radius. An up-to-date cache therefore holds
    /// exactly the visible stable nodes inside its window, regardless of
    /// the rebuild/repair/extension history; radius growth can then test
    /// just the annulus (see [`VisGraph::extend_base_cache`]).
    fn repair_base_cache(&mut self, ui: usize) {
        self.adj_repairs += 1;
        let upos = self.node_pos[ui];
        let m = self.adj[ui];
        let (start, len) = (m.start as usize, m.len as usize);
        let rect_from = Self::log_start(&self.rect_log, m.version);
        // Sweep path: decide every retained edge's survival in one angular
        // pass over just the rects logged since the cache's version. Grid
        // obstacle ids coincide with rect-log indices (both are insertion
        // order, both cleared on reset), so the log suffix maps straight
        // to a grid id range.
        let new_rects = self.rect_log.len() - rect_from;
        let swept = new_rects > 0 && self.sweep_mode.wants_sweep(len);
        if swept {
            let mut rect_ids = std::mem::take(&mut self.rect_scratch);
            let mut cand_pos = std::mem::take(&mut self.cand_pos);
            let mut vis = std::mem::take(&mut self.cand_vis);
            rect_ids.clear();
            rect_ids.extend(
                (rect_from as u32..self.rect_log.len() as u32).filter(|&id| self.grid.is_live(id)),
            );
            cand_pos.clear();
            for r in start..start + len {
                cand_pos.push(self.node_pos[self.adj_targets[r] as usize]);
            }
            vis.clear();
            self.grid
                .sweep_visibility(upos, &cand_pos, &rect_ids, &mut vis);
            self.rect_scratch = rect_ids;
            self.cand_pos = cand_pos;
            self.cand_vis = vis;
        }
        let at_tail = start + len == self.adj_targets.len();
        let new_start = if at_tail {
            start
        } else {
            self.adj_targets.len()
        };
        if at_tail {
            // the range sits at the arena tail: filter it in place
            let mut w = start;
            for r in start..start + len {
                let t = self.adj_targets[r];
                let wt = self.adj_weights[r];
                let survives = if swept {
                    self.cand_vis[r - start]
                } else {
                    self.edge_survives(upos, t, rect_from)
                };
                if survives {
                    self.adj_targets[w] = t;
                    self.adj_weights[w] = wt;
                    w += 1;
                }
            }
            self.adj_targets.truncate(w);
            self.adj_weights.truncate(w);
        } else {
            // copy-filter to the tail; the old range becomes garbage
            for r in start..start + len {
                let t = self.adj_targets[r];
                let wt = self.adj_weights[r];
                let survives = if swept {
                    self.cand_vis[r - start]
                } else {
                    self.edge_survives(upos, t, rect_from)
                };
                if survives {
                    self.adj_targets.push(t);
                    self.adj_weights.push(wt);
                }
            }
            self.adj_dead += len;
        }
        for li in Self::log_start(&self.node_log, m.version)..self.node_log.len() {
            let (_, nid) = self.node_log[li];
            let vi = nid as usize;
            if vi == ui {
                continue;
            }
            debug_assert!(self.node_alive[vi], "logged stable node died");
            let vpos = self.node_pos[vi];
            let cheb = (vpos.x - upos.x).abs().max((vpos.y - upos.y).abs());
            if cheb <= m.radius && !self.grid.blocks(upos, vpos) {
                self.adj_targets.push(nid);
                self.adj_weights.push(upos.dist(vpos));
            }
        }
        let slot = &mut self.adj[ui];
        slot.version = self.base_version;
        slot.removal_epoch = self.base_removal_epoch;
        slot.start = new_start as u32;
        slot.len = (self.adj_targets.len() - new_start) as u32;
    }

    /// True when a retained edge `u → target` is not blocked by any rect
    /// logged at or after `rect_from` (repair's incremental filter).
    fn edge_survives(&self, upos: Point, target: u32, rect_from: usize) -> bool {
        if rect_from == self.rect_log.len() {
            return true;
        }
        let seg = Segment::new(upos, self.node_pos[target as usize]);
        !self.rect_log[rect_from..]
            .iter()
            .any(|(_, r)| r.blocks(&seg))
    }

    /// Base-cache rebuild, complete up to `radius`: candidates come from
    /// the obstacle grid (corners of rectangles near the node) plus the
    /// endpoint list when the radius is finite, and from a scan of every
    /// stable node when it is infinite. One grid sight test per candidate
    /// either way.
    fn rebuild_base_cache(&mut self, ui: usize, radius: f64) {
        let upos = self.node_pos[ui];
        // abandon the old range and append the rebuilt one at the tail
        self.retire_range(ui);
        let new_start = self.adj_targets.len();
        let mut rect_ids = std::mem::take(&mut self.rect_scratch);
        let mut cand_ids = std::mem::take(&mut self.cand_ids);
        let mut cand_pos = std::mem::take(&mut self.cand_pos);
        cand_ids.clear();
        cand_pos.clear();
        if radius.is_finite() {
            let window = Rect::new(
                upos.x - radius,
                upos.y - radius,
                upos.x + radius,
                upos.y + radius,
            );
            self.grid.candidates_in_rect(&window, &mut rect_ids);
            for &rid in &rect_ids {
                for vid in self.rect_corners[rid as usize] {
                    let vi = vid as usize;
                    // corner nodes are permanent today, but keep the same
                    // liveness filter as the infinite-radius scan
                    if vi == ui || !self.node_alive[vi] {
                        continue;
                    }
                    let vpos = self.node_pos[vi];
                    // window-membership rule: a rect can intersect the
                    // window while this corner lies outside it
                    let cheb = (vpos.x - upos.x).abs().max((vpos.y - upos.y).abs());
                    if cheb > radius {
                        continue;
                    }
                    cand_ids.push(vid);
                    cand_pos.push(vpos);
                }
            }
            for ei in 0..self.endpoints.len() {
                let vid = self.endpoints[ei];
                let vi = vid as usize;
                if vi == ui || !self.node_alive[vi] {
                    continue;
                }
                let vpos = self.node_pos[vi];
                let cheb = (vpos.x - upos.x).abs().max((vpos.y - upos.y).abs());
                if cheb > radius {
                    continue;
                }
                cand_ids.push(vid);
                cand_pos.push(vpos);
            }
        } else {
            // infinite radius: every live obstacle can block, every stable
            // node is a candidate (tombstoned grid ids are skipped)
            rect_ids.clear();
            rect_ids.extend((0..self.grid.len() as u32).filter(|&id| self.grid.is_live(id)));
            for vi in 0..self.node_pos.len() {
                if vi == ui || !self.node_alive[vi] || self.node_kind[vi] == NodeKind::DataPoint {
                    continue;
                }
                cand_ids.push(vi as u32);
                cand_pos.push(self.node_pos[vi]);
            }
        }
        self.emit_candidate_edges(upos, &rect_ids, &cand_ids, &cand_pos);
        self.rect_scratch = rect_ids;
        self.cand_ids = cand_ids;
        self.cand_pos = cand_pos;
        let slot = &mut self.adj[ui];
        slot.version = self.base_version;
        slot.removal_epoch = self.base_removal_epoch;
        slot.radius = radius;
        slot.start = new_start as u32;
        slot.len = (self.adj_targets.len() - new_start) as u32;
    }

    /// Shared verdict-and-emit tail of the cache constructors: appends one
    /// edge per visible candidate to the arena, **in candidate order** —
    /// the emission order (and weights) are exactly those of the
    /// pre-sweep interleaved loops, so the CSR content is bit-identical
    /// regardless of which verdict path ran. `rect_ids` must be a superset
    /// of the obstacles that can block any `upos → candidate` segment.
    fn emit_candidate_edges(
        &mut self,
        upos: Point,
        rect_ids: &[u32],
        cand_ids: &[u32],
        cand_pos: &[Point],
    ) {
        if !rect_ids.is_empty() && self.sweep_mode.wants_sweep(cand_ids.len()) {
            let mut vis = std::mem::take(&mut self.cand_vis);
            vis.clear();
            self.grid
                .sweep_visibility(upos, cand_pos, rect_ids, &mut vis);
            for (j, &vid) in cand_ids.iter().enumerate() {
                if vis[j] {
                    self.adj_targets.push(vid);
                    self.adj_weights.push(upos.dist(cand_pos[j]));
                }
            }
            self.cand_vis = vis;
        } else {
            for (j, &vid) in cand_ids.iter().enumerate() {
                let vpos = cand_pos[j];
                if !self.grid.blocks(upos, vpos) {
                    self.adj_targets.push(vid);
                    self.adj_weights.push(upos.dist(vpos));
                }
            }
        }
    }

    /// Annulus extension: grow an **up-to-date** radius-complete cache to a
    /// larger radius by sight-testing only the stable nodes in the annulus
    /// `old_radius < cheb(v, u) ≤ target`. Valid precisely because every
    /// cache constructor obeys the window-membership rule (see
    /// [`VisGraph::repair_base_cache`]): the retained edges are exactly the
    /// visible nodes of the old window, so the annulus candidates are
    /// disjoint from them and no dedup pass is needed. Requires
    /// `version == base_version` (nothing to reconcile) and a finite target.
    fn extend_base_cache(&mut self, ui: usize, target: f64) {
        let upos = self.node_pos[ui];
        let m = self.adj[ui];
        debug_assert_eq!(m.version, self.base_version, "extending a stale cache");
        let (start, len) = (m.start as usize, m.len as usize);
        let old_radius = m.radius;
        let at_tail = start + len == self.adj_targets.len();
        let new_start = if at_tail {
            start
        } else {
            self.adj_targets.len()
        };
        if !at_tail {
            // relocate the retained range to the tail so the annulus edges
            // can append contiguously; the old range becomes garbage
            for r in start..start + len {
                let t = self.adj_targets[r];
                let w = self.adj_weights[r];
                self.adj_targets.push(t);
                self.adj_weights.push(w);
            }
            self.adj_dead += len;
        }
        let window = Rect::new(
            upos.x - target,
            upos.y - target,
            upos.x + target,
            upos.y + target,
        );
        // candidates come from the annulus only, but the blocking-rect
        // superset must cover the *full* new window: a rect near the pivot
        // can block a sight line to the ring
        let mut rect_ids = std::mem::take(&mut self.rect_scratch);
        let mut cand_ids = std::mem::take(&mut self.cand_ids);
        let mut cand_pos = std::mem::take(&mut self.cand_pos);
        cand_ids.clear();
        cand_pos.clear();
        self.grid.candidates_in_rect(&window, &mut rect_ids);
        for &rid in &rect_ids {
            for vid in self.rect_corners[rid as usize] {
                let vi = vid as usize;
                if vi == ui || !self.node_alive[vi] {
                    continue;
                }
                let vpos = self.node_pos[vi];
                let cheb = (vpos.x - upos.x).abs().max((vpos.y - upos.y).abs());
                if cheb <= old_radius || cheb > target {
                    continue;
                }
                cand_ids.push(vid);
                cand_pos.push(vpos);
            }
        }
        for ei in 0..self.endpoints.len() {
            let vid = self.endpoints[ei];
            let vi = vid as usize;
            if vi == ui || !self.node_alive[vi] {
                continue;
            }
            let vpos = self.node_pos[vi];
            let cheb = (vpos.x - upos.x).abs().max((vpos.y - upos.y).abs());
            if cheb <= old_radius || cheb > target {
                continue;
            }
            cand_ids.push(vid);
            cand_pos.push(vpos);
        }
        self.emit_candidate_edges(upos, &rect_ids, &cand_ids, &cand_pos);
        self.rect_scratch = rect_ids;
        self.cand_ids = cand_ids;
        self.cand_pos = cand_pos;
        let slot = &mut self.adj[ui];
        slot.radius = target;
        slot.start = new_start as u32;
        slot.len = (self.adj_targets.len() - new_start) as u32;
    }

    /// Slice-returning facade over [`VisGraph::neighbors_into`] (the hot
    /// path — Dijkstra relaxation — uses `neighbors_into` with its own
    /// scratch buffer instead).
    pub fn neighbors(&mut self, u: NodeId) -> &[(u32, f64)] {
        let mut buf = std::mem::take(&mut self.combined);
        buf.clear();
        self.neighbors_into(u, &mut buf);
        self.combined = buf;
        &self.combined
    }

    /// Grid access for visible-region computation.
    pub(crate) fn grid_mut(&mut self) -> &mut ObstacleGrid {
        &mut self.grid
    }

    /// Borrow-juggling helpers for the visible-region scratch buffers
    /// (candidate ids + their rects), so repeated visible-region calls
    /// allocate nothing.
    pub(crate) fn take_vr_ids(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.vr_ids)
    }

    /// See [`VisGraph::take_vr_ids`].
    pub(crate) fn take_vr_rects(&mut self) -> Vec<Rect> {
        std::mem::take(&mut self.vr_rects)
    }

    /// Returns the visible-region scratch buffers after use.
    pub(crate) fn put_vr_scratch(&mut self, ids: Vec<u32>, rects: Vec<Rect>) {
        self.vr_ids = ids;
        self.vr_rects = rects;
    }

    /// The local obstacle rectangles (ablation baselines iterate these).
    pub fn obstacles(&self) -> &[Rect] {
        self.grid.rects()
    }

    /// Convenience: true when the straight segment between two nodes is an
    /// edge of the graph.
    pub fn nodes_visible(&mut self, a: NodeId, b: NodeId) -> bool {
        let (pa, pb) = (self.node_pos(a), self.node_pos(b));
        self.visible(pa, pb)
    }

    /// Does any local obstacle block this segment? (negation of `visible`,
    /// exposed for readability at call sites dealing with raw segments).
    pub fn blocked(&mut self, s: &Segment) -> bool {
        self.grid.blocks(s.a, s.b)
    }

    /// Sanitizer audit of every up-to-date base adjacency cache:
    ///
    /// * every cached edge points at a *live stable* node, with a finite
    ///   non-negative weight equal to the Euclidean distance between the
    ///   endpoints;
    /// * visibility is symmetric, so the edge relation must be too — when
    ///   both endpoints hold an up-to-date cache, an edge `u → v` within
    ///   `v`'s completeness radius must be mirrored by `v → u`. (Caches are
    ///   only *complete* up to their radius; edges beyond the partner's
    ///   radius are legitimate one-sided extras from bounded rebuilds.)
    ///
    /// Called on [`VisGraph::reset`] (the query boundary) when the
    /// `sanitize-invariants` runtime switch is on; public so corrupted-
    /// fixture tests can invoke it directly.
    pub fn audit_adjacency(&self) {
        use conn_geom::sanitize;
        let ctx = "VisGraph adjacency";
        let fresh = |m: &AdjMeta| m.version == self.base_version && m.version != STALE;
        let range = |m: &AdjMeta| (m.start as usize, (m.start + m.len) as usize);
        for ui in 0..self.adj.len() {
            // Arena-structure check first: every retained range (fresh or
            // repairable) must lie inside the arena lanes.
            let (start, end) = range(&self.adj[ui]);
            if self.adj[ui].len > 0 && end > self.adj_targets.len() {
                sanitize::violation(
                    ctx,
                    &format!(
                        "slot {ui} range [{start}, {end}) escapes the arena (len {})",
                        self.adj_targets.len()
                    ),
                );
            }
            if ui >= self.node_pos.len() || !self.node_alive[ui] || !fresh(&self.adj[ui]) {
                continue;
            }
            let upos = self.node_pos[ui];
            for e in start..end {
                let v = self.adj_targets[e];
                let w = self.adj_weights[e];
                let vi = v as usize;
                if vi >= self.node_pos.len() || !self.node_alive[vi] {
                    sanitize::violation(ctx, &format!("edge {ui} -> {v} targets a dead node"));
                }
                if self.node_kind[vi] == NodeKind::DataPoint {
                    sanitize::violation(
                        ctx,
                        &format!("base cache of {ui} holds transient node {v}"),
                    );
                }
                sanitize::audit_distance(ctx, w);
                let d = upos.dist(self.node_pos[vi]);
                if (w - d).abs() > 1e-6 * d.max(1.0) {
                    sanitize::violation(
                        ctx,
                        &format!("edge {ui} -> {v} weight {w} != distance {d}"),
                    );
                }
                // Reciprocity, where the partner's cache promises coverage.
                if self.node_kind[ui] != NodeKind::DataPoint && fresh(&self.adj[vi]) {
                    let (ps, pe) = range(&self.adj[vi]);
                    if d <= self.adj[vi].radius
                        && !self.adj_targets[ps..pe].iter().any(|&x| x as usize == ui)
                    {
                        sanitize::violation(
                            ctx,
                            &format!("edge {ui} -> {v} not mirrored within radius"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> VisGraph {
        VisGraph::new(50.0)
    }

    #[test]
    fn empty_graph_everything_visible() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        assert!(g.nodes_visible(a, b));
        assert_eq!(g.neighbors(a), &[(b.0, 100.0)]);
    }

    #[test]
    fn obstacle_cuts_sight_line() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert!(g.nodes_visible(a, b));
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        assert!(!g.nodes_visible(a, b));
        // neighbors re-computed after version bump: a now sees the two left
        // corners of the obstacle but not b
        let ns: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!ns.contains(&b.0));
        assert_eq!(ns.len(), 2, "two visible corners, got {ns:?}");
    }

    #[test]
    fn obstacle_vertices_become_nodes() {
        let mut g = graph();
        let corners = g.add_obstacle(Rect::new(10.0, 10.0, 20.0, 20.0));
        assert_eq!(g.num_nodes(), 4);
        for c in corners {
            assert_eq!(g.node_kind(c), NodeKind::ObstacleVertex);
        }
        // adjacent corners see each other along the wall
        assert!(g.nodes_visible(corners[0], corners[1]));
        // diagonal corners are blocked by the interior
        assert!(!g.nodes_visible(corners[0], corners[2]));
    }

    #[test]
    fn removal_frees_slot_and_hides_node() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let p = g.add_point(Point::new(5.0, 5.0), NodeKind::DataPoint);
        assert_eq!(g.num_nodes(), 2);
        g.remove_node(p);
        assert_eq!(g.num_nodes(), 1);
        assert!(g.neighbors(a).is_empty());
        // slot reuse
        let p2 = g.add_point(Point::new(7.0, 7.0), NodeKind::DataPoint);
        assert_eq!(p2.0, p.0);
        assert_eq!(g.num_nodes(), 2);
        let ns = g.neighbors(a).to_vec();
        assert_eq!(ns.len(), 1);
        assert!((ns[0].1 - Point::new(7.0, 7.0).dist(Point::new(0.0, 0.0))).abs() < 1e-12);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn adjacency_audit_fires_on_corrupted_edge_weight() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        assert_eq!(g.neighbors(a), &[(b.0, 100.0)]); // builds a's base cache
        g.audit_adjacency(); // intact graph passes

        let m = g.adj[a.0 as usize];
        assert!(m.len > 0, "fixture expects a cached edge");
        g.adj_weights[m.start as usize] += 17.0; // weight no longer the Euclidean distance
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.audit_adjacency())).is_err(),
            "audit must fire on a corrupted edge weight"
        );
    }

    #[test]
    fn reset_retains_slots_and_restarts_clean() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let _ = g.neighbors(a); // populate a cache
        let v_before = g.version();
        let retained = g.reset();
        assert!(retained >= 1, "cached edge lists should be retained");
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_obstacles(), 0);
        assert!(g.version() > v_before, "version must stay monotone");
        // rebuild: slots are re-bound, stale caches are not served
        let a2 = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b2 = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert_eq!(a2.0, 0, "slot storage reused from the start");
        assert!(g.nodes_visible(a2, b2));
        assert_eq!(g.neighbors(a2), &[(b2.0, 200.0)]);
    }

    #[test]
    fn transient_points_do_not_invalidate_base_caches() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let _b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let before: Vec<(u32, f64)> = g.neighbors(a).to_vec();
        // transient churn must keep base edges identical and expose the
        // transient through the overlay
        let p = g.add_point(Point::new(10.0, 50.0), NodeKind::DataPoint);
        let with_p: Vec<(u32, f64)> = g.neighbors(a).to_vec();
        assert!(with_p.iter().any(|e| e.0 == p.0), "overlay edge missing");
        g.remove_node(p);
        let after: Vec<(u32, f64)> = g.neighbors(a).to_vec();
        assert_eq!(before, after);
        assert!(!after.iter().any(|e| e.0 == p.0));
    }

    #[test]
    fn remove_obstacle_restores_sight_and_kills_corners() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        let r = Rect::new(90.0, 0.0, 110.0, 100.0);
        let corners = g.add_obstacle(r);
        let blocked: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!blocked.contains(&b.0));

        let se = g.shape_epoch();
        let dropped = g.remove_obstacle(&r).expect("live obstacle");
        assert!(dropped >= 1, "a's cache intersects the rect");
        assert!(g.shape_epoch() > se, "removal must advance the shape epoch");
        assert_eq!(g.num_obstacles(), 0);
        for c in corners {
            assert!(!g.is_alive(c), "corner {c:?} must die with its rect");
        }
        assert!(g.nodes_visible(a, b));
        assert_eq!(g.neighbors(a), &[(b.0, 200.0)]);
        assert!(g.remove_obstacle(&r).is_none(), "double removal is None");
    }

    #[test]
    fn removal_is_surgical_about_cache_windows() {
        let mut g = graph();
        let near = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let far = g.add_point(Point::new(5000.0, 5000.0), NodeKind::Endpoint);
        let r = Rect::new(90.0, 0.0, 110.0, 100.0);
        g.add_obstacle(r);
        let mut out = Vec::new();
        g.neighbors_into_ranged(near, &mut out, |_, _| true, 300.0);
        out.clear();
        g.neighbors_into_ranged(far, &mut out, |_, _| true, 100.0);
        let far_version = g.adj[far.index()].version;
        assert_ne!(far_version, STALE);

        let dropped = g.remove_obstacle(&r).unwrap();
        assert_eq!(dropped, 1, "only the window intersecting the rect drops");
        assert_eq!(g.adj[near.index()].version, STALE);
        assert_eq!(
            g.adj[far.index()].version,
            far_version,
            "the far cache must survive removal byte-for-byte"
        );
        assert!(g.adjacency_repairs() >= 1);
    }

    #[test]
    fn interleaved_add_remove_matches_cold_graph() {
        // edge sets compare by (target position, weight): node ids differ
        // between the mutated and the cold-built graph
        fn edge_set(g: &mut VisGraph, u: NodeId) -> Vec<(u64, u64, u64)> {
            let mut v: Vec<(u64, u64, u64)> = g
                .neighbors(u)
                .to_vec()
                .iter()
                .map(|&(t, w)| {
                    let p = g.node_pos(NodeId(t));
                    (p.x.to_bits(), p.y.to_bits(), w.to_bits())
                })
                .collect();
            v.sort_unstable();
            v
        }
        let rects = [
            Rect::new(90.0, 0.0, 110.0, 100.0),
            Rect::new(150.0, 20.0, 170.0, 90.0),
            Rect::new(40.0, 40.0, 60.0, 140.0),
            Rect::new(100.0, 120.0, 130.0, 160.0),
        ];
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(rects[0]);
        g.add_obstacle(rects[1]);
        let _ = g.neighbors(a); // build a cache mid-history
        g.remove_obstacle(&rects[0]).unwrap();
        g.add_obstacle(rects[2]);
        let _ = g.neighbors(a);
        g.add_obstacle(rects[3]);
        g.remove_obstacle(&rects[2]).unwrap();
        // final state: rects[1] and rects[3]
        let mutated = edge_set(&mut g, a);

        let mut cold = graph();
        let ca = cold.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        cold.add_obstacle(rects[1]);
        cold.add_obstacle(rects[3]);
        assert_eq!(mutated, edge_set(&mut cold, ca));
    }

    #[test]
    fn version_bumps_invalidate_caches() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert_eq!(g.neighbors(a).len(), 1);
        let v1 = g.version();
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        assert!(g.version() > v1);
        let ns: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!ns.contains(&b.0), "stale edge survived");
    }
}
