//! The incremental local visibility graph.
//!
//! Mirrors the paper's §4.1 usage: the graph starts with the query endpoints
//! `S`, `E`; IOR streams obstacles in (each contributing its four vertices);
//! each data point under evaluation is added, queried, and removed again.
//!
//! Adjacency is computed **lazily per node** and cached in two tiers:
//!
//! * the **base** tier — edges to stable nodes (query endpoints and obstacle
//!   vertices), cached per node and invalidated only when the stable node
//!   set changes (a new obstacle or endpoint);
//! * the **transient overlay** — edges to data points under evaluation,
//!   recomputed on every access. Transient nodes come and go once per
//!   evaluated point, and the overlay keeps that churn from invalidating the
//!   base tier: without the split, every `add_point`/`remove_node` pair
//!   would throw away *all* cached edge lists of the query.
//!
//! Dead nodes never appear in either tier. This keeps the cost of a query
//! proportional to the nodes Dijkstra actually expands, not to the full
//! `O(n²)` edge set.
//!
//! [`VisGraph::reset`] clears the graph for the next query while retaining
//! every allocation (node slots, per-slot edge lists, grid cells), which is
//! what makes a reused query engine perform O(1) substrate allocations per
//! batch instead of O(N).

// lint:allow-file(no-panic-in-query-path[index]): node ids are dense indices allocated by this module and the per-node arrays are (re)sized on every allocation; the sanitize-invariants adjacency audit cross-checks them
use conn_geom::{Point, Rect, Segment};

use crate::grid::ObstacleGrid;

/// `CachedAdj::version` value marking a slot whose cache is invalid.
const STALE: u64 = u64::MAX;

/// Handle to a graph node.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's slot index in the graph's arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node represents; only used for diagnostics and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A query-segment endpoint (`S` or `E`).
    Endpoint,
    /// A data point under evaluation (transient).
    DataPoint,
    /// A corner of an obstacle rectangle.
    ObstacleVertex,
}

#[derive(Debug, Clone)]
struct VNode {
    pos: Point,
    kind: NodeKind,
    alive: bool,
}

#[derive(Debug, Clone)]
struct CachedAdj {
    version: u64,
    /// [`VisGraph::base_removal_epoch`] at cache time: a removed stable
    /// node invalidates incremental repair (full recompute instead).
    removal_epoch: u64,
    /// Completeness radius: the cache is guaranteed to hold every visible
    /// stable neighbor within this Euclidean distance of the node (∞ = the
    /// classical complete cache). Bounded searches ask for bounded radii,
    /// which keeps rebuild cost proportional to *local* obstacle density
    /// instead of the total graph size — the difference between a
    /// trajectory session's accumulated supergraph and a single query's
    /// neighborhood.
    radius: f64,
    edges: Vec<(u32, f64)>,
}

impl Default for CachedAdj {
    fn default() -> Self {
        CachedAdj {
            version: STALE,
            removal_epoch: 0,
            radius: 0.0,
            edges: Vec::new(),
        }
    }
}

/// Local visibility graph over a growing obstacle set.
#[derive(Debug)]
pub struct VisGraph {
    nodes: Vec<VNode>,
    free: Vec<u32>,
    grid: ObstacleGrid,
    /// Bumped by every structural change (guards running Dijkstras).
    version: u64,
    /// Bumped only when the *stable* node set changes (obstacle or endpoint
    /// added/removed) — the key of the base adjacency tier.
    base_version: u64,
    /// Bumped when a stable node is *removed* (rare; disables incremental
    /// cache repair until the next full recompute).
    base_removal_epoch: u64,
    /// Bumped by node *removals* and [`VisGraph::reset`] only. While it
    /// holds still, a search engine's retained labels can be repaired
    /// incrementally: obstacles only ever lengthen paths (labels whose
    /// witness paths avoid newly added rectangles stay exact), and added
    /// point nodes cannot shorten anything — the corner graph already
    /// realizes the exact obstructed distance over the loaded obstacle
    /// set, so a new free node only adds equal-or-longer alternatives.
    /// Removals invalidate because retained predecessor chains (and slot
    /// ids, via the free list) may alias a departed node (see
    /// `DijkstraEngine` warm reseeding).
    shape_epoch: u64,
    /// Live transient ([`NodeKind::DataPoint`]) node ids — the overlay.
    transients: Vec<u32>,
    /// Per-query log of obstacle insertions `(base_version, rect)`,
    /// ascending in version: a stale base cache is repaired by testing its
    /// retained edges against only the rects newer than its version.
    rect_log: Vec<(u64, Rect)>,
    /// Per-query log of stable-node insertions `(base_version, node id)`.
    node_log: Vec<(u64, u32)>,
    /// Live stable non-corner nodes (query endpoints) — enumerated
    /// explicitly by radius-bounded cache rebuilds, since only obstacle
    /// corners are reachable through the grid.
    endpoints: Vec<u32>,
    /// Corner node ids per grid obstacle id (insertion order) — the
    /// grid-to-node mapping of radius-bounded cache rebuilds.
    rect_corners: Vec<[u32; 4]>,
    /// Scratch for grid candidate queries during bounded rebuilds.
    rect_scratch: Vec<u32>,
    adj: Vec<CachedAdj>,
    /// Scratch for the slice-returning [`VisGraph::neighbors`] facade.
    combined: Vec<(u32, f64)>,
}

impl VisGraph {
    /// Creates an empty graph; `cell` is the spatial-hash cell size for the
    /// obstacle index (≈ a few typical obstacle diameters).
    pub fn new(cell: f64) -> Self {
        VisGraph {
            nodes: Vec::new(),
            free: Vec::new(),
            grid: ObstacleGrid::new(cell),
            version: 0,
            base_version: 0,
            base_removal_epoch: 0,
            shape_epoch: 0,
            transients: Vec::new(),
            rect_log: Vec::new(),
            node_log: Vec::new(),
            endpoints: Vec::new(),
            rect_corners: Vec::new(),
            rect_scratch: Vec::new(),
            adj: Vec::new(),
            combined: Vec::new(),
        }
    }

    /// Clears the graph for a fresh query while keeping every allocation:
    /// node slots, cached per-slot edge lists, and the grid's cell map all
    /// survive and are re-bound as the next query adds nodes and obstacles.
    /// Returns the number of adjacency slots whose allocations were
    /// retained (the `nodes_retained` reuse metric).
    ///
    /// Reuse contract: `reset` clears the node set, the obstacle set and
    /// all cached visibility state; it keeps heap allocations and the
    /// monotone version counters (so stale caches can never be mistaken
    /// for fresh ones).
    pub fn reset(&mut self) -> usize {
        if conn_geom::sanitize::enabled() {
            // Query boundary: the graph state the finished query computed
            // with is still intact — audit it before it is torn down.
            self.audit_adjacency();
        }
        let retained = self.adj.iter().filter(|a| !a.edges.is_empty()).count();
        self.nodes.clear();
        self.free.clear();
        self.transients.clear();
        self.rect_log.clear();
        self.node_log.clear();
        self.endpoints.clear();
        self.rect_corners.clear();
        self.grid.reset();
        self.version += 1;
        self.base_version = self.version;
        self.shape_epoch += 1;
        retained
    }

    /// Like [`VisGraph::reset`], but also switches the obstacle grid to a
    /// new cell size (used when a reused workspace serves inputs with a
    /// different typical obstacle extent).
    pub fn reset_with_cell(&mut self, cell: f64) -> usize {
        let retained = self.reset();
        self.grid.set_cell(cell);
        retained
    }

    /// Number of live nodes — the `|SVG|` metric of the paper's Figures 9–12
    /// counts the obstacle vertices held in the local graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Total slots, including dead nodes (array sizing for Dijkstra).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Number of obstacle rectangles loaded so far.
    pub fn num_obstacles(&self) -> usize {
        self.grid.len()
    }

    /// Monotone counter bumped by every structural change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Monotone counter bumped only by node removals and resets.
    /// `shape_epoch` unchanged + `version` advanced means everything since
    /// the snapshot was an *addition* (obstacles and/or point nodes) — the
    /// precondition for warm search-label reseeding: additions can only
    /// lengthen or leave shortest paths, never shorten settled labels.
    pub fn shape_epoch(&self) -> u64 {
        self.shape_epoch
    }

    /// Obstacle rectangles registered after the given version snapshot
    /// (ascending in version). Covers the current query only — the log is
    /// emptied on [`VisGraph::reset`], but resets also bump
    /// [`VisGraph::shape_epoch`], so no cross-query snapshot can reach here.
    pub fn rects_since(&self, version: u64) -> &[(u64, Rect)] {
        &self.rect_log[Self::log_start(&self.rect_log, version)..]
    }

    /// The obstacle grid's cell size.
    pub fn grid_cell(&self) -> f64 {
        self.grid.cell_size()
    }

    /// Position of a node (dead or alive).
    pub fn node_pos(&self, id: NodeId) -> Point {
        self.nodes[id.index()].pos
    }

    /// What the node represents.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// True until the node is removed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Iterates live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Adds a non-obstacle node (query endpoint or data point). Data points
    /// are *transient*: they live in the overlay tier and do not invalidate
    /// the base adjacency caches.
    pub fn add_point(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        self.version += 1;
        if kind != NodeKind::DataPoint {
            self.base_version = self.version;
        }
        let id = self.push_node(pos, kind);
        if kind == NodeKind::DataPoint {
            self.transients.push(id.0);
        } else {
            self.node_log.push((self.base_version, id.0));
            self.endpoints.push(id.0);
        }
        id
    }

    /// Removes a node added with [`VisGraph::add_point`] (typically the data
    /// point once its evaluation ends).
    pub fn remove_node(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.index()];
        debug_assert!(node.alive, "double removal of node {id:?}");
        debug_assert!(
            node.kind != NodeKind::ObstacleVertex,
            "obstacle vertices are permanent"
        );
        let kind = node.kind;
        node.alive = false;
        self.free.push(id.0);
        self.version += 1;
        self.shape_epoch += 1;
        if kind == NodeKind::DataPoint {
            self.transients.retain(|&t| t != id.0);
        } else {
            self.base_version = self.version;
            self.base_removal_epoch += 1;
            self.endpoints.retain(|&t| t != id.0);
        }
    }

    /// Adds an obstacle: registers it in the grid and adds its four corners
    /// as permanent nodes. Returns the corner node ids.
    pub fn add_obstacle(&mut self, r: Rect) -> [NodeId; 4] {
        self.version += 1;
        self.base_version = self.version;
        self.grid.insert(r);
        self.rect_log.push((self.base_version, r));
        let ids = r
            .corners()
            .map(|c| self.push_node(c, NodeKind::ObstacleVertex));
        for id in ids {
            self.node_log.push((self.base_version, id.0));
        }
        self.rect_corners.push(ids.map(|id| id.0));
        ids
    }

    fn push_node(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = VNode {
                pos,
                kind,
                alive: true,
            };
            // Mark stale but keep the edge-list allocation for reuse.
            self.adj[slot as usize].version = STALE;
            self.adj[slot as usize].radius = 0.0;
            NodeId(slot)
        } else {
            self.nodes.push(VNode {
                pos,
                kind,
                alive: true,
            });
            let i = self.nodes.len() - 1;
            if i < self.adj.len() {
                self.adj[i].version = STALE; // slot retained across a reset
                self.adj[i].radius = 0.0;
            } else {
                self.adj.push(CachedAdj::default());
            }
            NodeId(i as u32)
        }
    }

    /// Sight-line test against the *local* obstacle set (paper Def. 1).
    pub fn visible(&mut self, a: Point, b: Point) -> bool {
        !self.grid.blocks(a, b)
    }

    /// The node's edge list: `(neighbor, euclidean length)` for every live
    /// node visible from it. Appends to `out` (callers clear as needed):
    /// first the cached base edges (stable nodes), then the transient
    /// overlay.
    ///
    /// A stale base cache is brought up to date **incrementally** when
    /// possible: obstacles only ever *remove* base edges (each retained
    /// edge is re-tested against just the rects inserted since the cache's
    /// version) and *add* the few nodes logged since then. Full recompute —
    /// a sight test against the whole grid per candidate node — happens
    /// only for brand-new caches, after a stable-node removal, or when the
    /// backlog of new obstacles makes repair more expensive than rebuild.
    pub fn neighbors_into(&mut self, u: NodeId, out: &mut Vec<(u32, f64)>) {
        self.neighbors_into_filtered(u, out, |_, _| true)
    }

    /// Like [`VisGraph::neighbors_into`], but candidates failing
    /// `keep(id, position)` are skipped — transient-overlay candidates
    /// *before* their sight test is paid, base-tier edges before they are
    /// copied into the caller's scratch. Dijkstra passes
    /// `keep = not-yet-settled ∧ inside-the-search-ellipse`: an edge into a
    /// settled node can never relax anything, a candidate outside the
    /// current distance bound's ellipse can never settle within it, and in
    /// the CONN loop the only live transient is the (always-settled) source
    /// itself, so the overlay's per-settle grid walks vanish entirely.
    ///
    /// The base cache is shared across every data point of the query, each
    /// with a different bound ellipse; `neighbors_into_filtered` therefore
    /// maintains it complete for *all* stable nodes (infinite radius).
    /// Bounded searches should use [`VisGraph::neighbors_into_ranged`],
    /// which settles for a radius-complete cache.
    pub fn neighbors_into_filtered(
        &mut self,
        u: NodeId,
        out: &mut Vec<(u32, f64)>,
        keep: impl Fn(u32, Point) -> bool,
    ) {
        self.neighbors_into_ranged(u, out, keep, f64::INFINITY)
    }

    /// Like [`VisGraph::neighbors_into_filtered`], but the caller promises
    /// it only needs neighbors within Euclidean `radius` of the node (a
    /// bounded Dijkstra passes `bound − d(u)`: any neighbor farther away
    /// can never settle within the bound). The cache records the radius it
    /// is complete for; a bounded rebuild enumerates candidates from the
    /// obstacle grid — cost proportional to the *local* density — instead
    /// of scanning every stable node of the graph, which is what keeps a
    /// trajectory session's accumulated graph from taxing each leg's
    /// searches.
    pub fn neighbors_into_ranged(
        &mut self,
        u: NodeId,
        out: &mut Vec<(u32, f64)>,
        keep: impl Fn(u32, Point) -> bool,
        radius: f64,
    ) {
        let ui = u.index();
        debug_assert!(self.nodes[ui].alive, "neighbors of dead node");
        let cached = &self.adj[ui];
        if cached.version != self.base_version || cached.radius < radius {
            let repairable = cached.version != STALE
                && cached.version != self.base_version
                && cached.removal_epoch == self.base_removal_epoch
                && cached.radius >= radius
                && self.repair_cheaper_than_rebuild(cached.version, cached.edges.len());
            if repairable {
                self.repair_base_cache(ui);
            } else {
                // geometric growth: a slightly larger radius now saves the
                // rebuild when the next search asks for marginally more
                let target = if radius.is_finite() {
                    (radius * 1.5).max(self.grid.cell_size() * 2.0)
                } else {
                    f64::INFINITY
                };
                self.rebuild_base_cache(ui, target);
            }
        }
        let nodes = &self.nodes;
        out.extend(
            self.adj[ui]
                .edges
                .iter()
                .filter(|&&(v, _)| keep(v, nodes[v as usize].pos)),
        );
        let upos = self.nodes[ui].pos;
        for ti in 0..self.transients.len() {
            let t = self.transients[ti];
            if t as usize == ui {
                continue;
            }
            debug_assert!(self.nodes[t as usize].alive, "dead transient tracked");
            let tpos = self.nodes[t as usize].pos;
            if !keep(t, tpos) {
                continue;
            }
            if !self.grid.blocks(upos, tpos) {
                out.push((t, upos.dist(tpos)));
            }
        }
    }

    /// Index of the first log entry newer than `version` (logs are
    /// ascending in version).
    fn log_start<T>(log: &[(u64, T)], version: u64) -> usize {
        log.partition_point(|&(v, _)| v <= version)
    }

    /// Cost model: repair re-tests `edges × new_rects` segment/rect pairs
    /// plus one grid walk per new node; rebuild walks the grid once per
    /// candidate node. A grid walk costs a few rect tests, so compare in
    /// rect-test units with a small factor on walks.
    fn repair_cheaper_than_rebuild(&self, version: u64, edges: usize) -> bool {
        let new_rects = self.rect_log.len() - Self::log_start(&self.rect_log, version);
        let new_nodes = self.node_log.len() - Self::log_start(&self.node_log, version);
        let candidates = self.nodes.len().saturating_sub(self.free.len());
        const WALK_COST: usize = 4; // ≈ rect tests per grid walk
        edges * new_rects + new_nodes * WALK_COST < candidates * WALK_COST
    }

    /// Incremental base-cache repair: drop retained edges blocked by rects
    /// newer than the cache, append newly logged stable nodes (within the
    /// cache's completeness radius) that are visible. The result is
    /// radius-complete, like a rebuild at the same radius; the exact edge
    /// *sets* may differ beyond the radius (bounded rebuilds include some
    /// over-the-radius extras from window corners, repairs filter new
    /// nodes strictly by distance) — both are harmless supersets of the
    /// radius guarantee.
    fn repair_base_cache(&mut self, ui: usize) {
        let upos = self.nodes[ui].pos;
        let old_version = self.adj[ui].version;
        let radius = self.adj[ui].radius;
        let mut edges = std::mem::take(&mut self.adj[ui].edges);
        let new_rects = &self.rect_log[Self::log_start(&self.rect_log, old_version)..];
        if !new_rects.is_empty() {
            let nodes = &self.nodes;
            edges.retain(|&(x, _)| {
                let seg = Segment::new(upos, nodes[x as usize].pos);
                !new_rects.iter().any(|(_, r)| r.blocks(&seg))
            });
        }
        for li in Self::log_start(&self.node_log, old_version)..self.node_log.len() {
            let (_, nid) = self.node_log[li];
            let vi = nid as usize;
            if vi == ui {
                continue;
            }
            debug_assert!(self.nodes[vi].alive, "logged stable node died");
            let vpos = self.nodes[vi].pos;
            if upos.dist(vpos) <= radius && !self.grid.blocks(upos, vpos) {
                edges.push((nid, upos.dist(vpos)));
            }
        }
        let slot = &mut self.adj[ui];
        slot.version = self.base_version;
        slot.removal_epoch = self.base_removal_epoch;
        slot.edges = edges;
    }

    /// Base-cache rebuild, complete up to `radius`: candidates come from
    /// the obstacle grid (corners of rectangles near the node) plus the
    /// endpoint list when the radius is finite, and from a scan of every
    /// stable node when it is infinite. One grid sight test per candidate
    /// either way.
    fn rebuild_base_cache(&mut self, ui: usize, radius: f64) {
        let upos = self.nodes[ui].pos;
        let mut edges = std::mem::take(&mut self.adj[ui].edges);
        edges.clear();
        if radius.is_finite() {
            let window = Rect::new(
                upos.x - radius,
                upos.y - radius,
                upos.x + radius,
                upos.y + radius,
            );
            let mut rect_ids = std::mem::take(&mut self.rect_scratch);
            self.grid.candidates_in_rect(&window, &mut rect_ids);
            for &rid in &rect_ids {
                for vid in self.rect_corners[rid as usize] {
                    let vi = vid as usize;
                    // corner nodes are permanent today, but keep the same
                    // liveness filter as the infinite-radius scan
                    if vi == ui || !self.nodes[vi].alive {
                        continue;
                    }
                    let vpos = self.nodes[vi].pos;
                    if !self.grid.blocks(upos, vpos) {
                        edges.push((vid, upos.dist(vpos)));
                    }
                }
            }
            for ei in 0..self.endpoints.len() {
                let vid = self.endpoints[ei];
                let vi = vid as usize;
                if vi == ui || !self.nodes[vi].alive {
                    continue;
                }
                let vpos = self.nodes[vi].pos;
                if !self.grid.blocks(upos, vpos) {
                    edges.push((vid, upos.dist(vpos)));
                }
            }
            self.rect_scratch = rect_ids;
        } else {
            for vi in 0..self.nodes.len() {
                let v = &self.nodes[vi];
                if vi == ui || !v.alive || v.kind == NodeKind::DataPoint {
                    continue;
                }
                let vpos = v.pos;
                if !self.grid.blocks(upos, vpos) {
                    edges.push((vi as u32, upos.dist(vpos)));
                }
            }
        }
        let slot = &mut self.adj[ui];
        slot.version = self.base_version;
        slot.removal_epoch = self.base_removal_epoch;
        slot.radius = radius;
        slot.edges = edges;
    }

    /// Slice-returning facade over [`VisGraph::neighbors_into`] (the hot
    /// path — Dijkstra relaxation — uses `neighbors_into` with its own
    /// scratch buffer instead).
    pub fn neighbors(&mut self, u: NodeId) -> &[(u32, f64)] {
        let mut buf = std::mem::take(&mut self.combined);
        buf.clear();
        self.neighbors_into(u, &mut buf);
        self.combined = buf;
        &self.combined
    }

    /// Grid access for visible-region computation.
    pub(crate) fn grid_mut(&mut self) -> &mut ObstacleGrid {
        &mut self.grid
    }

    /// The local obstacle rectangles (ablation baselines iterate these).
    pub fn obstacles(&self) -> &[Rect] {
        self.grid.rects()
    }

    /// Convenience: true when the straight segment between two nodes is an
    /// edge of the graph.
    pub fn nodes_visible(&mut self, a: NodeId, b: NodeId) -> bool {
        let (pa, pb) = (self.node_pos(a), self.node_pos(b));
        self.visible(pa, pb)
    }

    /// Does any local obstacle block this segment? (negation of `visible`,
    /// exposed for readability at call sites dealing with raw segments).
    pub fn blocked(&mut self, s: &Segment) -> bool {
        self.grid.blocks(s.a, s.b)
    }

    /// Sanitizer audit of every up-to-date base adjacency cache:
    ///
    /// * every cached edge points at a *live stable* node, with a finite
    ///   non-negative weight equal to the Euclidean distance between the
    ///   endpoints;
    /// * visibility is symmetric, so the edge relation must be too — when
    ///   both endpoints hold an up-to-date cache, an edge `u → v` within
    ///   `v`'s completeness radius must be mirrored by `v → u`. (Caches are
    ///   only *complete* up to their radius; edges beyond the partner's
    ///   radius are legitimate one-sided extras from bounded rebuilds.)
    ///
    /// Called on [`VisGraph::reset`] (the query boundary) when the
    /// `sanitize-invariants` runtime switch is on; public so corrupted-
    /// fixture tests can invoke it directly.
    pub fn audit_adjacency(&self) {
        use conn_geom::sanitize;
        let fresh = |slot: &CachedAdj| slot.version == self.base_version && slot.version != STALE;
        for ui in 0..self.adj.len() {
            if ui >= self.nodes.len() || !self.nodes[ui].alive || !fresh(&self.adj[ui]) {
                continue;
            }
            let upos = self.nodes[ui].pos;
            for &(v, w) in &self.adj[ui].edges {
                let vi = v as usize;
                let ctx = "VisGraph adjacency";
                if vi >= self.nodes.len() || !self.nodes[vi].alive {
                    sanitize::violation(ctx, &format!("edge {ui} -> {v} targets a dead node"));
                }
                if self.nodes[vi].kind == NodeKind::DataPoint {
                    sanitize::violation(
                        ctx,
                        &format!("base cache of {ui} holds transient node {v}"),
                    );
                }
                sanitize::audit_distance(ctx, w);
                let d = upos.dist(self.nodes[vi].pos);
                if (w - d).abs() > 1e-6 * d.max(1.0) {
                    sanitize::violation(
                        ctx,
                        &format!("edge {ui} -> {v} weight {w} != distance {d}"),
                    );
                }
                // Reciprocity, where the partner's cache promises coverage.
                if self.nodes[ui].kind != NodeKind::DataPoint
                    && fresh(&self.adj[vi])
                    && d <= self.adj[vi].radius
                    && !self.adj[vi].edges.iter().any(|&(x, _)| x as usize == ui)
                {
                    sanitize::violation(
                        ctx,
                        &format!("edge {ui} -> {v} not mirrored within radius"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> VisGraph {
        VisGraph::new(50.0)
    }

    #[test]
    fn empty_graph_everything_visible() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        assert!(g.nodes_visible(a, b));
        assert_eq!(g.neighbors(a), &[(b.0, 100.0)]);
    }

    #[test]
    fn obstacle_cuts_sight_line() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert!(g.nodes_visible(a, b));
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        assert!(!g.nodes_visible(a, b));
        // neighbors re-computed after version bump: a now sees the two left
        // corners of the obstacle but not b
        let ns: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!ns.contains(&b.0));
        assert_eq!(ns.len(), 2, "two visible corners, got {ns:?}");
    }

    #[test]
    fn obstacle_vertices_become_nodes() {
        let mut g = graph();
        let corners = g.add_obstacle(Rect::new(10.0, 10.0, 20.0, 20.0));
        assert_eq!(g.num_nodes(), 4);
        for c in corners {
            assert_eq!(g.node_kind(c), NodeKind::ObstacleVertex);
        }
        // adjacent corners see each other along the wall
        assert!(g.nodes_visible(corners[0], corners[1]));
        // diagonal corners are blocked by the interior
        assert!(!g.nodes_visible(corners[0], corners[2]));
    }

    #[test]
    fn removal_frees_slot_and_hides_node() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let p = g.add_point(Point::new(5.0, 5.0), NodeKind::DataPoint);
        assert_eq!(g.num_nodes(), 2);
        g.remove_node(p);
        assert_eq!(g.num_nodes(), 1);
        assert!(g.neighbors(a).is_empty());
        // slot reuse
        let p2 = g.add_point(Point::new(7.0, 7.0), NodeKind::DataPoint);
        assert_eq!(p2.0, p.0);
        assert_eq!(g.num_nodes(), 2);
        let ns = g.neighbors(a).to_vec();
        assert_eq!(ns.len(), 1);
        assert!((ns[0].1 - Point::new(7.0, 7.0).dist(Point::new(0.0, 0.0))).abs() < 1e-12);
    }

    #[test]
    #[cfg(feature = "sanitize-invariants")]
    fn adjacency_audit_fires_on_corrupted_edge_weight() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 0.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(100.0, 0.0), NodeKind::Endpoint);
        assert_eq!(g.neighbors(a), &[(b.0, 100.0)]); // builds a's base cache
        g.audit_adjacency(); // intact graph passes

        let slot = &mut g.adj[a.0 as usize];
        assert!(!slot.edges.is_empty(), "fixture expects a cached edge");
        slot.edges[0].1 += 17.0; // weight no longer the Euclidean distance
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.audit_adjacency())).is_err(),
            "audit must fire on a corrupted edge weight"
        );
    }

    #[test]
    fn reset_retains_slots_and_restarts_clean() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let _ = g.neighbors(a); // populate a cache
        let v_before = g.version();
        let retained = g.reset();
        assert!(retained >= 1, "cached edge lists should be retained");
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_obstacles(), 0);
        assert!(g.version() > v_before, "version must stay monotone");
        // rebuild: slots are re-bound, stale caches are not served
        let a2 = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b2 = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert_eq!(a2.0, 0, "slot storage reused from the start");
        assert!(g.nodes_visible(a2, b2));
        assert_eq!(g.neighbors(a2), &[(b2.0, 200.0)]);
    }

    #[test]
    fn transient_points_do_not_invalidate_base_caches() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let _b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        let before: Vec<(u32, f64)> = g.neighbors(a).to_vec();
        // transient churn must keep base edges identical and expose the
        // transient through the overlay
        let p = g.add_point(Point::new(10.0, 50.0), NodeKind::DataPoint);
        let with_p: Vec<(u32, f64)> = g.neighbors(a).to_vec();
        assert!(with_p.iter().any(|e| e.0 == p.0), "overlay edge missing");
        g.remove_node(p);
        let after: Vec<(u32, f64)> = g.neighbors(a).to_vec();
        assert_eq!(before, after);
        assert!(!after.iter().any(|e| e.0 == p.0));
    }

    #[test]
    fn version_bumps_invalidate_caches() {
        let mut g = graph();
        let a = g.add_point(Point::new(0.0, 50.0), NodeKind::Endpoint);
        let b = g.add_point(Point::new(200.0, 50.0), NodeKind::Endpoint);
        assert_eq!(g.neighbors(a).len(), 1);
        let v1 = g.version();
        g.add_obstacle(Rect::new(90.0, 0.0, 110.0, 100.0));
        assert!(g.version() > v1);
        let ns: Vec<u32> = g.neighbors(a).iter().map(|e| e.0).collect();
        assert!(!ns.contains(&b.0), "stale edge survived");
    }
}
