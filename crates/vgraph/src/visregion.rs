//! Visible region of a viewpoint over the query segment (paper Def. 2).
//!
//! Each obstacle casts a "shadow" on `q`: the set of parameters `t` whose
//! sight-line from the viewpoint crosses the obstacle's interior. The
//! visible region is `[0, len]` minus all shadows.
//!
//! Shadow boundaries can only occur where (a) the ray from the viewpoint
//! through an obstacle *corner* crosses `q`, or (b) the obstacle itself cuts
//! `q`. We collect those candidate parameters, then classify each elementary
//! interval by testing its midpoint with the robust interior-crossing
//! predicate — no fragile case analysis.

// lint:allow-file(no-panic-in-query-path[index]): indices derive from lengths computed in the same function (enumerate, push-then-access, partition bounds)
use conn_geom::{batch, Interval, IntervalSet, Point, Rect, Segment, EPS};

use crate::graph::VisGraph;

impl VisGraph {
    /// Visible region of `viewpoint` over `q` against the local obstacle
    /// set, as an interval set in `q`'s arclength parameter.
    pub fn visible_region(&mut self, viewpoint: Point, q: &Segment) -> IntervalSet {
        let mut candidates = self.take_vr_ids();
        let mut rects = self.take_vr_rects();
        // any blocking obstacle must touch the triangle (viewpoint, S, E);
        // the bounding box of that triangle is a safe, cheap superset
        let hull = Rect::from_segment(q).union(&Rect::from_point(viewpoint));
        self.grid_mut().candidates_in_rect(&hull, &mut candidates);
        rects.clear();
        rects.extend(candidates.iter().map(|&id| self.obstacles()[id as usize]));
        let (vr, tests) = visible_region_counted(viewpoint, q, &rects);
        self.grid_mut().add_sight_tests(tests);
        self.put_vr_scratch(candidates, rects);
        vr
    }
}

/// Visible region of `viewpoint` over `q` against an explicit obstacle list.
pub fn visible_region(viewpoint: Point, q: &Segment, obstacles: &[Rect]) -> IntervalSet {
    visible_region_counted(viewpoint, q, obstacles).0
}

/// Like [`visible_region`], also returning the number of midpoint sight
/// tests performed (the attributable unit of shadow classification work).
pub fn visible_region_counted(
    viewpoint: Point,
    q: &Segment,
    obstacles: &[Rect],
) -> (IntervalSet, u64) {
    let len = q.len();
    let mut visible = IntervalSet::single(Interval::new(0.0, len));
    let mut scratch = ShadowScratch::default();
    let mut tests = 0u64;
    for r in obstacles {
        if visible.is_empty() {
            break;
        }
        tests += shadow_of(viewpoint, q, r, &mut scratch, &mut visible);
    }
    (visible, tests)
}

/// Reused buffers of the per-obstacle shadow classification: candidate cut
/// parameters, the elementary-interval midpoints (the fan kernel's input
/// lanes) and their verdicts.
#[derive(Default)]
struct ShadowScratch {
    cuts: Vec<f64>,
    mids: Vec<Point>,
    verdicts: Vec<bool>,
}

/// Subtracts the shadow of a single obstacle from `visible`; returns the
/// number of midpoint sight tests spent.
fn shadow_of(
    viewpoint: Point,
    q: &Segment,
    r: &Rect,
    scratch: &mut ShadowScratch,
    visible: &mut IntervalSet,
) -> u64 {
    let len = q.len();
    let cuts = &mut scratch.cuts;
    cuts.clear();
    cuts.push(0.0);
    cuts.push(len);
    // (a) rays viewpoint → corner
    for c in r.corners() {
        if let Some(t) = q.line_intersection_param(viewpoint, c) {
            cuts.push(t);
        }
    }
    // (b) the obstacle cutting q itself
    if let Some((t0, t1)) = r.clip_segment(q) {
        cuts.push(t0 * len);
        cuts.push(t1 * len);
    }
    cuts.sort_by(f64::total_cmp);
    // One obstacle yields at most 7 elementary intervals (2 ends + 4 corner
    // rays + 2 clip parameters), so the common case is a tiny fan: classify
    // it in one fused scalar pass. Wide fans (callers batching many cuts)
    // go through the fan kernel: N sight segments sharing the viewpoint
    // origin against one rect, over hoisted slab offsets.
    const FAN_BATCH: usize = 4;
    if cuts.len() - 1 <= FAN_BATCH {
        let mut tests = 0u64;
        for w in 0..cuts.len() - 1 {
            let (lo, hi) = (cuts[w], cuts[w + 1]);
            if hi - lo <= EPS {
                continue;
            }
            let mid = q.at((lo + hi) / 2.0);
            tests += 1;
            if r.blocks(&Segment::new(viewpoint, mid)) {
                visible.subtract_interval(&Interval::new(lo, hi));
            }
        }
        return tests;
    }
    scratch.mids.clear();
    for w in 0..cuts.len() - 1 {
        let (lo, hi) = (cuts[w], cuts[w + 1]);
        if hi - lo <= EPS {
            continue;
        }
        scratch.mids.push(q.at((lo + hi) / 2.0));
    }
    batch::blocks_fan(r, viewpoint, &scratch.mids, &mut scratch.verdicts);
    let mut v = 0;
    for w in 0..cuts.len() - 1 {
        let (lo, hi) = (cuts[w], cuts[w + 1]);
        if hi - lo <= EPS {
            continue;
        }
        if scratch.verdicts[v] {
            visible.subtract_interval(&Interval::new(lo, hi));
        }
        v += 1;
    }
    scratch.mids.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q_horizontal() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(100.0, 0.0))
    }

    #[test]
    fn no_obstacles_everything_visible() {
        let vr = visible_region(Point::new(50.0, 50.0), &q_horizontal(), &[]);
        assert_eq!(vr.intervals(), &[Interval::new(0.0, 100.0)]);
    }

    #[test]
    fn single_square_casts_one_shadow() {
        // viewpoint above; square between viewpoint and segment
        let vp = Point::new(50.0, 100.0);
        let r = Rect::new(45.0, 40.0, 55.0, 60.0);
        let vr = visible_region(vp, &q_horizontal(), &[r]);
        // the silhouette corners (widest angle from vp) are the TOP corners
        // (45,60)/(55,60); extending those rays to y = 0:
        // x = 50 ± 5 · (100 − 0)/(100 − 60) = 50 ± 12.5
        let left = 37.5;
        let right = 62.5;
        assert_eq!(vr.intervals().len(), 2);
        assert!((vr.intervals()[0].hi - left).abs() < 1e-6, "{:?}", vr);
        assert!((vr.intervals()[1].lo - right).abs() < 1e-6, "{:?}", vr);
    }

    #[test]
    fn obstacle_behind_viewpoint_casts_nothing() {
        let vp = Point::new(50.0, 50.0);
        let r = Rect::new(45.0, 80.0, 55.0, 90.0); // above the viewpoint
        let vr = visible_region(vp, &q_horizontal(), &[r]);
        assert_eq!(vr.total_len(), 100.0);
    }

    #[test]
    fn obstacle_beyond_segment_casts_nothing() {
        let vp = Point::new(50.0, 50.0);
        let r = Rect::new(45.0, -90.0, 55.0, -40.0); // below the segment
        let vr = visible_region(vp, &q_horizontal(), &[r]);
        assert_eq!(vr.total_len(), 100.0);
    }

    #[test]
    fn two_obstacles_merge_shadows() {
        let vp = Point::new(50.0, 100.0);
        let rs = [
            Rect::new(20.0, 40.0, 40.0, 60.0),
            Rect::new(60.0, 40.0, 80.0, 60.0),
        ];
        let vr = visible_region(vp, &q_horizontal(), &rs);
        // three visible islands at most: far left, centre gap, far right
        assert!(vr.intervals().len() <= 3);
        let total = vr.total_len();
        assert!(total > 0.0 && total < 100.0);
        // centre of the segment is visible through the gap
        assert!(vr.contains(50.0));
    }

    #[test]
    fn viewpoint_on_segment_sees_everything_locally() {
        let vp = Point::new(30.0, 0.0);
        let r = Rect::new(45.0, 10.0, 55.0, 20.0); // off-segment, no blocking
        let vr = visible_region(vp, &q_horizontal(), &[r]);
        assert_eq!(vr.total_len(), 100.0);
    }

    #[test]
    fn obstacle_straddling_segment_blocks_far_side() {
        // obstacle crosses q; viewpoint on the left must lose the part of q
        // strictly behind the obstacle
        let vp = Point::new(0.0, 0.0);
        let r = Rect::new(40.0, -10.0, 60.0, 10.0);
        let vr = visible_region(vp, &q_horizontal(), &[r]);
        // [0, 40] visible; (40, 60) inside obstacle → sight-line enters
        // interior; (60, 100] hidden behind
        assert!(vr.contains(20.0));
        assert!(!vr.contains(50.0));
        assert!(!vr.contains(80.0));
        assert!((vr.total_len() - 40.0).abs() < 1e-6, "{vr:?}");
    }

    #[test]
    fn shadow_matches_brute_force_sampling() {
        // compare midpoint-classified shadows to dense per-point tests
        let vp = Point::new(37.0, 77.0);
        let rs = [
            Rect::new(10.0, 20.0, 30.0, 45.0),
            Rect::new(55.0, 30.0, 70.0, 50.0),
            Rect::new(40.0, -20.0, 50.0, 5.0),
        ];
        let q = q_horizontal();
        let vr = visible_region(vp, &q, &rs);
        for i in 0..=1000 {
            let t = 100.0 * (i as f64) / 1000.0;
            let sight = Segment::new(vp, q.at(t));
            let blocked = rs.iter().any(|r| r.blocks(&sight));
            // skip points within EPS of a boundary between intervals
            let near_boundary = vr
                .intervals()
                .iter()
                .any(|iv| (t - iv.lo).abs() < 1e-3 || (t - iv.hi).abs() < 1e-3);
            if !near_boundary {
                assert_eq!(vr.contains(t), !blocked, "t = {t}");
            }
        }
    }

    #[test]
    fn graph_visible_region_uses_local_obstacles() {
        let mut g = VisGraph::new(50.0);
        let q = q_horizontal();
        g.add_obstacle(Rect::new(45.0, 40.0, 55.0, 60.0));
        let vr = g.visible_region(Point::new(50.0, 100.0), &q);
        assert!(vr.total_len() < 100.0);
        assert!(vr.contains(0.0) && vr.contains(100.0));
    }
}
