//! Rotational plane-sweep visibility for radius-bounded cache builds.
//!
//! Building a node's adjacency cache asks one question per candidate
//! corner: "does any obstacle block the sight line pivot → candidate?".
//! The grid answers it with an independent cell walk per candidate —
//! `O(candidates × cells-per-walk)` rect tests, the dominant cost of
//! first-touch cache builds at paper scale. This module answers all of
//! them with **one angular sweep around the pivot**: every obstacle
//! contributes a *start* and *end* event bounding the angular interval it
//! subtends, every candidate contributes one event at its own direction,
//! and a distance-ordered active set makes each candidate's verdict a
//! front lookup — `O((rects + candidates) · log)` overall.
//!
//! # Bit-identical by construction
//!
//! The sweep never decides visibility by itself. It is a **conservative
//! filter**: the angular interval of each rectangle is widened outward by
//! `WIDEN` radians (orders of magnitude more than any direction-
//! computation rounding), the active set is cut at the candidate's
//! distance plus [`EPS`] slack, and rectangles touching or containing the
//! pivot bypass the filter entirely (see `NEAR_PIVOT`). Every rectangle
//! that survives the filter is then classified by the **exact** scalar
//! probe ([`SegProbe::blocks`], verdict-identical to [`conn_geom::Rect::blocks`]).
//! A false *inclusion* therefore costs one redundant exact test; a false
//! *exclusion* is impossible for a truly blocking rectangle:
//!
//! * blocking requires a clipped sub-segment longer than `2·EPS` whose
//!   midpoint lies in the rectangle's interior with `EPS` clearance, so a
//!   blocker's true min-distance from the pivot is below the candidate
//!   distance by at least `EPS` — far more than the ~1e-12 rounding of
//!   the computed min-distance, so the distance cut keeps it;
//! * that interior midpoint also puts the sight ray strictly inside the
//!   rectangle's subtended angular interval with margin `≥ EPS/dist`
//!   radians, while every direction we compute (corner extremes, the
//!   candidate ray, the pseudo-angle keys) is accurate to well under
//!   `WIDEN/100` radians for geometry the `NEAR_PIVOT` floor admits —
//!   so the widened interval always contains the candidate event;
//! * rectangles thinner than `2·EPS` on either axis cannot strictly
//!   contain any midpoint and are dropped outright — they can never
//!   block anything.
//!
//! # Determinism
//!
//! Events are ordered by a precomputed **pseudo-angle** scalar (the
//! "diamond angle": monotone in true angle over `[0, 2π)`, no trig),
//! compared through [`OrdF64`] with kind, distance and id tie-breakers —
//! a transitive NaN-free total order, so the event schedule is a pure
//! function of the input set regardless of sort algorithm. Wrap-around
//! at the sweep origin (+x axis) is handled by pre-activating every
//! rectangle whose start event sorts *after* its end event.

// lint:allow-file(no-panic-in-query-path[index]): event ids are loop indices produced by this module and lane ids come from the caller's candidate superset, both in range by construction
use conn_geom::{OrdF64, Point, RectLanes, SegProbe, Segment, EPS};
use std::cmp::Ordering;

/// Outward angular widening (radians) applied to each rectangle's
/// subtended interval. Dominates every direction rounding error the
/// [`NEAR_PIVOT`] floor admits by ≥ two orders of magnitude; false
/// inclusions only cost a redundant exact test.
const WIDEN: f64 = 1e-6;

/// Rectangles whose min-distance from the pivot is at or below this are
/// *always active*: they are exact-tested against every candidate instead
/// of entering the angular filter. Covers the pivot being a rectangle
/// corner (every obstacle-vertex pivot), rectangles sharing that corner,
/// and near-tangent geometry where subtended-angle rounding blows up.
const NEAR_PIVOT: f64 = 1e-3;

/// Below this many candidates a build sticks to per-candidate probes in
/// [`SweepMode::Auto`]: the sweep's cost is dominated by building and
/// sorting the per-rect interval events, which is nearly flat in the
/// candidate count, while grid walks are linear in it. The
/// `substrate_micro::sweep_micro` group measures the shapes against a
/// fixed 192-rect field: walks win below ~100 candidates (~1.5 µs at
/// k = 8 vs ~20 µs for the sweep's event pass), break even around
/// k ≈ 130–250 depending on clustering, and lose 2× by k = 512. In
/// production the window's rect count scales *with* the candidate count
/// (candidates are mostly corners of the windowed rects, so ~k/4 rects),
/// which pulls the break-even well below the fixed-field figure; 48 keeps
/// small repair/extension builds on the walk path while paper-scale
/// first-touch builds (hundreds to thousands of candidates) all sweep.
pub const AUTO_MIN_CANDIDATES: usize = 48;

/// When the plane-sweep replaces per-candidate grid walks during
/// adjacency-cache construction. Verdicts (and hence CSR edge lists) are
/// identical in every mode; only the work to reach them changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Sweep when the candidate set is large enough to amortize the event
    /// sort ([`AUTO_MIN_CANDIDATES`]), per-candidate probes below.
    #[default]
    Auto,
    /// Sweep every cache build that has obstacles to filter.
    Always,
    /// Never sweep — per-candidate grid walks only (the pre-sweep
    /// behavior, byte-for-byte).
    Never,
}

impl SweepMode {
    /// Does a build with this many candidates use the sweep?
    #[inline]
    pub fn wants_sweep(self, candidates: usize) -> bool {
        match self {
            SweepMode::Auto => candidates >= AUTO_MIN_CANDIDATES,
            SweepMode::Always => true,
            SweepMode::Never => false,
        }
    }
}

/// Event kinds, in tie-break rank order: a candidate sharing its exact
/// key with an interval boundary must see the interval *active* (starts
/// precede it, ends follow it) — the conservative resolution.
const KIND_START: u8 = 0;
const KIND_CAND: u8 = 1;
const KIND_END: u8 = 2;

/// One sweep event: interval start/end of a rectangle, or a candidate.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Pseudo-angle of the event direction around the pivot, in `[0, 4)`.
    key: f64,
    /// [`KIND_START`] / [`KIND_CAND`] / [`KIND_END`].
    kind: u8,
    /// Rect min-distance (start/end) or candidate distance — the active
    /// set's order and the sort's third tie-breaker.
    dist: f64,
    /// Rect id (start/end) or candidate index.
    id: u32,
}

/// The deterministic total event order: pseudo-angle, then kind, then
/// distance, then id — every component through `Ord` (floats via
/// [`OrdF64`]), so the order is transitive and NaN-free.
#[inline]
fn event_cmp(a: &Event, b: &Event) -> Ordering {
    (OrdF64(a.key), a.kind, OrdF64(a.dist), a.id).cmp(&(
        OrdF64(b.key),
        b.kind,
        OrdF64(b.dist),
        b.id,
    ))
}

/// Monotone angle substitute ("diamond angle"): maps direction `(dx, dy)`
/// to `[0, 4)`, strictly increasing with true counter-clockwise angle
/// from the +x axis. One division, no trig — and being a plain scalar it
/// sorts transitively, which a pairwise cross-product comparator cannot
/// guarantee under rounding.
#[inline]
fn pseudo_angle(dx: f64, dy: f64) -> f64 {
    let p = dx / (dx.abs() + dy.abs());
    if dy >= 0.0 {
        1.0 - p // upper half plane: [0, 2]
    } else {
        3.0 + p // lower half plane: (2, 4)
    }
}

/// Reusable sweep buffers, retained across builds by the owning grid.
#[derive(Debug, Default)]
pub(crate) struct SweepScratch {
    events: Vec<Event>,
    /// Active rectangles, ascending `(min-distance, id)`.
    active: Vec<(f64, u32)>,
    /// Rectangles bypassing the angular filter (see `NEAR_PIVOT`).
    always: Vec<u32>,
}

/// Inserts a rectangle into the distance-ordered active set.
#[inline]
fn activate(active: &mut Vec<(f64, u32)>, md: f64, rid: u32) {
    let at = active.partition_point(|&(d, r)| (OrdF64(d), r) < (OrdF64(md), rid));
    active.insert(at, (md, rid));
}

/// Removes a rectangle from the active set (present by construction:
/// every end event follows its start — or the wrap pre-activation).
#[inline]
fn deactivate(active: &mut Vec<(f64, u32)>, md: f64, rid: u32) {
    let found = active.binary_search_by(|&(d, r)| (OrdF64(d), r).cmp(&(OrdF64(md), rid)));
    debug_assert!(found.is_ok(), "end event for inactive rect {rid}");
    if let Ok(at) = found {
        active.remove(at);
    }
}

/// Sweeps all candidates around `pivot` in one pass, appending one
/// visibility verdict per candidate to `vis` (same order as `cands`).
///
/// `rect_ids` must be a superset of the rectangles that can block any
/// `pivot → candidate` segment (e.g. every obstacle overlapping a convex
/// region containing pivot and all candidates); extra ids cannot change
/// verdicts. Each verdict is exactly "some rect in `rect_ids` blocks the
/// segment" per [`Rect::blocks`] semantics — bit-identical to testing
/// candidates one by one. Returns `(exact sight tests, sweep events)`
/// for the grid's counters.
///
/// [`Rect::blocks`]: conn_geom::Rect::blocks
pub(crate) fn sweep_visibility(
    lanes: &RectLanes,
    rect_ids: &[u32],
    pivot: Point,
    cands: &[Point],
    scratch: &mut SweepScratch,
    vis: &mut Vec<bool>,
) -> (u64, u64) {
    let base = vis.len();
    vis.resize(base + cands.len(), true);
    scratch.events.clear();
    scratch.active.clear();
    scratch.always.clear();

    for &rid in rect_ids {
        let r = lanes.rect(rid as usize);
        if r.width() <= 2.0 * EPS || r.height() <= 2.0 * EPS {
            // cannot strictly contain any midpoint — never blocks
            continue;
        }
        let md = r.mindist_point(pivot);
        if md <= NEAR_PIVOT {
            scratch.always.push(rid);
            continue;
        }
        // Extreme corner directions: the pivot is strictly outside the
        // rectangle, so it subtends an interval of extent < π and the
        // clockwise-most / counter-clockwise-most corners are well
        // defined by pairwise cross products.
        let corners = r.corners();
        let (mut sx, mut sy) = (corners[0].x - pivot.x, corners[0].y - pivot.y);
        let (mut ex, mut ey) = (sx, sy);
        for c in &corners[1..] {
            let (dx, dy) = (c.x - pivot.x, c.y - pivot.y);
            if sx * dy - sy * dx < 0.0 {
                (sx, sy) = (dx, dy);
            }
            if ex * dy - ey * dx > 0.0 {
                (ex, ey) = (dx, dy);
            }
        }
        // Widen outward by WIDEN radians: start clockwise, end counter-
        // clockwise. Swallows every direction rounding error; a too-wide
        // interval only costs redundant exact tests.
        let start = Event {
            key: pseudo_angle(sx + sy * WIDEN, sy - sx * WIDEN),
            kind: KIND_START,
            dist: md,
            id: rid,
        };
        let end = Event {
            key: pseudo_angle(ex - ey * WIDEN, ey + ex * WIDEN),
            kind: KIND_END,
            dist: md,
            id: rid,
        };
        if event_cmp(&start, &end) == Ordering::Greater {
            // interval wraps the sweep origin: active from the start, the
            // end event deactivates, the start event re-activates for the
            // tail arc
            activate(&mut scratch.active, md, rid);
        }
        scratch.events.push(start);
        scratch.events.push(end);
    }

    for (j, c) in cands.iter().enumerate() {
        let (dx, dy) = (c.x - pivot.x, c.y - pivot.y);
        if dx == 0.0 && dy == 0.0 {
            // zero-length sight line: no clipped range can exceed 2·EPS,
            // so nothing blocks it — verdict stays `visible`
            continue;
        }
        scratch.events.push(Event {
            key: pseudo_angle(dx, dy),
            kind: KIND_CAND,
            dist: pivot.dist(*c),
            id: j as u32,
        });
    }

    scratch.events.sort_unstable_by(event_cmp);
    let sweep_events = scratch.events.len() as u64;
    let mut sight_tests = 0_u64;
    for ei in 0..scratch.events.len() {
        let ev = scratch.events[ei];
        match ev.kind {
            KIND_START => activate(&mut scratch.active, ev.dist, ev.id),
            KIND_END => deactivate(&mut scratch.active, ev.dist, ev.id),
            _ => {
                let j = ev.id as usize;
                let probe = SegProbe::new(&Segment::new(pivot, cands[j]));
                let mut visible = true;
                for &rid in &scratch.always {
                    sight_tests += 1;
                    if probe.blocks(lanes, rid as usize) {
                        visible = false;
                        break;
                    }
                }
                if visible {
                    for &(md, rid) in &scratch.active {
                        if md > ev.dist + EPS {
                            // active set is distance-ordered and a true
                            // blocker's min-distance sits below the
                            // candidate distance by ≥ EPS — safe cut
                            break;
                        }
                        sight_tests += 1;
                        if probe.blocks(lanes, rid as usize) {
                            visible = false;
                            break;
                        }
                    }
                }
                vis[base + j] = visible;
            }
        }
    }
    (sight_tests, sweep_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conn_geom::Rect;

    fn brute(rects: &[Rect], pivot: Point, c: Point) -> bool {
        let seg = Segment::new(pivot, c);
        !rects.iter().any(|r| r.blocks(&seg))
    }

    fn check_agreement(rects: &[Rect], pivot: Point, cands: &[Point]) {
        let lanes = RectLanes::from_rects(rects);
        let ids: Vec<u32> = (0..rects.len() as u32).collect();
        let mut scratch = SweepScratch::default();
        let mut vis = Vec::new();
        sweep_visibility(&lanes, &ids, pivot, cands, &mut scratch, &mut vis);
        assert_eq!(vis.len(), cands.len());
        for (j, &c) in cands.iter().enumerate() {
            assert_eq!(
                vis[j],
                brute(rects, pivot, c),
                "pivot {pivot} cand {c} (index {j})"
            );
        }
    }

    #[test]
    fn pseudo_angle_is_monotone_in_angle() {
        let mut prev = -1.0_f64;
        for i in 0..720 {
            let th = (i as f64) * std::f64::consts::TAU / 720.0;
            let k = pseudo_angle(th.cos(), th.sin());
            assert!((0.0..4.0).contains(&k), "key {k} out of range");
            assert!(k > prev, "key not increasing at step {i}: {prev} vs {k}");
            prev = k;
        }
    }

    #[test]
    fn agrees_with_brute_force_on_pseudo_random_scenes() {
        let mut x = 0.734_f64;
        let mut rnd = move || {
            x = (x * 78.233 + 37.719).fract();
            x.abs()
        };
        for _ in 0..40 {
            let mut rects = Vec::new();
            for _ in 0..25 {
                let ax = rnd() * 900.0;
                let ay = rnd() * 900.0;
                rects.push(Rect::new(
                    ax,
                    ay,
                    ax + 2.0 + rnd() * 80.0,
                    ay + 2.0 + rnd() * 80.0,
                ));
            }
            let pivot = Point::new(rnd() * 1000.0, rnd() * 1000.0);
            let cands: Vec<Point> = (0..40)
                .map(|_| Point::new(rnd() * 1000.0, rnd() * 1000.0))
                .collect();
            check_agreement(&rects, pivot, &cands);
        }
    }

    #[test]
    fn pivot_on_rect_corner_and_shared_corners() {
        // the pivot is a corner of one rect and touches another — both go
        // through the always-active path
        let rects = [
            Rect::new(100.0, 100.0, 200.0, 200.0),
            Rect::new(200.0, 200.0, 300.0, 300.0),
            Rect::new(0.0, 150.0, 90.0, 160.0),
        ];
        let pivot = Point::new(200.0, 200.0);
        let cands = [
            Point::new(100.0, 100.0), // blocked by rect 0's interior (diagonal)
            Point::new(300.0, 300.0), // blocked by rect 1's interior
            Point::new(300.0, 200.0), // grazes rect 1's wall — visible
            Point::new(100.0, 200.0), // along rect 0's top wall — visible
            Point::new(250.0, 150.0), // open space — visible
            pivot,                    // zero-length sight line — visible
        ];
        check_agreement(&rects, pivot, &cands);
    }

    #[test]
    fn collinear_corners_and_shared_angle_events() {
        // rects stacked so several corners share the exact same direction
        // from the pivot, plus candidates at those very angles
        let rects = [
            Rect::new(10.0, -5.0, 20.0, 5.0),
            Rect::new(30.0, -5.0, 40.0, 5.0),
            Rect::new(50.0, -5.0, 60.0, 5.0),
        ];
        let pivot = Point::new(0.0, 0.0);
        let cands = [
            Point::new(5.0, 0.0),   // before the first rect
            Point::new(25.0, 0.0),  // between rects, blocked by the first
            Point::new(70.0, 0.0),  // behind all three
            Point::new(10.0, 5.0),  // exactly a corner direction
            Point::new(30.0, -5.0), // exactly a corner direction
            Point::new(0.0, 50.0),  // perpendicular, wide open
        ];
        check_agreement(&rects, pivot, &cands);
    }

    #[test]
    fn wrap_around_interval_stays_active_across_origin() {
        // a rect straddling the +x axis from the pivot: its interval wraps
        // the sweep origin, so candidates on both sides must see it
        let rects = [Rect::new(50.0, -20.0, 80.0, 20.0)];
        let pivot = Point::new(0.0, 0.0);
        let cands = [
            Point::new(100.0, 5.0),   // behind, slightly above axis
            Point::new(100.0, -5.0),  // behind, slightly below axis
            Point::new(100.0, 100.0), // well off axis — visible
            Point::new(40.0, 0.0),    // in front — visible
        ];
        check_agreement(&rects, pivot, &cands);
    }

    #[test]
    fn thin_rects_never_block() {
        let rects = [
            Rect::new(50.0, 0.0, 50.0, 100.0),             // zero width
            Rect::new(0.0, 50.0, 100.0, 50.0 + 1.5 * EPS), // sub-slack height
        ];
        let pivot = Point::new(0.0, 0.0);
        let cands = [Point::new(100.0, 100.0), Point::new(100.0, 0.0)];
        check_agreement(&rects, pivot, &cands);
    }
}
