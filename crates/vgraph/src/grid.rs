//! Spatial-hash grid over obstacle rectangles.
//!
//! Visibility tests ("does the sight-line `a→b` cross any obstacle
//! interior?") dominate the CPU profile of obstructed query processing. The
//! grid stores every obstacle in each cell it overlaps, **dilated by one
//! cell ring**, so a query only has to walk the exact cells its segment
//! passes through (Amanatides–Woo traversal) — the dilation absorbs all
//! boundary/corner cases without widening the walk.

// lint:allow-file(no-panic-in-query-path[index]): cell coordinates are clamped to the grid extent before indexing
use conn_geom::{batch, Point, Rect, RectLanes, Segment};

use crate::sweep::{self, SweepScratch};

/// Dense cell table: a rectangular arena of per-cell candidate lists
/// addressed by plain index arithmetic. Cell lookups happen once per cell
/// walked per sight test — the single hottest operation of query processing
/// — and even a fast hash map costs more per lookup than the rectangle
/// tests it guards.
///
/// The extent grows lazily to cover the cells ever inserted into (it is
/// *retained* across [`ObstacleGrid::reset`] — queries revisit the same
/// workspace region, so steady state never reallocates). Clearing is O(1):
/// a generation bump invalidates every list, and each list's allocation is
/// reused the next time its cell is touched.
#[derive(Debug, Default)]
struct CellTable {
    /// Dense extent in cell coordinates: slot `(cx, cy)` lives at
    /// `(cx - min_cx) + w * (cy - min_cy)`.
    min_cx: i32,
    min_cy: i32,
    w: i32,
    h: i32,
    /// Current generation; a list is live iff its stamp matches.
    gen: u64,
    stamps: Vec<u64>,
    lists: Vec<Vec<u32>>,
}

/// Growth margin (in cells) added around a point that falls outside the
/// current extent, bounding regrow churn while the workspace is discovered.
const GROW_PAD: i32 = 8;

impl CellTable {
    /// O(1) clear: invalidates every cell list, keeping extent and
    /// allocations.
    fn clear(&mut self) {
        self.gen += 1;
    }

    /// Drops the extent entirely (cell-size changes invalidate coordinates).
    fn clear_extent(&mut self) {
        *self = CellTable::default();
    }

    #[inline]
    fn slot(&self, cx: i32, cy: i32) -> Option<usize> {
        let (dx, dy) = (cx - self.min_cx, cy - self.min_cy);
        if dx < 0 || dy < 0 || dx >= self.w || dy >= self.h {
            return None;
        }
        Some(dx as usize + self.w as usize * dy as usize)
    }

    /// The live candidate list of a cell (empty for never-touched, stale or
    /// out-of-extent cells).
    #[inline]
    fn get(&self, cx: i32, cy: i32) -> &[u32] {
        match self.slot(cx, cy) {
            Some(i) if self.stamps[i] == self.gen => &self.lists[i],
            _ => &[],
        }
    }

    /// Removes an id from a cell's live list, if present. Out-of-extent or
    /// stale cells hold nothing, so there is nothing to scrub.
    fn remove_id(&mut self, cx: i32, cy: i32, id: u32) {
        if let Some(i) = self.slot(cx, cy) {
            if self.stamps[i] == self.gen {
                self.lists[i].retain(|&x| x != id);
            }
        }
    }

    /// Appends an id to a cell's list, growing the extent when needed.
    fn push(&mut self, cx: i32, cy: i32, id: u32) {
        let i = match self.slot(cx, cy) {
            Some(i) => i,
            None => self.grow_to(cx, cy),
        };
        if self.stamps[i] != self.gen {
            self.stamps[i] = self.gen;
            self.lists[i].clear();
        }
        self.lists[i].push(id);
    }

    /// Expands the dense extent to cover `(cx, cy)` plus a margin,
    /// relocating existing slots (and their retained allocations) into the
    /// new layout. Returns the slot index of `(cx, cy)` in that layout.
    fn grow_to(&mut self, cx: i32, cy: i32) -> usize {
        let (nmin_cx, nmin_cy, nw, nh) = if self.w == 0 {
            (
                cx - GROW_PAD,
                cy - GROW_PAD,
                2 * GROW_PAD + 1,
                2 * GROW_PAD + 1,
            )
        } else {
            let min_cx = self.min_cx.min(cx - GROW_PAD);
            let min_cy = self.min_cy.min(cy - GROW_PAD);
            let max_cx = (self.min_cx + self.w - 1).max(cx + GROW_PAD);
            let max_cy = (self.min_cy + self.h - 1).max(cy + GROW_PAD);
            (min_cx, min_cy, max_cx - min_cx + 1, max_cy - min_cy + 1)
        };
        let slots = nw as usize * nh as usize;
        let mut stamps = vec![0_u64; slots];
        let mut lists: Vec<Vec<u32>> = Vec::new();
        lists.resize_with(slots, Vec::new);
        for dy in 0..self.h {
            for dx in 0..self.w {
                let old = dx as usize + self.w as usize * dy as usize;
                let ncx = (self.min_cx + dx - nmin_cx) as usize;
                let ncy = (self.min_cy + dy - nmin_cy) as usize;
                let new = ncx + nw as usize * ncy;
                stamps[new] = self.stamps[old];
                lists[new] = std::mem::take(&mut self.lists[old]);
            }
        }
        self.min_cx = nmin_cx;
        self.min_cy = nmin_cy;
        self.w = nw;
        self.h = nh;
        self.stamps = stamps;
        self.lists = lists;
        (cx - nmin_cx) as usize + nw as usize * (cy - nmin_cy) as usize
    }
}

/// Obstacle store shared by the cell-walk visitors: the canonical `Rect`
/// array (AoS, for id → rectangle lookups) plus its SoA coordinate-lane
/// mirror that the batched sight-test kernel streams over, the per-obstacle
/// query stamps, and the walk's candidate scratch. Bundled so the traversal
/// can hand visitors one mutable borrow disjoint from the cell map.
#[derive(Debug)]
struct Store {
    rects: Vec<Rect>,
    /// SoA mirror of `rects` (minx/miny/maxx/maxy lanes) — the hot half of
    /// the obstacle store; candidate classification streams over these.
    lanes: RectLanes,
    /// query stamp per obstacle, deduplicates candidates during one walk
    stamp: Vec<u64>,
    /// liveness flag per obstacle id. Ids are never reused: removal
    /// tombstones the slot (see [`ObstacleGrid::remove`]) so that every
    /// id handed out stays a valid index into the parallel lanes.
    live: Vec<bool>,
    /// live obstacle count (`rects.len()` minus tombstones)
    n_live: usize,
    /// unstamped candidates of the cell under classification
    scratch: Vec<u32>,
    /// lifetime count of segment-vs-rect classifications (see
    /// [`ObstacleGrid::sight_tests`])
    sight_tests: u64,
    /// lifetime count of plane-sweep events processed (see
    /// [`ObstacleGrid::sweep_events`])
    sweep_events: u64,
}

/// Obstacle index for segment-blocking queries.
#[derive(Debug)]
pub struct ObstacleGrid {
    cell: f64,
    cells: CellTable,
    store: Store,
    query_id: u64,
    /// Reusable plane-sweep buffers (see [`ObstacleGrid::sweep_visibility`]).
    sweep: SweepScratch,
}

impl ObstacleGrid {
    /// Creates a grid with the given cell size (in workspace units).
    ///
    /// Cells a few times larger than a typical obstacle work well; the CONN
    /// workloads over `[0, 10000]²` use cells of ~50 units.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        ObstacleGrid {
            cell,
            cells: CellTable::default(),
            store: Store {
                rects: Vec::new(),
                lanes: RectLanes::new(),
                stamp: Vec::new(),
                live: Vec::new(),
                n_live: 0,
                scratch: Vec::new(),
                sight_tests: 0,
                sweep_events: 0,
            },
            query_id: 0,
            sweep: SweepScratch::default(),
        }
    }

    /// Size of the obstacle **id space**: every id ever returned by
    /// [`ObstacleGrid::insert`] is `< len()`, including tombstoned ones.
    /// Use [`ObstacleGrid::num_live`] for the count of live obstacles.
    pub fn len(&self) -> usize {
        self.store.rects.len()
    }

    /// True when no obstacles were ever registered (tombstones count as
    /// registered — the id space is non-empty).
    pub fn is_empty(&self) -> bool {
        self.store.rects.is_empty()
    }

    /// Number of live (non-tombstoned) obstacles.
    pub fn num_live(&self) -> usize {
        self.store.n_live
    }

    /// True when the id still addresses a live obstacle (false after
    /// [`ObstacleGrid::remove`], or for out-of-range ids).
    pub fn is_live(&self, id: u32) -> bool {
        self.store.live.get(id as usize).copied().unwrap_or(false)
    }

    /// The registered obstacle rectangles, in insertion order. Tombstoned
    /// slots keep their historical rectangle — filter with
    /// [`ObstacleGrid::is_live`] when liveness matters.
    pub fn rects(&self) -> &[Rect] {
        &self.store.rects
    }

    /// Lifetime count of segment-vs-rect sight classifications performed by
    /// [`ObstacleGrid::blocks`] and the visible-region fan kernel. Like the
    /// Dijkstra reuse counters this is **not** cleared by
    /// [`ObstacleGrid::reset`] — callers attribute per-query counts by
    /// diffing marks across a query window.
    pub fn sight_tests(&self) -> u64 {
        self.store.sight_tests
    }

    /// Adds externally performed sight classifications (the visible-region
    /// fan kernel tests midpoint sight lines without going through the
    /// grid walk) to the lifetime counter.
    pub(crate) fn add_sight_tests(&mut self, n: u64) {
        self.store.sight_tests += n;
    }

    /// Lifetime count of rotational plane-sweep events processed by
    /// [`ObstacleGrid::sweep_visibility`] — the sweep's unit of work, kept
    /// alongside [`ObstacleGrid::sight_tests`] so the old and new cost
    /// models stay comparable. Monotone across [`ObstacleGrid::reset`],
    /// like the sight-test counter.
    pub fn sweep_events(&self) -> u64 {
        self.store.sweep_events
    }

    /// Decides visibility of every candidate in `cands` from `pivot` with
    /// one rotational plane-sweep, appending one verdict per candidate to
    /// `vis` (`true` = unobstructed). `rect_ids` must be a superset of the
    /// obstacles that can block any `pivot → candidate` segment (e.g.
    /// every obstacle overlapping a convex region containing the pivot and
    /// all candidates, as returned by [`ObstacleGrid::candidates_in_rect`]).
    /// Verdicts are bit-identical to calling [`ObstacleGrid::blocks`] per
    /// candidate — the sweep only narrows which rects are *exactly*
    /// probed; see [`crate::sweep`] for why the filter is conservative.
    pub fn sweep_visibility(
        &mut self,
        pivot: Point,
        cands: &[Point],
        rect_ids: &[u32],
        vis: &mut Vec<bool>,
    ) {
        let (tests, events) = sweep::sweep_visibility(
            &self.store.lanes,
            rect_ids,
            pivot,
            cands,
            &mut self.sweep,
            vis,
        );
        self.store.sight_tests += tests;
        self.store.sweep_events += events;
    }

    /// Empties the grid for the next query in O(1): the dense cell table
    /// invalidates by generation bump, keeping its extent and every
    /// per-cell list allocation for the next query's inserts.
    pub fn reset(&mut self) {
        self.cells.clear();
        self.store.rects.clear();
        self.store.lanes.clear();
        self.store.stamp.clear();
        self.store.live.clear();
        self.store.n_live = 0;
    }

    /// Changes the cell size. Only valid on an empty grid (call
    /// [`ObstacleGrid::reset`] first); a different cell size invalidates the
    /// retained cell coordinates, so the dense extent is dropped.
    pub fn set_cell(&mut self, cell: f64) {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(self.store.rects.is_empty(), "set_cell on a non-empty grid");
        if (cell - self.cell).abs() > f64::EPSILON {
            self.cell = cell;
            self.cells.clear_extent();
        }
    }

    /// The current cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (i32, i32) {
        (
            (x / self.cell).floor() as i32,
            (y / self.cell).floor() as i32,
        )
    }

    /// Registers an obstacle; returns its id within the grid.
    pub fn insert(&mut self, r: Rect) -> u32 {
        let id = self.store.rects.len() as u32;
        self.store.rects.push(r);
        self.store.lanes.push(&r);
        self.store.stamp.push(0);
        self.store.live.push(true);
        self.store.n_live += 1;
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        // dilate by one ring: queries then walk only exact cells
        for cx in (x0 - 1)..=(x1 + 1) {
            for cy in (y0 - 1)..=(y1 + 1) {
                self.cells.push(cx, cy, id);
            }
        }
        id
    }

    /// Tombstones an obstacle: scrubs its id from every cell it was
    /// registered in and collapses its coordinate lanes to a zero-area
    /// rectangle (which no sight test classifies as blocking, so even a
    /// caller-retained candidate id is harmless). The id slot itself is
    /// never reused — parallel arrays stay index-stable. Returns `false`
    /// when the id is out of range or already tombstoned.
    pub fn remove(&mut self, id: u32) -> bool {
        let idx = id as usize;
        if idx >= self.store.rects.len() || !self.store.live[idx] {
            return false;
        }
        self.store.live[idx] = false;
        self.store.n_live -= 1;
        let r = self.store.rects[idx];
        self.store
            .lanes
            .overwrite(idx, &Rect::from_point(Point::new(r.min_x, r.min_y)));
        // scrub the same dilated one-ring cell range insert registered
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        for cx in (x0 - 1)..=(x1 + 1) {
            for cy in (y0 - 1)..=(y1 + 1) {
                self.cells.remove_id(cx, cy, id);
            }
        }
        true
    }

    /// True when segment `a→b` passes through any obstacle's open interior.
    ///
    /// Sparse cells classify their unstamped candidates in place with the
    /// per-rect early-exit probe; dense cells gather them and run one batch
    /// over the SoA coordinate lanes (see [`conn_geom::batch`]). Verdicts
    /// are bit-identical to per-rect [`Rect::blocks`] calls either way, and
    /// the walk still stops at the first blocking cell.
    pub fn blocks(&mut self, a: Point, b: Point) -> bool {
        self.query_id += 1;
        let qid = self.query_id;
        let seg = Segment::new(a, b);
        let probe = batch::SegProbe::new(&seg);
        let mut blocked = false;
        self.walk_cells(a, b, |cells, store| {
            if cells.len() <= batch::SMALL_BATCH {
                for &id in cells {
                    let idx = id as usize;
                    if store.stamp[idx] != qid {
                        store.stamp[idx] = qid;
                        store.sight_tests += 1;
                        if probe.blocks(&store.lanes, idx) {
                            blocked = true;
                            return true; // stop walking
                        }
                    }
                }
                return false;
            }
            store.scratch.clear();
            for &id in cells {
                let idx = id as usize;
                if store.stamp[idx] != qid {
                    store.stamp[idx] = qid;
                    store.scratch.push(id);
                }
            }
            store.sight_tests += store.scratch.len() as u64;
            if batch::blocks_any(&seg, &store.lanes, &store.scratch) {
                blocked = true;
                return true; // stop walking
            }
            false
        });
        blocked
    }

    /// True when any of the obstacles selected by `ids` blocks `a→b`,
    /// classified directly over the candidate lanes — no cell walk.
    ///
    /// `ids` must be a superset of the obstacles that can block the segment
    /// (e.g. every obstacle overlapping a convex region that contains both
    /// endpoints, as returned by [`ObstacleGrid::candidates_in_rect`]);
    /// non-blockers in the superset cannot change the verdict. Callers with
    /// many sight tests against one neighborhood (base-cache rebuilds) use
    /// this to replace per-segment hash walks with contiguous lane scans.
    pub fn blocks_among(&mut self, a: Point, b: Point, ids: &[u32]) -> bool {
        self.store.sight_tests += ids.len() as u64;
        batch::blocks_any(&Segment::new(a, b), &self.store.lanes, ids)
    }

    /// Collects the ids of obstacles whose cells the segment `a→b` crosses
    /// (a superset of the blocking obstacles; exact tests are the caller's
    /// job). Used by visible-region computation.
    pub fn candidates_along(&mut self, a: Point, b: Point, out: &mut Vec<u32>) {
        out.clear();
        self.query_id += 1;
        let qid = self.query_id;
        self.walk_cells(a, b, |cells, store| {
            for &id in cells {
                let idx = id as usize;
                if store.stamp[idx] != qid {
                    store.stamp[idx] = qid;
                    out.push(id);
                }
            }
            false
        });
    }

    /// Collects ids of obstacles overlapping the given rectangle region
    /// (again a superset; cells are coarse).
    pub fn candidates_in_rect(&mut self, r: &Rect, out: &mut Vec<u32>) {
        out.clear();
        self.query_id += 1;
        let qid = self.query_id;
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                for &id in self.cells.get(cx, cy) {
                    let idx = id as usize;
                    if self.store.stamp[idx] != qid {
                        self.store.stamp[idx] = qid;
                        out.push(id);
                    }
                }
            }
        }
    }

    /// Amanatides–Woo voxel traversal from `a` to `b`; `visit` gets each
    /// non-empty cell's obstacle list and may stop the walk by returning
    /// `true`.
    fn walk_cells<F>(&mut self, a: Point, b: Point, mut visit: F)
    where
        F: FnMut(&[u32], &mut Store) -> bool,
    {
        let (mut cx, mut cy) = self.cell_of(a.x, a.y);
        let (ex, ey) = self.cell_of(b.x, b.y);
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let step_x: i32 = if dx > 0.0 { 1 } else { -1 };
        let step_y: i32 = if dy > 0.0 { 1 } else { -1 };
        // parametric distance to the next cell boundary along each axis
        let next_boundary = |c: i32, step: i32| -> f64 {
            let edge = if step > 0 { (c + 1) as f64 } else { c as f64 };
            edge * self.cell
        };
        let mut t_max_x = if dx.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            (next_boundary(cx, step_x) - a.x) / dx
        };
        let mut t_max_y = if dy.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            (next_boundary(cy, step_y) - a.y) / dy
        };
        let t_delta_x = if dx.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            self.cell / dx.abs()
        };
        let t_delta_y = if dy.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            self.cell / dy.abs()
        };

        // cap iterations: the walk spans at most the cell-grid diagonal
        let max_steps = ((ex - cx).abs() + (ey - cy).abs() + 2) as usize;
        for _ in 0..=max_steps {
            let ids = self.cells.get(cx, cy);
            // split borrows: the cell table is not touched inside visit
            if !ids.is_empty() && visit(ids, &mut self.store) {
                return;
            }
            if cx == ex && cy == ey {
                return;
            }
            if t_max_x < t_max_y {
                t_max_x += t_delta_x;
                cx += step_x;
            } else {
                t_max_y += t_delta_y;
                cy += step_y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with(rects: &[Rect]) -> ObstacleGrid {
        let mut g = ObstacleGrid::new(50.0);
        for r in rects {
            g.insert(*r);
        }
        g
    }

    #[test]
    fn empty_grid_blocks_nothing() {
        let mut g = ObstacleGrid::new(50.0);
        assert!(!g.blocks(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)));
    }

    #[test]
    fn blocks_straight_crossing() {
        let mut g = grid_with(&[Rect::new(100.0, 100.0, 200.0, 150.0)]);
        assert!(g.blocks(Point::new(0.0, 120.0), Point::new(300.0, 120.0)));
        assert!(!g.blocks(Point::new(0.0, 300.0), Point::new(300.0, 300.0)));
    }

    #[test]
    fn boundary_touch_does_not_block() {
        let mut g = grid_with(&[Rect::new(100.0, 100.0, 200.0, 150.0)]);
        // slide along the top wall
        assert!(!g.blocks(Point::new(0.0, 150.0), Point::new(300.0, 150.0)));
        // tangent corner graze: slope −1 through the top-right corner
        // (200,150) keeps the rectangle strictly on one side
        assert!(!g.blocks(Point::new(150.0, 200.0), Point::new(250.0, 100.0)));
        // whereas a chord through the interior does block
        assert!(g.blocks(Point::new(0.0, 250.0), Point::new(250.0, 0.0)));
    }

    #[test]
    fn long_diagonal_across_many_cells() {
        let mut g = grid_with(&[Rect::new(4975.0, 4975.0, 5025.0, 5025.0)]);
        assert!(g.blocks(Point::new(0.0, 0.0), Point::new(10000.0, 10000.0)));
        assert!(!g.blocks(Point::new(0.0, 10.0), Point::new(10.0, 0.0)));
    }

    #[test]
    fn vertical_and_horizontal_walks() {
        let mut g = grid_with(&[Rect::new(495.0, 100.0, 505.0, 900.0)]);
        assert!(g.blocks(Point::new(0.0, 500.0), Point::new(1000.0, 500.0)));
        assert!(g.blocks(Point::new(500.0, 0.0), Point::new(500.0, 1000.0)));
        assert!(!g.blocks(Point::new(490.0, 0.0), Point::new(490.0, 1000.0)));
    }

    #[test]
    fn thin_obstacle_not_missed_between_cells() {
        // a wall thinner than a cell, crossed by a shallow diagonal
        let mut g = grid_with(&[Rect::new(777.0, 0.0, 779.0, 10000.0)]);
        assert!(g.blocks(Point::new(0.0, 5000.0), Point::new(10000.0, 5003.0)));
    }

    #[test]
    fn candidates_along_superset_of_blockers() {
        let rects = [
            Rect::new(100.0, 100.0, 150.0, 150.0),
            Rect::new(5000.0, 5000.0, 5050.0, 5050.0),
            Rect::new(9000.0, 100.0, 9050.0, 150.0),
        ];
        let mut g = grid_with(&rects);
        let mut out = Vec::new();
        g.candidates_along(Point::new(0.0, 0.0), Point::new(6000.0, 6000.0), &mut out);
        assert!(out.contains(&0));
        assert!(out.contains(&1));
        assert!(!out.contains(&2));
    }

    #[test]
    fn candidates_in_rect_finds_region_obstacles() {
        let rects = [
            Rect::new(100.0, 100.0, 150.0, 150.0),
            Rect::new(800.0, 800.0, 850.0, 850.0),
        ];
        let mut g = grid_with(&rects);
        let mut out = Vec::new();
        g.candidates_in_rect(&Rect::new(0.0, 0.0, 300.0, 300.0), &mut out);
        assert!(out.contains(&0));
        assert!(!out.contains(&1));
    }

    #[test]
    fn degenerate_segment_is_fine() {
        let mut g = grid_with(&[Rect::new(100.0, 100.0, 200.0, 150.0)]);
        // zero-length sight-line inside an obstacle cell but on no interior path
        assert!(!g.blocks(Point::new(100.0, 100.0), Point::new(100.0, 100.0)));
    }

    #[test]
    fn remove_tombstones_and_unblocks() {
        let r0 = Rect::new(100.0, 100.0, 200.0, 150.0);
        let r1 = Rect::new(400.0, 100.0, 500.0, 150.0);
        let mut g = grid_with(&[r0, r1]);
        assert_eq!(g.num_live(), 2);
        assert!(g.blocks(Point::new(0.0, 120.0), Point::new(300.0, 120.0)));

        assert!(g.remove(0));
        assert!(!g.remove(0), "double remove is a no-op");
        assert!(!g.remove(7), "out-of-range remove is a no-op");
        assert_eq!(g.num_live(), 1);
        assert_eq!(g.len(), 2, "id space keeps the tombstone");
        assert!(!g.is_live(0));
        assert!(g.is_live(1));

        // the removed wall no longer blocks; the surviving one still does
        assert!(!g.blocks(Point::new(0.0, 120.0), Point::new(300.0, 120.0)));
        assert!(g.blocks(Point::new(300.0, 120.0), Point::new(600.0, 120.0)));

        // candidate collection no longer surfaces the tombstone
        let mut out = Vec::new();
        g.candidates_in_rect(&Rect::new(0.0, 0.0, 600.0, 300.0), &mut out);
        assert!(!out.contains(&0));
        assert!(out.contains(&1));

        // even an explicitly retained id cannot block after removal
        assert!(!g.blocks_among(Point::new(0.0, 120.0), Point::new(300.0, 120.0), &[0]));
    }

    #[test]
    fn reinsert_after_remove_gets_fresh_id() {
        let r = Rect::new(100.0, 100.0, 200.0, 150.0);
        let mut g = grid_with(&[r]);
        assert!(g.remove(0));
        let id = g.insert(r);
        assert_eq!(id, 1, "tombstoned ids are never reused");
        assert_eq!(g.num_live(), 1);
        assert!(g.blocks(Point::new(0.0, 120.0), Point::new(300.0, 120.0)));
    }

    #[test]
    fn exhaustive_agreement_with_linear_scan() {
        // pseudo-random rects + segments; grid must agree with brute force
        let mut rects = Vec::new();
        let mut x = 12.9898_f64;
        let mut rnd = move || {
            x = (x * 78.233 + 37.719).fract();
            x.abs()
        };
        for _ in 0..60 {
            let ax = rnd() * 900.0;
            let ay = rnd() * 900.0;
            rects.push(Rect::new(
                ax,
                ay,
                ax + 5.0 + rnd() * 60.0,
                ay + 5.0 + rnd() * 60.0,
            ));
        }
        let mut g = grid_with(&rects);
        for _ in 0..300 {
            let a = Point::new(rnd() * 1000.0, rnd() * 1000.0);
            let b = Point::new(rnd() * 1000.0, rnd() * 1000.0);
            let seg = Segment::new(a, b);
            let brute = rects.iter().any(|r| r.blocks(&seg));
            assert_eq!(g.blocks(a, b), brute, "a={a} b={b}");
        }
    }
}
