//! Spatial-hash grid over obstacle rectangles.
//!
//! Visibility tests ("does the sight-line `a→b` cross any obstacle
//! interior?") dominate the CPU profile of obstructed query processing. The
//! grid stores every obstacle in each cell it overlaps, **dilated by one
//! cell ring**, so a query only has to walk the exact cells its segment
//! passes through (Amanatides–Woo traversal) — the dilation absorbs all
//! boundary/corner cases without widening the walk.

// lint:allow-file(no-panic-in-query-path[index]): cell coordinates are clamped to the grid extent before indexing
use conn_geom::{Point, Rect, Segment};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fast non-cryptographic hasher for cell coordinates (FxHash-style
/// multiply-mix). Cell lookups happen once per cell walked per sight test —
/// the single hottest operation of query processing — and the default
/// SipHash costs more than the rectangle tests it guards.
#[derive(Default)]
pub struct CellHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for CellHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.0 = (self.0.rotate_left(5) ^ v as u32 as u64).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type CellMap = HashMap<(i32, i32), Vec<u32>, BuildHasherDefault<CellHasher>>;

/// Obstacle index for segment-blocking queries.
#[derive(Debug)]
pub struct ObstacleGrid {
    cell: f64,
    cells: CellMap,
    rects: Vec<Rect>,
    /// query stamp per obstacle, deduplicates candidates during one walk
    stamp: Vec<u64>,
    query_id: u64,
}

impl ObstacleGrid {
    /// Creates a grid with the given cell size (in workspace units).
    ///
    /// Cells a few times larger than a typical obstacle work well; the CONN
    /// workloads over `[0, 10000]²` use cells of ~50 units.
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        ObstacleGrid {
            cell,
            cells: CellMap::default(),
            rects: Vec::new(),
            stamp: Vec::new(),
            query_id: 0,
        }
    }

    /// Number of registered obstacles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when no obstacles are registered.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The registered obstacle rectangles, in insertion order.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Empties the grid for the next query. The cell map's table capacity
    /// is retained but its keys are dropped: keeping the union of every
    /// query's cells around (even with empty buckets) makes the hot walk
    /// lookups cache-cold, which costs more than the per-bucket
    /// reallocation saves.
    pub fn reset(&mut self) {
        self.cells.clear();
        self.rects.clear();
        self.stamp.clear();
    }

    /// Changes the cell size. Only valid on an empty grid (call
    /// [`ObstacleGrid::reset`] first); a different cell size invalidates the
    /// retained cell keys, so the map is cleared.
    pub fn set_cell(&mut self, cell: f64) {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(self.rects.is_empty(), "set_cell on a non-empty grid");
        if (cell - self.cell).abs() > f64::EPSILON {
            self.cell = cell;
            self.cells.clear();
        }
    }

    /// The current cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (i32, i32) {
        (
            (x / self.cell).floor() as i32,
            (y / self.cell).floor() as i32,
        )
    }

    /// Registers an obstacle; returns its id within the grid.
    pub fn insert(&mut self, r: Rect) -> u32 {
        let id = self.rects.len() as u32;
        self.rects.push(r);
        self.stamp.push(0);
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        // dilate by one ring: queries then walk only exact cells
        for cx in (x0 - 1)..=(x1 + 1) {
            for cy in (y0 - 1)..=(y1 + 1) {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
        id
    }

    /// True when segment `a→b` passes through any obstacle's open interior.
    pub fn blocks(&mut self, a: Point, b: Point) -> bool {
        self.query_id += 1;
        let qid = self.query_id;
        let seg = Segment::new(a, b);
        let mut blocked = false;
        self.walk_cells(a, b, |cells, rects, stamp| {
            for &id in cells {
                let idx = id as usize;
                if stamp[idx] == qid {
                    continue;
                }
                stamp[idx] = qid;
                if rects[idx].blocks(&seg) {
                    blocked = true;
                    return true; // stop walking
                }
            }
            false
        });
        blocked
    }

    /// Collects the ids of obstacles whose cells the segment `a→b` crosses
    /// (a superset of the blocking obstacles; exact tests are the caller's
    /// job). Used by visible-region computation.
    pub fn candidates_along(&mut self, a: Point, b: Point, out: &mut Vec<u32>) {
        out.clear();
        self.query_id += 1;
        let qid = self.query_id;
        self.walk_cells(a, b, |cells, _rects, stamp| {
            for &id in cells {
                let idx = id as usize;
                if stamp[idx] != qid {
                    stamp[idx] = qid;
                    out.push(id);
                }
            }
            false
        });
    }

    /// Collects ids of obstacles overlapping the given rectangle region
    /// (again a superset; cells are coarse).
    pub fn candidates_in_rect(&mut self, r: &Rect, out: &mut Vec<u32>) {
        out.clear();
        self.query_id += 1;
        let qid = self.query_id;
        let (x0, y0) = self.cell_of(r.min_x, r.min_y);
        let (x1, y1) = self.cell_of(r.max_x, r.max_y);
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(cells) = self.cells.get(&(cx, cy)) {
                    for &id in cells {
                        let idx = id as usize;
                        if self.stamp[idx] != qid {
                            self.stamp[idx] = qid;
                            out.push(id);
                        }
                    }
                }
            }
        }
    }

    /// Amanatides–Woo voxel traversal from `a` to `b`; `visit` gets each
    /// non-empty cell's obstacle list and may stop the walk by returning
    /// `true`.
    fn walk_cells<F>(&mut self, a: Point, b: Point, mut visit: F)
    where
        F: FnMut(&[u32], &[Rect], &mut [u64]) -> bool,
    {
        let (mut cx, mut cy) = self.cell_of(a.x, a.y);
        let (ex, ey) = self.cell_of(b.x, b.y);
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let step_x: i32 = if dx > 0.0 { 1 } else { -1 };
        let step_y: i32 = if dy > 0.0 { 1 } else { -1 };
        // parametric distance to the next cell boundary along each axis
        let next_boundary = |c: i32, step: i32| -> f64 {
            let edge = if step > 0 { (c + 1) as f64 } else { c as f64 };
            edge * self.cell
        };
        let mut t_max_x = if dx.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            (next_boundary(cx, step_x) - a.x) / dx
        };
        let mut t_max_y = if dy.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            (next_boundary(cy, step_y) - a.y) / dy
        };
        let t_delta_x = if dx.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            self.cell / dx.abs()
        };
        let t_delta_y = if dy.abs() < f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            self.cell / dy.abs()
        };

        // cap iterations: the walk spans at most the cell-grid diagonal
        let max_steps = ((ex - cx).abs() + (ey - cy).abs() + 2) as usize;
        for _ in 0..=max_steps {
            if let Some(ids) = self.cells.get(&(cx, cy)) {
                // split borrows: cells map is not touched inside visit
                let ids: &[u32] = ids;
                if visit(ids, &self.rects, &mut self.stamp) {
                    return;
                }
            }
            if cx == ex && cy == ey {
                return;
            }
            if t_max_x < t_max_y {
                t_max_x += t_delta_x;
                cx += step_x;
            } else {
                t_max_y += t_delta_y;
                cy += step_y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with(rects: &[Rect]) -> ObstacleGrid {
        let mut g = ObstacleGrid::new(50.0);
        for r in rects {
            g.insert(*r);
        }
        g
    }

    #[test]
    fn empty_grid_blocks_nothing() {
        let mut g = ObstacleGrid::new(50.0);
        assert!(!g.blocks(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)));
    }

    #[test]
    fn blocks_straight_crossing() {
        let mut g = grid_with(&[Rect::new(100.0, 100.0, 200.0, 150.0)]);
        assert!(g.blocks(Point::new(0.0, 120.0), Point::new(300.0, 120.0)));
        assert!(!g.blocks(Point::new(0.0, 300.0), Point::new(300.0, 300.0)));
    }

    #[test]
    fn boundary_touch_does_not_block() {
        let mut g = grid_with(&[Rect::new(100.0, 100.0, 200.0, 150.0)]);
        // slide along the top wall
        assert!(!g.blocks(Point::new(0.0, 150.0), Point::new(300.0, 150.0)));
        // tangent corner graze: slope −1 through the top-right corner
        // (200,150) keeps the rectangle strictly on one side
        assert!(!g.blocks(Point::new(150.0, 200.0), Point::new(250.0, 100.0)));
        // whereas a chord through the interior does block
        assert!(g.blocks(Point::new(0.0, 250.0), Point::new(250.0, 0.0)));
    }

    #[test]
    fn long_diagonal_across_many_cells() {
        let mut g = grid_with(&[Rect::new(4975.0, 4975.0, 5025.0, 5025.0)]);
        assert!(g.blocks(Point::new(0.0, 0.0), Point::new(10000.0, 10000.0)));
        assert!(!g.blocks(Point::new(0.0, 10.0), Point::new(10.0, 0.0)));
    }

    #[test]
    fn vertical_and_horizontal_walks() {
        let mut g = grid_with(&[Rect::new(495.0, 100.0, 505.0, 900.0)]);
        assert!(g.blocks(Point::new(0.0, 500.0), Point::new(1000.0, 500.0)));
        assert!(g.blocks(Point::new(500.0, 0.0), Point::new(500.0, 1000.0)));
        assert!(!g.blocks(Point::new(490.0, 0.0), Point::new(490.0, 1000.0)));
    }

    #[test]
    fn thin_obstacle_not_missed_between_cells() {
        // a wall thinner than a cell, crossed by a shallow diagonal
        let mut g = grid_with(&[Rect::new(777.0, 0.0, 779.0, 10000.0)]);
        assert!(g.blocks(Point::new(0.0, 5000.0), Point::new(10000.0, 5003.0)));
    }

    #[test]
    fn candidates_along_superset_of_blockers() {
        let rects = [
            Rect::new(100.0, 100.0, 150.0, 150.0),
            Rect::new(5000.0, 5000.0, 5050.0, 5050.0),
            Rect::new(9000.0, 100.0, 9050.0, 150.0),
        ];
        let mut g = grid_with(&rects);
        let mut out = Vec::new();
        g.candidates_along(Point::new(0.0, 0.0), Point::new(6000.0, 6000.0), &mut out);
        assert!(out.contains(&0));
        assert!(out.contains(&1));
        assert!(!out.contains(&2));
    }

    #[test]
    fn candidates_in_rect_finds_region_obstacles() {
        let rects = [
            Rect::new(100.0, 100.0, 150.0, 150.0),
            Rect::new(800.0, 800.0, 850.0, 850.0),
        ];
        let mut g = grid_with(&rects);
        let mut out = Vec::new();
        g.candidates_in_rect(&Rect::new(0.0, 0.0, 300.0, 300.0), &mut out);
        assert!(out.contains(&0));
        assert!(!out.contains(&1));
    }

    #[test]
    fn degenerate_segment_is_fine() {
        let mut g = grid_with(&[Rect::new(100.0, 100.0, 200.0, 150.0)]);
        // zero-length sight-line inside an obstacle cell but on no interior path
        assert!(!g.blocks(Point::new(100.0, 100.0), Point::new(100.0, 100.0)));
    }

    #[test]
    fn exhaustive_agreement_with_linear_scan() {
        // pseudo-random rects + segments; grid must agree with brute force
        let mut rects = Vec::new();
        let mut x = 12.9898_f64;
        let mut rnd = move || {
            x = (x * 78.233 + 37.719).fract();
            x.abs()
        };
        for _ in 0..60 {
            let ax = rnd() * 900.0;
            let ay = rnd() * 900.0;
            rects.push(Rect::new(
                ax,
                ay,
                ax + 5.0 + rnd() * 60.0,
                ay + 5.0 + rnd() * 60.0,
            ));
        }
        let mut g = grid_with(&rects);
        for _ in 0..300 {
            let a = Point::new(rnd() * 1000.0, rnd() * 1000.0);
            let b = Point::new(rnd() * 1000.0, rnd() * 1000.0);
            let seg = Segment::new(a, b);
            let brute = rects.iter().any(|r| r.blocks(&seg));
            assert_eq!(g.blocks(a, b), brute, "a={a} b={b}");
        }
    }
}
